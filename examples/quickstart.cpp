// Quickstart: the paper's introductory example — a patient table whose
// name and body-mass index are HIDDEN. Shows the full GhostDB flow:
// HIDDEN declarations, staging, Build() (vertical partitioning + sealed
// download + fully indexed model), leak-free querying, EXPLAIN, and what a
// spy on the PC actually observes.
#include <cstdio>

#include "core/database.h"

using namespace ghostdb;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _st = (expr);                                        \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (0)

int main() {
  core::GhostDB db;

  // The paper's CREATE TABLE (section 2.1), plus a doctors table so the
  // query links Visible and Hidden data across a join.
  CHECK_OK(db.Execute(
      "CREATE TABLE Doctors (id INT, specialty CHAR(20), "
      "name CHAR(20) HIDDEN)"));
  CHECK_OK(db.Execute(
      "CREATE TABLE Patients (id INT, doctor INT REFERENCES Doctors HIDDEN, "
      "name CHAR(20) HIDDEN, age INT, city CHAR(16), "
      "bodymassindex DOUBLE HIDDEN)"));

  const char* doctors[][2] = {{"Psychiatrist", "Dr. Freud"},
                              {"Cardiology", "Dr. Harvey"},
                              {"Endocrinology", "Dr. Banting"}};
  for (auto& d : doctors) {
    CHECK_OK(db.Execute(std::string("INSERT INTO Doctors VALUES ('") +
                        d[0] + "', '" + d[1] + "')"));
  }
  struct P {
    int doctor;
    const char* name;
    int age;
    const char* city;
    double bmi;
  };
  P patients[] = {{0, "Alice", 50, "Paris", 23.0}, {1, "Bob", 50, "Lyon", 31.5},
                  {2, "Carol", 41, "Paris", 23.0}, {0, "Dave", 50, "Nice", 27.2},
                  {1, "Erin", 66, "Paris", 23.0},  {2, "Frank", 50, "Lyon", 19.8}};
  for (auto& p : patients) {
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Patients VALUES (%d, '%s', %d, '%s', %f)",
                  p.doctor, p.name, p.age, p.city, p.bmi);
    CHECK_OK(db.Execute(sql));
  }

  // Partition Visible/Hidden, seal the Hidden download, build SKTs +
  // climbing indexes on the key.
  CHECK_OK(db.Build());
  std::printf("Database built. Secure-side storage:\n%s\n",
              db.StorageReport().c_str());

  // The paper's example query: age is Visible, bodymassindex is Hidden.
  const char* query =
      "SELECT Patients.id, Patients.name, Doctors.name FROM Patients, "
      "Doctors WHERE Patients.doctor = Doctors.id AND Patients.age = 50 "
      "AND Patients.bodymassindex = 23.0";

  auto plan = db.Explain(query);
  CHECK_OK(plan.status());
  std::printf("EXPLAIN:\n%s\n", plan->c_str());

  auto result = db.Query(query);
  CHECK_OK(result.status());
  std::printf("Results (rendered on the secure display — never sent to the "
              "PC):\n");
  for (const auto& c : result->columns) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const auto& v : row) std::printf("%-22s", v.ToString().c_str());
    std::printf("\n");
  }

  std::printf("\nWhat a spy on the PC observed (the audited channel):\n");
  for (const auto& m : db.device().channel().transcript()) {
    std::printf("  %-12s %-18s %6llu bytes\n",
                m.direction == device::Direction::kToUntrusted
                    ? "PC <- key:"
                    : "PC -> key:",
                m.label.c_str(), static_cast<unsigned long long>(m.bytes));
  }
  std::printf("\nOnly the query text left the key; patient names and BMI "
              "values never did.\n");
  std::printf("Simulated query time: %.2f ms\n",
              ToMillis(result->metrics.total_ns));

  // Aggregates fold on the key too: the PC never sees per-row data.
  auto agg = db.Query(
      "SELECT COUNT(*), AVG(Patients.bodymassindex) FROM Patients "
      "WHERE Patients.age = 50");
  CHECK_OK(agg.status());
  std::printf("\nAggregate (computed on the key): %s patients aged 50, "
              "mean BMI %.2f\n",
              agg->rows[0][0].ToString().c_str(),
              agg->rows[0][1].AsDouble());
  return 0;
}

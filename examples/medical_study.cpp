// Medical-records scenario (the paper's real dataset, section 6.2): a
// diabetes study database where foreign keys and identifying attributes
// are Hidden while clinical measurements stay Visible. Runs a cohort query
// that links Visible measurements with Hidden patient-doctor relationships
// and shows how the planner picks its strategy.
#include <cstdio>

#include "core/database.h"
#include "workload/medical.h"

using namespace ghostdb;

int main() {
  workload::MedicalConfig wl;
  wl.scale = 0.02;  // 26K measurements, 280 patients, 90 doctors
  auto cfg = workload::MedicalDbConfig(wl);
  cfg.exec.result_row_limit = 10;
  core::GhostDB db(cfg);
  auto st = workload::BuildMedical(&db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Diabetes study database loaded (scale %.2f).\n", wl.scale);
  std::printf("%s\n", db.StorageReport().c_str());

  // A cohort query: measurements of patients of a set of doctors, where
  // the doctor assignment (Hidden fk) and doctor name (Hidden) never leave
  // the key, while age/specialty/measurement values are public.
  std::string query =
      "SELECT Measurements.id, Measurements.measurement, "
      "Patients.first_name, Patients.age FROM Measurements, Patients, "
      "Doctors WHERE Measurements.patient_id = Patients.id AND "
      "Patients.doctor_id = Doctors.id AND Patients.age < 40 AND "
      "Doctors.name < '200000'";

  auto plan = db.Explain(query);
  if (plan.ok()) std::printf("EXPLAIN:\n%s\n", plan->c_str());

  auto result = db.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("cohort size: %llu measurement rows (showing %zu)\n",
              static_cast<unsigned long long>(result->total_rows),
              result->rows.size());
  for (const auto& c : result->columns) std::printf("%-26s", c.c_str());
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const auto& v : row) std::printf("%-26s", v.ToString().c_str());
    std::printf("\n");
  }
  std::printf("\nsimulated time %.1f ms | flash reads %llu pages | "
              "%llu bytes entered the key, %llu left it (the query)\n",
              ToMillis(result->metrics.total_ns),
              static_cast<unsigned long long>(
                  result->metrics.flash.pages_read),
              static_cast<unsigned long long>(
                  result->metrics.bytes_to_secure),
              static_cast<unsigned long long>(
                  result->metrics.bytes_to_untrusted));
  return 0;
}

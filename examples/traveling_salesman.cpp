// The paper's motivating scenario (section 1): Bob, a traveling salesman,
// carries sensitive customer and quote data on his smart USB key and plugs
// it into an untrusted customer PC that holds the public product catalog.
// He can answer "which of my customers have an open quote on a catalog
// product that just got discounted?" without a single customer byte
// touching the PC.
#include <cstdio>

#include "common/rng.h"
#include "core/database.h"

using namespace ghostdb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  core::GhostDB db;
  // Public catalog: entirely Visible. Customers: identities and credit
  // Hidden. Quotes: who is buying what and at which discount is Hidden
  // (the fks and the discount); only the workflow status stays Visible.
  CHECK_OK(db.Execute(
      "CREATE TABLE Products (id INT, family CHAR(16), list_price INT, "
      "discounted INT)"));
  CHECK_OK(db.Execute(
      "CREATE TABLE Customers (id INT, region CHAR(12), name CHAR(24) "
      "HIDDEN, credit_limit INT HIDDEN)"));
  CHECK_OK(db.Execute(
      "CREATE TABLE Quotes (id INT, customer INT REFERENCES Customers "
      "HIDDEN, product INT REFERENCES Products HIDDEN, discount_pct INT "
      "HIDDEN, status CHAR(8))"));

  Rng rng(1234);
  const char* families[] = {"sensors", "routers", "cables", "racks"};
  for (int i = 0; i < 60; ++i) {
    char sql[160];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Products VALUES ('%s', %d, %d)",
                  families[rng.Uniform(4)],
                  static_cast<int>(100 + rng.Uniform(900)),
                  static_cast<int>(rng.Uniform(2)));
    CHECK_OK(db.Execute(sql));
  }
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < 40; ++i) {
    char sql[200];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Customers VALUES ('%s', 'Account-%02d', %d)",
                  regions[rng.Uniform(4)], i,
                  static_cast<int>(10000 + rng.Uniform(90000)));
    CHECK_OK(db.Execute(sql));
  }
  const char* statuses[] = {"open", "won", "lost"};
  for (int i = 0; i < 500; ++i) {
    char sql[200];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Quotes VALUES (%d, %d, %d, '%s')",
                  static_cast<int>(rng.Uniform(40)),
                  static_cast<int>(rng.Uniform(60)),
                  static_cast<int>(rng.Uniform(30)),
                  statuses[rng.Uniform(3)]);
    CHECK_OK(db.Execute(sql));
  }
  CHECK_OK(db.Build());

  std::printf("Bob plugs his key into the customer's PC...\n\n");
  const char* query =
      "SELECT Quotes.id, Customers.name, Products.family, "
      "Quotes.discount_pct FROM Quotes, Customers, Products WHERE "
      "Quotes.customer = Customers.id AND Quotes.product = Products.id AND "
      "Products.discounted = 1 AND Quotes.status = 'open' AND "
      "Quotes.discount_pct > 15";

  auto result = db.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Open quotes on discounted products with >15%% discount "
              "(%llu):\n",
              static_cast<unsigned long long>(result->total_rows));
  for (const auto& c : result->columns) std::printf("%-22s", c.c_str());
  std::printf("\n");
  size_t shown = 0;
  for (const auto& row : result->rows) {
    if (++shown > 8) break;
    for (const auto& v : row) std::printf("%-22s", v.ToString().c_str());
    std::printf("\n");
  }

  uint64_t to_pc = 0;
  for (const auto& m : db.device().channel().transcript()) {
    if (m.direction == device::Direction::kToUntrusted) to_pc += m.bytes;
  }
  std::printf("\nBytes that ever left the key toward the PC: %llu "
              "(query text + requests) — zero customer data.\n",
              static_cast<unsigned long long>(to_pc));
  std::printf("Catalog (visible) bytes that entered the key: %llu\n",
              static_cast<unsigned long long>(
                  result->metrics.bytes_to_secure));
  return 0;
}

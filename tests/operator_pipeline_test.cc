// Operator-pipeline tests: the new end-to-end SQL surface (ORDER BY /
// LIMIT / DISTINCT) checked against the reference oracle on the Fig 3
// schema, plus the servable API — Prepare() plan caching and QueryBatch()
// throughput execution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::BatchResult;
using core::GhostDB;
using core::GhostDBConfig;
using core::PreparedQuery;

// The paper's Fig 3 tree with deterministic random data:
//   T0(2000) -> T1(400) -> {T11(80), T12(60)}, T0 -> T2(100)
class OperatorPipelineTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kT0 = 2000, kT1 = 400, kT2 = 100, kT11 = 80,
                            kT12 = 60;

  void BuildDb(GhostDB* db, uint64_t seed = 42) {
    ASSERT_TRUE(db->Execute("CREATE TABLE T11 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(db->Execute("CREATE TABLE T12 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(db->Execute("CREATE TABLE T2 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE T1 (id INT, fk11 INT REFERENCES T11 "
                    "HIDDEN, fk12 INT REFERENCES T12 HIDDEN, v INT, "
                    "vs CHAR(8), h INT HIDDEN)")
            .ok());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE T0 (id INT, fk1 INT REFERENCES T1 HIDDEN, "
                    "fk2 INT REFERENCES T2 HIDDEN, v INT, h INT HIDDEN, "
                    "hs CHAR(8) HIDDEN)")
            .ok());

    Rng rng(seed);
    auto rint = [&](int bound) {
      return Value::Int32(static_cast<int32_t>(rng.Uniform(bound)));
    };
    auto rstr = [&](const char* prefix) {
      return Value::String(std::string(prefix) +
                           std::to_string(rng.Uniform(50)));
    };
    auto stage = [&](const char* name, uint32_t n, auto make_row) {
      auto data = db->MutableStaging(name);
      ASSERT_TRUE(data.ok());
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_TRUE((*data)->AppendRow(make_row(i)).ok());
      }
    };
    stage("T11", kT11, [&](uint32_t) {
      return std::vector<Value>{rint(100), rint(100)};
    });
    stage("T12", kT12, [&](uint32_t) {
      return std::vector<Value>{rint(100), rint(100)};
    });
    stage("T2", kT2, [&](uint32_t) {
      return std::vector<Value>{rint(100), rint(100)};
    });
    stage("T1", kT1, [&](uint32_t) {
      return std::vector<Value>{rint(kT11), rint(kT12), rint(100),
                                rstr("s"), rint(100)};
    });
    stage("T0", kT0, [&](uint32_t) {
      return std::vector<Value>{rint(kT1), rint(kT2), rint(100), rint(100),
                                rstr("h")};
    });
    ASSERT_TRUE(db->Build().ok());
  }

  GhostDBConfig SmallConfig() {
    GhostDBConfig cfg;
    cfg.device.flash.logical_pages = 32 * 1024;
    cfg.retain_staged_data = true;
    return cfg;
  }

  void ExpectMatchesOracle(GhostDB* db, const std::string& sql) {
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected = reference::Evaluate(db->schema(), db->staged(), *bound);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    auto got = db->Query(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
    ASSERT_EQ(got->total_rows, expected->size()) << sql;
    ASSERT_EQ(got->rows.size(), expected->size()) << sql;
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ(got->rows[i].size(), (*expected)[i].size());
      for (size_t j = 0; j < (*expected)[i].size(); ++j) {
        ASSERT_EQ(got->rows[i][j], (*expected)[i][j])
            << sql << " row " << i << " col " << j;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// ORDER BY / LIMIT / DISTINCT end-to-end vs the oracle
// ---------------------------------------------------------------------------

TEST_F(OperatorPipelineTest, OrderByVisibleAscending) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T1.id, T1.v FROM T1 WHERE T1.h < 40 ORDER BY T1.v");
}

TEST_F(OperatorPipelineTest, OrderByHiddenDescending) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T12.id, T12.h FROM T12 WHERE T12.h < 70 "
           "ORDER BY T12.h DESC");
}

TEST_F(OperatorPipelineTest, OrderByMultipleKeys) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T1.v, T1.h, T1.id FROM T1 WHERE T1.h < 60 "
                      "ORDER BY T1.v ASC, T1.h DESC");
}

TEST_F(OperatorPipelineTest, OrderByStringColumn) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T1.id, T1.vs FROM T1 WHERE T1.h < 30 ORDER BY T1.vs");
}

TEST_F(OperatorPipelineTest, OrderByAcrossJoin) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T1.v FROM T0, T1 WHERE "
                      "T0.fk1 = T1.id AND T1.h < 25 ORDER BY T1.v DESC");
}

TEST_F(OperatorPipelineTest, LimitTruncatesAndCountsExactly) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T0.id FROM T0 WHERE T0.h < 80 LIMIT 7");
  auto r = db.Query("SELECT T0.id FROM T0 WHERE T0.h < 80 LIMIT 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_rows, 7u);
  EXPECT_EQ(r->rows.size(), 7u);
}

TEST_F(OperatorPipelineTest, LimitLargerThanResultIsHarmless) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T12.id FROM T12 WHERE T12.h = 17 LIMIT 1000");
}

TEST_F(OperatorPipelineTest, Distinct) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT DISTINCT T1.v FROM T1 WHERE T1.h < 50");
}

TEST_F(OperatorPipelineTest, DistinctAcrossJoin) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT DISTINCT T1.v FROM T0, T1 WHERE "
                      "T0.fk1 = T1.id AND T0.v < 40 AND T1.h < 60");
}

TEST_F(OperatorPipelineTest, DistinctOrderByLimitComposed) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT DISTINCT T1.v FROM T1 WHERE T1.h < 70 "
                      "ORDER BY T1.v DESC LIMIT 5");
}

TEST_F(OperatorPipelineTest, OrderByLimitAcrossThreeWayJoin) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T1.v, T12.h FROM T0, T1, T12 WHERE "
                      "T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v < 30 "
                      "AND T12.h < 40 ORDER BY T12.h, T0.id LIMIT 20");
}

TEST_F(OperatorPipelineTest, AggregateWithLimitStillOneRow) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT COUNT(*), MIN(T1.v) FROM T1 WHERE T1.h < 45 LIMIT 3");
}

TEST_F(OperatorPipelineTest, OrderByMustReferenceSelectList) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto r = db.Query("SELECT T1.id FROM T1 WHERE T1.h < 40 ORDER BY T1.v");
  EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
}

TEST_F(OperatorPipelineTest, DistinctOverAggregatesRejected) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto r = db.Query("SELECT DISTINCT COUNT(*) FROM T1");
  EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
}

TEST_F(OperatorPipelineTest, ExplainShowsPipeline) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto text = db.Explain(
      "SELECT DISTINCT T1.v FROM T1 WHERE T1.v < 50 AND T1.h < 40 "
      "ORDER BY T1.v LIMIT 4");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("pipeline"), std::string::npos);
  EXPECT_NE(text->find("Limit"), std::string::npos);
  EXPECT_NE(text->find("Sort"), std::string::npos);
  EXPECT_NE(text->find("Distinct"), std::string::npos);
  EXPECT_NE(text->find("SJoin"), std::string::npos);
  EXPECT_NE(text->find("VisSelect"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prepare() and the plan cache
// ---------------------------------------------------------------------------

TEST_F(OperatorPipelineTest, PrepareCachesByShape) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto p1 = db.Prepare("SELECT T1.id FROM T1 WHERE T1.v < 10 AND T1.h < 20");
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  EXPECT_EQ(db.plan_cache_size(), 1u);
  // Different literals, same shape: served from the cache.
  auto p2 = db.Prepare("SELECT T1.id FROM T1 WHERE T1.v < 55 AND T1.h < 66");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ((*p2)->hits, 1u);
  EXPECT_EQ(db.plan_cache_size(), 1u);
  // A different shape gets its own entry.
  auto p3 = db.Prepare("SELECT T12.id FROM T12 WHERE T12.h = 3");
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(db.plan_cache_size(), 2u);
}

TEST_F(OperatorPipelineTest, QueryReusesPreparedPlan) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto first =
      db.Query("SELECT T1.id FROM T1 WHERE T1.v < 30 AND T1.h < 40");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->metrics.plan_cache_hits, 0u);
  EXPECT_EQ(first->metrics.plan_cache_misses, 1u);
  auto second =
      db.Query("SELECT T1.id FROM T1 WHERE T1.v < 80 AND T1.h < 5");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->metrics.plan_cache_hits, 1u);
  EXPECT_EQ(second->metrics.plan_cache_misses, 0u);
}

TEST_F(OperatorPipelineTest, CacheHitSkipsPlanningRoundTrips) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  const char* sql = "SELECT T1.id FROM T1 WHERE T1.v < 30 AND T1.h < 40";
  auto miss = db.Query(sql);
  ASSERT_TRUE(miss.ok());
  auto hit = db.Query(sql);
  ASSERT_TRUE(hit.ok());
  // The hit answers identically but moves fewer bytes to Secure (no
  // vis-count exchange).
  EXPECT_EQ(hit->total_rows, miss->total_rows);
  EXPECT_LT(hit->metrics.bytes_to_secure, miss->metrics.bytes_to_secure);
}

TEST_F(OperatorPipelineTest, CachedPlanRebindsLimitLiteral) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto r3 = db.Query("SELECT T0.id FROM T0 WHERE T0.h < 90 LIMIT 3");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->total_rows, 3u);
  // Same shape, different LIMIT literal: the cached plan must not pin the
  // old limit.
  auto r9 = db.Query("SELECT T0.id FROM T0 WHERE T0.h < 90 LIMIT 9");
  ASSERT_TRUE(r9.ok());
  EXPECT_EQ(r9->metrics.plan_cache_hits, 1u);
  EXPECT_EQ(r9->total_rows, 9u);
}

TEST_F(OperatorPipelineTest, PinnedPlansBypassTheCache) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  plan::PlanChoice pinned;
  auto r = db.QueryWithPlan(
      "SELECT T1.id FROM T1 WHERE T1.v < 30 AND T1.h < 40", pinned);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.plan_cache_hits, 0u);
  EXPECT_EQ(r->metrics.plan_cache_misses, 0u);
  EXPECT_EQ(db.plan_cache_size(), 0u);
}

TEST_F(OperatorPipelineTest, PlanCacheEvictsLeastRecentlyUsedShape) {
  GhostDBConfig cfg = SmallConfig();
  cfg.plan_cache_capacity = 2;
  GhostDB db(cfg);
  BuildDb(&db);
  const char* a = "SELECT T1.id FROM T1 WHERE T1.v < 10 AND T1.h < 20";
  const char* b = "SELECT T12.id FROM T12 WHERE T12.h = 3";
  const char* c = "SELECT T0.id FROM T0 WHERE T0.h < 50";
  ASSERT_TRUE(db.Prepare(a).ok());
  ASSERT_TRUE(db.Prepare(b).ok());
  EXPECT_EQ(db.plan_cache_size(), 2u);
  EXPECT_EQ(db.plan_cache_evictions(), 0u);
  // Touch `a` so `b` is the least recently used, then overflow with `c`.
  ASSERT_TRUE(db.Prepare(a).ok());
  ASSERT_TRUE(db.Prepare(c).ok());
  EXPECT_EQ(db.plan_cache_size(), 2u);
  EXPECT_EQ(db.plan_cache_evictions(), 1u);
  // `a` survived (recently used): hit. `b` was evicted: re-prepared, and
  // the answer is unchanged.
  auto ra = db.Query(a);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->metrics.plan_cache_hits, 1u);
  auto rb_before = reference::Evaluate(
      db.schema(), db.staged(),
      *sql::Bind(std::get<sql::SelectStmt>(*sql::Parse(b)), db.schema(), b));
  ASSERT_TRUE(rb_before.ok());
  auto rb = db.Query(b);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->metrics.plan_cache_misses, 1u);
  EXPECT_EQ(rb->rows, *rb_before);
  EXPECT_EQ(db.plan_cache_evictions(), 2u);  // re-preparing b evicted c
}

TEST_F(OperatorPipelineTest, PlanCacheUnboundedWhenCapacityIsZero) {
  GhostDBConfig cfg = SmallConfig();
  cfg.plan_cache_capacity = 0;
  GhostDB db(cfg);
  BuildDb(&db);
  for (int i = 0; i < 6; ++i) {
    std::string sql = "SELECT T1.id FROM T1 WHERE T1.v < " +
                      std::to_string(10 + i) + " AND T1.h < " +
                      std::to_string(20 + i) + " LIMIT " +
                      std::to_string(1 + i);
    // Vary the shape via the select list, not just literals.
    if (i % 2 == 1) {
      sql = "SELECT T1.id, T1.v FROM T1 WHERE T1.h < " +
            std::to_string(20 + i) + " ORDER BY T1.v LIMIT " +
            std::to_string(1 + i);
    }
    ASSERT_TRUE(db.Query(sql).ok()) << sql;
  }
  EXPECT_EQ(db.plan_cache_size(), 2u);  // two shapes, never evicted
  EXPECT_EQ(db.plan_cache_evictions(), 0u);
}

// ---------------------------------------------------------------------------
// QueryBatch(): the throughput surface
// ---------------------------------------------------------------------------

TEST_F(OperatorPipelineTest, QueryBatchOf100MixedStatementsHitsTheCache) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  // 100 statements over 5 shapes with rotating literals.
  std::vector<std::string> sqls;
  for (int i = 0; i < 100; ++i) {
    switch (i % 5) {
      case 0:
        sqls.push_back("SELECT T1.id FROM T1 WHERE T1.v < " +
                       std::to_string(5 + i % 60) + " AND T1.h < 40");
        break;
      case 1:
        sqls.push_back("SELECT T12.id, T12.h FROM T12 WHERE T12.h < " +
                       std::to_string(10 + i % 50));
        break;
      case 2:
        sqls.push_back("SELECT T0.id, T1.v FROM T0, T1 WHERE "
                       "T0.fk1 = T1.id AND T1.v < " +
                       std::to_string(20 + i % 40) + " AND T1.h < 30");
        break;
      case 3:
        sqls.push_back("SELECT DISTINCT T1.v FROM T1 WHERE T1.h < " +
                       std::to_string(30 + i % 30) +
                       " ORDER BY T1.v LIMIT 10");
        break;
      default:
        sqls.push_back("SELECT COUNT(*) FROM T0 WHERE T0.v < " +
                       std::to_string(15 + i % 70));
        break;
    }
  }
  auto batch = db.QueryBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), 100u);
  // 5 shapes -> 5 misses, 95 hits.
  EXPECT_EQ(batch->total.plan_cache_misses, 5u);
  EXPECT_EQ(batch->total.plan_cache_hits, 95u);
  EXPECT_GT(batch->total.plan_cache_hits, 0u);
  EXPECT_EQ(db.plan_cache_size(), 5u);
  // Batch-wide costs come from one baseline.
  EXPECT_GT(batch->total.total_ns, 0u);
  EXPECT_GT(batch->total.bytes_to_untrusted, 0u);

  // Every statement's answer equals a standalone Query() on a fresh
  // database (the batch path changes costs, never answers).
  GhostDB fresh(SmallConfig());
  BuildDb(&fresh);
  for (size_t i = 0; i < sqls.size(); i += 17) {
    auto solo = fresh.Query(sqls[i]);
    ASSERT_TRUE(solo.ok());
    ASSERT_EQ(solo->total_rows, batch->results[i].total_rows) << sqls[i];
    ASSERT_EQ(solo->rows, batch->results[i].rows) << sqls[i];
  }
}

TEST_F(OperatorPipelineTest, QueryBatchMatchesOracle) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  std::vector<std::string> sqls = {
      "SELECT T1.id, T1.v FROM T1 WHERE T1.h < 40 ORDER BY T1.v DESC",
      "SELECT DISTINCT T12.v FROM T12 WHERE T12.h < 50",
      "SELECT T0.id FROM T0 WHERE T0.h < 60 LIMIT 12",
  };
  auto batch = db.QueryBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto stmt = sql::Parse(sqls[i]);
    ASSERT_TRUE(stmt.ok());
    auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), db.schema(),
                           sqls[i]);
    ASSERT_TRUE(bound.ok());
    auto expected = reference::Evaluate(db.schema(), db.staged(), *bound);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(batch->results[i].rows, *expected) << sqls[i];
  }
}

}  // namespace
}  // namespace ghostdb

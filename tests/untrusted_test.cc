// Untrusted-side tests: visible store predicate evaluation, projection
// payloads, stats, and the engine's channel accounting.
#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "device/channel.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "untrusted/engine.h"

namespace ghostdb::untrusted {
namespace {

using catalog::ColumnId;
using catalog::DataType;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

class UntrustedTest : public ::testing::Test {
 protected:
  UntrustedTest() : channel_(&clock_, 1.5e6) {
    catalog::TableDef def{
        "People",
        {{"age", DataType::kInt32, 4, false, ""},
         {"city", DataType::kString, 8, false, ""},
         {"secret", DataType::kInt32, 4, true, ""}},
        false};
    EXPECT_TRUE(schema_.AddTable(def).ok());
    EXPECT_TRUE(schema_.Finalize().ok());
    engine_ = std::make_unique<UntrustedEngine>(&schema_, &channel_);

    // Visible partition: age + city (secret is NOT here), row i = id i.
    // Rows: (20+i%50, City<i%3>).
    const uint32_t width = 12;
    std::vector<uint8_t> packed(100 * width);
    for (RowId i = 0; i < 100; ++i) {
      Value::Int32(20 + static_cast<int32_t>(i % 50))
          .Encode(packed.data() + i * width, 4);
      Value::String("City" + std::to_string(i % 3))
          .Encode(packed.data() + i * width + 4, 8);
    }
    EXPECT_TRUE(engine_->store().LoadTable(0, std::move(packed), 100).ok());
  }

  sql::BoundPredicate Pred(ColumnId col, catalog::CompareOp op, Value v,
                           bool on_id = false) {
    sql::BoundPredicate p;
    p.table = 0;
    p.on_id = on_id;
    p.column = col;
    p.hidden = false;
    p.op = op;
    p.value = std::move(v);
    return p;
  }

  SimClock clock_;
  device::Channel channel_;
  catalog::Schema schema_;
  std::unique_ptr<UntrustedEngine> engine_;
};

TEST_F(UntrustedTest, SelectIdsByIntPredicate) {
  auto ids = engine_->store().SelectIds(
      0, {Pred(0, catalog::CompareOp::kEq, Value::Int32(25))});
  ASSERT_TRUE(ids.ok());
  // age == 25 -> i % 50 == 5 -> ids 5 and 55.
  EXPECT_EQ(*ids, (std::vector<RowId>{5, 55}));
}

TEST_F(UntrustedTest, SelectIdsConjunction) {
  auto ids = engine_->store().SelectIds(
      0, {Pred(0, catalog::CompareOp::kLt, Value::Int32(23)),
          Pred(1, catalog::CompareOp::kEq, Value::String("City0"))});
  ASSERT_TRUE(ids.ok());
  for (RowId id : *ids) {
    EXPECT_LT(id % 50, 3u);
    EXPECT_EQ(id % 3, 0u);
  }
  EXPECT_FALSE(ids->empty());
}

TEST_F(UntrustedTest, SelectIdsOnIdPredicate) {
  auto ids = engine_->store().SelectIds(
      0, {Pred(0, catalog::CompareOp::kLt, Value::Int32(4), true)});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<RowId>{0, 1, 2, 3}));
}

TEST_F(UntrustedTest, SelectIdsAreSorted) {
  auto ids = engine_->store().SelectIds(
      0, {Pred(1, catalog::CompareOp::kNe, Value::String("City1"))});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(std::is_sorted(ids->begin(), ids->end()));
}

TEST_F(UntrustedTest, ProjectionPayloadLayout) {
  auto payload = engine_->store().Project(
      0, {Pred(0, catalog::CompareOp::kEq, Value::Int32(25))}, {0, 1});
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rows, 2u);
  EXPECT_EQ(payload->row_width, 4u + 4u + 8u);
  // First row: id 5, age 25, City2.
  EXPECT_EQ(DecodeFixed32(payload->bytes.data()), 5u);
  EXPECT_EQ(Value::Decode(payload->bytes.data() + 4, DataType::kInt32, 4),
            Value::Int32(25));
  EXPECT_EQ(Value::Decode(payload->bytes.data() + 8, DataType::kString, 8),
            Value::String("City2"));
}

TEST_F(UntrustedTest, HiddenColumnAccessRefused) {
  auto ids = engine_->store().SelectIds(
      0, {[&] {
        auto p = Pred(2, catalog::CompareOp::kEq, Value::Int32(1));
        p.hidden = true;
        return p;
      }()});
  EXPECT_TRUE(ids.status().IsSecurityViolation());
  EXPECT_TRUE(
      engine_->store().Project(0, {}, {2}).status().IsSecurityViolation());
  EXPECT_TRUE(
      engine_->store().GetValue(0, 0, 2).status().IsSecurityViolation());
  EXPECT_TRUE(
      engine_->store().BuildStats(0, 2).status().IsSecurityViolation());
}

TEST_F(UntrustedTest, StatsEstimateFromVisibleData) {
  auto stats = engine_->store().BuildStats(0, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count(), 100u);
  // age uniform over [20, 70): P(age < 45) = 0.5.
  EXPECT_NEAR(stats->EstimateSelectivity(catalog::CompareOp::kLt,
                                         Value::Int32(45)),
              0.5, 0.1);
}

TEST_F(UntrustedTest, EngineChargesChannelForServedData) {
  // Bind a tiny query against the schema to drive the engine API.
  auto stmt = sql::Parse("SELECT People.id FROM People WHERE age < 23");
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), schema_,
                         "SELECT ...");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  SimNanos before = clock_.now();
  auto ids = engine_->ServeVisibleIds(*bound, 0);
  ASSERT_TRUE(ids.ok());
  EXPECT_FALSE(ids->empty());
  EXPECT_GT(clock_.now(), before);  // transfer time charged
  const auto& last = channel_.transcript().back();
  EXPECT_EQ(last.label, "vis-ids:People");
  EXPECT_EQ(last.bytes, ids->size() * 4);
  EXPECT_EQ(static_cast<int>(last.direction),
            static_cast<int>(device::Direction::kToSecure));
}

TEST_F(UntrustedTest, ServeVisibleCountMatchesIds) {
  auto stmt = sql::Parse("SELECT People.id FROM People WHERE age >= 60");
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), schema_, "q");
  ASSERT_TRUE(bound.ok());
  auto count = engine_->ServeVisibleCount(*bound, 0);
  auto ids = engine_->ServeVisibleIds(*bound, 0);
  ASSERT_TRUE(count.ok() && ids.ok());
  EXPECT_EQ(*count, ids->size());
}

TEST_F(UntrustedTest, LoadRejectsSizeMismatch) {
  std::vector<uint8_t> bad(13);  // not a multiple of the row width
  EXPECT_FALSE(engine_->store().LoadTable(0, std::move(bad), 2).ok());
}

TEST_F(UntrustedTest, GetValueBoundsChecked) {
  EXPECT_TRUE(engine_->store().GetValue(0, 100, 0).status().IsOutOfRange());
  auto v = engine_->store().GetValue(0, 7, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::String("City1"));
}

}  // namespace
}  // namespace ghostdb::untrusted

// Storage-layer tests: page allocator, runs, fixed tables, and the
// climbing-index B+-tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "catalog/value.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "device/ram_manager.h"
#include "flash/flash.h"
#include "storage/btree.h"
#include "storage/fixed_table.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::storage {
namespace {

using catalog::RowId;
using catalog::Value;

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() {
    flash::FlashConfig cfg;
    cfg.logical_pages = 16 * 1024;  // 32 MiB
    device_ = std::make_unique<flash::FlashDevice>(cfg, &clock_);
    allocator_ = std::make_unique<PageAllocator>(device_.get());
    ram_ = std::make_unique<device::RamManager>(64 * 1024, 2048);
    scratch_.resize(2048);
  }

  SimClock clock_;
  std::unique_ptr<flash::FlashDevice> device_;
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<device::RamManager> ram_;
  std::vector<uint8_t> scratch_;
};

TEST_F(StorageTest, AllocatorAllocatesDistinctRanges) {
  auto a = allocator_->Alloc(10, "a");
  auto b = allocator_->Alloc(10, "b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(allocator_->used_pages(), 20u);
  EXPECT_EQ(allocator_->usage_by_tag().at("a"), 10);
}

TEST_F(StorageTest, AllocatorReusesFreedRanges) {
  auto a = allocator_->Alloc(10, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(allocator_->Free(*a, 10, "t").ok());
  EXPECT_EQ(allocator_->used_pages(), 0u);
  auto b = allocator_->Alloc(5, "t");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);  // first fit reuses the hole
  EXPECT_EQ(allocator_->high_water_pages(), 10u);
}

TEST_F(StorageTest, AllocatorExhaustion) {
  auto a = allocator_->Alloc(16 * 1024, "big");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(allocator_->Alloc(1, "more").status().IsResourceExhausted());
}

TEST_F(StorageTest, AllocatorFreeTrimsFlash) {
  auto a = allocator_->Alloc(4, "t");
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> page(2048, 7);
  ASSERT_TRUE(device_->WritePage(*a, page.data()).ok());
  EXPECT_EQ(device_->live_pages(), 1u);
  ASSERT_TRUE(allocator_->Free(*a, 4, "t").ok());
  EXPECT_EQ(device_->live_pages(), 0u);
}

TEST_F(StorageTest, RunRoundTripSmall) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "run");
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->bytes, 5u);
  EXPECT_EQ(ref->page_count(), 1u);

  std::vector<uint8_t> buf(2048);
  RunReader r(device_.get(), *ref, buf.data());
  std::vector<uint8_t> back(5);
  auto n = r.Read(back.data(), 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(back, data);
  EXPECT_TRUE(r.exhausted());
}

TEST_F(StorageTest, RunRoundTripMultiPage) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "run");
  Rng rng(5);
  std::vector<uint8_t> data(3 * 2048 + 777);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->page_count(), 4u);

  std::vector<uint8_t> buf(2048);
  RunReader r(device_.get(), *ref, buf.data());
  std::vector<uint8_t> back(data.size());
  // Read in odd-sized chunks crossing page boundaries.
  size_t off = 0;
  while (off < back.size()) {
    auto n = r.Read(back.data() + off, 1000);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    off += *n;
  }
  EXPECT_EQ(back, data);
}

TEST_F(StorageTest, RunSkipAvoidsReadingSkippedPages) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "run");
  std::vector<uint8_t> data(10 * 2048);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<uint8_t>(i / 2048);
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());

  std::vector<uint8_t> buf(2048);
  RunReader r(device_.get(), *ref, buf.data());
  uint64_t reads_before = device_->stats().pages_read;
  ASSERT_TRUE(r.Skip(8 * 2048).ok());
  uint8_t byte;
  auto n = r.Read(&byte, 1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(byte, 8);
  EXPECT_EQ(device_->stats().pages_read - reads_before, 1u);
}

TEST_F(StorageTest, IdRunReaderStreams) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "ids");
  std::vector<RowId> ids;
  for (RowId i = 0; i < 2000; ++i) ids.push_back(i * 3);
  for (RowId id : ids) ASSERT_TRUE(w.AppendU32(id).ok());
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());

  std::vector<uint8_t> buf(2048);
  IdRunReader r(device_.get(), *ref, buf.data());
  ASSERT_TRUE(r.Prime().ok());
  std::vector<RowId> back;
  while (r.valid()) {
    back.push_back(r.head());
    ASSERT_TRUE(r.Advance().ok());
  }
  EXPECT_EQ(back, ids);
}

TEST_F(StorageTest, EmptyRun) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "empty");
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->empty());
  EXPECT_EQ(ref->page_count(), 0u);
  std::vector<uint8_t> buf(2048);
  IdRunReader r(device_.get(), *ref, buf.data());
  ASSERT_TRUE(r.Prime().ok());
  EXPECT_FALSE(r.valid());
}

TEST_F(StorageTest, FreeRunReturnsPages) {
  RunWriter w(device_.get(), allocator_.get(), scratch_.data(), "tmp");
  std::vector<uint8_t> data(5000, 9);
  ASSERT_TRUE(w.Append(data.data(), data.size()).ok());
  auto ref = w.Finish();
  ASSERT_TRUE(ref.ok());
  uint32_t used = allocator_->used_pages();
  ASSERT_TRUE(FreeRun(allocator_.get(), *ref, "tmp").ok());
  EXPECT_LT(allocator_->used_pages(), used);
  EXPECT_EQ(allocator_->usage_by_tag().at("tmp"), 0);
}

TEST_F(StorageTest, FixedTableRoundTrip) {
  const uint32_t width = 12;
  FixedTableBuilder b(device_.get(), allocator_.get(), scratch_.data(),
                      width, "skt");
  std::vector<std::vector<uint8_t>> rows;
  for (uint32_t i = 0; i < 1000; ++i) {
    std::vector<uint8_t> row(width);
    for (uint32_t j = 0; j < width; ++j)
      row[j] = static_cast<uint8_t>(i + j);
    rows.push_back(row);
    ASSERT_TRUE(b.AppendRow(row.data()).ok());
  }
  auto ref = b.Finish();
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->row_count, 1000u);
  EXPECT_EQ(ref->rows_per_page, 2048u / width);

  std::vector<uint8_t> buf(2048);
  FixedTableReader r(device_.get(), *ref, buf.data());
  std::vector<uint8_t> row(width);
  // Random access, then verify.
  for (RowId id : {999u, 0u, 512u, 170u, 171u}) {
    ASSERT_TRUE(r.ReadRow(id, row.data()).ok());
    EXPECT_EQ(row, rows[id]) << "row " << id;
  }
  EXPECT_TRUE(r.ReadRow(1000, row.data()).IsOutOfRange());
}

TEST_F(StorageTest, FixedTableAscendingAccessReadsEachPageOnce) {
  const uint32_t width = 16;  // 128 rows per page
  FixedTableBuilder b(device_.get(), allocator_.get(), scratch_.data(),
                      width, "skt");
  std::vector<uint8_t> row(width, 1);
  for (uint32_t i = 0; i < 128 * 50; ++i) {
    ASSERT_TRUE(b.AppendRow(row.data()).ok());
  }
  auto ref = b.Finish();
  ASSERT_TRUE(ref.ok());

  std::vector<uint8_t> buf(2048);
  FixedTableReader r(device_.get(), *ref, buf.data());
  // Touch rows spread over every 5th page, ascending.
  for (uint32_t p = 0; p < 50; p += 5) {
    ASSERT_TRUE(r.ReadRow(p * 128 + 7, row.data()).ok());
    ASSERT_TRUE(r.ReadRow(p * 128 + 99, row.data()).ok());  // same page
  }
  EXPECT_EQ(r.pages_touched(), 10u);
}

// --- B+-tree / climbing index ---

struct CiEntry {
  int32_t key;
  std::vector<std::vector<RowId>> levels;
};

class BTreeTest : public StorageTest {
 protected:
  // Builds a 2-level climbing index over `entries` (sorted by key).
  BTreeRef Build(const std::vector<CiEntry>& entries, uint32_t levels) {
    BTreeBuilder builder(device_.get(), allocator_.get(),
                         catalog::DataType::kInt32, 4, levels, "ci");
    for (const auto& e : entries) {
      EXPECT_TRUE(builder.Add(Value::Int32(e.key), e.levels).ok());
    }
    auto ref = builder.Finish();
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    return *ref;
  }

  std::vector<RowId> Drain(const BTreeRef& ref, const PostingRange& range,
                           uint32_t level) {
    std::vector<uint8_t> buf(2048);
    PostingCursor cur(device_.get(), &ref.postings[level], range, buf.data());
    EXPECT_TRUE(cur.Prime().ok());
    std::vector<RowId> out;
    while (cur.valid()) {
      out.push_back(cur.head());
      EXPECT_TRUE(cur.Advance().ok());
    }
    return out;
  }
};

TEST_F(BTreeTest, SingleLeafLookup) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 10; ++k) {
    entries.push_back({k * 10, {{static_cast<RowId>(k)},
                                {static_cast<RowId>(100 + k),
                                 static_cast<RowId>(200 + k)}}});
  }
  auto ref = Build(entries, 2);
  EXPECT_EQ(ref.height, 1u);
  EXPECT_EQ(ref.entry_count, 10u);

  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::Int32(50));
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(*found);
  auto entry = (*reader)->Current();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->key.AsInt32(), 50);
  EXPECT_EQ(Drain(ref, entry->ranges[0], 0), std::vector<RowId>({5}));
  EXPECT_EQ(Drain(ref, entry->ranges[1], 1), std::vector<RowId>({105, 205}));
}

TEST_F(BTreeTest, LowerBoundBetweenKeys) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 10; ++k) entries.push_back({k * 10, {{0u}}});
  auto ref = Build(entries, 1);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::Int32(45));
  ASSERT_TRUE(found.ok() && *found);
  auto entry = (*reader)->Current();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->key.AsInt32(), 50);
}

TEST_F(BTreeTest, LowerBoundPastEndInvalid) {
  std::vector<CiEntry> entries = {{1, {{1u}}}, {2, {{2u}}}};
  auto ref = Build(entries, 1);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::Int32(100));
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found);
  EXPECT_FALSE((*reader)->cursor_valid());
}

TEST_F(BTreeTest, MultiLevelTreeLookups) {
  // Enough keys to force height >= 2: leaf stride 4 + 8 = 12 bytes,
  // capacity ~170 entries/leaf.
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 5000; ++k) {
    entries.push_back({k * 2, {{static_cast<RowId>(k)}}});
  }
  auto ref = Build(entries, 1);
  EXPECT_GE(ref.height, 2u);

  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    int32_t k = static_cast<int32_t>(rng.Uniform(5000)) * 2;
    auto found = (*reader)->SeekLowerBound(Value::Int32(k));
    ASSERT_TRUE(found.ok() && *found) << k;
    auto entry = (*reader)->Current();
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->key.AsInt32(), k);
    EXPECT_EQ(Drain(ref, entry->ranges[0], 0),
              std::vector<RowId>({static_cast<RowId>(k / 2)}));
  }
}

TEST_F(BTreeTest, FullScanVisitsAllKeysInOrder) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 3000; ++k) entries.push_back({k * 3 + 1, {{0u}}});
  auto ref = Build(entries, 1);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekToFirst();
  ASSERT_TRUE(found.ok() && *found);
  int32_t expect = 1;
  size_t seen = 0;
  do {
    auto entry = (*reader)->Current();
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->key.AsInt32(), expect);
    expect += 3;
    ++seen;
    auto more = (*reader)->Next();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  } while (true);
  EXPECT_EQ(seen, 3000u);
}

TEST_F(BTreeTest, SortedProbesReuseCachedPages) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 5000; ++k) entries.push_back({k, {{0u}}});
  auto ref = Build(entries, 1);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  // Probe every key in ascending order: leaf pages load once each, so total
  // loads stay near (#leaves + internal pages), far below #probes.
  for (int32_t k = 0; k < 5000; ++k) {
    auto found = (*reader)->SeekLowerBound(Value::Int32(k));
    ASSERT_TRUE(found.ok() && *found);
  }
  uint64_t leaves = ref.leaf_run.page_count();
  EXPECT_LT((*reader)->pages_loaded(), leaves + 50);
  EXPECT_GE((*reader)->pages_loaded(), leaves);
}

TEST_F(BTreeTest, StringKeysUseBinaryPaddedCollation) {
  BTreeBuilder builder(device_.get(), allocator_.get(),
                       catalog::DataType::kString, 10, 1, "ci");
  for (std::string k : {"apple", "banana", "cherry", "melon", "peach"}) {
    ASSERT_TRUE(builder.Add(Value::String(k), {{1u}}).ok());
  }
  auto ref = builder.Finish();
  ASSERT_TRUE(ref.ok());
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &*ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::String("cat"));
  ASSERT_TRUE(found.ok() && *found);
  auto entry = (*reader)->Current();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->key.AsString(), "cherry");
}

TEST_F(BTreeTest, RejectsNonAscendingKeys) {
  BTreeBuilder builder(device_.get(), allocator_.get(),
                       catalog::DataType::kInt32, 4, 1, "ci");
  ASSERT_TRUE(builder.Add(Value::Int32(5), {{1u}}).ok());
  EXPECT_TRUE(builder.Add(Value::Int32(5), {{2u}}).IsInvalidArgument());
  EXPECT_TRUE(builder.Add(Value::Int32(4), {{3u}}).IsInvalidArgument());
}

TEST_F(BTreeTest, EmptyIndex) {
  auto ref = Build({}, 1);
  EXPECT_EQ(ref.height, 0u);
  EXPECT_EQ(ref.entry_count, 0u);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::Int32(1));
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found);
}

TEST_F(BTreeTest, ReaderUsesOneBufferPerLevel) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 5000; ++k) entries.push_back({k, {{0u}}});
  auto ref = Build(entries, 1);
  ASSERT_GE(ref.height, 2u);
  uint32_t before = ram_->used_buffers();
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(ram_->used_buffers() - before, ref.height);
}

TEST_F(BTreeTest, LargePostingListsCrossPages) {
  // One key with a sublist far larger than a page (512 ids/page).
  std::vector<RowId> big;
  for (RowId i = 0; i < 5000; ++i) big.push_back(i * 7);
  std::vector<CiEntry> entries = {{42, {big}}};
  auto ref = Build(entries, 1);
  auto reader = BTreeReader::Open(device_.get(), ram_.get(), &ref);
  ASSERT_TRUE(reader.ok());
  auto found = (*reader)->SeekLowerBound(Value::Int32(42));
  ASSERT_TRUE(found.ok() && *found);
  auto entry = (*reader)->Current();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(Drain(ref, entry->ranges[0], 0), big);
}

TEST_F(BTreeTest, TotalPagesAccountsEverything) {
  std::vector<CiEntry> entries;
  for (int32_t k = 0; k < 2000; ++k)
    entries.push_back({k, {{static_cast<RowId>(k)},
                           {static_cast<RowId>(k), static_cast<RowId>(k + 1)}}});
  auto ref = Build(entries, 2);
  uint64_t counted = ref.leaf_run.page_count();
  for (auto& r : ref.node_runs) counted += r.page_count();
  for (auto& r : ref.postings) counted += r.page_count();
  EXPECT_EQ(ref.total_pages(), counted);
  EXPECT_GT(ref.total_pages(), 0u);
  EXPECT_EQ(ref.level_id_counts[0], 2000u);
  EXPECT_EQ(ref.level_id_counts[1], 4000u);
}

}  // namespace
}  // namespace ghostdb::storage

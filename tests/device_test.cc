// Device-layer tests: RAM budget enforcement, channel cost + transcript,
// SecureDevice wiring.
#include <gtest/gtest.h>

#include <vector>

#include "device/channel.h"
#include "device/ram_manager.h"
#include "device/secure_device.h"

namespace ghostdb::device {
namespace {

TEST(RamManagerTest, SixtyFourKiloBytesIs32Buffers) {
  RamManager ram(64 * 1024, 2048);
  EXPECT_EQ(ram.total_buffers(), 32u);
  EXPECT_EQ(ram.free_buffers(), 32u);
}

TEST(RamManagerTest, AcquireAndAutoRelease) {
  RamManager ram(64 * 1024, 2048);
  {
    auto h = ram.Acquire(4, "merge");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->size(), 4 * 2048u);
    EXPECT_EQ(ram.free_buffers(), 28u);
  }
  EXPECT_EQ(ram.free_buffers(), 32u);
}

TEST(RamManagerTest, ExhaustionIsAHardError) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.Acquire(3, "a");
  ASSERT_TRUE(a.ok());
  auto b = ram.Acquire(2, "b");
  EXPECT_TRUE(b.status().IsResourceExhausted());
  auto c = ram.Acquire(1, "c");
  EXPECT_TRUE(c.ok());
}

TEST(RamManagerTest, PeakTracksHighWaterMark) {
  RamManager ram(64 * 1024, 2048);
  {
    auto a = ram.Acquire(10, "a");
    ASSERT_TRUE(a.ok());
    {
      auto b = ram.Acquire(5, "b");
      ASSERT_TRUE(b.ok());
    }
  }
  EXPECT_EQ(ram.peak_used_buffers(), 15u);
  ram.ResetPeak();
  EXPECT_EQ(ram.peak_used_buffers(), 0u);
}

TEST(RamManagerTest, MoveTransfersOwnership) {
  RamManager ram(64 * 1024, 2048);
  auto a = ram.Acquire(2, "a");
  ASSERT_TRUE(a.ok());
  BufferHandle h = std::move(a.ValueUnsafe());
  EXPECT_EQ(ram.used_buffers(), 2u);
  BufferHandle h2 = std::move(h);
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(ram.used_buffers(), 2u);
  h2.Release();
  EXPECT_EQ(ram.used_buffers(), 0u);
}

TEST(RamManagerTest, BuffersAreWritable) {
  RamManager ram(64 * 1024, 2048);
  auto h = ram.Acquire(1, "x");
  ASSERT_TRUE(h.ok());
  h->data()[0] = 0xAB;
  h->data()[2047] = 0xCD;
  EXPECT_EQ(h->data()[0], 0xAB);
  EXPECT_EQ(h->data()[2047], 0xCD);
}

TEST(RamManagerTest, ZeroBuffersRejected) {
  RamManager ram(64 * 1024, 2048);
  EXPECT_TRUE(ram.Acquire(0, "x").status().IsInvalidArgument());
}

TEST(RamManagerTest, FragmentationHandledByFirstFit) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.Acquire(1, "a");
  auto b = ram.Acquire(1, "b");
  auto c = ram.Acquire(1, "c");
  auto d = ram.Acquire(1, "d");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  b->Release();
  d->Release();
  // Two free buffers exist but are not contiguous.
  EXPECT_TRUE(ram.Acquire(2, "e").status().IsResourceExhausted());
  EXPECT_TRUE(ram.Acquire(1, "f").ok());
}

TEST(ChannelTest, TransferChargesCommTime) {
  SimClock clock;
  Channel ch(&clock, 1.5e6);  // 1.5 MB/s
  ch.TransferSized(Direction::kToSecure, "vis", 1'500'000);
  EXPECT_EQ(clock.Category("comm"), kSecond);
  EXPECT_EQ(clock.now(), kSecond);
}

TEST(ChannelTest, TranscriptRecordsEverything) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  uint8_t payload[4] = {1, 2, 3, 4};
  ch.Transfer(Direction::kToUntrusted, "query", payload, 4);
  ch.TransferSized(Direction::kToSecure, "ids", 4000);
  ASSERT_EQ(ch.transcript().size(), 2u);
  EXPECT_EQ(ch.transcript()[0].label, "query");
  EXPECT_EQ(ch.transcript()[0].bytes, 4u);
  EXPECT_NE(ch.transcript()[0].content_digest, 0u);
  EXPECT_EQ(ch.BytesMoved(Direction::kToSecure), 4000u);
  EXPECT_EQ(ch.BytesMoved(Direction::kToUntrusted), 4u);
}

TEST(ChannelTest, SamePayloadSameDigest) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  uint8_t p1[3] = {7, 8, 9};
  uint8_t p2[3] = {7, 8, 9};
  uint8_t p3[3] = {7, 8, 10};
  ch.Transfer(Direction::kToSecure, "a", p1, 3);
  ch.Transfer(Direction::kToSecure, "b", p2, 3);
  ch.Transfer(Direction::kToSecure, "c", p3, 3);
  EXPECT_EQ(ch.transcript()[0].content_digest,
            ch.transcript()[1].content_digest);
  EXPECT_NE(ch.transcript()[0].content_digest,
            ch.transcript()[2].content_digest);
}

TEST(ChannelTest, ThroughputAffectsCost) {
  SimClock clock;
  Channel slow(&clock, 0.3e6);
  slow.TransferSized(Direction::kToSecure, "x", 300'000);
  SimNanos slow_time = clock.now();
  clock.Reset();
  Channel fast(&clock, 10e6);
  fast.TransferSized(Direction::kToSecure, "x", 300'000);
  EXPECT_GT(slow_time, clock.now() * 30);
}

TEST(SecureDeviceTest, WiresComponentsTogether) {
  DeviceConfig cfg;
  cfg.flash.logical_pages = 128;
  cfg.flash.pages_per_block = 4;
  cfg.flash.spare_blocks = 2;
  SecureDevice dev(cfg);
  EXPECT_EQ(dev.ram().total_buffers(), 32u);
  // Flash I/O advances the device clock.
  std::vector<uint8_t> page(2048, 7);
  ASSERT_TRUE(dev.flash().WritePage(0, page.data()).ok());
  EXPECT_GT(dev.clock().now(), 0u);
  // Channel shares the same clock.
  SimNanos before = dev.clock().now();
  dev.channel().TransferSized(Direction::kToSecure, "x", 15000);
  EXPECT_GT(dev.clock().now(), before);
}

TEST(SecureDeviceTest, DefaultsMatchTable1) {
  DeviceConfig cfg;
  EXPECT_EQ(cfg.ram_bytes, 65536u);
  EXPECT_EQ(cfg.buffer_size, 2048u);
  EXPECT_EQ(cfg.flash.page_size, 2048u);
  EXPECT_EQ(cfg.flash.read_page_latency, 25 * kMicrosecond);
  EXPECT_EQ(cfg.flash.write_page_latency, 200 * kMicrosecond);
  EXPECT_EQ(cfg.flash.byte_transfer_latency, 50u);
  EXPECT_DOUBLE_EQ(cfg.channel_throughput_bytes_per_sec, 1.5e6);
}

}  // namespace
}  // namespace ghostdb::device

// Device-layer tests: RAM budget enforcement (partitions included), channel
// cost + transcript + session tags, arbiter policy, SecureDevice wiring.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "device/channel.h"
#include "device/channel_arbiter.h"
#include "device/guards.h"
#include "device/ram_manager.h"
#include "device/secure_device.h"

namespace ghostdb::device {
namespace {

TEST(RamManagerTest, SixtyFourKiloBytesIs32Buffers) {
  RamManager ram(64 * 1024, 2048);
  EXPECT_EQ(ram.total_buffers(), 32u);
  EXPECT_EQ(ram.free_buffers(), 32u);
}

TEST(RamManagerTest, AcquireAndAutoRelease) {
  RamManager ram(64 * 1024, 2048);
  {
    auto h = ram.Acquire(4, "merge");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->size(), 4 * 2048u);
    EXPECT_EQ(ram.free_buffers(), 28u);
  }
  EXPECT_EQ(ram.free_buffers(), 32u);
}

TEST(RamManagerTest, ExhaustionIsAHardError) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.Acquire(3, "a");
  ASSERT_TRUE(a.ok());
  auto b = ram.Acquire(2, "b");
  EXPECT_TRUE(b.status().IsResourceExhausted());
  auto c = ram.Acquire(1, "c");
  EXPECT_TRUE(c.ok());
}

TEST(RamManagerTest, PeakTracksHighWaterMark) {
  RamManager ram(64 * 1024, 2048);
  {
    auto a = ram.Acquire(10, "a");
    ASSERT_TRUE(a.ok());
    {
      auto b = ram.Acquire(5, "b");
      ASSERT_TRUE(b.ok());
    }
  }
  EXPECT_EQ(ram.peak_used_buffers(), 15u);
  ram.ResetPeak();
  EXPECT_EQ(ram.peak_used_buffers(), 0u);
}

TEST(RamManagerTest, MoveTransfersOwnership) {
  RamManager ram(64 * 1024, 2048);
  auto a = ram.Acquire(2, "a");
  ASSERT_TRUE(a.ok());
  BufferHandle h = std::move(a.ValueUnsafe());
  EXPECT_EQ(ram.used_buffers(), 2u);
  BufferHandle h2 = std::move(h);
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(ram.used_buffers(), 2u);
  h2.Release();
  EXPECT_EQ(ram.used_buffers(), 0u);
}

TEST(RamManagerTest, BuffersAreWritable) {
  RamManager ram(64 * 1024, 2048);
  auto h = ram.Acquire(1, "x");
  ASSERT_TRUE(h.ok());
  h->data()[0] = 0xAB;
  h->data()[2047] = 0xCD;
  EXPECT_EQ(h->data()[0], 0xAB);
  EXPECT_EQ(h->data()[2047], 0xCD);
}

TEST(RamManagerTest, ZeroBuffersRejected) {
  RamManager ram(64 * 1024, 2048);
  EXPECT_TRUE(ram.Acquire(0, "x").status().IsInvalidArgument());
}

TEST(RamManagerTest, FragmentationHandledByFirstFit) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.Acquire(1, "a");
  auto b = ram.Acquire(1, "b");
  auto c = ram.Acquire(1, "c");
  auto d = ram.Acquire(1, "d");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  b->Release();
  d->Release();
  // Two free buffers exist but are not contiguous.
  EXPECT_TRUE(ram.Acquire(2, "e").status().IsResourceExhausted());
  EXPECT_TRUE(ram.Acquire(1, "f").ok());
}

TEST(RamManagerTest, ExhaustionNamesTheCurrentOwners) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.Acquire(2, "merge-streams");
  auto b = ram.Acquire(1, "bloom");
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = ram.Acquire(2, "sjoin-skt");
  ASSERT_TRUE(c.status().IsResourceExhausted());
  // The failure tells you who holds what, not just that nothing is free.
  EXPECT_NE(c.status().message().find("merge-streams=2"), std::string::npos)
      << c.status().ToString();
  EXPECT_NE(c.status().message().find("bloom=1"), std::string::npos)
      << c.status().ToString();
}

TEST(RamManagerTest, OwnersTrackLiveAllocationsOnly) {
  RamManager ram(64 * 1024, 2048);
  auto a = ram.Acquire(2, "a");
  ASSERT_TRUE(a.ok());
  {
    auto b = ram.Acquire(3, "b");
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(ram.Owners().size(), 2u);
  }
  auto owners = ram.Owners();
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].first, "a");
  EXPECT_EQ(owners[0].second, 2u);
}

TEST(RamPartitionTest, QuotaCapsThePartitionView) {
  RamManager ram(64 * 1024, 2048);  // 32 buffers
  auto p = ram.CreatePartition("alice", 8);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ram.reserve_buffers(), 24u);
  RamManager::PartitionScope scope(&ram, *p);
  // Partition headroom = quota + shared reserve.
  EXPECT_EQ(ram.free_buffers(), 32u);
  auto h = ram.Acquire(8, "alice-merge");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(ram.partition_used(*p), 8u);
  // Quota spent; the reserve still carries the partition.
  EXPECT_EQ(ram.free_buffers(), 24u);
}

TEST(RamPartitionTest, PartitionCannotTouchAnotherPartitionsQuota) {
  RamManager ram(64 * 1024, 2048);  // 32 buffers
  auto alice = ram.CreatePartition("alice", 8);
  auto bob = ram.CreatePartition("bob", 20);
  ASSERT_TRUE(alice.ok() && bob.ok());
  EXPECT_EQ(ram.reserve_buffers(), 4u);
  RamManager::PartitionScope scope(&ram, *alice);
  // alice sees her quota (8) + the reserve (4), never bob's 20.
  EXPECT_EQ(ram.free_buffers(), 12u);
  auto ok = ram.Acquire(12, "alice-big");
  ASSERT_TRUE(ok.ok());
  auto too_much = ram.Acquire(1, "alice-extra");
  ASSERT_TRUE(too_much.status().IsResourceExhausted());
  EXPECT_NE(too_much.status().message().find("partition 'alice'"),
            std::string::npos)
      << too_much.status().ToString();
  // bob's guarantee is intact: all 20 of his quota are acquirable.
  ok->Release();
  RamManager::PartitionScope bob_scope(&ram, *bob);
  EXPECT_GE(ram.free_buffers(), 20u);
  EXPECT_TRUE(ram.Acquire(20, "bob-merge").ok());
}

TEST(RamPartitionTest, PledgesAreBoundedAndReleasable) {
  RamManager ram(8 * 1024, 2048);  // 4 buffers
  auto a = ram.CreatePartition("a", 3);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(ram.CreatePartition("b", 2).status().IsResourceExhausted());
  ASSERT_TRUE(ram.ReleasePartition(*a).ok());
  EXPECT_EQ(ram.reserve_buffers(), 4u);
  EXPECT_TRUE(ram.CreatePartition("b", 2).ok());
}

TEST(RamPartitionTest, ReleaseRequiresNoLiveAllocations) {
  RamManager ram(8 * 1024, 2048);
  auto p = ram.CreatePartition("p", 2);
  ASSERT_TRUE(p.ok());
  RamManager::PartitionScope scope(&ram, *p);
  auto h = ram.Acquire(1, "x");
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(ram.ReleasePartition(*p).ok());
  h->Release();
  EXPECT_TRUE(ram.ReleasePartition(*p).ok());
}

TEST(ChannelTest, MessagesCarryTheCurrentSessionTag) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  ch.TransferSized(Direction::kToUntrusted, "query", 10);
  ch.set_current_session(3);
  ch.TransferSized(Direction::kToSecure, "vis", 20);
  ch.set_current_session(-1);
  ch.TransferSized(Direction::kToSecure, "vis", 30);
  ASSERT_EQ(ch.transcript().size(), 3u);
  EXPECT_EQ(ch.transcript()[0].session, -1);
  EXPECT_EQ(ch.transcript()[1].session, 3);
  EXPECT_EQ(ch.transcript()[2].session, -1);
}

TEST(ChannelArbiterTest, DeficitRoundRobinIsDeterministicAndWeighted) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  ChannelArbiter arbiter(&ch);
  arbiter.Register(0, "light");
  arbiter.Register(1, "heavy");
  // Session 0 declares weight-1 shapes, session 1 weight-3 shapes: over a
  // long pending run, admissions settle near 3:1.
  std::vector<std::pair<int32_t, uint32_t>> pending = {{0, 1}, {1, 3}};
  int s0 = 0, s1 = 0;
  std::vector<int32_t> order;
  for (int i = 0; i < 120; ++i) {
    int32_t pick = arbiter.PickNext(pending);
    order.push_back(pick);
    (pick == 0 ? s0 : s1) += 1;
  }
  EXPECT_EQ(s0, 90);
  EXPECT_EQ(s1, 30);
  // Determinism: a fresh arbiter fed the same inputs makes the same picks.
  ChannelArbiter again(&ch);
  again.Register(0, "light");
  again.Register(1, "heavy");
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(again.PickNext(pending), order[static_cast<size_t>(i)]) << i;
  }
}

TEST(ChannelArbiterTest, AdmissionIsExclusiveUnderContention) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  ChannelArbiter arbiter(&ch);
  for (int32_t s = 0; s < 4; ++s) {
    arbiter.Register(s, "s" + std::to_string(s));
  }
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int32_t s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < 50; ++i) {
        device::AdmissionGuard admission(&arbiter, s, 1 + s % 3);
        int now = inside.fetch_add(1) + 1;
        int seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        total.fetch_add(1);
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_inside.load(), 1);  // never two holders at once
  EXPECT_EQ(total.load(), 200);
  EXPECT_EQ(arbiter.total_admissions(), 200u);
  for (int32_t s = 0; s < 4; ++s) EXPECT_EQ(arbiter.admissions(s), 50u);
}

TEST(ChannelArbiterTest, ErroringSessionDoesNotStarveNeighbors) {
  // A session whose query errors under admission (the fault-injection
  // paths end this way) must still release its ticket on every exit —
  // Admission is RAII, so the error return is just another unwind. If any
  // error path leaked a ticket, the neighbors would block forever and this
  // test would hang rather than fail.
  SimClock clock;
  Channel ch(&clock, 1e6);
  ChannelArbiter arbiter(&ch);
  for (int32_t s = 0; s < 3; ++s) {
    arbiter.Register(s, "s" + std::to_string(s));
  }
  std::atomic<int> errors{0};
  std::atomic<int> successes{0};
  auto query_under_admission = [&](int32_t s, int i) -> Status {
    device::AdmissionGuard admission(&arbiter, s, 1);
    // Session 0 fails every other statement mid-"query", after taking the
    // device; the Status return path must drop the ticket.
    if (s == 0 && i % 2 == 0) {
      return Status::IOError("simulated mid-query device fault");
    }
    return Status::OK();
  };
  std::vector<std::thread> threads;
  for (int32_t s = 0; s < 3; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < 40; ++i) {
        if (query_under_admission(s, i).ok()) {
          successes.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 20);
  EXPECT_EQ(successes.load(), 100);
  // Every request — failed or not — was admitted exactly once, and the
  // erroring session kept its full share.
  EXPECT_EQ(arbiter.total_admissions(), 120u);
  for (int32_t s = 0; s < 3; ++s) EXPECT_EQ(arbiter.admissions(s), 40u);
}

TEST(ChannelTest, TransferChargesCommTime) {
  SimClock clock;
  Channel ch(&clock, 1.5e6);  // 1.5 MB/s
  ch.TransferSized(Direction::kToSecure, "vis", 1'500'000);
  EXPECT_EQ(clock.Category("comm"), kSecond);
  EXPECT_EQ(clock.now(), kSecond);
}

TEST(ChannelTest, TranscriptRecordsEverything) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  uint8_t payload[4] = {1, 2, 3, 4};
  ch.Transfer(Direction::kToUntrusted, "query", payload, 4);
  ch.TransferSized(Direction::kToSecure, "ids", 4000);
  ASSERT_EQ(ch.transcript().size(), 2u);
  EXPECT_EQ(ch.transcript()[0].label, "query");
  EXPECT_EQ(ch.transcript()[0].bytes, 4u);
  EXPECT_NE(ch.transcript()[0].content_digest, 0u);
  EXPECT_EQ(ch.BytesMoved(Direction::kToSecure), 4000u);
  EXPECT_EQ(ch.BytesMoved(Direction::kToUntrusted), 4u);
}

TEST(ChannelTest, SamePayloadSameDigest) {
  SimClock clock;
  Channel ch(&clock, 1e6);
  uint8_t p1[3] = {7, 8, 9};
  uint8_t p2[3] = {7, 8, 9};
  uint8_t p3[3] = {7, 8, 10};
  ch.Transfer(Direction::kToSecure, "a", p1, 3);
  ch.Transfer(Direction::kToSecure, "b", p2, 3);
  ch.Transfer(Direction::kToSecure, "c", p3, 3);
  EXPECT_EQ(ch.transcript()[0].content_digest,
            ch.transcript()[1].content_digest);
  EXPECT_NE(ch.transcript()[0].content_digest,
            ch.transcript()[2].content_digest);
}

TEST(ChannelTest, ThroughputAffectsCost) {
  SimClock clock;
  Channel slow(&clock, 0.3e6);
  slow.TransferSized(Direction::kToSecure, "x", 300'000);
  SimNanos slow_time = clock.now();
  clock.Reset();
  Channel fast(&clock, 10e6);
  fast.TransferSized(Direction::kToSecure, "x", 300'000);
  EXPECT_GT(slow_time, clock.now() * 30);
}

TEST(SecureDeviceTest, WiresComponentsTogether) {
  DeviceConfig cfg;
  cfg.flash.logical_pages = 128;
  cfg.flash.pages_per_block = 4;
  cfg.flash.spare_blocks = 2;
  SecureDevice dev(cfg);
  EXPECT_EQ(dev.ram().total_buffers(), 32u);
  // Flash I/O advances the device clock.
  std::vector<uint8_t> page(2048, 7);
  ASSERT_TRUE(dev.flash().WritePage(0, page.data()).ok());
  EXPECT_GT(dev.clock().now(), 0u);
  // Channel shares the same clock.
  SimNanos before = dev.clock().now();
  dev.channel().TransferSized(Direction::kToSecure, "x", 15000);
  EXPECT_GT(dev.clock().now(), before);
}

TEST(SecureDeviceTest, DefaultsMatchTable1) {
  DeviceConfig cfg;
  EXPECT_EQ(cfg.ram_bytes, 65536u);
  EXPECT_EQ(cfg.buffer_size, 2048u);
  EXPECT_EQ(cfg.flash.page_size, 2048u);
  EXPECT_EQ(cfg.flash.read_page_latency, 25 * kMicrosecond);
  EXPECT_EQ(cfg.flash.write_page_latency, 200 * kMicrosecond);
  EXPECT_EQ(cfg.flash.byte_transfer_latency, 50u);
  EXPECT_DOUBLE_EQ(cfg.channel_throughput_bytes_per_sec, 1.5e6);
}

}  // namespace
}  // namespace ghostdb::device

// The memory-bounded relational tail: ORDER BY / DISTINCT / ORDER BY+LIMIT
// over inputs far larger than the session's relational-tail budget must
// spill sorted runs to flash and still answer exactly like the oracle.
// Before this machinery the only options were an unbounded secure working
// set or (with the budget enforced, spill_enabled=false) a clean
// ResourceExhausted — both covered here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;

GhostDBConfig SpillConfig(uint32_t budget_buffers, bool spill_enabled = true) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.retain_staged_data = true;  // for the oracle
  cfg.exec.sort_budget_buffers = budget_buffers;
  cfg.exec.spill_enabled = spill_enabled;
  return cfg;
}

// One table, `rows` rows. v is drawn from a small domain so ORDER BY has
// heavy ties (the stability-sensitive case) and DISTINCT has real
// duplicates; d makes DISTINCT's key set wide enough to overflow a tiny
// budget. h is hidden, with a predicate matching everything, so the whole
// table flows through the secure relational tail.
void BuildBig(GhostDB* db, uint32_t rows) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE R (id INT, v INT, d INT, h INT HIDDEN)")
          .ok());
  Rng rng(1234);
  auto staging = db->MutableStaging("R");
  ASSERT_TRUE(staging.ok());
  for (uint32_t i = 0; i < rows; ++i) {
    ASSERT_TRUE((*staging)
                    ->AppendRow({Value::Int32(static_cast<int32_t>(
                                     rng.Uniform(40))),
                                 Value::Int32(static_cast<int32_t>(
                                     rng.Uniform(100000))),
                                 Value::Int32(static_cast<int32_t>(
                                     rng.Uniform(100)))})
                    .ok());
  }
  ASSERT_TRUE(db->Build().ok());
}

// Row-for-row equality against the reference evaluator.
void ExpectMatchesOracle(GhostDB* db, const std::string& sql,
                         const exec::QueryResult& got) {
  auto stmt = sql::Parse(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto bound =
      sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto expected = reference::Evaluate(db->schema(), db->staged(), *bound);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(got.total_rows, expected->size()) << sql;
  ASSERT_EQ(got.rows.size(), expected->size()) << sql;
  for (size_t i = 0; i < expected->size(); ++i) {
    ASSERT_EQ(got.rows[i].size(), (*expected)[i].size());
    for (size_t j = 0; j < (*expected)[i].size(); ++j) {
      ASSERT_TRUE(got.rows[i][j] == (*expected)[i][j])
          << sql << " row " << i << " col " << j << ": got "
          << got.rows[i][j].ToString() << " want "
          << (*expected)[i][j].ToString();
    }
  }
}

TEST(SpillTest, OrderBySpillsAndMatchesOracle) {
  GhostDB db(SpillConfig(/*budget_buffers=*/1));
  BuildBig(&db, 4000);
  auto r = db.Query(
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u);
  EXPECT_GT(r->metrics.sort_spill_pages, 0u);
  ExpectMatchesOracle(&db, "SELECT R.id, R.v FROM R WHERE R.h >= 0 "
                           "ORDER BY R.v", *r);
}

TEST(SpillTest, MultiKeyDescendingSpillSortMatchesOracle) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 3000);
  const char* sql =
      "SELECT R.v, R.d, R.id FROM R WHERE R.h >= 0 "
      "ORDER BY R.v DESC, R.d";
  auto r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u);
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, DistinctSpillsAndMatchesOracle) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 4000);
  // v x d has ~4000 candidate keys of 8 bytes: far past a 2 KB budget.
  const char* sql = "SELECT DISTINCT R.v, R.d FROM R WHERE R.h >= 0";
  auto r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u);
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, DistinctSpillSurvivesRunCountNearFreeBufferCount) {
  // Regression: the final merge of Distinct's value phase holds one reader
  // buffer per run while the arrival phase consumes the stream — and the
  // arrival phase may need a spill buffer of its own. When the value
  // phase's run count landed exactly on the free-buffer count, the merge
  // once took every free buffer and the arrival spill failed with
  // ResourceExhausted. Sweep row counts around that boundary (~32 runs of
  // 128 rows under a 1-buffer budget).
  for (uint32_t rows : {4000u, 4100u, 4200u, 4300u}) {
    SCOPED_TRACE(rows);
    GhostDB db(SpillConfig(1));
    BuildBig(&db, rows);
    const char* sql = "SELECT DISTINCT R.v, R.d FROM R WHERE R.h >= 0";
    auto r = db.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectMatchesOracle(&db, sql, *r);
  }
}

TEST(SpillTest, TopKHeapStaysInMemoryAndMatchesOracle) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 4000);
  // k << n: the fused top-K keeps a 7-row heap; no spill, and almost all
  // rows are rejected against the heap top without being buffered. Ties
  // (v from a 40-value domain) must keep arrival order — the oracle's
  // stable sort is the judge.
  const char* sql =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v LIMIT 7";
  auto r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->metrics.sort_spill_runs, 0u);
  EXPECT_GT(r->metrics.topk_short_circuits, 3000u);
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, TopKLargeKDegradesToSpillingSort) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 4000);
  // k itself exceeds the 1-buffer budget: the fused operator degrades to
  // the external sort truncated at k, not an unbounded heap.
  const char* sql =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v LIMIT 2000";
  auto r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u);
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, DistinctOrderByLimitComposedUnderTinyBudget) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 3000);
  const char* sql =
      "SELECT DISTINCT R.v, R.d FROM R WHERE R.h >= 0 "
      "ORDER BY R.v DESC LIMIT 9";
  auto r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, SpillDisabledFailsCleanlyAndSmallQueriesStillRun) {
  GhostDB db(SpillConfig(1, /*spill_enabled=*/false));
  BuildBig(&db, 4000);
  // The budget is enforced either way; without spilling it is a clean
  // per-query ResourceExhausted, not an unbounded working set.
  auto sort = db.Query(
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v");
  EXPECT_TRUE(sort.status().IsResourceExhausted())
      << sort.status().ToString();
  auto distinct = db.Query(
      "SELECT DISTINCT R.v, R.d FROM R WHERE R.h >= 0");
  EXPECT_TRUE(distinct.status().IsResourceExhausted())
      << distinct.status().ToString();
  // The fused top-K fits the budget, so the same data + ORDER BY still
  // serves with LIMIT — the headline win of the fusion.
  const char* topk =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v LIMIT 5";
  auto r = db.Query(topk);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectMatchesOracle(&db, topk, *r);
  // And the failures left no flash behind.
  auto again = db.Query(topk);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST(SpillTest, TinySessionPartitionSpillsInsteadOfFailing) {
  // No config override: the budget derives from the session's own RAM
  // partition quota. A 2-buffer session sorts 4000 rows by spilling.
  GhostDB db(SpillConfig(/*budget_buffers=*/0));
  BuildBig(&db, 4000);
  core::SessionOptions options;
  options.name = "tiny";
  options.ram_quota_buffers = 2;
  auto session = db.OpenSession(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const char* sql =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v";
  auto r = (*session)->Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u);
  ExpectMatchesOracle(&db, sql, *r);
}

TEST(SpillTest, TinySessionPartitionWithoutSpillingIsResourceExhausted) {
  GhostDB db(SpillConfig(0, /*spill_enabled=*/false));
  BuildBig(&db, 4000);
  core::SessionOptions options;
  options.name = "tiny";
  options.ram_quota_buffers = 2;
  auto session = db.OpenSession(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto r = (*session)->Query(
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v");
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  // The failure names the session so "budget exceeded" is actionable.
  EXPECT_NE(r.status().message().find("tiny"), std::string::npos)
      << r.status().ToString();
}

TEST(SpillTest, SpillCountersAccumulateIntoSessionTotals) {
  GhostDB db(SpillConfig(1));
  BuildBig(&db, 3000);
  auto session = db.OpenSession({});
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Query(
      "SELECT R.id FROM R WHERE R.h >= 0 ORDER BY R.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*session)->metrics().sort_spill_runs,
            r->metrics.sort_spill_runs);
  EXPECT_GT((*session)->metrics().sort_spill_pages, 0u);
}

}  // namespace
}  // namespace ghostdb

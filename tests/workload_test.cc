// Workload-generator tests: shapes, the selectivity dial, index-scheme
// size ordering, and end-to-end runs of the figure queries at tiny scale.
#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "reference/oracle.h"
#include "sql/parser.h"
#include "workload/index_schemes.h"
#include "workload/medical.h"
#include "workload/synthetic.h"

namespace ghostdb::workload {
namespace {

TEST(SyntheticTest, ShapeMatchesPaperRatios) {
  SyntheticShape shape(1.0);
  EXPECT_EQ(shape.t0, 10'000'000u);
  EXPECT_EQ(shape.t1, 1'000'000u);
  EXPECT_EQ(shape.t11, 100'000u);
  SyntheticShape small(0.01);
  EXPECT_EQ(small.t0, 100'000u);
}

TEST(SyntheticTest, DialProducesExpectedLiterals) {
  EXPECT_EQ(Dial(0.1).AsString(), "100000");
  EXPECT_EQ(Dial(0.5).AsString(), "500000");
  EXPECT_EQ(Dial(0.0).AsString(), "000000");
  // Dial(1.0) must exceed every 6-digit value under binary collation.
  EXPECT_GT(Dial(1.0).Compare(Dial(0.999999)), 0);
}

TEST(SyntheticTest, DialSelectivityIsAccurate) {
  SyntheticConfig wl;
  wl.scale = 0.002;  // T1 = 2000 rows
  auto cfg = SyntheticDbConfig(wl);
  cfg.retain_staged_data = true;
  core::GhostDB db(cfg);
  ASSERT_TRUE(BuildSynthetic(&db, wl).ok());
  auto r = db.Query("SELECT T1.id FROM T1 WHERE T1.v1 < " +
                    Dial(0.25).ToString());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double sel = static_cast<double>(r->total_rows) / 2000.0;
  EXPECT_NEAR(sel, 0.25, 0.04);
}

TEST(SyntheticTest, QueryQRunsAndMatchesOracle) {
  SyntheticConfig wl;
  wl.scale = 0.002;
  auto cfg = SyntheticDbConfig(wl);
  cfg.retain_staged_data = true;
  core::GhostDB db(cfg);
  ASSERT_TRUE(BuildSynthetic(&db, wl).ok());
  std::string sql = QueryQ(0.1, 0.1, 2, true);
  auto stmt = sql::Parse(sql);
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), db.schema(), sql);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto expected = reference::Evaluate(db.schema(), db.staged(), *bound);
  ASSERT_TRUE(expected.ok());
  auto got = db.Query(sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->total_rows, expected->size());
}

TEST(MedicalTest, ShapeMatchesPaper) {
  MedicalShape shape(1.0);
  EXPECT_EQ(shape.doctors, 4500u);
  EXPECT_EQ(shape.patients, 14000u);
  EXPECT_EQ(shape.measurements, 1'300'000u);
  EXPECT_EQ(shape.drugs, 45u);
}

TEST(MedicalTest, BuildsAndAnswersCohortQuery) {
  MedicalConfig wl;
  wl.scale = 0.01;
  auto cfg = MedicalDbConfig(wl);
  cfg.retain_staged_data = true;
  core::GhostDB db(cfg);
  ASSERT_TRUE(BuildMedical(&db, wl).ok());
  std::string sql = MedicalQueryQ(0.3, 0.2);
  auto stmt = sql::Parse(sql);
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), db.schema(), sql);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto expected = reference::Evaluate(db.schema(), db.staged(), *bound);
  ASSERT_TRUE(expected.ok());
  auto got = db.Query(sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->total_rows, expected->size());
  EXPECT_GT(got->total_rows, 0u);
}

TEST(MedicalTest, HiddenColumnsMatchPaperSplit) {
  MedicalConfig wl;
  wl.scale = 0.01;
  core::GhostDB db(MedicalDbConfig(wl));
  ASSERT_TRUE(BuildMedical(&db, wl).ok());
  auto patients = db.schema().FindTable("Patients");
  ASSERT_TRUE(patients.ok());
  const auto& t = db.schema().table(*patients);
  auto hidden = [&](const char* name) {
    auto c = t.FindColumn(name);
    EXPECT_TRUE(c.has_value()) << name;
    return t.columns[*c].hidden;
  };
  EXPECT_TRUE(hidden("doctor_id"));
  EXPECT_TRUE(hidden("name"));
  EXPECT_TRUE(hidden("ssn"));
  EXPECT_TRUE(hidden("bodymassindex"));
  EXPECT_FALSE(hidden("age"));
  EXPECT_FALSE(hidden("city"));
  EXPECT_FALSE(hidden("first_name"));
}

// --- Index schemes (Fig 7 machinery) ---

class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest() {
    SyntheticConfig wl;
    wl.scale = 0.002;
    auto cfg = SyntheticDbConfig(wl);
    cfg.retain_staged_data = true;
    db_ = std::make_unique<core::GhostDB>(cfg);
    EXPECT_TRUE(StageSynthetic(db_.get(), wl).ok());
  }
  std::unique_ptr<core::GhostDB> db_;
};

TEST_F(SchemeTest, SizesFollowPaperOrdering) {
  auto full = MeasureScheme(db_->schema(), db_->staged(),
                            IndexScheme::kFullIndex, 3);
  auto basic = MeasureScheme(db_->schema(), db_->staged(),
                             IndexScheme::kBasicIndex, 3);
  auto star = MeasureScheme(db_->schema(), db_->staged(),
                            IndexScheme::kStarIndex, 3);
  auto join = MeasureScheme(db_->schema(), db_->staged(),
                            IndexScheme::kJoinIndex, 3);
  ASSERT_TRUE(full.ok() && basic.ok() && star.ok() && join.ok());
  // Fig 7 ordering: Full >= Basic >> Star; Join smallest among index-bearing.
  EXPECT_GE(full->index_pages, basic->index_pages);
  EXPECT_GT(basic->index_pages, star->index_pages);
  EXPECT_GT(star->index_pages, 0u);
  EXPECT_GT(join->index_pages, 0u);
  // The paper's headline: Full costs barely more than Basic (<20% here).
  EXPECT_LT(static_cast<double>(full->index_pages),
            1.2 * static_cast<double>(basic->index_pages));
  // DBSize does not depend on the scheme.
  EXPECT_EQ(full->raw_data_bytes, join->raw_data_bytes);
}

TEST_F(SchemeTest, IndexSizeGrowsWithAttributeCount) {
  uint64_t prev = 0;
  for (int k = 0; k <= 3; ++k) {
    auto sizes = MeasureScheme(db_->schema(), db_->staged(),
                               IndexScheme::kFullIndex, k);
    ASSERT_TRUE(sizes.ok());
    EXPECT_GE(sizes->index_pages, prev);
    prev = sizes->index_pages;
  }
  EXPECT_GT(prev, 0u);
}

TEST_F(SchemeTest, ZeroAttrsStillCountsSktsAndKeys) {
  auto full = MeasureScheme(db_->schema(), db_->staged(),
                            IndexScheme::kFullIndex, 0);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full->index_pages, 0u);  // SKTs + id indexes remain
}

}  // namespace
}  // namespace ghostdb::workload

// Planner tests: the rule mode encodes the paper's observed decision
// rules; the cost mode is the cost-based optimizer (paper future work).
#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "plan/cost_model.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "workload/synthetic.h"

namespace ghostdb::plan {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void Build(PlannerConfig::Mode mode) {
    workload::SyntheticConfig wl;
    wl.scale = 0.002;
    auto cfg = workload::SyntheticDbConfig(wl);
    cfg.planner.mode = mode;
    db_ = std::make_unique<core::GhostDB>(cfg);
    ASSERT_TRUE(workload::BuildSynthetic(db_.get(), wl).ok());
  }

  // EXPLAIN and return the text.
  std::string Explain(double sv, double sh) {
    auto text = db_->Explain(workload::QueryQ(sv, sh));
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ok() ? *text : "";
  }

  std::unique_ptr<core::GhostDB> db_;
};

TEST_F(PlannerTest, RuleModePicksCrossPreForSelectiveVisible) {
  Build(PlannerConfig::Mode::kRule);
  std::string plan = Explain(0.01, 0.1);
  EXPECT_NE(plan.find("Cross-Pre-Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, RuleModePicksCrossPostForUnselectiveVisible) {
  Build(PlannerConfig::Mode::kRule);
  std::string plan = Explain(0.5, 0.1);
  EXPECT_NE(plan.find("Cross-Post-Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, RuleModeWithoutHiddenSubtreePredsUsesPlainVariants) {
  Build(PlannerConfig::Mode::kRule);
  // Hidden selection on T2 is outside T1's subtree: no Cross possible.
  auto text = db_->Explain(
      "SELECT T0.id FROM T0, T1, T2 WHERE T0.fk1 = T1.id AND "
      "T0.fk2 = T2.id AND T1.v1 < '010000' AND T2.h1 < '100000'");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Pre-Filter"), std::string::npos);
  EXPECT_EQ(text->find("Cross-Pre-Filter"), std::string::npos) << *text;
}

TEST_F(PlannerTest, CostModeChoosesAStrategyAndPrefersPreWhenSelective) {
  Build(PlannerConfig::Mode::kCost);
  std::string selective = Explain(0.001, 0.1);
  EXPECT_NE(selective.find("Pre-Filter"), std::string::npos) << selective;
  // At this tiny scale Pre stays cheap even for wide Vis selections (RAM
  // never binds); the strategy must still be a valid choice.
  std::string unselective = Explain(0.9, 0.1);
  EXPECT_NE(unselective.find("visible selection ->"), std::string::npos);
}

TEST(CostModelScaleTest, PostBeatsPreAtPaperScaleForWideVisible) {
  // At the paper's cardinalities a wide-open Visible selection makes
  // per-id climbing + reduction more expensive than one SKT pass + bloom.
  // (The analytic crossover sits at a higher sV than the measured one —
  // the model under-counts Merge passes; documented in EXPERIMENTS.md.)
  CostParams p;
  SjCostInputs in;
  in.vis_count = 1'000'000;  // sV = 1.0 of 1M
  in.table_rows = 1'000'000;
  in.anchor_rows = 10'000'000;
  in.hidden_subtree_sel = 0.1;
  in.hidden_other_sel = 1.0;
  in.cross_possible = true;
  in.id_index_leaves = 6'000;
  in.skt_row_width = 16;
  auto costs = EstimateStrategyCosts(p, in);
  // A plain bloom over 1M ids cannot fit 64 KB (the Fig 10 wall) ...
  EXPECT_FALSE(costs.post_feasible);
  // ... but the Cross variant shrinks n by the hidden selectivity and
  // becomes both feasible and cheaper than climbing every Vis id.
  ASSERT_TRUE(costs.cross_post_feasible);
  EXPECT_LT(costs.cross_post, costs.pre);
}

TEST_F(PlannerTest, ExplainListsPredicatesAndProjection) {
  Build(PlannerConfig::Mode::kRule);
  std::string plan = Explain(0.05, 0.1);
  EXPECT_NE(plan.find("anchor T0"), std::string::npos);
  EXPECT_NE(plan.find("visible predicate"), std::string::npos);
  EXPECT_NE(plan.find("hidden  predicate"), std::string::npos);
  EXPECT_NE(plan.find("climbing index"), std::string::npos);
  EXPECT_NE(plan.find("projection -> Project"), std::string::npos);
}

// --- Cost model sanity ---

TEST(CostModelTest, SJoinSaturatesAtFullScan) {
  CostParams p;
  // Touching more input ids than pages can only approach the full scan.
  SimNanos half = SJoinCost(p, 50'000, 1'000'000, 16);
  SimNanos all = SJoinCost(p, 1'000'000, 1'000'000, 16);
  EXPECT_LT(half, all + 1);
  uint64_t pages = 1'000'000 / (2048 / 16);
  EXPECT_LE(all, pages * p.FullPageRead() + p.FullPageRead());
}

TEST(CostModelTest, MergeReductionFreeWhenFits) {
  CostParams p;
  EXPECT_EQ(MergeReductionCost(p, 10, 100'000, 30), 0u);
  EXPECT_GT(MergeReductionCost(p, 1000, 100'000, 30), 0u);
}

TEST(CostModelTest, ClimbCostGrowsWithProbes) {
  CostParams p;
  SimNanos a = ClimbAndMergeCost(p, 100, 1000, 10.0, 26);
  SimNanos b = ClimbAndMergeCost(p, 10'000, 1000, 10.0, 26);
  EXPECT_LT(a, b);
}

TEST(CostModelTest, CrossPreCheaperThanPreWhenFoldingHelps) {
  CostParams p;
  SjCostInputs in;
  in.vis_count = 100'000;
  in.table_rows = 1'000'000;
  in.anchor_rows = 10'000'000;
  in.hidden_subtree_sel = 0.1;
  in.cross_possible = true;
  in.id_index_leaves = 6000;
  auto costs = EstimateStrategyCosts(p, in);
  EXPECT_LT(costs.cross_pre, costs.pre);
}

TEST(CostModelTest, PostInfeasibleForHugeVisibleSelections) {
  CostParams p;
  SjCostInputs in;
  in.vis_count = 5'000'000;  // 5M ids >> RAM bits
  in.table_rows = 10'000'000;
  in.anchor_rows = 10'000'000;
  in.cross_possible = false;
  in.id_index_leaves = 60'000;
  auto costs = EstimateStrategyCosts(p, in);
  EXPECT_FALSE(costs.post_feasible);
}

}  // namespace
}  // namespace ghostdb::plan

// The adversarial side of the security story: instead of asserting
// transcripts are identical (leak_test.cc), this suite *runs the attacks*
// an honest-but-curious channel observer would mount — volume-frequency
// inference of hidden predicate selectivities and co-occurrence inference
// of hidden join-key distributions — and measures what they recover under
// each ExecConfig::volume_padding mode.
//
// The negative controls are the point of the harness: against a
// deliberately leaky configuration (padding off, strongly skewed hidden
// data) the attacks MUST succeed, or the defense tests below would pass
// vacuously. Under kWorstCase padding the same attacks must collapse to
// random guessing.
//
// Env knobs (CI's nightly sweep raises them):
//   GHOSTDB_ATTACK_TRIALS      attack campaigns per assertion (default 12)
//   GHOSTDB_ATTACK_FUZZ_ITERS  fuzz queries for volume invariance (default 40)
//   GHOSTDB_ATTACK_FUZZ_SEED   visible seed for the fuzz sweep (default 77)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack_common.h"
#include "common/rng.h"
#include "core/database.h"
#include "exec/operator.h"
#include "fuzz_common.h"
#include "transcript_common.h"

namespace ghostdb {
namespace {

using attack::AttackKind;
using attack::AttackReport;
using attack::Observation;
using attack::Observe;
using attack::PlantedTruth;
using attack::SkewSpec;
using core::GhostDB;
using core::GhostDBConfig;
using exec::VolumePadding;
using fuzztest::EnvOr;

GhostDBConfig AttackConfig(VolumePadding mode) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.exec.volume_padding = mode;
  cfg.exec.pad_spill_runs = mode != VolumePadding::kOff;
  return cfg;
}

uint32_t Trials() {
  return static_cast<uint32_t>(EnvOr("GHOSTDB_ATTACK_TRIALS", 12));
}

// ---------------------------------------------------------------------------
// Negative controls: the attacks work when nothing defends against them.
// ---------------------------------------------------------------------------

TEST(LeakageAttackTest, NegativeControlVolumeFrequencyAttackSucceeds) {
  SkewSpec spec;
  auto report = attack::MeasureAttack(AttackConfig(VolumePadding::kOff),
                                      AttackKind::kVolumeFrequency, Trials(),
                                      spec, /*seed0=*/101);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 45% of the mass on one of 8 values is blatant; an observer that can't
  // recover it from raw volumes isn't an attacker worth defending against.
  EXPECT_GE(report->accuracy(), 0.9)
      << "volume-frequency attack should succeed against padding=off";
  EXPECT_LE(report->histogram_error, 0.1)
      << "raw volumes should recover the hidden selectivity histogram";
  EXPECT_GT(report->accuracy(), 2.0 * report->chance(spec));
}

TEST(LeakageAttackTest, NegativeControlCoOccurrenceAttackSucceeds) {
  SkewSpec spec;
  auto report = attack::MeasureAttack(AttackConfig(VolumePadding::kOff),
                                      AttackKind::kCoOccurrence, Trials(),
                                      spec, /*seed0=*/202);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->accuracy(), 0.9)
      << "co-occurrence attack should recover the hot hidden join group";
  EXPECT_LE(report->histogram_error, 0.1);
}

// ---------------------------------------------------------------------------
// The defense: worst-case padding reduces both attacks to guessing.
// ---------------------------------------------------------------------------

TEST(LeakageAttackTest, WorstCasePaddingDefeatsVolumeFrequencyAttack) {
  SkewSpec spec;
  auto report = attack::MeasureAttack(AttackConfig(VolumePadding::kWorstCase),
                                      AttackKind::kVolumeFrequency, Trials(),
                                      spec, /*seed0=*/101);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every probe returns the same padded volume, so argmax degenerates to a
  // uniform guess over the domain: accuracy ~1/domain, not ~1.0.
  EXPECT_LE(report->accuracy(), report->chance(spec) + 0.25)
      << "worst-case padding must reduce the attack to chance";
  // And the recovered "histogram" is flat — far from the planted skew.
  EXPECT_GE(report->histogram_error, 0.2);
}

TEST(LeakageAttackTest, WorstCasePaddingDefeatsCoOccurrenceAttack) {
  SkewSpec spec;
  auto report = attack::MeasureAttack(AttackConfig(VolumePadding::kWorstCase),
                                      AttackKind::kCoOccurrence, Trials(),
                                      spec, /*seed0=*/202);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LE(report->accuracy(), report->chance(spec) + 0.25);
  EXPECT_GE(report->histogram_error, 0.2);
}

// ---------------------------------------------------------------------------
// Mechanism checks: what each mode actually does to the observable volume.
// ---------------------------------------------------------------------------

TEST(LeakageAttackTest, WorstCaseVolumesAreConstantAcrossProbesAndSeeds) {
  SkewSpec spec;
  for (uint64_t hidden_seed : {501u, 502u}) {
    GhostDB db(AttackConfig(VolumePadding::kWorstCase));
    PlantedTruth truth;
    ASSERT_TRUE(
        attack::BuildSkewedHistogramDb(&db, hidden_seed, spec, &truth).ok());
    for (uint32_t v = 0; v < spec.domain; ++v) {
      Observation obs = Observe(&db, attack::HistogramProbe(v));
      ASSERT_TRUE(obs.ok);
      // Padded to the visible worst case: the anchor table's row count,
      // identical for every probe and every hidden seed.
      EXPECT_EQ(obs.volume, spec.rows) << "probe h=" << v;
    }
  }
}

TEST(LeakageAttackTest, QuantizeRoundsVolumesToNextPowerOfTwo) {
  SkewSpec spec;
  GhostDB off_db(AttackConfig(VolumePadding::kOff));
  GhostDB quant_db(AttackConfig(VolumePadding::kQuantize));
  PlantedTruth truth;
  ASSERT_TRUE(
      attack::BuildSkewedHistogramDb(&off_db, /*hidden_seed=*/601, spec,
                                     &truth)
          .ok());
  PlantedTruth same_truth;
  ASSERT_TRUE(
      attack::BuildSkewedHistogramDb(&quant_db, /*hidden_seed=*/601, spec,
                                     &same_truth)
          .ok());
  for (uint32_t v = 0; v < spec.domain; ++v) {
    Observation raw = Observe(&off_db, attack::HistogramProbe(v));
    Observation quant = Observe(&quant_db, attack::HistogramProbe(v));
    ASSERT_TRUE(raw.ok && quant.ok);
    EXPECT_EQ(raw.volume, truth.histogram[v]) << "probe h=" << v;
    EXPECT_EQ(quant.volume, exec::NextPowerOfTwo(raw.volume))
        << "probe h=" << v;
    EXPECT_EQ(quant.volume & (quant.volume - 1), 0u) << "probe h=" << v;
  }
}

TEST(LeakageAttackTest, PaddingModesPreserveAnswers) {
  // Dummy rows must vanish at the QueryResult boundary: every mode returns
  // byte-identical rows and total_rows for shapes across the relational
  // tail (projection, aggregate, group-by, distinct, order-by, limit).
  const char* queries[] = {
      "SELECT Obs.id FROM Obs WHERE Obs.h = 3",
      "SELECT COUNT(*), MAX(Obs.v) FROM Obs WHERE Obs.h < 4",
      "SELECT Obs.h, COUNT(*) FROM Obs WHERE Obs.v < 70 GROUP BY Obs.h",
      "SELECT DISTINCT Obs.v FROM Obs WHERE Obs.h >= 2",
      "SELECT Obs.v FROM Obs WHERE Obs.h < 5 ORDER BY Obs.v",
      "SELECT Obs.v FROM Obs WHERE Obs.h < 5 ORDER BY Obs.v LIMIT 7",
  };
  SkewSpec spec;
  GhostDB off_db(AttackConfig(VolumePadding::kOff));
  GhostDB quant_db(AttackConfig(VolumePadding::kQuantize));
  GhostDB worst_db(AttackConfig(VolumePadding::kWorstCase));
  PlantedTruth truth;
  for (GhostDB* db : {&off_db, &quant_db, &worst_db}) {
    ASSERT_TRUE(
        attack::BuildSkewedHistogramDb(db, /*hidden_seed=*/701, spec, &truth)
            .ok());
  }
  for (const char* sql : queries) {
    auto off = off_db.Query(sql);
    auto quant = quant_db.Query(sql);
    auto worst = worst_db.Query(sql);
    ASSERT_TRUE(off.ok()) << sql << ": " << off.status().ToString();
    ASSERT_TRUE(quant.ok()) << sql << ": " << quant.status().ToString();
    ASSERT_TRUE(worst.ok()) << sql << ": " << worst.status().ToString();
    EXPECT_EQ(off->total_rows, quant->total_rows) << sql;
    EXPECT_EQ(off->total_rows, worst->total_rows) << sql;
    EXPECT_EQ(off->rows, quant->rows) << sql;
    EXPECT_EQ(off->rows, worst->rows) << sql;
    // The padding actually engaged: observed volume never understates the
    // real answer, and metrics account for every dummy.
    EXPECT_GE(quant->metrics.observed_volume, off->total_rows) << sql;
    EXPECT_GE(worst->metrics.observed_volume, off->total_rows) << sql;
    EXPECT_EQ(worst->metrics.observed_volume,
              worst->total_rows + worst->metrics.padding_rows)
        << sql;
  }
}

TEST(LeakageAttackTest, SpillRunPaddingWritesAndFreesDummyRuns) {
  SkewSpec spec;
  GhostDBConfig cfg = AttackConfig(VolumePadding::kWorstCase);
  cfg.exec.sort_budget_buffers = 1;  // force the sorter to spill
  GhostDB db(cfg);
  PlantedTruth truth;
  ASSERT_TRUE(
      attack::BuildSkewedHistogramDb(&db, /*hidden_seed=*/801, spec, &truth)
          .ok());
  // A visible, selective predicate: the sorter sees fewer rows than the
  // worst case, so the run-count target demands dummy runs.
  auto r = db.Query(
      "SELECT Obs.v FROM Obs WHERE Obs.v < 40 ORDER BY Obs.v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->metrics.sort_spill_runs, 0u) << "query did not spill";
  EXPECT_GT(r->metrics.padding_spill_runs, 0u)
      << "spill-run padding never engaged";
  // A second query on the same database proves the dummy runs were freed
  // (the executor's flash page-leak check fails the query otherwise).
  auto again = db.Query(
      "SELECT Obs.v FROM Obs WHERE Obs.v < 40 ORDER BY Obs.v");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows, r->rows);
}

// ---------------------------------------------------------------------------
// Config validation: inconsistent knob combinations are rejected at Build().
// ---------------------------------------------------------------------------

TEST(LeakageAttackTest, RejectsSpillPaddingWithoutVolumePadding) {
  GhostDBConfig cfg;
  cfg.exec.pad_spill_runs = true;  // but volume_padding stays kOff
  GhostDB db(cfg);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (id INT, h INT HIDDEN)").ok());
  Status s = db.Build();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(LeakageAttackTest, RejectsZeroDummyRowCapWithPaddingOn) {
  GhostDBConfig cfg;
  cfg.exec.volume_padding = VolumePadding::kQuantize;
  cfg.exec.padding_dummy_row_cap = 0;
  GhostDB db(cfg);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (id INT, h INT HIDDEN)").ok());
  Status s = db.Build();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(LeakageAttackTest, AcceptsConsistentPaddingConfig) {
  GhostDBConfig cfg = AttackConfig(VolumePadding::kWorstCase);
  GhostDB db(cfg);
  ASSERT_TRUE(db.Execute("CREATE TABLE T (id INT, h INT HIDDEN)").ok());
  EXPECT_TRUE(db.Build().ok());
}

// ---------------------------------------------------------------------------
// The strict property behind the defense: under kWorstCase the observed
// volume is a function of visible inputs only, across fuzzed workloads.
// ---------------------------------------------------------------------------

TEST(LeakageAttackTest, WorstCaseVolumeIsHiddenInvariantUnderFuzzWorkloads) {
  const uint64_t iters = EnvOr("GHOSTDB_ATTACK_FUZZ_ITERS", 40);
  const uint64_t visible_seed = EnvOr("GHOSTDB_ATTACK_FUZZ_SEED", 77);
  core::GhostDBConfig cfg = fuzztest::FuzzConfig(visible_seed, false);
  cfg.exec.volume_padding = VolumePadding::kWorstCase;
  cfg.exec.pad_spill_runs = true;
  GhostDB db1(cfg), db2(cfg);
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&db1, visible_seed, 1111).ok());
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&db2, visible_seed, 2222).ok());
  fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
  Rng rng(visible_seed ^ 0xa77acULL);
  uint64_t compared = 0, skipped = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    std::string sql = fuzztest::GenerateQuery(rng, shape);
    db1.device().channel().ClearTranscript();
    auto r1 = db1.Query(sql);
    db2.device().channel().ClearTranscript();
    auto r2 = db2.Query(sql);
    // Data-dependent errors (e.g. MIN over a hidden-emptied input) are a
    // residual channel documented in ARCHITECTURE.md; volume comparison
    // applies to queries both sides answer.
    if (!r1.ok() || !r2.ok()) {
      skipped += 1;
      continue;
    }
    EXPECT_EQ(r1->metrics.observed_volume, r2->metrics.observed_volume)
        << "hidden-dependent observed volume for: " << sql;
    transcript::ExpectIdenticalTranscripts(
        db1.device().channel().transcript(),
        db2.device().channel().transcript());
    compared += 1;
  }
  EXPECT_GT(compared, iters / 2)
      << "fuzz sweep mostly errored (" << skipped << " skipped)";
}

// All padding modes stay transcript-invariant across hidden variants: the
// defense adds no hidden-dependent channel traffic of its own.
TEST(LeakageAttackTest, PaddingModesAreTranscriptInvariantAcrossHiddenData) {
  SkewSpec spec;
  for (VolumePadding mode : {VolumePadding::kOff, VolumePadding::kQuantize,
                             VolumePadding::kWorstCase}) {
    GhostDB db1(AttackConfig(mode)), db2(AttackConfig(mode));
    PlantedTruth t1, t2;
    ASSERT_TRUE(attack::BuildSkewedHistogramDb(&db1, 901, spec, &t1).ok());
    ASSERT_TRUE(attack::BuildSkewedHistogramDb(&db2, 902, spec, &t2).ok());
    for (uint32_t v = 0; v < spec.domain; v += 3) {
      db1.device().channel().ClearTranscript();
      ASSERT_TRUE(db1.Query(attack::HistogramProbe(v)).ok());
      db2.device().channel().ClearTranscript();
      ASSERT_TRUE(db2.Query(attack::HistogramProbe(v)).ok());
      transcript::ExpectIdenticalTranscripts(
          db1.device().channel().transcript(),
          db2.device().channel().transcript());
    }
  }
}

}  // namespace
}  // namespace ghostdb

// Sharded-fleet correctness tests: one logical database hash-partitioned
// across N simulated SecureDevices must be *semantically invisible* — every
// query answers byte-identically at every shard count, because the
// scatter-gather path reconstructs the single-device row order from global
// row seqs and first-arrival group seqs.
//
// The loader-level partitioning contract is tested directly too: only the
// schema root's rows shard (splitmix64 over the visible global id, assigned
// in ascending order so local ids are dense and order-preserving); every
// other table is replicated; the assignment is a pure function of visible
// data.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "core/loader.h"
#include "fuzz_common.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;

GhostDBConfig ShardedFuzzConfig(uint64_t visible_seed, uint32_t shards,
                                bool retain_staged = false) {
  GhostDBConfig cfg = fuzztest::FuzzConfig(visible_seed, retain_staged);
  cfg.shard_count = shards;
  return cfg;
}

void ExpectSameAnswer(const exec::QueryResult& a, const exec::QueryResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.total_rows, b.total_rows) << what;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << what << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c] == b.rows[r][c])
          << what << " row " << r << " col " << c << ": "
          << a.rows[r][c].ToString() << " vs " << b.rows[r][c].ToString();
    }
  }
}

// Runs `sql` against every database and asserts all agree with the first
// (status kind included: a data-dependent error like MIN over an empty
// result must be the same error at every shard count).
void ExpectShardInvariant(const std::vector<GhostDB*>& dbs,
                          const std::string& sql) {
  SCOPED_TRACE(sql);
  std::vector<Result<exec::QueryResult>> results;
  results.reserve(dbs.size());
  for (GhostDB* db : dbs) results.push_back(db->Query(sql));
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0].ok(), results[i].ok())
        << "shard_count[" << i << "]: " << results[0].status().ToString()
        << " vs " << results[i].status().ToString();
    if (!results[0].ok()) {
      EXPECT_EQ(results[0].status().code(), results[i].status().code());
      continue;
    }
    ExpectSameAnswer(*results[0], *results[i],
                     "vs fleet #" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Loader-level partitioning contract
// ---------------------------------------------------------------------------

TEST(ShardTest, PartitionStagedByRootContract) {
  const uint64_t kVisible = 4242;
  GhostDB db(ShardedFuzzConfig(kVisible, 1, /*retain_staged=*/true));
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&db, kVisible, 7).ok());
  const auto& staged = db.staged();
  const catalog::Schema& schema = db.schema();
  const catalog::TableId root = schema.root();
  const core::TableData& root_data = staged[root];

  for (uint32_t shards : {2u, 3u, 4u}) {
    SCOPED_TRACE(shards);
    auto parts = core::PartitionStagedByRoot(schema, staged, shards);
    ASSERT_TRUE(parts.ok()) << parts.status().ToString();
    ASSERT_EQ(parts->shards.size(), shards);
    ASSERT_EQ(parts->root_global_ids.size(), shards);

    // Root rows: disjoint cover of [0, rows), strictly ascending per shard,
    // and each shard-local row is a byte copy of its global row.
    std::vector<int> owner(root_data.row_count(), -1);
    for (uint32_t s = 0; s < shards; ++s) {
      const auto& ids = parts->root_global_ids[s];
      const core::TableData& slice = parts->shards[s][root];
      ASSERT_EQ(slice.row_count(), ids.size());
      ASSERT_EQ(slice.row_width(), root_data.row_width());
      for (size_t local = 0; local < ids.size(); ++local) {
        catalog::RowId gid = ids[local];
        ASSERT_LT(gid, root_data.row_count());
        if (local > 0) {
          EXPECT_LT(ids[local - 1], gid) << "local ids must be ascending";
        }
        EXPECT_EQ(owner[gid], -1) << "row " << gid << " assigned twice";
        owner[gid] = static_cast<int>(s);
        EXPECT_EQ(std::memcmp(slice.bytes().data() +
                                  local * slice.row_width(),
                              root_data.bytes().data() +
                                  static_cast<uint64_t>(gid) *
                                      root_data.row_width(),
                              root_data.row_width()),
                  0)
            << "row " << gid << " bytes differ on shard " << s;
      }
    }
    for (size_t r = 0; r < owner.size(); ++r) {
      EXPECT_NE(owner[r], -1) << "row " << r << " unassigned";
    }

    // Every non-root table is replicated byte-for-byte on every shard.
    for (catalog::TableId t = 0; t < schema.table_count(); ++t) {
      if (t == root) continue;
      for (uint32_t s = 0; s < shards; ++s) {
        EXPECT_EQ(parts->shards[s][t].bytes(), staged[t].bytes())
            << "table " << t << " shard " << s;
      }
    }
  }

  // shard_count == 1 degenerates to identity with empty (identity) id maps.
  auto one = core::PartitionStagedByRoot(schema, staged, 1);
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->shards.size(), 1u);
  EXPECT_TRUE(one->root_global_ids[0].empty());
  for (catalog::TableId t = 0; t < schema.table_count(); ++t) {
    EXPECT_EQ(one->shards[0][t].bytes(), staged[t].bytes());
  }

  EXPECT_FALSE(core::PartitionStagedByRoot(schema, staged, 0).ok());
}

TEST(ShardTest, PartitionAssignmentIsHiddenInvariant) {
  // The shard a root row lands on hashes its visible global id only, so
  // two databases differing ONLY in hidden data partition identically —
  // the property that keeps per-shard transcripts hidden-invariant.
  const uint64_t kVisible = 555;
  GhostDB a(ShardedFuzzConfig(kVisible, 1, /*retain_staged=*/true));
  GhostDB b(ShardedFuzzConfig(kVisible, 1, /*retain_staged=*/true));
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&a, kVisible, 111).ok());
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&b, kVisible, 999).ok());
  auto pa = core::PartitionStagedByRoot(a.schema(), a.staged(), 4);
  auto pb = core::PartitionStagedByRoot(b.schema(), b.staged(), 4);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa->root_global_ids, pb->root_global_ids);
}

// ---------------------------------------------------------------------------
// End-to-end answer invariance across shard counts
// ---------------------------------------------------------------------------

// The fixed battery: every execution shape the scatter-gather path must
// reassemble — row streams (merge by seq), DISTINCT / ORDER BY / LIMIT at
// the gather, scalar and grouped aggregates (partial combine), on_id
// predicates (global-id substitution on the untrusted side), and non-root
// anchors (complete on shard 0, no fanout).
const char* const kFixedQueries[] = {
    // Root-anchored row streams.
    "SELECT T0.id, T0.v FROM T0 WHERE T0.v < 100",
    "SELECT T0.v, T0.h FROM T0 WHERE T0.h < 80",
    "SELECT * FROM T0 WHERE T0.v < 60 AND T0.h > 20",
    // on_id predicates must see GLOBAL ids, not shard-local ones.
    "SELECT T0.id FROM T0 WHERE T0.id < 37",
    "SELECT T0.id, T0.v FROM T0 WHERE T0.id >= 100 AND T0.id < 140",
    // Relational tail above the gather merge.
    "SELECT T0.v FROM T0 WHERE T0.h < 90 ORDER BY T0.v DESC",
    "SELECT DISTINCT T0.v FROM T0 WHERE T0.h < 70",
    "SELECT T0.id, T0.v FROM T0 WHERE T0.v < 120 ORDER BY T0.v LIMIT 7",
    "SELECT DISTINCT T0.v FROM T0 ORDER BY T0.v DESC LIMIT 9",
    // Scalar aggregates: partials combined across shards (COUNT/SUM/AVG/
    // MIN/MAX, int and double).
    "SELECT COUNT(*) FROM T0 WHERE T0.h < 50",
    "SELECT SUM(T0.v), MIN(T0.h), MAX(T0.h), AVG(T0.v) FROM T0",
    "SELECT COUNT(*), SUM(T0.h) FROM T0 WHERE T0.v < 90",
    // Grouped aggregation: group order = ascending first-arrival seq,
    // reconstructed from per-shard first_seq.
    "SELECT T0.v, COUNT(*), SUM(T0.h) FROM T0 GROUP BY T0.v",
    "SELECT T0.v, AVG(T0.h) FROM T0 WHERE T0.h < 80 GROUP BY T0.v "
    "ORDER BY AVG(T0.h) DESC LIMIT 5",
    "SELECT T0.v, T0.h FROM T0 GROUP BY T0.v, T0.h",
    // Joins across the schema tree (anchor stays T0 -> still fanned out).
    "SELECT T0.id, T1.v FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.h < 60",
    "SELECT T0.v, T2.v FROM T0, T2 WHERE T0.fk2 = T2.id AND T0.h < 70 "
    "ORDER BY T0.v LIMIT 20",
    "SELECT T1.vs, COUNT(*) FROM T0, T1 WHERE T0.fk1 = T1.id "
    "GROUP BY T1.vs",
    "SELECT T0.id, T11.v FROM T0, T1, T11 WHERE T0.fk1 = T1.id AND "
    "T1.fk11 = T11.id AND T11.h < 50",
    // Non-root anchors: replicated tables, answered whole on shard 0.
    "SELECT T1.v, T1.vs FROM T1 WHERE T1.h < 60 ORDER BY T1.v",
    "SELECT T2.v, SUM(T2.bh) FROM T2 GROUP BY T2.v",
    "SELECT T11.v FROM T1, T11 WHERE T1.fk11 = T11.id AND T1.h < 50",
    "SELECT COUNT(*) FROM T12 WHERE T12.h < 40",
    // Hidden-empty results and double aggregates (±0.0 edge lives in dh).
    "SELECT T0.id FROM T0 WHERE T0.v < 0",
    "SELECT SUM(T11.dh), MIN(T11.dh) FROM T11",
};

TEST(ShardTest, FixedQueriesAreByteIdenticalAcrossShardCounts) {
  const uint64_t kVisible = 20070611;
  GhostDB one(ShardedFuzzConfig(kVisible, 1));
  GhostDB two(ShardedFuzzConfig(kVisible, 2));
  GhostDB four(ShardedFuzzConfig(kVisible, 4));
  for (GhostDB* db : {&one, &two, &four}) {
    ASSERT_TRUE(fuzztest::BuildFuzzDb(db, kVisible, 31337).ok());
  }
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(two.shard_count(), 2u);
  EXPECT_EQ(four.shard_count(), 4u);
  for (const char* sql : kFixedQueries) {
    ExpectShardInvariant({&one, &two, &four}, sql);
  }
}

TEST(ShardTest, ForcedSpillAnswersAreShardCountInvariant) {
  // One-buffer relational-tail budget: per-shard scatter legs AND the
  // gather tail spill to flash; the merged answer must not notice.
  const uint64_t kVisible = 90210;
  std::vector<std::unique_ptr<GhostDB>> dbs;
  std::vector<GhostDB*> raw;
  for (uint32_t shards : {1u, 2u, 4u}) {
    GhostDBConfig cfg = ShardedFuzzConfig(kVisible, shards);
    cfg.exec.sort_budget_buffers = 1;
    dbs.push_back(std::make_unique<GhostDB>(cfg));
    ASSERT_TRUE(fuzztest::BuildFuzzDb(dbs.back().get(), kVisible, 99).ok());
    raw.push_back(dbs.back().get());
  }
  for (const char* sql : {
           "SELECT T0.id, T0.h FROM T0 ORDER BY T0.h DESC",
           "SELECT DISTINCT T0.v, T0.h FROM T0 WHERE T0.h < 90",
           "SELECT T0.id, T0.v FROM T0 ORDER BY T0.v LIMIT 6",
           "SELECT T0.v, COUNT(*), SUM(T0.h) FROM T0 GROUP BY T0.v",
           "SELECT T0.v, T2.v, MAX(T0.h) FROM T0, T2 WHERE "
           "T0.fk2 = T2.id GROUP BY T0.v, T2.v ORDER BY MAX(T0.h) DESC "
           "LIMIT 10",
       }) {
    ExpectShardInvariant(raw, sql);
  }
}

TEST(ShardTest, PaddedVolumeModesAreShardCountInvariant) {
  // Worst-case padding targets the fleet-wide anchor row count at the
  // gather (not any shard's local count), so the padded volume — and the
  // stripped answer — must match the single-device run exactly.
  const uint64_t kVisible = 777;
  for (auto mode : {exec::VolumePadding::kQuantize,
                    exec::VolumePadding::kWorstCase}) {
    SCOPED_TRACE(static_cast<int>(mode));
    std::vector<std::unique_ptr<GhostDB>> dbs;
    std::vector<GhostDB*> raw;
    for (uint32_t shards : {1u, 3u}) {
      GhostDBConfig cfg = ShardedFuzzConfig(kVisible, shards);
      cfg.exec.volume_padding = mode;
      cfg.exec.pad_spill_runs = true;
      cfg.exec.sort_budget_buffers = 1;
      dbs.push_back(std::make_unique<GhostDB>(cfg));
      ASSERT_TRUE(
          fuzztest::BuildFuzzDb(dbs.back().get(), kVisible, 5).ok());
      raw.push_back(dbs.back().get());
    }
    for (const char* sql : {
             "SELECT T0.id FROM T0 WHERE T0.h < 40",
             "SELECT T0.v FROM T0 WHERE T0.h < 70 ORDER BY T0.v LIMIT 8",
             "SELECT T0.v, COUNT(*) FROM T0 GROUP BY T0.v",
             "SELECT COUNT(*) FROM T0 WHERE T0.h > 60",
         }) {
      SCOPED_TRACE(sql);
      auto r1 = raw[0]->Query(sql);
      auto r3 = raw[1]->Query(sql);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      ASSERT_TRUE(r3.ok()) << r3.status().ToString();
      ExpectSameAnswer(*r1, *r3, sql);
      // The defense itself must not weaken with the fleet: identical
      // observed volumes, not just identical answers.
      EXPECT_EQ(r1->metrics.padding_rows, r3->metrics.padding_rows) << sql;
    }
  }
}

TEST(ShardTest, SessionQueriesRunOnShardedFleets) {
  // A session pledges a RAM partition on EVERY shard; its queries take the
  // sharded path and answer identically to the database-level surface.
  const uint64_t kVisible = 13579;
  GhostDB one(ShardedFuzzConfig(kVisible, 1));
  GhostDB four(ShardedFuzzConfig(kVisible, 4));
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&one, kVisible, 21).ok());
  ASSERT_TRUE(fuzztest::BuildFuzzDb(&four, kVisible, 21).ok());
  core::SessionOptions opts;
  opts.name = "alice";
  opts.ram_quota_buffers = 8;
  auto session = four.OpenSession(std::move(opts));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (const char* sql : {
           "SELECT T0.id, T0.v FROM T0 WHERE T0.h < 60 ORDER BY T0.v",
           "SELECT T0.v, COUNT(*) FROM T0 GROUP BY T0.v",
           "SELECT T1.v FROM T1 WHERE T1.h < 50",
       }) {
    SCOPED_TRACE(sql);
    auto expected = one.Query(sql);
    auto got = (*session)->Query(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameAnswer(*expected, *got, sql);
  }
}

TEST(ShardTest, TinyRootLeavesSomeShardsEmpty) {
  // More shards than root rows: empty scatter legs must contribute nothing
  // (not garbage) to the merge and the partial combine.
  GhostDBConfig base;
  base.device.flash.logical_pages = 32 * 1024;
  GhostDBConfig sharded = base;
  sharded.shard_count = 4;
  GhostDB one(base), four(sharded);
  for (GhostDB* db : {&one, &four}) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE R (id INT, v INT, h INT HIDDEN)").ok());
    auto r = db->MutableStaging("R");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->AppendRow({Value::Int32(5), Value::Int32(50)}).ok());
    ASSERT_TRUE((*r)->AppendRow({Value::Int32(3), Value::Int32(30)}).ok());
    ASSERT_TRUE((*r)->AppendRow({Value::Int32(9), Value::Int32(90)}).ok());
    ASSERT_TRUE(db->Build().ok());
  }
  for (const char* sql : {
           "SELECT R.v FROM R",
           "SELECT R.v FROM R ORDER BY R.v DESC",
           "SELECT COUNT(*), SUM(R.h), MIN(R.h) FROM R",
           "SELECT R.id FROM R WHERE R.h > 200",
           "SELECT R.v, COUNT(*) FROM R GROUP BY R.v",
       }) {
    ExpectShardInvariant({&one, &four}, sql);
  }
}

TEST(ShardTest, FuzzedQueriesAreShardCountInvariant) {
  // Property sweep over the full generated query space (joins, aggregates,
  // GROUP BY, DISTINCT, ORDER BY, LIMIT, hidden/visible/on_id predicates):
  // fleets of 1, 2, and 4 shards over the same data must agree on every
  // answer and every data-dependent error kind.
  uint64_t queries = fuzztest::EnvOr("GHOSTDB_SHARD_FUZZ_ITERS", 60);
  uint64_t base_seed = fuzztest::EnvOr("GHOSTDB_SHARD_FUZZ_SEED", 20070611,
                                       /*allow_zero=*/true);
  const uint64_t kQueriesPerShape = 30;
  for (uint64_t done = 0; done < queries;) {
    uint64_t visible_seed = base_seed + 9000 * (done / kQueriesPerShape) + 3;
    GhostDB one(ShardedFuzzConfig(visible_seed, 1));
    GhostDB two(ShardedFuzzConfig(visible_seed, 2));
    GhostDB four(ShardedFuzzConfig(visible_seed, 4));
    for (GhostDB* db : {&one, &two, &four}) {
      ASSERT_TRUE(fuzztest::BuildFuzzDb(db, visible_seed, 424242).ok());
    }
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t i = 0; i < kQueriesPerShape && done < queries;
         ++i, ++done) {
      uint64_t query_seed = visible_seed ^ (i * 0x2545F491ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                          " query_seed=" + std::to_string(query_seed) +
                          " sql=" + sql;
      SCOPED_TRACE(repro);
      bool had_failure = ::testing::Test::HasFailure();
      ExpectShardInvariant({&one, &two, &four}, sql);
      if (!had_failure && ::testing::Test::HasFailure()) {
        std::ofstream out(fuzztest::FailureFile(), std::ios::app);
        out << "[shard] " << repro << "\n";
      }
    }
  }
}

}  // namespace
}  // namespace ghostdb

// Operator tests: Bloom filter calibration, Merge (streaming, reduction,
// sub-buffer), id sources.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "device/ram_manager.h"
#include "exec/bloom.h"
#include "exec/id_source.h"
#include "exec/merge.h"
#include "flash/flash.h"
#include "storage/btree.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::exec {
namespace {

using catalog::RowId;

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    flash::FlashConfig cfg;
    cfg.logical_pages = 16 * 1024;
    device_ = std::make_unique<flash::FlashDevice>(cfg, &clock_);
    allocator_ = std::make_unique<storage::PageAllocator>(device_.get());
    ram_ = std::make_unique<device::RamManager>(64 * 1024, 2048);
  }

  // Writes a sorted id run to flash.
  storage::RunRef MakeRun(const std::vector<RowId>& ids) {
    std::vector<uint8_t> buf(2048);
    storage::RunWriter w(device_.get(), allocator_.get(), buf.data(), "t");
    for (RowId id : ids) EXPECT_TRUE(w.AppendU32(id).ok());
    auto ref = w.Finish();
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  std::vector<RowId> RunMerge(std::vector<MergeGroup> groups,
                              MergeOverflowPolicy policy =
                                  MergeOverflowPolicy::kReduction) {
    MergeExec merge(device_.get(), ram_.get(), allocator_.get(), &clock_,
                    policy);
    std::vector<RowId> out;
    auto st = merge.Run(std::move(groups), [&](RowId id) {
      out.push_back(id);
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    last_stats_ = merge.stats();
    return out;
  }

  SimClock clock_;
  std::unique_ptr<flash::FlashDevice> device_;
  std::unique_ptr<storage::PageAllocator> allocator_;
  std::unique_ptr<device::RamManager> ram_;
  MergeStats last_stats_;
};

// --- Bloom ---

TEST_F(ExecTest, BloomNoFalseNegatives) {
  auto bloom = BloomFilter::Create(ram_.get(), 1000, 8);
  ASSERT_TRUE(bloom.ok());
  for (RowId id = 0; id < 1000; ++id) bloom->Insert(id * 3);
  for (RowId id = 0; id < 1000; ++id) {
    EXPECT_TRUE(bloom->MightContain(id * 3));
  }
}

TEST_F(ExecTest, BloomFprNearPaperCalibration) {
  // m/n = 8 with k = ln2*8 ≈ 5..6 hashes → fpr in the low percent range
  // (the paper quotes 0.024 with k=4).
  const uint64_t n = 10000;
  auto bloom = BloomFilter::Create(ram_.get(), n, 32);
  ASSERT_TRUE(bloom.ok());
  ASSERT_GE(bloom->bits_per_element(n), 8.0);
  for (RowId id = 0; id < n; ++id) bloom->Insert(id);
  uint64_t fp = 0;
  const uint64_t probes = 20000;
  for (RowId id = 0; id < probes; ++id) {
    if (bloom->MightContain(1000000 + id * 7)) ++fp;
  }
  double fpr = static_cast<double>(fp) / probes;
  EXPECT_LT(fpr, 0.05);
  EXPECT_NEAR(fpr, bloom->EstimatedFpr(n), 0.02);
}

TEST_F(ExecTest, BloomDegradesWhenRamCapped) {
  // 200k ids but only 4 buffers (8 KB = 65536 bits): m/n ≈ 0.33 → fpr high.
  const uint64_t n = 200000;
  auto bloom = BloomFilter::Create(ram_.get(), n, 4);
  ASSERT_TRUE(bloom.ok());
  EXPECT_EQ(bloom->buffers_used(), 4u);
  EXPECT_LT(bloom->bits_per_element(n), 1.0);
  EXPECT_GT(bloom->EstimatedFpr(n), 0.2);
}

TEST_F(ExecTest, BloomRamIsAccounted) {
  uint32_t before = ram_->free_buffers();
  {
    auto bloom = BloomFilter::Create(ram_.get(), 16 * 1024, 32);
    ASSERT_TRUE(bloom.ok());
    // 16Ki ids * 1 byte each = 8 buffers.
    EXPECT_EQ(before - ram_->free_buffers(), bloom->buffers_used());
  }
  EXPECT_EQ(ram_->free_buffers(), before);
}

// --- IdSources ---

TEST_F(ExecTest, VectorAndIotaSources) {
  VectorIdSource v({3, 7, 9});
  ASSERT_TRUE(v.Prime().ok());
  EXPECT_TRUE(v.valid());
  EXPECT_EQ(v.head(), 3u);
  ASSERT_TRUE(v.Advance().ok());
  EXPECT_EQ(v.head(), 7u);

  IotaIdSource iota(3);
  ASSERT_TRUE(iota.Prime().ok());
  std::vector<RowId> got;
  while (iota.valid()) {
    got.push_back(iota.head());
    ASSERT_TRUE(iota.Advance().ok());
  }
  EXPECT_EQ(got, std::vector<RowId>({0, 1, 2}));
}

// --- Merge ---

TEST_F(ExecTest, MergeSingleGroupUnion) {
  MergeGroup g;
  g.runs.push_back(MakeRun({1, 3, 5, 7}));
  g.runs.push_back(MakeRun({2, 3, 6}));
  g.ram_ids = {5, 6, 10};
  g.has_ram_ids = true;
  auto out = RunMerge({std::move(g)});
  EXPECT_EQ(out, std::vector<RowId>({1, 2, 3, 5, 6, 7, 10}));
}

TEST_F(ExecTest, MergeIntersectionOfGroups) {
  MergeGroup a, b;
  a.runs.push_back(MakeRun({1, 2, 3, 4, 5, 6}));
  b.runs.push_back(MakeRun({2, 4, 6, 8}));
  auto out = RunMerge({std::move(a), std::move(b)});
  EXPECT_EQ(out, std::vector<RowId>({2, 4, 6}));
}

TEST_F(ExecTest, MergeIntersectionOfUnions) {
  MergeGroup a, b;
  a.runs.push_back(MakeRun({1, 5}));
  a.runs.push_back(MakeRun({3, 7}));
  b.runs.push_back(MakeRun({3, 5, 9}));
  b.ram_ids = {1};
  b.has_ram_ids = true;
  auto out = RunMerge({std::move(a), std::move(b)});
  EXPECT_EQ(out, std::vector<RowId>({1, 3, 5}));
}

TEST_F(ExecTest, MergeEmptyGroupYieldsNothing) {
  MergeGroup a, b;
  a.runs.push_back(MakeRun({1, 2, 3}));
  // b empty.
  auto out = RunMerge({std::move(a), std::move(b)});
  EXPECT_TRUE(out.empty());
}

TEST_F(ExecTest, MergeWithIota) {
  MergeGroup a, b;
  a.has_iota = true;
  a.iota_n = 100;
  b.runs.push_back(MakeRun({5, 50, 99, 150}));
  auto out = RunMerge({std::move(a), std::move(b)});
  EXPECT_EQ(out, std::vector<RowId>({5, 50, 99}));
}

TEST_F(ExecTest, MergeDeduplicatesWithinGroup) {
  MergeGroup g;
  g.runs.push_back(MakeRun({1, 2, 2, 3}));
  g.runs.push_back(MakeRun({2, 3, 3}));
  auto out = RunMerge({std::move(g)});
  EXPECT_EQ(out, std::vector<RowId>({1, 2, 3}));
}

TEST_F(ExecTest, MergeManySublistsTriggersReduction) {
  // 100 runs with 32 buffers forces the reduction phase.
  Rng rng(5);
  std::set<RowId> expected;
  MergeGroup g;
  for (int i = 0; i < 100; ++i) {
    std::vector<RowId> ids;
    for (int j = 0; j < 50; ++j) {
      RowId id = static_cast<RowId>(rng.Uniform(10000));
      ids.push_back(id);
      expected.insert(id);
    }
    std::sort(ids.begin(), ids.end());
    g.runs.push_back(MakeRun(ids));
  }
  auto out = RunMerge({std::move(g)});
  EXPECT_EQ(out, std::vector<RowId>(expected.begin(), expected.end()));
  EXPECT_GT(last_stats_.reduction_rounds, 0u);
  EXPECT_GT(last_stats_.reduction_ids_written, 0u);
}

TEST_F(ExecTest, MergeReductionPreservesIntersection) {
  Rng rng(9);
  std::vector<RowId> big;
  for (RowId id = 0; id < 5000; ++id) big.push_back(id);
  MergeGroup a;  // 80 sublists covering [0,5000) with noise
  std::set<RowId> a_union;
  for (int i = 0; i < 80; ++i) {
    std::vector<RowId> ids;
    for (int j = 0; j < 120; ++j) {
      RowId id = static_cast<RowId>(rng.Uniform(5000));
      ids.push_back(id);
      a_union.insert(id);
    }
    std::sort(ids.begin(), ids.end());
    a.runs.push_back(MakeRun(ids));
  }
  MergeGroup b;
  std::vector<RowId> filter;
  for (RowId id = 0; id < 5000; id += 3) filter.push_back(id);
  b.runs.push_back(MakeRun(filter));

  std::vector<RowId> expected;
  for (RowId id : filter) {
    if (a_union.count(id)) expected.push_back(id);
  }
  auto out = RunMerge({std::move(a), std::move(b)});
  EXPECT_EQ(out, expected);
}

TEST_F(ExecTest, SubBufferPolicyAvoidsTempWrites) {
  Rng rng(5);
  auto make_group = [&]() {
    MergeGroup g;
    for (int i = 0; i < 60; ++i) {
      std::vector<RowId> ids;
      for (int j = 0; j < 40; ++j) {
        ids.push_back(static_cast<RowId>(rng.Uniform(10000)));
      }
      std::sort(ids.begin(), ids.end());
      g.runs.push_back(MakeRun(ids));
    }
    return g;
  };
  // Same inputs twice (deterministic rng per call order).
  Rng rng_a(5);
  rng = Rng(5);
  auto g1 = make_group();
  rng = Rng(5);
  auto g2 = make_group();

  uint64_t writes_before = device_->stats().pages_written;
  auto out1 = RunMerge({std::move(g1)}, MergeOverflowPolicy::kReduction);
  uint64_t reduction_writes =
      device_->stats().pages_written - writes_before;

  writes_before = device_->stats().pages_written;
  auto out2 = RunMerge({std::move(g2)}, MergeOverflowPolicy::kSubBuffer);
  uint64_t subbuffer_writes =
      device_->stats().pages_written - writes_before;

  EXPECT_EQ(out1, out2);
  EXPECT_GT(reduction_writes, 0u);
  EXPECT_EQ(subbuffer_writes, 0u);
}

TEST_F(ExecTest, MergeRespectsReserveBuffers) {
  MergeGroup g;
  for (int i = 0; i < 40; ++i) {
    g.runs.push_back(MakeRun({static_cast<RowId>(i)}));
  }
  MergeExec merge(device_.get(), ram_.get(), allocator_.get(), &clock_);
  // Reserve so much that reduction must kick in even for 40 streams.
  std::vector<RowId> out;
  auto hold = ram_->Acquire(10, "downstream");
  ASSERT_TRUE(hold.ok());
  std::vector<MergeGroup> groups;
  groups.push_back(std::move(g));
  auto st = merge.Run(
      std::move(groups),
      [&](RowId id) {
        out.push_back(id);
        return Status::OK();
      },
      /*reserve_buffers=*/5);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out.size(), 40u);
  EXPECT_GT(merge.stats().reduction_rounds, 0u);
}

TEST_F(ExecTest, MergeFreesTemporaryPages) {
  Rng rng(3);
  MergeGroup g;
  for (int i = 0; i < 100; ++i) {
    std::vector<RowId> ids;
    for (int j = 0; j < 60; ++j) {
      ids.push_back(static_cast<RowId>(rng.Uniform(100000)));
    }
    std::sort(ids.begin(), ids.end());
    g.runs.push_back(MakeRun(ids));
  }
  RunMerge({std::move(g)});
  // All merge-tmp pages must be back.
  auto it = allocator_->usage_by_tag().find("merge-tmp");
  if (it != allocator_->usage_by_tag().end()) {
    EXPECT_EQ(it->second, 0);
  }
  // Input runs are freed as well.
  EXPECT_EQ(allocator_->usage_by_tag().at("t"), 0);
}

TEST_F(ExecTest, MergeChargesMergeCategoryOnly) {
  MergeGroup g;
  g.runs.push_back(MakeRun({1, 2, 3}));
  auto scope = clock_.Enter("merge");
  SimNanos before = clock_.Category("merge");
  RunMerge({std::move(g)});
  EXPECT_GT(clock_.Category("merge"), before);
}

}  // namespace
}  // namespace ghostdb::exec

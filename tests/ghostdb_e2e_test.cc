// End-to-end tests: full SQL queries through GhostDB, answers checked
// against the reference oracle, under every strategy and projection
// algorithm. Also covers RAM-budget, temp-space, and metric invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "core/database.h"
#include "plan/strategy.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;
using plan::PlanChoice;
using plan::ProjectAlgo;
using plan::VisStrategy;

// Builds the paper's Fig 3 tree with deterministic random data.
//   T0(2000) -> T1(400) -> {T11(80), T12(60)}, T0 -> T2(100)
// Columns: per table a visible int v, a hidden int h; T1 adds a visible
// string vs; T0 adds a hidden string hs. All FKs hidden.
class E2eTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kT0 = 2000, kT1 = 400, kT2 = 100, kT11 = 80,
                            kT12 = 60;

  void BuildDb(GhostDB* db, uint64_t seed = 42, bool hidden_tweak = false) {
    ASSERT_TRUE(db->Execute("CREATE TABLE T11 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(db->Execute("CREATE TABLE T12 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(db->Execute("CREATE TABLE T2 (id INT, v INT, h INT HIDDEN)")
                    .ok());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE T1 (id INT, fk11 INT REFERENCES T11 "
                    "HIDDEN, fk12 INT REFERENCES T12 HIDDEN, v INT, "
                    "vs CHAR(8), h INT HIDDEN)")
            .ok());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE T0 (id INT, fk1 INT REFERENCES T1 HIDDEN, "
                    "fk2 INT REFERENCES T2 HIDDEN, v INT, h INT HIDDEN, "
                    "hs CHAR(8) HIDDEN)")
            .ok());

    Rng rng(seed);
    auto rint = [&](int bound) {
      return Value::Int32(static_cast<int32_t>(rng.Uniform(bound)));
    };
    auto rstr = [&](const char* prefix) {
      return Value::String(std::string(prefix) +
                           std::to_string(rng.Uniform(50)));
    };
    int tweak = hidden_tweak ? 1000000 : 0;
    auto rhid = [&](int bound) {
      return Value::Int32(static_cast<int32_t>(rng.Uniform(bound)) + tweak);
    };

    auto stage = [&](const char* name, uint32_t n, auto make_row) {
      auto data = db->MutableStaging(name);
      ASSERT_TRUE(data.ok());
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_TRUE((*data)->AppendRow(make_row(i)).ok());
      }
    };
    stage("T11", kT11, [&](uint32_t) {
      return std::vector<Value>{rint(100), rhid(100)};
    });
    stage("T12", kT12, [&](uint32_t) {
      return std::vector<Value>{rint(100), rhid(100)};
    });
    stage("T2", kT2, [&](uint32_t) {
      return std::vector<Value>{rint(100), rhid(100)};
    });
    stage("T1", kT1, [&](uint32_t) {
      return std::vector<Value>{rint(kT11), rint(kT12), rint(100),
                                rstr("s"), rhid(100)};
    });
    stage("T0", kT0, [&](uint32_t) {
      return std::vector<Value>{rint(kT1), rint(kT2), rint(100), rhid(100),
                                rstr("h")};
    });
    ASSERT_TRUE(db->Build().ok());
  }

  GhostDBConfig SmallConfig() {
    GhostDBConfig cfg;
    cfg.device.flash.logical_pages = 32 * 1024;  // 64 MiB
    cfg.retain_staged_data = true;
    return cfg;
  }

  // Runs `sql` through GhostDB (optionally pinned) and the oracle; expects
  // identical rows.
  void ExpectMatchesOracle(GhostDB* db, const std::string& sql,
                           const PlanChoice* pinned = nullptr,
                           uint64_t* rows_out = nullptr) {
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected =
        reference::Evaluate(db->schema(), db->staged(), *bound);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    auto got = pinned ? db->QueryWithPlan(sql, *pinned) : db->Query(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
    ASSERT_EQ(got->total_rows, expected->size()) << sql;
    ASSERT_EQ(got->rows.size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ(got->rows[i].size(), (*expected)[i].size());
      for (size_t j = 0; j < (*expected)[i].size(); ++j) {
        ASSERT_EQ(got->rows[i][j], (*expected)[i][j])
            << sql << " row " << i << " col " << j;
      }
    }
    if (rows_out != nullptr) *rows_out = got->total_rows;
  }
};

TEST_F(E2eTest, SingleTableHiddenEquality) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T12.id FROM T12 WHERE T12.h = 17");
}

TEST_F(E2eTest, SingleTableHiddenRange) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T12.id FROM T12 WHERE T12.h < 30");
}

TEST_F(E2eTest, SingleTableVisibleOnly) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T1.id FROM T1 WHERE T1.v = 5");
}

TEST_F(E2eTest, SingleTableMixedPredicates) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T1.id FROM T1 WHERE T1.v < 50 AND T1.h >= 40");
}

TEST_F(E2eTest, SingleTableStarProjection) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT * FROM T12 WHERE T12.h < 25");
}

TEST_F(E2eTest, PaperQueryQ) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  uint64_t rows = 0;
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T1.id, T12.id, T1.v FROM T0, T1, T12 "
                      "WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND "
                      "T1.v < 30 AND T12.h < 20",
                      nullptr, &rows);
  EXPECT_GT(rows, 0u);
}

TEST_F(E2eTest, ThreeWayJoinRootSelection) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id "
                      "AND T1.fk12 = T12.id AND T1.v < 40 AND T12.h = 9 "
                      "AND T0.h < 50");
}

TEST_F(E2eTest, SubtreeQueryAnchoredAtT1) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T1.id, T12.id FROM T1, T12 WHERE "
                      "T1.fk12 = T12.id AND T1.v < 20 AND T12.h < 35");
}

TEST_F(E2eTest, JoinWithNoPredicates) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T0.id, T2.id FROM T0, T2 WHERE T0.fk2 = T2.id");
}

TEST_F(E2eTest, HiddenOnlyPredicates) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND "
                      "T1.h = 3");
}

TEST_F(E2eTest, NotEqualPredicate) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T12.id FROM T12 WHERE T12.h <> 50 AND T12.h < 55");
}

TEST_F(E2eTest, BetweenPredicate) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T1.id FROM T1 WHERE T1.h BETWEEN 20 AND 29");
}

TEST_F(E2eTest, StringPredicateAndProjection) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(
      &db, "SELECT T1.id, T1.vs FROM T1 WHERE T1.vs = 's7' AND T1.h < 80");
}

TEST_F(E2eTest, HiddenStringProjection) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T0.hs FROM T0, T1 WHERE "
                      "T0.fk1 = T1.id AND T1.h < 10");
}

TEST_F(E2eTest, FourTableJoin) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T11.id, T12.id FROM T0, T1, T11, T12 "
                      "WHERE T0.fk1 = T1.id AND T1.fk11 = T11.id AND "
                      "T1.fk12 = T12.id AND T11.h < 40 AND T12.h < 40 AND "
                      "T0.v < 50");
}

TEST_F(E2eTest, ProjectionFromEveryLevel) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db,
                      "SELECT T0.v, T0.h, T1.vs, T1.h, T12.v, T12.h "
                      "FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
                      "T1.fk12 = T12.id AND T1.v < 25 AND T12.h < 30");
}

// Every visible strategy must give the same (oracle) answer.
class StrategyTest : public E2eTest,
                     public ::testing::WithParamInterface<VisStrategy> {};

TEST_P(StrategyTest, PaperQueryUnderStrategy) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto t1 = db.schema().FindTable("T1");
  ASSERT_TRUE(t1.ok());
  PlanChoice plan;
  plan.vis[*t1] = GetParam();
  plan.project = ProjectAlgo::kProject;
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T1.id, T12.id, T1.v FROM T0, T1, T12 "
                      "WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND "
                      "T1.v < 30 AND T12.h < 20",
                      &plan);
}

TEST_P(StrategyTest, HighSelectivityUnderStrategy) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto t1 = db.schema().FindTable("T1");
  ASSERT_TRUE(t1.ok());
  PlanChoice plan;
  plan.vis[*t1] = GetParam();
  plan.project = ProjectAlgo::kProject;
  // sV ≈ 0.9: stresses bloom degradation and post paths.
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T1.v FROM T0, T1, T12 WHERE "
                      "T0.fk1 = T1.id AND T1.fk12 = T12.id AND "
                      "T1.v < 90 AND T12.h < 50",
                      &plan);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Values(VisStrategy::kPreFilter, VisStrategy::kCrossPreFilter,
                      VisStrategy::kPostFilter,
                      VisStrategy::kCrossPostFilter,
                      VisStrategy::kPostSelect, VisStrategy::kNoFilter),
    [](const ::testing::TestParamInfo<VisStrategy>& info) {
      std::string name(plan::VisStrategyName(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// Every projection algorithm must give the same answer.
class ProjectionTest : public E2eTest,
                       public ::testing::WithParamInterface<ProjectAlgo> {};

TEST_P(ProjectionTest, ValuesFromAllTables) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto t1 = db.schema().FindTable("T1");
  ASSERT_TRUE(t1.ok());
  PlanChoice plan;
  plan.vis[*t1] = VisStrategy::kCrossPostFilter;
  plan.project = GetParam();
  ExpectMatchesOracle(&db,
                      "SELECT T0.id, T0.h, T1.vs, T12.v, T12.h FROM "
                      "T0, T1, T12 WHERE T0.fk1 = T1.id AND "
                      "T1.fk12 = T12.id AND T1.v < 35 AND T12.h < 45",
                      &plan);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ProjectionTest,
    ::testing::Values(ProjectAlgo::kProject, ProjectAlgo::kProjectNoBF,
                      ProjectAlgo::kBruteForce),
    [](const ::testing::TestParamInfo<ProjectAlgo>& info) {
      std::string name(plan::ProjectAlgoName(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST_F(E2eTest, RamBudgetNeverExceeded) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto r = db.Query(
      "SELECT T0.id, T1.v FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
      "T1.fk12 = T12.id AND T1.v < 70 AND T12.h < 50");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->metrics.peak_ram_buffers, 32u);
  EXPECT_GT(r->metrics.peak_ram_buffers, 0u);
}

TEST_F(E2eTest, MetricsArePopulated) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto r = db.Query(
      "SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v < 40 AND "
      "T1.h < 40");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->metrics.total_ns, 0u);
  EXPECT_GT(r->metrics.flash.pages_read, 0u);
  EXPECT_GT(r->metrics.bytes_to_secure, 0u);
  EXPECT_GT(r->metrics.bytes_to_untrusted, 0u);  // the query text
}

TEST_F(E2eTest, DeterministicSimulatedTime) {
  GhostDB db1(SmallConfig()), db2(SmallConfig());
  BuildDb(&db1);
  BuildDb(&db2);
  const char* sql =
      "SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v < 30 AND "
      "T1.h < 60";
  auto r1 = db1.Query(sql);
  auto r2 = db2.Query(sql);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->metrics.total_ns, r2->metrics.total_ns);
  EXPECT_EQ(r1->metrics.flash.pages_read, r2->metrics.flash.pages_read);
}

TEST_F(E2eTest, ExplainDescribesPlan) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  auto text = db.Explain(
      "SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
      "T1.fk12 = T12.id AND T1.v < 5 AND T12.h < 20");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("anchor T0"), std::string::npos);
  EXPECT_NE(text->find("T1 visible selection"), std::string::npos);
  EXPECT_NE(text->find("Project"), std::string::npos);
}

TEST_F(E2eTest, UnindexedHiddenAttributeFallsBackToScan) {
  GhostDBConfig cfg = SmallConfig();
  cfg.loader.indexed_attrs.emplace();  // index nothing
  GhostDB db(cfg);
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T12.id FROM T12 WHERE T12.h < 30");
  ExpectMatchesOracle(&db,
                      "SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND "
                      "T1.h = 3");
}

TEST_F(E2eTest, QueriesBeforeBuildFail) {
  GhostDB db(SmallConfig());
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id INT, x INT)").ok());
  EXPECT_TRUE(db.Query("SELECT a.id FROM a").status().IsInvalidArgument());
}

TEST_F(E2eTest, InsertsAfterBuildRejected) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  EXPECT_TRUE(
      db.Execute("INSERT INTO T2 VALUES (1, 2)").IsNotSupported());
}

TEST_F(E2eTest, EmptyResultQueries) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  ExpectMatchesOracle(&db, "SELECT T12.id FROM T12 WHERE T12.h = -5");
  ExpectMatchesOracle(&db,
                      "SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND "
                      "T1.v = -1 AND T1.h = 3");
}

TEST_F(E2eTest, ResultRowLimitKeepsCountExact) {
  GhostDBConfig cfg = SmallConfig();
  cfg.exec.result_row_limit = 5;
  GhostDB db(cfg);
  BuildDb(&db);
  auto r = db.Query("SELECT T0.id FROM T0 WHERE T0.h < 90");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);
  EXPECT_GT(r->total_rows, 100u);
}

TEST_F(E2eTest, StorageReportListsStructures) {
  GhostDB db(SmallConfig());
  BuildDb(&db);
  std::string report = db.StorageReport();
  EXPECT_NE(report.find("skt:T0"), std::string::npos);
  EXPECT_NE(report.find("hidden:T0"), std::string::npos);
  EXPECT_NE(report.find("ci:T1.id"), std::string::npos);
}

// Property sweep: random small databases and random queries, GhostDB vs
// oracle, planner-chosen strategies.
class RandomQueryTest : public E2eTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(RandomQueryTest, MatchesOracle) {
  GhostDB db(SmallConfig());
  BuildDb(&db, /*seed=*/1000 + GetParam());
  Rng rng(7000 + GetParam());
  const char* tables[] = {"T0", "T1", "T12"};
  for (int q = 0; q < 4; ++q) {
    int vis_cut = static_cast<int>(rng.Uniform(100)) + 1;
    int hid_cut = static_cast<int>(rng.Uniform(100)) + 1;
    std::string sql;
    switch (rng.Uniform(3)) {
      case 0:
        sql = std::string("SELECT ") + tables[rng.Uniform(3)] +
              ".id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
              "T1.fk12 = T12.id AND T1.v < " +
              std::to_string(vis_cut) + " AND T12.h < " +
              std::to_string(hid_cut);
        break;
      case 1:
        sql = "SELECT T1.id, T1.h FROM T1 WHERE T1.v >= " +
              std::to_string(vis_cut) + " AND T1.h <= " +
              std::to_string(hid_cut);
        break;
      default:
        sql = "SELECT T0.id, T0.h, T1.vs FROM T0, T1 WHERE "
              "T0.fk1 = T1.id AND T0.v < " +
              std::to_string(vis_cut) + " AND T1.h < " +
              std::to_string(hid_cut);
        break;
    }
    ExpectMatchesOracle(&db, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace ghostdb

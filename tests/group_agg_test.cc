// Grouped aggregation end to end: GROUP BY parsing/binding, the
// GroupAggregateOp hash and spill-overflow paths (byte-identical output),
// grouped ORDER BY/LIMIT over keys and aggregate outputs, and the
// aggregate-semantics edges — empty/all-filtered inputs for every AggFunc
// (GhostDB's no-NULL rule: value aggregates over an empty input yield an
// empty result), overflow-checked integer SUM, and checked COUNT
// narrowing — all cross-checked against the reference oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/rng.h"
#include "core/database.h"
#include "exec/aggregate.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using catalog::DataType;
using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;
using exec::AggFunc;
using exec::Aggregator;

// --- Aggregator edge semantics (satellite bugfixes) ---

TEST(AggregatorEdgeTest, EveryValueAggregateFailsOnEmptyInput) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                    AggFunc::kMax}) {
    EXPECT_TRUE(exec::AggRequiresInput(f));
    Aggregator a(f, DataType::kInt32);
    EXPECT_FALSE(a.has_input());
    EXPECT_TRUE(a.Finish().status().IsNotFound())
        << exec::AggFuncName(f) << " over empty input must have no result";
  }
}

TEST(AggregatorEdgeTest, CountsOverEmptyInputAreZero) {
  for (AggFunc f : {AggFunc::kCountStar, AggFunc::kCount}) {
    EXPECT_FALSE(exec::AggRequiresInput(f));
    Aggregator a(f, DataType::kInt32);
    auto v = a.Finish();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt64(), 0);
  }
}

TEST(AggregatorEdgeTest, SumOverflowFailsInsteadOfWrapping) {
  // Value path: INT64_MAX + 1 must not wrap to a negative total.
  Aggregator a(AggFunc::kSum, DataType::kInt64);
  ASSERT_TRUE(a.Accumulate(Value::Int64(INT64_MAX)).ok());
  EXPECT_TRUE(a.Accumulate(Value::Int64(1)).IsOutOfRange());
  // The boundary itself is fine.
  Aggregator b(AggFunc::kSum, DataType::kInt64);
  ASSERT_TRUE(b.Accumulate(Value::Int64(INT64_MAX - 5)).ok());
  ASSERT_TRUE(b.Accumulate(Value::Int64(5)).ok());
  EXPECT_EQ(b.Finish()->AsInt64(), INT64_MAX);
}

TEST(AggregatorEdgeTest, SumNegativeOverflowFails) {
  Aggregator a(AggFunc::kSum, DataType::kInt64);
  ASSERT_TRUE(a.Accumulate(Value::Int64(INT64_MIN)).ok());
  EXPECT_TRUE(a.Accumulate(Value::Int64(-1)).IsOutOfRange());
}

TEST(AggregatorEdgeTest, SumOverflowFailsIdenticallyInEncodedPath) {
  Aggregator a(AggFunc::kSum, DataType::kInt64, 8);
  uint8_t cell[8];
  EncodeFixed64(cell, static_cast<uint64_t>(INT64_MAX));
  ASSERT_TRUE(a.AccumulateEncoded(cell).ok());
  EncodeFixed64(cell, 1);
  EXPECT_TRUE(a.AccumulateEncoded(cell).IsOutOfRange());
}

TEST(AggregatorEdgeTest, SumInt32InputsOverflowCheckedToo) {
  // An INT column sums into the same INT64 accumulator; mixing in a value
  // that saturates it must trip the check on the next int32 add.
  Aggregator a(AggFunc::kSum, DataType::kInt32);
  ASSERT_TRUE(a.Accumulate(Value::Int64(INT64_MAX)).ok());
  EXPECT_TRUE(a.Accumulate(Value::Int32(1)).IsOutOfRange());
}

TEST(AggregatorEdgeTest, AvgDoesNotUseTheIntAccumulator) {
  // AVG sums in double (its output type): INT64-extreme inputs must not
  // trip the SUM overflow check.
  Aggregator a(AggFunc::kAvg, DataType::kInt64);
  ASSERT_TRUE(a.Accumulate(Value::Int64(INT64_MAX)).ok());
  ASSERT_TRUE(a.Accumulate(Value::Int64(INT64_MAX)).ok());
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->AsDouble(), static_cast<double>(INT64_MAX), 1e4);
}

TEST(AggregatorEdgeTest, CountStaysExactAndNonNegative) {
  // The internal counter is u64 with a checked narrowing to the INT64
  // result (a pathological > INT64_MAX count fails with OutOfRange rather
  // than going negative); normal counts round-trip exactly.
  Aggregator a(AggFunc::kCountStar, DataType::kInt32);
  for (int i = 0; i < 1000; ++i) a.AccumulateRow();
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), DataType::kInt64);
  EXPECT_EQ(v->AsInt64(), 1000);
}

// --- SQL surface ---

TEST(GroupBySqlTest, ParsesGroupByAndAggregateOrderKeys) {
  auto stmt = sql::Parse(
      "SELECT t.a, t.b, COUNT(*), SUM(t.c) FROM t GROUP BY t.a, t.b "
      "ORDER BY COUNT(*) DESC, SUM(t.c), t.a LIMIT 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto& select = std::get<sql::SelectStmt>(*stmt);
  ASSERT_EQ(select.group_by.size(), 2u);
  EXPECT_EQ(select.group_by[0].ToString(), "t.a");
  EXPECT_EQ(select.group_by[1].ToString(), "t.b");
  ASSERT_EQ(select.order_by.size(), 3u);
  EXPECT_EQ(select.order_by[0].agg, AggFunc::kCountStar);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.order_by[1].agg, AggFunc::kSum);
  EXPECT_EQ(select.order_by[1].column.ToString(), "t.c");
  EXPECT_EQ(select.order_by[2].agg, AggFunc::kNone);
}

TEST(GroupBySqlTest, RejectsMalformedGroupBy) {
  EXPECT_FALSE(sql::Parse("SELECT t.a FROM t GROUP t.a").ok());
  EXPECT_FALSE(sql::Parse("SELECT t.a FROM t GROUP BY").ok());
  EXPECT_FALSE(sql::Parse("SELECT t.a FROM t GROUP BY SUM(t.a)").ok());
}

// --- End-to-end fixture ---

GhostDBConfig MakeConfig(uint32_t sort_budget_buffers = 0,
                         bool spill_enabled = true) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.retain_staged_data = true;
  cfg.exec.sort_budget_buffers = sort_budget_buffers;
  cfg.exec.spill_enabled = spill_enabled;
  return cfg;
}

// Two-table schema exercising every key type: INT keys with few and many
// distinct values, a DOUBLE column holding exact +0.0 / -0.0 (the
// non-canonical-encoding edge), and a hidden BIGINT near the INT64
// extremes for the SUM overflow surface.
void BuildDb(GhostDB* db) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Dim (id INT, v INT, h INT HIDDEN)").ok());
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                  "v INT, d DOUBLE, h INT HIDDEN, bh BIGINT HIDDEN)")
          .ok());
  Rng rng(20260729);
  auto dim = db->MutableStaging("Dim");
  ASSERT_TRUE(dim.ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        (*dim)
            ->AppendRow({Value::Int32(static_cast<int32_t>(rng.Uniform(12))),
                         Value::Int32(static_cast<int32_t>(rng.Uniform(90)))})
            .ok());
  }
  auto fact = db->MutableStaging("Fact");
  ASSERT_TRUE(fact.ok());
  for (int i = 0; i < 800; ++i) {
    uint64_t zero_pick = rng.Uniform(6);
    Value d = zero_pick == 0 ? Value::Double(0.0)
              : zero_pick == 1
                  ? Value::Double(-0.0)
                  : Value::Double(static_cast<double>(rng.Uniform(7)) + 0.5);
    ASSERT_TRUE(
        (*fact)
            ->AppendRow(
                {Value::Int32(static_cast<int32_t>(rng.Uniform(60))),
                 Value::Int32(static_cast<int32_t>(rng.Uniform(40))),
                 std::move(d),
                 Value::Int32(static_cast<int32_t>(rng.Uniform(100))),
                 Value::Int64(INT64_MAX / 4 +
                              static_cast<int64_t>(rng.Uniform(1000)))})
            .ok());
  }
  ASSERT_TRUE(db->Build().ok());
}

class GroupAggE2eTest : public ::testing::Test {
 protected:
  GroupAggE2eTest() {
    db_ = std::make_unique<GhostDB>(MakeConfig());
    BuildDb(db_.get());
  }

  void ExpectMatchesOracle(const std::string& sql, GhostDB* db = nullptr) {
    if (db == nullptr) db = db_.get();
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected = reference::Evaluate(db->schema(), db->staged(), *bound);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto got = db->Query(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n" << sql;
    EXPECT_EQ(got->total_rows, expected->size()) << sql;
    ASSERT_EQ(got->rows.size(), expected->size()) << sql;
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ(got->rows[i].size(), (*expected)[i].size()) << sql;
      for (size_t j = 0; j < (*expected)[i].size(); ++j) {
        if ((*expected)[i][j].type() == DataType::kDouble) {
          EXPECT_NEAR(got->rows[i][j].AsDouble(),
                      (*expected)[i][j].AsDouble(), 1e-9)
              << sql << " row " << i << " col " << j;
        } else {
          EXPECT_EQ(got->rows[i][j], (*expected)[i][j])
              << sql << " row " << i << " col " << j;
        }
      }
    }
  }

  std::unique_ptr<GhostDB> db_;
};

TEST_F(GroupAggE2eTest, SingleKeySumMatchesOracle) {
  ExpectMatchesOracle(
      "SELECT Fact.v, SUM(Fact.h) FROM Fact WHERE Fact.h < 80 "
      "GROUP BY Fact.v");
}

TEST_F(GroupAggE2eTest, TwoKeysAcrossJoinWithOrderAndLimit) {
  ExpectMatchesOracle(
      "SELECT Fact.v, Dim.v, COUNT(*), MIN(Fact.h) FROM Fact, Dim WHERE "
      "Fact.fk = Dim.id AND Dim.h < 70 GROUP BY Fact.v, Dim.v "
      "ORDER BY Fact.v DESC, Dim.v LIMIT 9");
}

TEST_F(GroupAggE2eTest, OrderByAggregateOutputs) {
  ExpectMatchesOracle(
      "SELECT Fact.v, COUNT(*), AVG(Fact.h) FROM Fact GROUP BY Fact.v "
      "ORDER BY COUNT(*) DESC, AVG(Fact.h) LIMIT 6");
}

TEST_F(GroupAggE2eTest, EveryAggFuncGrouped) {
  ExpectMatchesOracle(
      "SELECT Fact.v, COUNT(*), COUNT(Fact.h), SUM(Fact.h), AVG(Fact.h), "
      "MIN(Fact.h), MAX(Fact.h) FROM Fact WHERE Fact.v < 30 "
      "GROUP BY Fact.v");
}

TEST_F(GroupAggE2eTest, DoubleKeyWithSignedZerosGroupsByValue) {
  // +0.0 and -0.0 encode differently but compare equal: they must land in
  // one group on both the engine and the oracle.
  ExpectMatchesOracle(
      "SELECT Fact.d, COUNT(*) FROM Fact GROUP BY Fact.d");
  ExpectMatchesOracle(
      "SELECT Fact.d, SUM(Fact.h) FROM Fact WHERE Fact.h < 50 "
      "GROUP BY Fact.d ORDER BY Fact.d");
}

TEST_F(GroupAggE2eTest, GroupByHiddenKey) {
  ExpectMatchesOracle(
      "SELECT Fact.h, COUNT(*) FROM Fact WHERE Fact.v < 20 "
      "GROUP BY Fact.h ORDER BY COUNT(*) DESC, Fact.h LIMIT 10");
}

TEST_F(GroupAggE2eTest, GroupByWithoutAggregates) {
  // Pure key grouping: one row per distinct key, first-arrival order.
  ExpectMatchesOracle(
      "SELECT Fact.v FROM Fact WHERE Fact.h < 50 GROUP BY Fact.v");
}

TEST_F(GroupAggE2eTest, GroupedOverEmptyInputYieldsNoRows) {
  ExpectMatchesOracle(
      "SELECT Fact.v, COUNT(*), SUM(Fact.h) FROM Fact WHERE Fact.h < 0 "
      "GROUP BY Fact.v");
  auto r = db_->Query(
      "SELECT Fact.v, COUNT(*) FROM Fact WHERE Fact.h < 0 GROUP BY Fact.v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_rows, 0u);
}

TEST_F(GroupAggE2eTest, EmptyInputSemanticsPerAggFunc) {
  // GhostDB has no NULLs: whole-result value aggregates over an empty
  // (all-filtered) input yield an empty result; COUNTs yield their zero
  // row. Both asserted directly and via the oracle.
  for (const char* agg : {"SUM(Fact.h)", "AVG(Fact.h)", "MIN(Fact.h)",
                          "MAX(Fact.h)", "MIN(Fact.d)", "MAX(Fact.bh)"}) {
    std::string sql = std::string("SELECT ") + agg +
                      " FROM Fact WHERE Fact.h < 0";
    SCOPED_TRACE(sql);
    ExpectMatchesOracle(sql);
    auto r = db_->Query(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->total_rows, 0u);
  }
  for (const char* agg : {"COUNT(*)", "COUNT(Fact.h)"}) {
    std::string sql = std::string("SELECT ") + agg +
                      " FROM Fact WHERE Fact.h < 0";
    SCOPED_TRACE(sql);
    ExpectMatchesOracle(sql);
    auto r = db_->Query(sql);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsInt64(), 0);
  }
  // Mixed COUNT + value aggregate over empty input: the value aggregate
  // wins — no row.
  ExpectMatchesOracle(
      "SELECT COUNT(*), MIN(Fact.h) FROM Fact WHERE Fact.h < 0");
}

TEST_F(GroupAggE2eTest, SumOverflowSurfacesAsOutOfRangeInBothEngines) {
  // bh sits near INT64_MAX/4, so any SUM over >= 5 rows overflows; the
  // engine and the oracle must agree on the failure kind instead of
  // returning a silently wrapped total.
  const std::string sql = "SELECT SUM(Fact.bh) FROM Fact";
  auto got = db_->Query(sql);
  EXPECT_TRUE(got.status().IsOutOfRange()) << got.status().ToString();
  auto stmt = sql::Parse(sql);
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(std::get<sql::SelectStmt>(*stmt), db_->schema(),
                         sql);
  ASSERT_TRUE(bound.ok());
  auto expected = reference::Evaluate(db_->schema(), db_->staged(), *bound);
  EXPECT_TRUE(expected.status().IsOutOfRange())
      << expected.status().ToString();
  // Grouped SUM over the same column: per-group subtotals (~13 rows per
  // group) still overflow.
  auto grouped = db_->Query(
      "SELECT Fact.v, SUM(Fact.bh) FROM Fact GROUP BY Fact.v");
  EXPECT_TRUE(grouped.status().IsOutOfRange())
      << grouped.status().ToString();
  // MIN/MAX over the same extremes stay exact.
  ExpectMatchesOracle(
      "SELECT Fact.v, MIN(Fact.bh), MAX(Fact.bh) FROM Fact GROUP BY Fact.v");
}

TEST_F(GroupAggE2eTest, PlanShowsGroupAggregateAndCaches) {
  auto explain = db_->Explain(
      "EXPLAIN SELECT Fact.v, COUNT(*) FROM Fact GROUP BY Fact.v");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("GroupAggregate"), std::string::npos) << *explain;
  // Shape-cached like every other plan: the second execution hits.
  const std::string sql =
      "SELECT Fact.v, SUM(Fact.h) FROM Fact WHERE Fact.h < 42 "
      "GROUP BY Fact.v ORDER BY SUM(Fact.h) DESC LIMIT 4";
  auto r1 = db_->Query(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->metrics.plan_cache_misses, 1u);
  auto r2 = db_->Query(sql);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->metrics.plan_cache_hits, 1u);
}

// --- Binder validation (needs the built schema) ---

TEST_F(GroupAggE2eTest, BinderValidatesGroupBy) {
  // Mixed aggregate/plain without GROUP BY.
  EXPECT_TRUE(db_->Query("SELECT Fact.v, COUNT(*) FROM Fact")
                  .status()
                  .IsNotSupported());
  // GROUP BY key not in the SELECT list.
  EXPECT_TRUE(db_->Query("SELECT COUNT(*) FROM Fact GROUP BY Fact.v")
                  .status()
                  .IsNotSupported());
  // Plain select item missing from GROUP BY.
  EXPECT_TRUE(db_->Query("SELECT Fact.v, Fact.h, COUNT(*) FROM Fact "
                         "GROUP BY Fact.v")
                  .status()
                  .IsInvalidArgument());
  // DISTINCT and SELECT * do not combine with GROUP BY.
  EXPECT_TRUE(db_->Query("SELECT DISTINCT Fact.v FROM Fact GROUP BY Fact.v")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(db_->Query("SELECT * FROM Fact GROUP BY Fact.v")
                  .status()
                  .IsNotSupported());
  // Aggregate ORDER BY keys need GROUP BY and must be in the SELECT list.
  EXPECT_TRUE(db_->Query("SELECT Fact.v FROM Fact ORDER BY SUM(Fact.h)")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(db_->Query("SELECT Fact.v, COUNT(*) FROM Fact GROUP BY "
                         "Fact.v ORDER BY SUM(Fact.h)")
                  .status()
                  .IsNotSupported());
  // Duplicate GROUP BY keys collapse instead of erroring.
  ExpectMatchesOracle(
      "SELECT Fact.v, COUNT(*) FROM Fact GROUP BY Fact.v, Fact.v");
}

// --- Hash path vs forced-spill path ---

std::vector<std::vector<std::string>> RenderedRows(
    const exec::QueryResult& r) {
  std::vector<std::vector<std::string>> out;
  for (const auto& row : r.rows) {
    std::vector<std::string> cells;
    for (const auto& v : row) cells.push_back(v.ToString());
    out.push_back(std::move(cells));
  }
  return out;
}

TEST(GroupAggSpillTest, HashAndSpillPathsProduceIdenticalResults) {
  GhostDB roomy(MakeConfig());          // hash path end to end
  GhostDB tiny(MakeConfig(/*sort_budget_buffers=*/1));  // forced overflow
  BuildDb(&roomy);
  BuildDb(&tiny);
  for (const char* sql : {
           "SELECT Fact.v, Fact.h, COUNT(*), SUM(Fact.h) FROM Fact "
           "GROUP BY Fact.v, Fact.h",
           "SELECT Fact.v, SUM(Fact.h), AVG(Fact.h), MIN(Fact.h), "
           "MAX(Fact.h) FROM Fact WHERE Fact.h < 90 GROUP BY Fact.v",
           "SELECT Fact.d, Fact.v, COUNT(*) FROM Fact GROUP BY Fact.d, "
           "Fact.v ORDER BY COUNT(*) DESC, Fact.v LIMIT 20",
           "SELECT Fact.h, Fact.v FROM Fact GROUP BY Fact.h, Fact.v",
       }) {
    SCOPED_TRACE(sql);
    auto r1 = roomy.Query(sql);
    auto r2 = tiny.Query(sql);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(r1->metrics.sort_spill_runs, 0u)
        << "roomy budget must stay on the hash path";
    EXPECT_GT(r2->metrics.sort_spill_runs, 0u)
        << "1-buffer budget must force the overflow path";
    EXPECT_EQ(r1->total_rows, r2->total_rows);
    // Byte-identical rendering: same groups, same order, same values.
    EXPECT_EQ(RenderedRows(*r1), RenderedRows(*r2));
  }
}

TEST(GroupAggSpillTest, SpillDisabledFailsCleanAndSmallGroupsStillServe) {
  GhostDB db(MakeConfig(/*sort_budget_buffers=*/1, /*spill_enabled=*/false));
  BuildDb(&db);
  auto big = db.Query(
      "SELECT Fact.v, Fact.h, COUNT(*) FROM Fact GROUP BY Fact.v, Fact.h");
  EXPECT_TRUE(big.status().IsResourceExhausted())
      << big.status().ToString();
  // A group table that fits the single buffer still works.
  auto small = db.Query(
      "SELECT Dim.v, COUNT(*) FROM Dim WHERE Dim.v < 3 GROUP BY Dim.v");
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_GT(small->total_rows, 0u);
}

TEST(GroupAggSpillTest, ForcedSpillStaysOracleExact) {
  GhostDB tiny(MakeConfig(/*sort_budget_buffers=*/1));
  BuildDb(&tiny);
  for (const char* sql : {
           "SELECT Fact.v, Fact.h, SUM(Fact.h), COUNT(*) FROM Fact "
           "GROUP BY Fact.v, Fact.h ORDER BY Fact.v, Fact.h",
           "SELECT Fact.d, MIN(Fact.h), MAX(Fact.h) FROM Fact "
           "GROUP BY Fact.d ORDER BY Fact.d DESC",
           "SELECT Fact.v, AVG(Fact.h) FROM Fact GROUP BY Fact.v "
           "ORDER BY AVG(Fact.h) DESC LIMIT 5",
       }) {
    SCOPED_TRACE(sql);
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok());
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), tiny.schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected =
        reference::Evaluate(tiny.schema(), tiny.staged(), *bound);
    ASSERT_TRUE(expected.ok());
    auto got = tiny.Query(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->rows.size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      for (size_t j = 0; j < (*expected)[i].size(); ++j) {
        if ((*expected)[i][j].type() == DataType::kDouble) {
          EXPECT_NEAR(got->rows[i][j].AsDouble(),
                      (*expected)[i][j].AsDouble(), 1e-9);
        } else {
          EXPECT_EQ(got->rows[i][j], (*expected)[i][j]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ghostdb

// Flash simulator tests: cost model exactness, FTL remapping, garbage
// collection, wear leveling, at-rest encryption.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/sim_clock.h"
#include "flash/flash.h"

namespace ghostdb::flash {
namespace {

FlashConfig SmallConfig() {
  FlashConfig cfg;
  cfg.page_size = 2048;
  cfg.pages_per_block = 4;
  cfg.logical_pages = 64;
  cfg.spare_blocks = 4;
  return cfg;
}

std::vector<uint8_t> PatternPage(uint32_t page_size, uint8_t seed) {
  std::vector<uint8_t> page(page_size);
  for (uint32_t i = 0; i < page_size; ++i)
    page[i] = static_cast<uint8_t>(seed + i * 7);
  return page;
}

TEST(FlashTest, WriteThenReadRoundTrip) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto page = PatternPage(2048, 1);
  ASSERT_TRUE(dev.WritePage(5, page.data()).ok());
  std::vector<uint8_t> back(2048);
  ASSERT_TRUE(dev.ReadFullPage(5, back.data()).ok());
  EXPECT_EQ(back, page);
}

TEST(FlashTest, UnwrittenPageReadsAsZeros) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  std::vector<uint8_t> back(2048, 0xFF);
  ASSERT_TRUE(dev.ReadFullPage(9, back.data()).ok());
  for (uint8_t b : back) EXPECT_EQ(b, 0);
}

TEST(FlashTest, PartialReadReturnsSlice) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto page = PatternPage(2048, 3);
  ASSERT_TRUE(dev.WritePage(0, page.data()).ok());
  std::vector<uint8_t> slice(100);
  ASSERT_TRUE(dev.ReadPage(0, slice.data(), 500, 100).ok());
  EXPECT_EQ(std::memcmp(slice.data(), page.data() + 500, 100), 0);
}

TEST(FlashTest, ReadCostIsLatencyPlusPerByteTransfer) {
  SimClock clock;
  auto cfg = SmallConfig();
  FlashDevice dev(cfg, &clock);
  auto page = PatternPage(2048, 7);
  ASSERT_TRUE(dev.WritePage(0, page.data()).ok());
  SimNanos before = clock.now();
  std::vector<uint8_t> buf(2048);
  ASSERT_TRUE(dev.ReadPage(0, buf.data(), 0, 2048).ok());
  // Full-page read: 25 us + 2048 * 50 ns = 127.4 us (paper's upper bound).
  EXPECT_EQ(clock.now() - before, 25 * kMicrosecond + 2048 * 50);
  before = clock.now();
  ASSERT_TRUE(dev.ReadPage(0, buf.data(), 0, 4).ok());
  // Single-word read: 25 us + 200 ns (paper's lower bound ~25 us).
  EXPECT_EQ(clock.now() - before, 25 * kMicrosecond + 4 * 50);
}

TEST(FlashTest, WriteCostMatchesTable1) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto page = PatternPage(2048, 7);
  SimNanos before = clock.now();
  ASSERT_TRUE(dev.WritePage(0, page.data()).ok());
  // 200 us program + 2048 * 50 ns register fill.
  EXPECT_EQ(clock.now() - before, 200 * kMicrosecond + 2048 * 50);
}

TEST(FlashTest, WriteReadRatioSpansPaperRange) {
  // Section 2.3: writes are roughly 2.5x..12x slower than reads.
  double write_cost = 200.0 + 2048 * 0.05;          // us
  double full_read = 25.0 + 2048 * 0.05;            // us
  double word_read = 25.0 + 4 * 0.05;               // us
  EXPECT_NEAR(write_cost / full_read, 2.38, 0.15);  // ~2.5
  EXPECT_NEAR(write_cost / word_read, 12.0, 0.5);   // ~12
}

TEST(FlashTest, StatsCountPagesAndBytes) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto page = PatternPage(2048, 1);
  ASSERT_TRUE(dev.WritePage(0, page.data()).ok());
  ASSERT_TRUE(dev.WritePage(1, page.data()).ok());
  std::vector<uint8_t> buf(2048);
  ASSERT_TRUE(dev.ReadPage(0, buf.data(), 0, 100).ok());
  EXPECT_EQ(dev.stats().pages_written, 2u);
  EXPECT_EQ(dev.stats().pages_read, 1u);
  EXPECT_EQ(dev.stats().bytes_transferred, 2 * 2048u + 100u);
}

TEST(FlashTest, OverwriteRemapsOutOfPlace) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto v1 = PatternPage(2048, 1);
  auto v2 = PatternPage(2048, 99);
  ASSERT_TRUE(dev.WritePage(3, v1.data()).ok());
  ASSERT_TRUE(dev.WritePage(3, v2.data()).ok());
  std::vector<uint8_t> back(2048);
  ASSERT_TRUE(dev.ReadFullPage(3, back.data()).ok());
  EXPECT_EQ(back, v2);
  EXPECT_EQ(dev.live_pages(), 1u);
  EXPECT_EQ(dev.stats().pages_written, 2u);  // out-of-place: both programs
}

TEST(FlashTest, OutOfRangeAccessFails) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  std::vector<uint8_t> buf(2048);
  EXPECT_TRUE(dev.ReadFullPage(64, buf.data()).IsOutOfRange());
  EXPECT_TRUE(dev.WritePage(1000, buf.data()).IsOutOfRange());
  EXPECT_TRUE(dev.ReadPage(0, buf.data(), 2000, 100).IsInvalidArgument());
}

TEST(FlashTest, GarbageCollectionReclaimsDeadPages) {
  SimClock clock;
  auto cfg = SmallConfig();  // 64 logical + 16 spare pages (4 blocks of 4)
  FlashDevice dev(cfg, &clock);
  auto page = PatternPage(2048, 5);
  // Repeatedly overwrite a handful of logical pages; dead versions pile up
  // and must be erased for writes to keep succeeding.
  for (int round = 0; round < 50; ++round) {
    for (uint32_t lpn = 0; lpn < 8; ++lpn) {
      page[0] = static_cast<uint8_t>(round);
      page[1] = static_cast<uint8_t>(lpn);
      ASSERT_TRUE(dev.WritePage(lpn, page.data()).ok())
          << "round " << round << " lpn " << lpn;
    }
  }
  EXPECT_GT(dev.stats().blocks_erased, 0u);
  // All 8 logical pages still hold their last version.
  std::vector<uint8_t> back(2048);
  for (uint32_t lpn = 0; lpn < 8; ++lpn) {
    ASSERT_TRUE(dev.ReadFullPage(lpn, back.data()).ok());
    EXPECT_EQ(back[0], 49);
    EXPECT_EQ(back[1], lpn);
  }
}

TEST(FlashTest, GcPreservesUntouchedData) {
  SimClock clock;
  auto cfg = SmallConfig();
  FlashDevice dev(cfg, &clock);
  // Fill half the logical space with stable data.
  for (uint32_t lpn = 0; lpn < 32; ++lpn) {
    auto page = PatternPage(2048, static_cast<uint8_t>(lpn));
    ASSERT_TRUE(dev.WritePage(lpn, page.data()).ok());
  }
  // Churn the other half hard to force GC cycles.
  auto churn = PatternPage(2048, 200);
  for (int round = 0; round < 40; ++round) {
    for (uint32_t lpn = 32; lpn < 40; ++lpn) {
      ASSERT_TRUE(dev.WritePage(lpn, churn.data()).ok());
    }
  }
  EXPECT_GT(dev.stats().blocks_erased, 0u);
  std::vector<uint8_t> back(2048);
  for (uint32_t lpn = 0; lpn < 32; ++lpn) {
    ASSERT_TRUE(dev.ReadFullPage(lpn, back.data()).ok());
    EXPECT_EQ(back, PatternPage(2048, static_cast<uint8_t>(lpn)))
        << "lpn " << lpn;
  }
}

TEST(FlashTest, TrimFreesLogicalPage) {
  SimClock clock;
  FlashDevice dev(SmallConfig(), &clock);
  auto page = PatternPage(2048, 1);
  ASSERT_TRUE(dev.WritePage(7, page.data()).ok());
  EXPECT_EQ(dev.live_pages(), 1u);
  ASSERT_TRUE(dev.Trim(7).ok());
  EXPECT_EQ(dev.live_pages(), 0u);
  EXPECT_EQ(dev.stats().trims, 1u);
  std::vector<uint8_t> back(2048, 0xFF);
  ASSERT_TRUE(dev.ReadFullPage(7, back.data()).ok());
  for (uint8_t b : back) EXPECT_EQ(b, 0);
}

TEST(FlashTest, GcCopiesAreCharged) {
  SimClock clock;
  auto cfg = SmallConfig();
  FlashDevice dev(cfg, &clock);
  // Fill the whole logical space so most blocks are fully valid, then churn
  // a working set that straddles a block boundary: under space pressure GC
  // must eventually evict a half-dead block and relocate its valid pages.
  cfg.spare_blocks = 1;
  FlashDevice tight(cfg, &clock);
  auto page = PatternPage(2048, 9);
  for (uint32_t lpn = 0; lpn < cfg.logical_pages; ++lpn) {
    ASSERT_TRUE(tight.WritePage(lpn, page.data()).ok());
  }
  for (int round = 0; round < 40; ++round) {
    for (uint32_t lpn = 0; lpn < 6; ++lpn) {  // 1.5 blocks worth of churn
      ASSERT_TRUE(tight.WritePage(lpn, page.data()).ok())
          << "round " << round << " lpn " << lpn;
    }
  }
  EXPECT_GT(tight.stats().blocks_erased, 0u);
  EXPECT_GT(tight.stats().gc_page_copies, 0u);
}

TEST(FlashTest, WearLevelingSpreadsErases) {
  SimClock clock;
  auto cfg = SmallConfig();
  FlashDevice dev(cfg, &clock);
  auto page = PatternPage(2048, 1);
  for (int round = 0; round < 200; ++round) {
    for (uint32_t lpn = 0; lpn < 8; ++lpn) {
      ASSERT_TRUE(dev.WritePage(lpn, page.data()).ok());
    }
  }
  // With erases spread across blocks, the most-worn block should carry far
  // fewer erases than the total.
  EXPECT_GT(dev.stats().blocks_erased, 10u);
  EXPECT_LT(dev.max_block_erases(), dev.stats().blocks_erased);
}

TEST(FlashTest, EncryptedPagesDifferFromPlaintextInCells) {
  SimClock clock;
  auto cfg = SmallConfig();
  cfg.cipher_key = std::array<uint8_t, 32>{};  // all-zero key is fine here
  FlashDevice dev(cfg, &clock);
  auto page = PatternPage(2048, 4);
  ASSERT_TRUE(dev.WritePage(2, page.data()).ok());
  std::vector<uint8_t> back(2048);
  ASSERT_TRUE(dev.ReadFullPage(2, back.data()).ok());
  EXPECT_EQ(back, page);  // transparent to the caller
}

TEST(FlashTest, EncryptedPartialReadsAlign) {
  SimClock clock;
  auto cfg = SmallConfig();
  cfg.cipher_key = std::array<uint8_t, 32>{{1, 2, 3, 4}};
  FlashDevice dev(cfg, &clock);
  auto page = PatternPage(2048, 42);
  ASSERT_TRUE(dev.WritePage(2, page.data()).ok());
  // Unaligned slice in the middle of the page.
  std::vector<uint8_t> slice(333);
  ASSERT_TRUE(dev.ReadPage(2, slice.data(), 1001, 333).ok());
  EXPECT_EQ(std::memcmp(slice.data(), page.data() + 1001, 333), 0);
}

TEST(FlashTest, EncryptedDataSurvivesGc) {
  SimClock clock;
  auto cfg = SmallConfig();
  cfg.cipher_key = std::array<uint8_t, 32>{{9, 9, 9}};
  FlashDevice dev(cfg, &clock);
  for (uint32_t lpn = 0; lpn < 16; ++lpn) {
    auto page = PatternPage(2048, static_cast<uint8_t>(lpn * 3));
    ASSERT_TRUE(dev.WritePage(lpn, page.data()).ok());
  }
  auto churn = PatternPage(2048, 111);
  for (int round = 0; round < 60; ++round) {
    for (uint32_t lpn = 16; lpn < 24; ++lpn) {
      ASSERT_TRUE(dev.WritePage(lpn, churn.data()).ok());
    }
  }
  ASSERT_GT(dev.stats().blocks_erased, 0u);
  std::vector<uint8_t> back(2048);
  for (uint32_t lpn = 0; lpn < 16; ++lpn) {
    ASSERT_TRUE(dev.ReadFullPage(lpn, back.data()).ok());
    EXPECT_EQ(back, PatternPage(2048, static_cast<uint8_t>(lpn * 3)))
        << "lpn " << lpn;
  }
}

TEST(FlashTest, StatsDeltaOperator) {
  FlashStats a, b;
  a.pages_read = 10;
  a.pages_written = 7;
  a.bytes_transferred = 1000;
  b.pages_read = 4;
  b.pages_written = 2;
  b.bytes_transferred = 300;
  auto d = a - b;
  EXPECT_EQ(d.pages_read, 6u);
  EXPECT_EQ(d.pages_written, 5u);
  EXPECT_EQ(d.bytes_transferred, 700u);
}

}  // namespace
}  // namespace ghostdb::flash

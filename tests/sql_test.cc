// SQL front-end tests: lexer, parser, binder.
#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace ghostdb::sql {
namespace {

using catalog::CompareOp;
using catalog::DataType;

// --- Lexer ---

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, c FROM t WHERE x = 5;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ((*tokens)[2].text, ".");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe hidden");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
  EXPECT_EQ((*tokens)[3].text, "HIDDEN");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'it''s a test'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's a test");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, NumbersIntAndFloat) {
  // Negative literals are recognized in operand position (after an
  // operator), matching the grammar's use sites.
  auto tokens = Tokenize("42 3.25 = -7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[3].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[3].text, "-7");
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize("a <= b >= c <> d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[3].text, ">=");
  EXPECT_EQ((*tokens)[5].text, "<>");
  EXPECT_EQ((*tokens)[7].text, "!=");
}

TEST(LexerTest, HyphenatedIdentifiers) {
  // The paper's medical schema uses first-name, patient-id, etc.
  auto tokens = Tokenize("first-name");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "first-name");
}

// --- Parser ---

TEST(ParserTest, CreateTableWithHidden) {
  auto stmt = Parse(
      "CREATE TABLE Patients (id INT, name CHAR(200) HIDDEN, age INT, "
      "city CHAR(100), bodymassindex FLOAT HIDDEN)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto& create = std::get<CreateTableStmt>(*stmt);
  EXPECT_EQ(create.def.name, "Patients");
  ASSERT_EQ(create.def.columns.size(), 4u);  // id absorbed as surrogate
  EXPECT_EQ(create.def.columns[0].name, "name");
  EXPECT_TRUE(create.def.columns[0].hidden);
  EXPECT_EQ(create.def.columns[0].width, 200u);
  EXPECT_EQ(create.def.columns[1].name, "age");
  EXPECT_FALSE(create.def.columns[1].hidden);
  EXPECT_EQ(create.def.columns[3].type, DataType::kDouble);
}

TEST(ParserTest, CreateTableWithReferences) {
  auto stmt = Parse(
      "CREATE TABLE Measurements (id INT, patient_id INT REFERENCES "
      "Patients HIDDEN, value DOUBLE)");
  ASSERT_TRUE(stmt.ok());
  auto& create = std::get<CreateTableStmt>(*stmt);
  EXPECT_EQ(create.def.columns[0].references, "Patients");
  EXPECT_TRUE(create.def.columns[0].hidden);
}

TEST(ParserTest, CreateHiddenTable) {
  auto stmt = Parse("CREATE TABLE Secrets (id INT, x INT) HIDDEN");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<CreateTableStmt>(*stmt).def.hidden);
}

TEST(ParserTest, InsertValues) {
  auto stmt = Parse("INSERT INTO t VALUES (1, 'abc', 2.5)");
  ASSERT_TRUE(stmt.ok());
  auto& insert = std::get<InsertStmt>(*stmt);
  EXPECT_EQ(insert.table, "t");
  ASSERT_EQ(insert.values.size(), 3u);
  EXPECT_EQ(insert.values[0].AsInt32(), 1);
  EXPECT_EQ(insert.values[1].AsString(), "abc");
  EXPECT_DOUBLE_EQ(insert.values[2].AsDouble(), 2.5);
}

TEST(ParserTest, SelectWithJoinsAndPredicates) {
  auto stmt = Parse(
      "SELECT D.id, P.id, M.id FROM Measurements M, Doctors D, Patients P "
      "WHERE M.pid = P.id AND P.did = D.id AND D.specialty = 'Psychiatrist' "
      "AND P.bodymassindex > 25");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto& select = std::get<SelectStmt>(*stmt);
  EXPECT_EQ(select.items.size(), 3u);
  ASSERT_EQ(select.from.size(), 3u);
  EXPECT_EQ(select.from[0].table, "Measurements");
  EXPECT_EQ(select.from[0].alias, "M");
  EXPECT_EQ(select.joins.size(), 2u);
  EXPECT_EQ(select.predicates.size(), 2u);
  EXPECT_EQ(select.predicates[1].op, CompareOp::kGt);
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(*stmt).star);
}

TEST(ParserTest, BetweenExpandsToRange) {
  auto stmt = Parse("SELECT a FROM t WHERE a BETWEEN 5 AND 10");
  ASSERT_TRUE(stmt.ok());
  auto& select = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(select.predicates.size(), 2u);
  EXPECT_EQ(select.predicates[0].op, CompareOp::kGe);
  EXPECT_EQ(select.predicates[1].op, CompareOp::kLe);
}

TEST(ParserTest, ExplainSelect) {
  auto stmt = Parse("EXPLAIN SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(*stmt).explain);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("DROP TABLE t").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (x NOTATYPE)").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a ~ 5").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage").ok());
}

TEST(ParserTest, NonEquiJoinRejected) {
  EXPECT_FALSE(Parse("SELECT a FROM t, s WHERE t.x < s.y").ok());
}

TEST(ParserTest, ParseScriptMultipleStatements) {
  auto script = ParseScript(
      "CREATE TABLE a (id INT, x INT); CREATE TABLE b (id INT, y INT); "
      "INSERT INTO a VALUES (1);");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

// --- Binder ---

catalog::Schema TestSchema() {
  catalog::Schema s;
  EXPECT_TRUE(s.AddTable({"T0",
                          {{"fk1", DataType::kInt32, 4, true, "T1"},
                           {"v0", DataType::kInt32, 4, false, ""},
                           {"h0", DataType::kInt32, 4, true, ""}},
                          false})
                  .ok());
  EXPECT_TRUE(s.AddTable({"T1",
                          {{"fk12", DataType::kInt32, 4, true, "T12"},
                           {"v1", DataType::kString, 10, false, ""},
                           {"h1", DataType::kInt32, 4, true, ""}},
                          false})
                  .ok());
  EXPECT_TRUE(s.AddTable({"T12",
                          {{"v2", DataType::kInt32, 4, false, ""},
                           {"h2", DataType::kInt32, 4, true, ""}},
                          false})
                  .ok());
  EXPECT_TRUE(s.Finalize().ok());
  return s;
}

Result<BoundQuery> BindSql(const catalog::Schema& schema,
                           const std::string& text) {
  auto stmt = Parse(text);
  if (!stmt.ok()) return stmt.status();
  return Bind(std::get<SelectStmt>(*stmt), schema, text);
}

TEST(BinderTest, BindsPaperStyleQuery) {
  auto schema = TestSchema();
  auto q = BindSql(schema,
                   "SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
                   "T1.fk12 = T12.id AND T1.v1 = 'x' AND T12.h2 = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables.size(), 3u);
  EXPECT_EQ(schema.table(q->anchor).name, "T0");
  EXPECT_EQ(q->joins.size(), 2u);
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_FALSE(q->predicates[0].hidden);
  EXPECT_TRUE(q->predicates[1].hidden);
}

TEST(BinderTest, VisibleAndHiddenPredicateSplit) {
  auto schema = TestSchema();
  auto q = BindSql(schema,
                   "SELECT T1.id FROM T1 WHERE T1.v1 = 'a' AND T1.h1 = 2");
  ASSERT_TRUE(q.ok());
  auto t1 = schema.FindTable("T1");
  EXPECT_EQ(q->VisiblePredicatesOn(*t1).size(), 1u);
  EXPECT_EQ(q->HiddenPredicatesOn(*t1).size(), 1u);
}

TEST(BinderTest, IdPredicateIsVisible) {
  auto schema = TestSchema();
  auto q = BindSql(schema, "SELECT T1.id FROM T1 WHERE T1.id < 100");
  ASSERT_TRUE(q.ok());
  auto t1 = schema.FindTable("T1");
  EXPECT_EQ(q->VisiblePredicatesOn(*t1).size(), 1u);
  EXPECT_TRUE(q->VisiblePredicatesOn(*t1)[0].on_id);
}

TEST(BinderTest, UnknownTableFails) {
  auto schema = TestSchema();
  EXPECT_TRUE(BindSql(schema, "SELECT x FROM Nope").status().IsNotFound());
}

TEST(BinderTest, UnknownColumnFails) {
  auto schema = TestSchema();
  EXPECT_TRUE(
      BindSql(schema, "SELECT T1.nope FROM T1").status().IsNotFound());
}

TEST(BinderTest, AmbiguousColumnFails) {
  auto schema = TestSchema();
  // h1 exists only on T1, h2 only on T12 — but v1/v2 unique; use "id".
  auto q = BindSql(schema,
                   "SELECT id FROM T1, T12 WHERE T1.fk12 = T12.id");
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(BinderTest, DisconnectedFromFails) {
  auto schema = TestSchema();
  auto q = BindSql(schema, "SELECT T0.id FROM T0, T12");
  EXPECT_TRUE(q.status().IsNotSupported());
}

TEST(BinderTest, JoinMustFollowForeignKey) {
  auto schema = TestSchema();
  // h0 is not a foreign key.
  auto q = BindSql(schema,
                   "SELECT T0.id FROM T0, T1 WHERE T0.h0 = T1.id");
  EXPECT_FALSE(q.ok());
}

TEST(BinderTest, SelfJoinRejected) {
  auto schema = TestSchema();
  auto q = BindSql(schema, "SELECT a.id FROM T1 a, T1 b WHERE a.fk12 = b.id");
  EXPECT_TRUE(q.status().IsNotSupported());
}

TEST(BinderTest, StarExpandsAllColumns) {
  auto schema = TestSchema();
  auto q = BindSql(schema, "SELECT * FROM T12");
  ASSERT_TRUE(q.ok());
  // id + v2 + h2.
  EXPECT_EQ(q->select.size(), 3u);
  EXPECT_EQ(q->select[0].display, "T12.id");
  EXPECT_TRUE(q->select[0].is_id);
}

TEST(BinderTest, LiteralCoercion) {
  auto schema = TestSchema();
  // Integer literal against a CHAR column must fail.
  EXPECT_FALSE(BindSql(schema, "SELECT T1.id FROM T1 WHERE T1.v1 = 5").ok());
  // String against INT must fail.
  EXPECT_FALSE(
      BindSql(schema, "SELECT T1.id FROM T1 WHERE T1.h1 = 'x'").ok());
}

TEST(BinderTest, AliasResolution) {
  auto schema = TestSchema();
  auto q = BindSql(schema,
                   "SELECT a.v1 FROM T1 a, T12 b WHERE a.fk12 = b.id AND "
                   "b.h2 = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(schema.table(q->anchor).name, "T1");
}

TEST(BinderTest, AnchorIsNearestRoot) {
  auto schema = TestSchema();
  auto q = BindSql(schema,
                   "SELECT T1.id FROM T1, T12 WHERE T1.fk12 = T12.id");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(schema.table(q->anchor).name, "T1");
}

TEST(BinderTest, ProjectedColumnHelpers) {
  auto schema = TestSchema();
  auto q = BindSql(schema,
                   "SELECT T1.v1, T1.h1, T1.id FROM T1 WHERE T1.h1 > 0");
  ASSERT_TRUE(q.ok());
  auto t1 = *schema.FindTable("T1");
  EXPECT_EQ(q->ProjectedVisibleColumns(schema, t1).size(), 1u);
  EXPECT_EQ(q->ProjectedHiddenColumns(schema, t1).size(), 1u);
  EXPECT_TRUE(q->ProjectsTable(t1));
}

}  // namespace
}  // namespace ghostdb::sql

// Executor edge cases: several Visible selections with different pinned
// strategies in one query, post strategies on subtree anchors, aggregates
// under every strategy, and channel-throughput sensitivity.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/database.h"
#include "plan/strategy.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;
using plan::PlanChoice;
using plan::VisStrategy;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void Build(GhostDB* db, uint64_t seed = 99) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE D1 (id INT, v INT, h INT HIDDEN)").ok());
    ASSERT_TRUE(
        db->Execute("CREATE TABLE D2 (id INT, v INT, h INT HIDDEN)").ok());
    ASSERT_TRUE(db->Execute(
                      "CREATE TABLE F (id INT, fk1 INT REFERENCES D1 "
                      "HIDDEN, fk2 INT REFERENCES D2 HIDDEN, v INT, "
                      "h INT HIDDEN)")
                    .ok());
    Rng rng(seed);
    auto stage = [&](const char* name, int n, bool fact) {
      auto data = db->MutableStaging(name);
      ASSERT_TRUE(data.ok());
      for (int i = 0; i < n; ++i) {
        std::vector<Value> row;
        if (fact) {
          row.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(150))));
          row.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(120))));
        }
        row.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(100))));
        row.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(100))));
        ASSERT_TRUE((*data)->AppendRow(row).ok());
      }
    };
    stage("D1", 150, false);
    stage("D2", 120, false);
    stage("F", 3000, true);
    ASSERT_TRUE(db->Build().ok());
  }

  GhostDBConfig Config() {
    GhostDBConfig cfg;
    cfg.device.flash.logical_pages = 16 * 1024;
    cfg.retain_staged_data = true;
    return cfg;
  }

  void ExpectMatchesOracle(GhostDB* db, const std::string& sql,
                           const PlanChoice* pinned = nullptr) {
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected =
        reference::Evaluate(db->schema(), db->staged(), *bound);
    ASSERT_TRUE(expected.ok());
    auto got = pinned ? db->QueryWithPlan(sql, *pinned) : db->Query(sql);
    ASSERT_TRUE(got.ok()) << sql << " -> " << got.status().ToString();
    ASSERT_EQ(got->rows.size(), expected->size()) << sql;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ(got->rows[i], (*expected)[i]) << sql << " row " << i;
    }
  }

  // Every ordered pair of strategies on the two dimension tables.
  static std::vector<VisStrategy> AllStrategies() {
    return {VisStrategy::kPreFilter,      VisStrategy::kCrossPreFilter,
            VisStrategy::kPostFilter,     VisStrategy::kCrossPostFilter,
            VisStrategy::kPostSelect,     VisStrategy::kNoFilter};
  }
};

TEST_F(ExecutorEdgeTest, TwoVisibleTablesMixedStrategies) {
  GhostDB db(Config());
  Build(&db);
  auto d1 = *db.schema().FindTable("D1");
  auto d2 = *db.schema().FindTable("D2");
  const std::string sql =
      "SELECT F.id, D1.v, D2.v FROM F, D1, D2 WHERE F.fk1 = D1.id AND "
      "F.fk2 = D2.id AND D1.v < 60 AND D2.v < 50 AND F.h < 70";
  for (auto s1 : AllStrategies()) {
    for (auto s2 :
         {VisStrategy::kPreFilter, VisStrategy::kPostFilter,
          VisStrategy::kNoFilter}) {
      PlanChoice plan;
      plan.vis[d1] = s1;
      plan.vis[d2] = s2;
      ExpectMatchesOracle(&db, sql, &plan);
    }
  }
}

TEST_F(ExecutorEdgeTest, VisiblePredicateOnAnchorWithPostStrategy) {
  GhostDB db(Config());
  Build(&db);
  auto f = *db.schema().FindTable("F");
  for (auto s : AllStrategies()) {
    PlanChoice plan;
    plan.vis[f] = s;
    ExpectMatchesOracle(&db,
                        "SELECT F.id, F.h FROM F, D1 WHERE F.fk1 = D1.id "
                        "AND F.v < 40 AND D1.h < 50",
                        &plan);
  }
}

TEST_F(ExecutorEdgeTest, AggregatesUnderEveryStrategy) {
  GhostDB db(Config());
  Build(&db);
  auto d1 = *db.schema().FindTable("D1");
  for (auto s : AllStrategies()) {
    PlanChoice plan;
    plan.vis[d1] = s;
    ExpectMatchesOracle(&db,
                        "SELECT COUNT(*), MIN(F.h), MAX(D1.v) FROM F, D1 "
                        "WHERE F.fk1 = D1.id AND D1.v < 55 AND F.h < 80",
                        &plan);
  }
}

TEST_F(ExecutorEdgeTest, ThroughputChangesTimeNotAnswers) {
  GhostDB db(Config());
  Build(&db);
  const char* sql =
      "SELECT F.id, D1.v FROM F, D1 WHERE F.fk1 = D1.id AND D1.v < 50 "
      "AND F.h < 60";
  db.device().channel().set_throughput(10e6);
  auto fast = db.Query(sql);
  ASSERT_TRUE(fast.ok());
  db.device().channel().set_throughput(0.3e6);
  auto slow = db.Query(sql);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->total_rows, slow->total_rows);
  EXPECT_EQ(fast->rows, slow->rows);
  EXPECT_GT(slow->metrics.total_ns, fast->metrics.total_ns);
  EXPECT_GT(slow->metrics.categories.at("comm"),
            fast->metrics.categories.at("comm"));
}

TEST_F(ExecutorEdgeTest, RepeatedQueriesLeaveNoResidue) {
  GhostDB db(Config());
  Build(&db);
  uint32_t pages_before = db.allocator().used_pages();
  for (int i = 0; i < 5; ++i) {
    auto r = db.Query(
        "SELECT F.id, D2.v FROM F, D2 WHERE F.fk2 = D2.id AND "
        "D2.v < 40 AND F.h < 50");
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->metrics.peak_ram_buffers, 32u);
  }
  // Temporary flash space fully reclaimed after every query.
  EXPECT_EQ(db.allocator().used_pages(), pages_before);
  EXPECT_EQ(db.device().ram().used_buffers(), 0u);
}

TEST_F(ExecutorEdgeTest, WearAndGcVisibleInDeviceStats) {
  GhostDB db(Config());
  Build(&db);
  // Queries write/trim temporaries: the FTL must keep absorbing them.
  auto stats_before = db.device().flash().stats();
  for (int i = 0; i < 10; ++i) {
    auto r = db.Query(
        "SELECT F.id FROM F, D1 WHERE F.fk1 = D1.id AND D1.v < 80 AND "
        "F.h < 80");
    ASSERT_TRUE(r.ok());
  }
  auto stats_after = db.device().flash().stats();
  EXPECT_GT(stats_after.pages_read, stats_before.pages_read);
  EXPECT_GT(stats_after.trims, stats_before.trims);
}

}  // namespace
}  // namespace ghostdb

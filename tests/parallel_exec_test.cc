// Tests for the morsel-execution machinery: the worker pool's sharding and
// lifetime discipline, the SIMD kernels against their scalar references,
// the worker_threads/batch_bytes config validation, and answer equality
// across pool widths. The concurrent stress cases double as the TSan
// surface for everything a worker thread may touch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/value.h"
#include "common/rng.h"
#include "core/database.h"
#include "exec/operator.h"
#include "exec/simd.h"
#include "exec/thread_pool.h"

namespace ghostdb {
namespace {

using catalog::CompareOp;
using catalog::DataType;
using catalog::Value;
using exec::ThreadPool;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ShardRangeCoversExactlyOnce) {
  for (uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull, 4097ull}) {
    for (uint32_t shards : {1u, 2u, 3u, 8u}) {
      uint64_t covered = 0;
      uint64_t prev_end = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        auto [begin, end] = ThreadPool::ShardRange(n, shards, s);
        EXPECT_EQ(begin, prev_end) << "gap/overlap at shard " << s;
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " shards=" << shards;
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolTest, ShardRangesAreBalanced) {
  for (uint32_t shards : {2u, 3u, 7u}) {
    uint64_t n = 1000;
    uint64_t lo = n, hi = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      auto [begin, end] = ThreadPool::ShardRange(n, shards, s);
      lo = std::min(lo, end - begin);
      hi = std::max(hi, end - begin);
    }
    EXPECT_LE(hi - lo, 1u) << shards << " shards of " << n;
  }
}

TEST(ThreadPoolTest, ShardCountRespectsGrainAndWidth) {
  ThreadPool pool(4, /*pin_threads=*/false);
  EXPECT_EQ(pool.width(), 4u);
  EXPECT_EQ(pool.ShardCount(0, 100), 1u);     // empty range: one no-op shard
  EXPECT_EQ(pool.ShardCount(99, 100), 1u);    // under one grain: serial
  EXPECT_EQ(pool.ShardCount(200, 100), 2u);   // two grains: two shards
  EXPECT_EQ(pool.ShardCount(100000, 100), 4u);  // clamped to width
}

TEST(ThreadPoolTest, ParallelShardsRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4, /*pin_threads=*/false);
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.ParallelShards(kN, 64, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, WidthOneRunsInline) {
  ThreadPool pool(1, /*pin_threads=*/false);
  std::thread::id caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.ParallelShards(1000, 1, [&](uint32_t, uint64_t, uint64_t) {
    same_thread = same_thread && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  // Several threads submit regions to one pool at once — the shape of
  // concurrent per-session executors. Every region must complete exactly
  // its own work.
  ThreadPool pool(4, /*pin_threads=*/false);
  constexpr int kSubmitters = 6;
  constexpr uint64_t kN = 20000;
  std::vector<std::atomic<uint64_t>> sums(kSubmitters);
  for (auto& s : sums) s.store(0);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelShards(kN, 64,
                            [&](uint32_t, uint64_t begin, uint64_t end) {
                              uint64_t local = 0;
                              for (uint64_t i = begin; i < end; ++i) {
                                local += i;
                              }
                              sums[t].fetch_add(local,
                                                std::memory_order_relaxed);
                            });
      }
    });
  }
  for (auto& s : submitters) s.join();
  const uint64_t expect = 20 * (kN * (kN - 1) / 2);
  for (int t = 0; t < kSubmitters; ++t) {
    EXPECT_EQ(sums[t].load(), expect) << "submitter " << t;
  }
}

// ---------------------------------------------------------------------------
// SIMD kernels vs scalar references
// ---------------------------------------------------------------------------

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

// A strided encoded column with adversarial sizes (not multiples of the
// vector width) and value ties around the literal.
struct EncodedColumn {
  std::vector<uint8_t> bytes;
  size_t stride;
  size_t n;
};

EncodedColumn MakeColumn(DataType type, uint32_t width, size_t n,
                         uint64_t seed) {
  EncodedColumn col;
  col.stride = width + 5;  // unaligned on purpose
  col.n = n;
  col.bytes.assign(n * col.stride + 3, 0xEE);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    uint8_t* cell = col.bytes.data() + i * col.stride;
    switch (type) {
      case DataType::kInt32:
        Value::Int32(static_cast<int32_t>(rng.Uniform(41)) - 20)
            .Encode(cell, width);
        break;
      case DataType::kInt64:
        Value::Int64((static_cast<int64_t>(rng.Uniform(41)) - 20) *
                     3000000000LL)
            .Encode(cell, width);
        break;
      case DataType::kDouble: {
        uint64_t pick = rng.Uniform(10);
        double v = pick == 0   ? 0.0
                   : pick == 1 ? -0.0
                               : static_cast<double>(rng.Uniform(21)) - 10.5;
        Value::Double(v).Encode(cell, width);
        break;
      }
      case DataType::kString:
        Value::String("k" + std::to_string(rng.Uniform(30)))
            .Encode(cell, width);
        break;
    }
  }
  return col;
}

struct TypeCase {
  DataType type;
  uint32_t width;
  std::vector<uint8_t> literal;
};

std::vector<TypeCase> TypeCases() {
  std::vector<TypeCase> cases;
  {
    TypeCase c{DataType::kInt32, 4, std::vector<uint8_t>(4)};
    Value::Int32(3).Encode(c.literal.data(), 4);
    cases.push_back(std::move(c));
  }
  {
    TypeCase c{DataType::kInt64, 8, std::vector<uint8_t>(8)};
    Value::Int64(9000000000LL).Encode(c.literal.data(), 8);
    cases.push_back(std::move(c));
  }
  {
    TypeCase c{DataType::kDouble, 8, std::vector<uint8_t>(8)};
    Value::Double(0.0).Encode(c.literal.data(), 8);
    cases.push_back(std::move(c));
  }
  {
    TypeCase c{DataType::kString, 8, std::vector<uint8_t>(8)};
    Value::String("k7").Encode(c.literal.data(), 8);
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(SimdKernelTest, FilterEncodedMatchesScalarForAllTypesAndOps) {
  for (const auto& tc : TypeCases()) {
    for (size_t n : {0ull, 1ull, 7ull, 8ull, 9ull, 333ull, 1024ull}) {
      EncodedColumn col = MakeColumn(tc.type, tc.width, n, 0xFACE + n);
      for (CompareOp op : kAllOps) {
        std::vector<uint32_t> want(n + 1, 0xDDDDDDDD);
        std::vector<uint32_t> got(n + 1, 0xDDDDDDDD);
        size_t want_count = exec::simd::scalar::FilterEncoded(
            tc.type, tc.width, col.bytes.data(), col.stride, n,
            tc.literal.data(), op, /*id_base=*/100, want.data());
        size_t got_count = exec::simd::FilterEncoded(
            tc.type, tc.width, col.bytes.data(), col.stride, n,
            tc.literal.data(), op, /*id_base=*/100, got.data());
        ASSERT_EQ(want_count, got_count)
            << "type=" << static_cast<int>(tc.type)
            << " op=" << static_cast<int>(op) << " n=" << n;
        for (size_t i = 0; i < want_count; ++i) {
          ASSERT_EQ(want[i], got[i])
              << "type=" << static_cast<int>(tc.type)
              << " op=" << static_cast<int>(op) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, RefineEncodedMatchesScalarUnderConjunction) {
  for (const auto& tc : TypeCases()) {
    size_t n = 531;
    EncodedColumn col = MakeColumn(tc.type, tc.width, n, 0xBEEF);
    for (CompareOp op : kAllOps) {
      // Start from a mixed flag vector, as the second predicate of a
      // conjunction would.
      std::vector<uint8_t> want(n), got(n);
      Rng rng(17);
      for (size_t i = 0; i < n; ++i) want[i] = rng.Uniform(2) ? 1 : 0;
      got = want;
      exec::simd::scalar::RefineEncoded(tc.type, tc.width, col.bytes.data(),
                                        col.stride, n, tc.literal.data(), op,
                                        want.data());
      exec::simd::RefineEncoded(tc.type, tc.width, col.bytes.data(),
                                col.stride, n, tc.literal.data(), op,
                                got.data());
      ASSERT_EQ(want, got) << "type=" << static_cast<int>(tc.type)
                           << " op=" << static_cast<int>(op);
    }
  }
}

TEST(SimdKernelTest, CompactFlagsMatchesScalar) {
  for (size_t n : {0ull, 1ull, 31ull, 32ull, 33ull, 555ull, 4096ull}) {
    std::vector<uint8_t> flags(n);
    Rng rng(n + 1);
    for (auto& f : flags) f = rng.Uniform(2) ? 1 : 0;
    std::vector<uint32_t> want(n + 1, 0xAAAAAAAA), got(n + 1, 0xAAAAAAAA);
    size_t want_count = exec::simd::scalar::CompactFlags(flags.data(), n,
                                                         /*id_base=*/7,
                                                         want.data());
    size_t got_count =
        exec::simd::CompactFlags(flags.data(), n, /*id_base=*/7, got.data());
    ASSERT_EQ(want_count, got_count) << "n=" << n;
    for (size_t i = 0; i < want_count; ++i) {
      ASSERT_EQ(want[i], got[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernelTest, GatherCellsMatchesScalar) {
  constexpr size_t kRows = 700;
  constexpr size_t kStride = 21;
  std::vector<uint8_t> src(kRows * kStride);
  Rng rng(99);
  for (auto& b : src) b = static_cast<uint8_t>(rng.Uniform(256));
  for (uint32_t width : {1u, 3u, 4u, 8u, 12u}) {
    for (size_t offset : {0ull, 4ull, 9ull}) {
      ASSERT_LE(offset + width, kStride);
      for (size_t n : {0ull, 1ull, 5ull, 64ull, 257ull}) {
        std::vector<uint32_t> idx(n);
        for (auto& i : idx) {
          i = static_cast<uint32_t>(rng.Uniform(kRows));
        }
        size_t dst_stride = width + 6;
        std::vector<uint8_t> want(n * dst_stride + 1, 0x11);
        std::vector<uint8_t> got(n * dst_stride + 1, 0x11);
        exec::simd::scalar::GatherCells(src.data(), kStride, offset, width,
                                        idx.data(), n, want.data(),
                                        dst_stride);
        exec::simd::GatherCells(src.data(), kStride, offset, width,
                                idx.data(), n, got.data(), dst_stride);
        ASSERT_EQ(want, got)
            << "width=" << width << " offset=" << offset << " n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(ParallelConfigTest, ValidateExecConfigRejectsAbsurdKnobs) {
  exec::ExecConfig good;
  EXPECT_TRUE(exec::ValidateExecConfig(good).ok());

  exec::ExecConfig zero_batch = good;
  zero_batch.batch_bytes = 0;
  EXPECT_TRUE(exec::ValidateExecConfig(zero_batch).IsInvalidArgument());

  exec::ExecConfig huge_batch = good;
  huge_batch.batch_bytes = (2ull << 30);
  EXPECT_TRUE(exec::ValidateExecConfig(huge_batch).IsInvalidArgument());

  exec::ExecConfig inverted = good;
  inverted.min_batch_rows = good.max_batch_rows + 1;
  EXPECT_TRUE(exec::ValidateExecConfig(inverted).IsInvalidArgument());

  exec::ExecConfig zero_min = good;
  zero_min.min_batch_rows = 0;
  EXPECT_TRUE(exec::ValidateExecConfig(zero_min).IsInvalidArgument());

  exec::ExecConfig too_wide = good;
  too_wide.worker_threads = 65;
  EXPECT_TRUE(exec::ValidateExecConfig(too_wide).IsInvalidArgument());
}

core::GhostDBConfig TinyConfig() {
  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  return cfg;
}

Status TryBuild(core::GhostDBConfig cfg) {
  core::GhostDB db(cfg);
  GHOSTDB_RETURN_NOT_OK(db.Execute("CREATE TABLE T (id INT, v INT)"));
  return db.Build();
}

TEST(ParallelConfigTest, BuildRejectsBadWorkerThreads) {
  auto zero = TinyConfig();
  zero.worker_threads = 0;
  EXPECT_TRUE(TryBuild(zero).IsInvalidArgument());

  auto absurd = TinyConfig();
  absurd.worker_threads = 1000;
  EXPECT_TRUE(TryBuild(absurd).IsInvalidArgument());

  auto bad_exec = TinyConfig();
  bad_exec.exec.batch_bytes = 0;
  EXPECT_TRUE(TryBuild(bad_exec).IsInvalidArgument());

  auto fine = TinyConfig();
  fine.worker_threads = 4;
  EXPECT_TRUE(TryBuild(fine).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: width invariance and concurrent sessions (the TSan surface)
// ---------------------------------------------------------------------------

void BuildSmallDb(core::GhostDB* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE T (id INT, v INT, s CHAR(8), "
                          "h INT HIDDEN)")
                  .ok());
  auto staged = db->MutableStaging("T");
  ASSERT_TRUE(staged.ok());
  Rng rng(31);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE((*staged)
                    ->AppendRow({Value::Int32(static_cast<int32_t>(
                                     rng.Uniform(500))),
                                 Value::String("s" + std::to_string(
                                                         rng.Uniform(40))),
                                 Value::Int32(static_cast<int32_t>(
                                     rng.Uniform(500)))})
                    .ok());
  }
  ASSERT_TRUE(db->Build().ok());
}

TEST(ParallelExecTest, AnswersAreIdenticalAcrossPoolWidths) {
  auto cfg1 = TinyConfig();
  auto cfg4 = TinyConfig();
  cfg4.worker_threads = 4;
  core::GhostDB db1(cfg1), db4(cfg4);
  BuildSmallDb(&db1);
  BuildSmallDb(&db4);
  for (const char* sql : {
           "SELECT T.id, T.v FROM T WHERE T.v < 400",
           "SELECT T.id, T.v FROM T WHERE T.v < 350 ORDER BY T.v DESC",
           "SELECT DISTINCT T.s FROM T WHERE T.v < 300",
           "SELECT T.s, COUNT(*), SUM(T.v) FROM T WHERE T.h < 400 "
           "GROUP BY T.s ORDER BY T.s",
       }) {
    SCOPED_TRACE(sql);
    auto r1 = db1.Query(sql);
    auto r4 = db4.Query(sql);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r4.ok()) << r4.status().ToString();
    EXPECT_EQ(r1->total_rows, r4->total_rows);
    ASSERT_EQ(r1->rows.size(), r4->rows.size());
    for (size_t r = 0; r < r1->rows.size(); ++r) {
      for (size_t c = 0; c < r1->rows[r].size(); ++c) {
        EXPECT_TRUE(r1->rows[r][c] == r4->rows[r][c])
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(ParallelExecTest, ConcurrentSessionQueriesOverSharedPool) {
  // The cross-layer stress: distinct sessions issue queries from distinct
  // threads, all sharing one GhostDB, one plan cache, one RAM manager, one
  // worker pool. Under TSan this is the race detector for every structure
  // a worker or a concurrent session may touch; under plain builds it
  // checks answers stay per-session correct.
  auto cfg = TinyConfig();
  cfg.worker_threads = 4;
  core::GhostDB db(cfg);
  BuildSmallDb(&db);
  constexpr int kSessions = 4;
  constexpr int kRounds = 12;
  std::vector<std::unique_ptr<core::Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    core::SessionOptions options;
    options.name = "stress" + std::to_string(s);
    options.ram_quota_buffers = 4;
    auto session = db.OpenSession(std::move(options));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(*session));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kRounds; ++i) {
        int lit = 100 + 17 * s + 11 * i;
        std::string sql;
        switch (i % 4) {
          case 0:
            sql = "SELECT T.id, T.v FROM T WHERE T.v < " +
                  std::to_string(lit);
            break;
          case 1:
            sql = "SELECT T.id, T.v FROM T WHERE T.v < " +
                  std::to_string(lit) + " ORDER BY T.v DESC LIMIT 20";
            break;
          case 2:
            sql = "SELECT DISTINCT T.s FROM T WHERE T.v < " +
                  std::to_string(lit);
            break;
          default:
            sql = "SELECT T.s, COUNT(*) FROM T WHERE T.h < " +
                  std::to_string(lit) + " GROUP BY T.s";
            break;
        }
        auto r = sessions[s]->Query(sql);
        if (!r.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (auto& s : sessions) {
    EXPECT_EQ(s->queries_executed(), static_cast<uint64_t>(kRounds));
  }
}

}  // namespace
}  // namespace ghostdb

// Differential fuzzing: seeded random queries (filters, joins, ORDER BY /
// LIMIT / DISTINCT, aggregates) over randomized Fig-3-schema databases,
// asserting GhostDB's answers through the columnar pipeline equal the
// reference oracle's. Failures print the reproducing seeds + SQL and are
// appended to a failure file for CI artifact upload.
//
// Budget knobs (environment):
//   GHOSTDB_FUZZ_ITERS         total queries (default 500)
//   GHOSTDB_FUZZ_SEED          base seed (default 20070611)
//   GHOSTDB_FUZZ_FAILURE_FILE  failing-seed log (default fuzz_failures.txt)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "fuzz_common.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using core::GhostDB;

using fuzztest::EnvOr;
using fuzztest::FailureFile;

void RecordFailure(const std::string& line) {
  std::ofstream out(FailureFile(), std::ios::app);
  out << line << "\n";
}

// Runs one query against GhostDB (cached-plan path or a pinned
// Brute-Force plan) and the oracle; returns false on divergence.
bool CheckQuery(GhostDB* db, const std::string& sql, bool brute_force,
                std::string* why) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) {
    *why = "parse: " + stmt.status().ToString();
    return false;
  }
  auto bound =
      sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
  if (!bound.ok()) {
    *why = "bind: " + bound.status().ToString();
    return false;
  }
  auto expected = reference::Evaluate(db->schema(), db->staged(), *bound);
  Result<exec::QueryResult> got =
      brute_force
          ? db->QueryWithPlan(
                sql, [] {
                  plan::PlanChoice c;
                  c.project = plan::ProjectAlgo::kBruteForce;
                  return c;
                }())
          : db->Query(sql);
  if (!expected.ok() || !got.ok()) {
    // Data-dependent errors (e.g. MIN over an empty result) must agree in
    // kind, not just in failing — a masked engine error would hide here.
    if (!expected.ok() && !got.ok() &&
        expected.status().code() == got.status().code()) {
      return true;
    }
    *why = "status mismatch: oracle=" + expected.status().ToString() +
           " ghostdb=" + got.status().ToString();
    return false;
  }
  if (got->total_rows != expected->size()) {
    *why = "row count: ghostdb=" + std::to_string(got->total_rows) +
           " oracle=" + std::to_string(expected->size());
    return false;
  }
  if (got->rows.size() != expected->size()) {
    *why = "materialized rows: " + std::to_string(got->rows.size()) +
           " of " + std::to_string(expected->size());
    return false;
  }
  for (size_t i = 0; i < expected->size(); ++i) {
    if (got->rows[i].size() != (*expected)[i].size()) {
      *why = "row " + std::to_string(i) + " arity";
      return false;
    }
    for (size_t j = 0; j < (*expected)[i].size(); ++j) {
      if (!(got->rows[i][j] == (*expected)[i][j])) {
        *why = "row " + std::to_string(i) + " col " + std::to_string(j) +
               ": ghostdb=" + got->rows[i][j].ToString() +
               " oracle=" + (*expected)[i][j].ToString();
        return false;
      }
    }
  }
  return true;
}

TEST(DifferentialFuzzTest, GhostDBMatchesOracleOnRandomQueries) {
  const uint64_t iters = EnvOr("GHOSTDB_FUZZ_ITERS", 500);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  // Start from a clean failure log: stale lines from a previous (since
  // fixed) run must not survive a green rerun.
  std::remove(FailureFile().c_str());
  // Spread the budget over several database shapes; rebuilding dominates
  // runtime, so shapes get a fixed share of queries each.
  const uint64_t kQueriesPerDb = 125;
  const uint64_t dbs = (iters + kQueriesPerDb - 1) / kQueriesPerDb;

  uint64_t ran = 0, failures = 0;
  for (uint64_t d = 0; d < dbs && ran < iters; ++d) {
    uint64_t visible_seed = base_seed + 1000 * d;
    uint64_t hidden_seed = base_seed + 1000 * d + 1;
    GhostDB db(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true));
    Status built = fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed);
    ASSERT_TRUE(built.ok()) << "db build failed for visible_seed="
                            << visible_seed << ": " << built.ToString();
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t q = 0; q < kQueriesPerDb && ran < iters; ++q, ++ran) {
      uint64_t query_seed = base_seed ^ (d << 32) ^ (q * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      bool brute_force = (q % 5) == 4;  // exercise both projection algos
      std::string why;
      if (!CheckQuery(&db, sql, brute_force, &why)) {
        failures += 1;
        std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                            " hidden_seed=" + std::to_string(hidden_seed) +
                            " query_seed=" + std::to_string(query_seed) +
                            (brute_force ? " [brute-force]" : "") +
                            " sql=" + sql + " | " + why;
        RecordFailure(repro);
        ADD_FAILURE() << repro;
        if (failures >= 10) {
          FAIL() << "too many divergences; stopping early (see "
                 << FailureFile() << ")";
        }
      }
    }
  }
  EXPECT_EQ(ran, iters);
  EXPECT_EQ(failures, 0u);
}

}  // namespace
}  // namespace ghostdb

// Differential fuzzing: seeded random queries (filters, joins, ORDER BY /
// LIMIT / DISTINCT, aggregates, GROUP BY) over randomized Fig-3-schema
// databases,
// asserting GhostDB's answers through the columnar pipeline equal the
// reference oracle's. Failures print the reproducing seeds + SQL and are
// appended to a failure file for CI artifact upload.
//
// Budget knobs (environment):
//   GHOSTDB_FUZZ_ITERS         total queries (default 500)
//   GHOSTDB_FUZZ_SEED          base seed (default 20070611)
//   GHOSTDB_FUZZ_FAILURE_FILE  failing-seed log (default fuzz_failures.txt)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "device/fault_injector.h"
#include "fuzz_common.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ghostdb {
namespace {

using core::GhostDB;

using fuzztest::EnvOr;
using fuzztest::FailureFile;

void RecordFailure(const std::string& line) {
  std::ofstream out(FailureFile(), std::ios::app);
  out << line << "\n";
}

// Compares an already-obtained GhostDB answer for `sql` against the
// oracle; returns false on divergence. Shared by the single-stream sweep
// and the multi-session drain mode (whose answers arrive via the session
// result surface).
bool CheckAgainstOracle(GhostDB* db, const std::string& sql,
                        const Result<exec::QueryResult>& got,
                        std::string* why) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) {
    *why = "parse: " + stmt.status().ToString();
    return false;
  }
  auto bound =
      sql::Bind(std::get<sql::SelectStmt>(*stmt), db->schema(), sql);
  if (!bound.ok()) {
    *why = "bind: " + bound.status().ToString();
    return false;
  }
  auto expected = reference::Evaluate(db->schema(), db->staged(), *bound);
  if (!expected.ok() || !got.ok()) {
    // Data-dependent errors (e.g. MIN over an empty result) must agree in
    // kind, not just in failing — a masked engine error would hide here.
    if (!expected.ok() && !got.ok() &&
        expected.status().code() == got.status().code()) {
      return true;
    }
    *why = "status mismatch: oracle=" + expected.status().ToString() +
           " ghostdb=" + got.status().ToString();
    return false;
  }
  if (got->total_rows != expected->size()) {
    *why = "row count: ghostdb=" + std::to_string(got->total_rows) +
           " oracle=" + std::to_string(expected->size());
    return false;
  }
  if (got->rows.size() != expected->size()) {
    *why = "materialized rows: " + std::to_string(got->rows.size()) +
           " of " + std::to_string(expected->size());
    return false;
  }
  for (size_t i = 0; i < expected->size(); ++i) {
    if (got->rows[i].size() != (*expected)[i].size()) {
      *why = "row " + std::to_string(i) + " arity";
      return false;
    }
    for (size_t j = 0; j < (*expected)[i].size(); ++j) {
      if (!(got->rows[i][j] == (*expected)[i][j])) {
        *why = "row " + std::to_string(i) + " col " + std::to_string(j) +
               ": ghostdb=" + got->rows[i][j].ToString() +
               " oracle=" + (*expected)[i][j].ToString();
        return false;
      }
    }
  }
  return true;
}

// Runs one query against GhostDB (cached-plan path or a pinned
// Brute-Force plan) and the oracle; returns false on divergence.
bool CheckQuery(GhostDB* db, const std::string& sql, bool brute_force,
                std::string* why) {
  Result<exec::QueryResult> got =
      brute_force
          ? db->QueryWithPlan(
                sql, [] {
                  plan::PlanChoice c;
                  c.project = plan::ProjectAlgo::kBruteForce;
                  return c;
                }())
          : db->Query(sql);
  return CheckAgainstOracle(db, sql, got, why);
}

TEST(DifferentialFuzzTest, GhostDBMatchesOracleOnRandomQueries) {
  const uint64_t iters = EnvOr("GHOSTDB_FUZZ_ITERS", 500);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  // Start from a clean failure log: stale lines from a previous (since
  // fixed) run must not survive a green rerun.
  std::remove(FailureFile().c_str());
  // Spread the budget over several database shapes; rebuilding dominates
  // runtime, so shapes get a fixed share of queries each.
  const uint64_t kQueriesPerDb = 125;
  const uint64_t dbs = (iters + kQueriesPerDb - 1) / kQueriesPerDb;

  uint64_t ran = 0, failures = 0;
  for (uint64_t d = 0; d < dbs && ran < iters; ++d) {
    uint64_t visible_seed = base_seed + 1000 * d;
    uint64_t hidden_seed = base_seed + 1000 * d + 1;
    // Alternate the morsel width so half the sweep runs every parallel
    // site at 4 workers — answers must stay oracle-exact at any width.
    GhostDB db(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true,
                                    /*worker_threads=*/d % 2 == 0 ? 1 : 4));
    Status built = fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed);
    ASSERT_TRUE(built.ok()) << "db build failed for visible_seed="
                            << visible_seed << ": " << built.ToString();
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t q = 0; q < kQueriesPerDb && ran < iters; ++q, ++ran) {
      uint64_t query_seed = base_seed ^ (d << 32) ^ (q * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      bool brute_force = (q % 5) == 4;  // exercise both projection algos
      std::string why;
      if (!CheckQuery(&db, sql, brute_force, &why)) {
        failures += 1;
        std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                            " hidden_seed=" + std::to_string(hidden_seed) +
                            " query_seed=" + std::to_string(query_seed) +
                            (brute_force ? " [brute-force]" : "") +
                            " sql=" + sql + " | " + why;
        RecordFailure(repro);
        ADD_FAILURE() << repro;
        if (failures >= 10) {
          FAIL() << "too many divergences; stopping early (see "
                 << FailureFile() << ")";
        }
      }
    }
  }
  EXPECT_EQ(ran, iters);
  EXPECT_EQ(failures, 0u);
}

TEST(DifferentialFuzzTest, MatchesOracleUnderForcedTinySortBudget) {
  // Forced-small-sort-budget mode: the same random query sweep, but with
  // the relational-tail budget pinned to one buffer, so every ORDER BY /
  // DISTINCT / fused top-K that sees more than a handful of rows takes the
  // spill (or large-k fallback) path instead of the in-memory one. Answers
  // must stay oracle-exact.
  const uint64_t iters = EnvOr("GHOSTDB_SPILL_FUZZ_ITERS", 150);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  const uint64_t kQueriesPerDb = 75;
  const uint64_t dbs = (iters + kQueriesPerDb - 1) / kQueriesPerDb;

  uint64_t ran = 0, failures = 0;
  for (uint64_t d = 0; d < dbs && ran < iters; ++d) {
    uint64_t visible_seed = base_seed + 2000 * d + 7;
    uint64_t hidden_seed = visible_seed + 1;
    auto cfg = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true,
                                    /*worker_threads=*/d % 2 == 0 ? 4 : 1);
    cfg.exec.sort_budget_buffers = 1;
    // Cycle the volume-padding defense through the sweep: padded databases
    // must stay oracle-exact (every dummy row stripped before the result
    // surface), including on the spill paths this test forces.
    cfg.exec.volume_padding = (d + 1) % 3 == 0
                                  ? exec::VolumePadding::kOff
                                  : ((d + 1) % 3 == 1
                                         ? exec::VolumePadding::kQuantize
                                         : exec::VolumePadding::kWorstCase);
    cfg.exec.pad_spill_runs =
        cfg.exec.volume_padding != exec::VolumePadding::kOff;
    GhostDB db(cfg);
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t q = 0; q < kQueriesPerDb && ran < iters; ++q, ++ran) {
      uint64_t query_seed =
          (base_seed + 77) ^ (d << 32) ^ (q * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      std::string why;
      if (!CheckQuery(&db, sql, /*brute_force=*/(q % 7) == 6, &why)) {
        failures += 1;
        std::string repro =
            "[tiny-sort-budget] visible_seed=" + std::to_string(visible_seed) +
            " hidden_seed=" + std::to_string(hidden_seed) +
            " query_seed=" + std::to_string(query_seed) + " padding=" +
            std::to_string(static_cast<int>(cfg.exec.volume_padding)) +
            " sql=" + sql + " | " + why;
        RecordFailure(repro);
        ADD_FAILURE() << repro;
        if (failures >= 10) {
          FAIL() << "too many divergences; stopping early (see "
                 << FailureFile() << ")";
        }
      }
    }
  }
  EXPECT_EQ(ran, iters);
  EXPECT_EQ(failures, 0u);
}

TEST(DifferentialFuzzTest, ShardedFleetsMatchOracleAcrossShardCounts) {
  // Sharding axis: the same random sweep with the fleet size alternating
  // 2 / 4 / 3 across database rounds (shard_count 1 is the baseline every
  // other test runs). The oracle evaluates the *logical* staged data, so a
  // match here pins the whole scatter-gather path — global-id predicate
  // substitution, per-shard legs, partial-aggregate combine, and the
  // merge-by-seq reassembly — to the single-device semantics.
  const uint64_t iters = EnvOr("GHOSTDB_SHARD_DIFF_ITERS", 150);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  const uint64_t kQueriesPerDb = 75;
  const uint64_t dbs = (iters + kQueriesPerDb - 1) / kQueriesPerDb;
  const uint32_t kShardCycle[] = {2, 4, 3};

  uint64_t ran = 0, failures = 0;
  for (uint64_t d = 0; d < dbs && ran < iters; ++d) {
    uint64_t visible_seed = base_seed + 4000 * d + 13;
    uint64_t hidden_seed = visible_seed + 1;
    auto cfg = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true,
                                    /*worker_threads=*/d % 2 == 0 ? 1 : 4);
    cfg.shard_count = kShardCycle[d % 3];
    // Alternate the forced-spill budget so scatter legs and the gather
    // tail exercise both the in-memory and the spill paths.
    if (d % 2 == 1) cfg.exec.sort_budget_buffers = 1;
    GhostDB db(cfg);
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed).ok());
    ASSERT_EQ(db.shard_count(), kShardCycle[d % 3]);
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t q = 0; q < kQueriesPerDb && ran < iters; ++q, ++ran) {
      uint64_t query_seed =
          (base_seed + 131) ^ (d << 32) ^ (q * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      std::string why;
      if (!CheckQuery(&db, sql, /*brute_force=*/(q % 6) == 5, &why)) {
        failures += 1;
        std::string repro =
            "[sharded] shards=" + std::to_string(cfg.shard_count) +
            " visible_seed=" + std::to_string(visible_seed) +
            " hidden_seed=" + std::to_string(hidden_seed) +
            " query_seed=" + std::to_string(query_seed) + " sql=" + sql +
            " | " + why;
        RecordFailure(repro);
        ADD_FAILURE() << repro;
        if (failures >= 10) {
          FAIL() << "too many divergences; stopping early (see "
                 << FailureFile() << ")";
        }
      }
    }
  }
  EXPECT_EQ(ran, iters);
  EXPECT_EQ(failures, 0u);
}

TEST(DifferentialFuzzTest, MatchesOracleUnderInjectedFaultSchedules) {
  // Fault-schedule dimension: the random query sweep with a live seeded
  // fault schedule. Padded rounds must absorb every injected fault (masked
  // replay) and stay oracle-exact; unpadded rounds may surface cleanly
  // tagged injected errors, after which the SAME query must answer
  // oracle-exactly on retry with the schedule rolling forward — faults
  // never corrupt, they only fail.
  const uint64_t iters = EnvOr("GHOSTDB_FAULT_FUZZ_ITERS", 120);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  const uint64_t kQueriesPerDb = 60;
  const uint64_t dbs = (iters + kQueriesPerDb - 1) / kQueriesPerDb;
  const uint32_t kShardCycle[] = {1, 3, 2};

  uint64_t ran = 0, failures = 0, injected_errors = 0;
  for (uint64_t d = 0; d < dbs && ran < iters; ++d) {
    uint64_t visible_seed = base_seed + 6000 * d + 29;
    uint64_t hidden_seed = visible_seed + 1;
    auto cfg = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true);
    cfg.shard_count = kShardCycle[d % 3];
    bool padded = d % 2 == 0;
    if (padded) {
      cfg.exec.volume_padding = exec::VolumePadding::kQuantize;
      cfg.exec.pad_spill_runs = true;
    }
    if (d % 2 == 1) cfg.exec.sort_budget_buffers = 1;
    cfg.fault_config.enabled = true;
    cfg.fault_config.seed = visible_seed * 31 + d;
    cfg.fault_config.flash_read_p = 0.002;
    cfg.fault_config.flash_write_p = 0.002;
    cfg.fault_config.run_write_p = 0.01;
    cfg.fault_config.ram_acquire_p = 0.01;
    cfg.fault_config.channel_stall_p = 0.01;
    cfg.fault_config.shard_reset_p = 0.02;
    cfg.fault_config.transient_fraction = 0.5;
    GhostDB db(cfg);
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t q = 0; q < kQueriesPerDb && ran < iters; ++q, ++ran) {
      uint64_t query_seed =
          (base_seed + 211) ^ (d << 32) ^ (q * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      auto got = db.Query(sql);
      if (!got.ok() &&
          device::FaultInjector::IsInjectedFault(got.status())) {
        if (padded) {
          // A tagged error surfacing under padding means the masked
          // replay failed its one job.
          failures += 1;
          std::string repro =
              "[fault-fuzz] padded injected error leaked: visible_seed=" +
              std::to_string(visible_seed) + " query_seed=" +
              std::to_string(query_seed) + " sql=" + sql + " | " +
              got.status().ToString();
          RecordFailure(repro);
          ADD_FAILURE() << repro;
          continue;
        }
        injected_errors += 1;
        got = db.Query(sql);  // serviceability: the retry must be clean
        if (!got.ok() &&
            device::FaultInjector::IsInjectedFault(got.status())) {
          // The schedule may fire again; tolerate, but don't loop.
          continue;
        }
      }
      std::string why;
      if (!CheckAgainstOracle(&db, sql, got, &why)) {
        failures += 1;
        std::string repro =
            "[fault-fuzz] shards=" + std::to_string(cfg.shard_count) +
            " padded=" + std::to_string(padded) +
            " visible_seed=" + std::to_string(visible_seed) +
            " fault_seed=" + std::to_string(cfg.fault_config.seed) +
            " query_seed=" + std::to_string(query_seed) + " sql=" + sql +
            " | " + why;
        RecordFailure(repro);
        ADD_FAILURE() << repro;
        if (failures >= 10) {
          FAIL() << "too many divergences; stopping early (see "
                 << FailureFile() << ")";
        }
      }
    }
  }
  EXPECT_EQ(ran, iters);
  EXPECT_EQ(failures, 0u);
}

TEST(DifferentialFuzzTest, InterleavedSessionsMatchOraclePerSession) {
  // Multi-session mode: random queries dealt to K sessions, drained under
  // the arbiter's interleaving (which varies with the deal), each
  // session's answers checked in its own statement order. Correctness must
  // be per-session — the interleaving may not bleed state across sessions.
  const uint64_t rounds = EnvOr("GHOSTDB_SESSION_FUZZ_ROUNDS", 4);
  const uint64_t base_seed =
      EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  const size_t kSessions = 4;
  const size_t kQueriesPerRound = 60;

  uint64_t failures = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    uint64_t visible_seed = base_seed + 500 * round + 17;
    uint64_t hidden_seed = visible_seed + 1;
    GhostDB db(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/true,
                                    /*worker_threads=*/round % 2 == 0 ? 1
                                                                      : 4));
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db, visible_seed, hidden_seed).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    Rng rng(visible_seed ^ 0xdeadbeefULL);
    auto deal =
        fuzztest::DealQueries(rng, shape, kQueriesPerRound, kSessions);
    auto sessions = fuzztest::OpenFuzzSessions(&db, deal);
    ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
    std::vector<core::Session*> raw;
    for (auto& s : *sessions) raw.push_back(s.get());
    auto ran = db.DrainSessions(raw);
    ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    EXPECT_EQ(*ran, kQueriesPerRound);
    for (size_t s = 0; s < kSessions; ++s) {
      auto results = (*sessions)[s]->TakeResults();
      ASSERT_EQ(results.size(), deal[s].size());
      for (size_t q = 0; q < results.size(); ++q) {
        std::string why;
        if (!CheckAgainstOracle(&db, deal[s][q], results[q], &why)) {
          failures += 1;
          std::string repro =
              "[session] visible_seed=" + std::to_string(visible_seed) +
              " hidden_seed=" + std::to_string(hidden_seed) + " session=" +
              std::to_string(s) + " sql=" + deal[s][q] + " | " + why;
          RecordFailure(repro);
          ADD_FAILURE() << repro;
        }
      }
    }
  }
  EXPECT_EQ(failures, 0u);
}

}  // namespace
}  // namespace ghostdb

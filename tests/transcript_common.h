// Shared transcript-observation helpers for the security tests.
//
// Everything here models the honest-but-curious channel observer: a party
// that sees every message crossing the Untrusted<->Secure wire (direction,
// order, label, size, payload digest, session tag) but cannot open the
// Secure key. The leak tests assert transcripts are *identical* across
// hidden-data variants; the attack tests feed the same observation into
// inference procedures and measure what they recover.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "device/channel.h"

namespace ghostdb::transcript {

/// Transcript equality: direction, label, size, content digest, and session
/// tag of every message, in order. Including the session tag makes this the
/// multi-session property: not just each message but the *interleaving* —
/// which session's message sits at position i — must be hidden-independent.
inline void ExpectIdenticalTranscripts(
    const std::vector<device::ChannelMessage>& a,
    const std::vector<device::ChannelMessage>& b) {
  ASSERT_EQ(a.size(), b.size()) << "different number of channel messages";
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].direction),
              static_cast<int>(b[i].direction))
        << "message " << i;
    EXPECT_EQ(a[i].label, b[i].label) << "message " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "message " << i;
    EXPECT_EQ(a[i].content_digest, b[i].content_digest)
        << "message " << i << " (" << a[i].label << ")";
    EXPECT_EQ(a[i].session, b[i].session)
        << "message " << i << " (" << a[i].label << ")";
  }
}

/// Flattens a transcript to the wire-pattern view ("session:label:bytes"
/// per message, in order) — the traffic-analysis granularity an observer
/// gets without decrypting payloads. Two transcripts with equal signatures
/// have the same message count, sizes, ordering, and session interleaving.
inline std::vector<std::string> TranscriptSignature(
    const std::vector<device::ChannelMessage>& transcript) {
  std::vector<std::string> out;
  out.reserve(transcript.size());
  for (const auto& m : transcript) {
    out.push_back(std::to_string(m.session) + ":" + m.label + ":" +
                  std::to_string(m.bytes));
  }
  return out;
}

}  // namespace ghostdb::transcript

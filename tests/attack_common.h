// The adversarial observer: inference attacks over what an honest-but-
// curious channel watcher actually sees.
//
// Threat model (the paper's spy, made concrete): the observer sits on the
// Untrusted<->Secure wire and records every message's direction, label,
// size, and session tag, plus the per-query result volume (the row count
// the Secure key hands back — Untrusted renders the answer, so volume is
// inherently visible). The observer knows which queries were posed ("the
// only information revealed is which queries you pose") and knows the
// visible data. It cannot open the key or decrypt hidden cells.
//
// Two classic volume attacks (cf. volume-based attacks on encrypted
// databases) are implemented against that view:
//   - Volume-frequency: a workload of per-value equality predicates over a
//     hidden column; the observer ranks candidates by result volume and
//     recovers the skewed (hot) hidden value and the full selectivity
//     histogram.
//   - Co-occurrence: per-visible-group join probes; the observer ranks
//     groups by join volume and recovers where the hidden join keys
//     concentrate.
//
// The harness measures attack accuracy across trials with fresh hidden
// seeds, against each ExecConfig::volume_padding mode. Header is
// deliberately gtest-free so bench/leakage_tradeoff.cc can reuse it
// verbatim — the bench measures exactly what the tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/database.h"
#include "device/channel.h"

namespace ghostdb::attack {

/// One query's worth of observer knowledge: the wire pattern
/// ("session:label:bytes" per message, in order) and the result volume
/// (live rows + padding dummies — the observer cannot tell them apart;
/// QueryMetrics::observed_volume). `ok` is false when the query failed —
/// the error/no-error bit itself is observable (see ARCHITECTURE.md,
/// residual channels).
struct Observation {
  bool ok = false;
  std::vector<std::string> wire;
  uint64_t volume = 0;
};

/// Runs `sql` and captures the observer's view of it.
inline Observation Observe(core::GhostDB* db, const std::string& sql) {
  Observation obs;
  db->device().channel().ClearTranscript();
  auto r = db->Query(sql);
  for (const auto& m : db->device().channel().transcript()) {
    obs.wire.push_back(std::to_string(m.session) + ":" + m.label + ":" +
                       std::to_string(m.bytes));
  }
  if (!r.ok()) return obs;
  obs.ok = true;
  obs.volume = r->metrics.observed_volume;
  return obs;
}

/// Shape of the planted skew: `domain` candidate values/groups, `rows`
/// fact rows, and the hot candidate holding `hot_permille`/1000 of the
/// mass (the rest spread uniformly). Visible layout and row counts are
/// identical across hidden seeds — only hidden cells move.
struct SkewSpec {
  uint32_t domain = 8;
  uint32_t rows = 600;
  uint32_t dim_rows = 120;       ///< join variant: dim table size
  uint32_t hot_permille = 450;
};

/// Ground truth for one planted database.
struct PlantedTruth {
  uint32_t hot = 0;                   ///< the skewed value / group
  std::vector<uint64_t> histogram;    ///< rows per candidate
};

/// Single-table histogram target: Obs(id, v, h HIDDEN) with h skewed
/// toward a hidden-rng-chosen hot value.
inline Status BuildSkewedHistogramDb(core::GhostDB* db, uint64_t hidden_seed,
                                     const SkewSpec& spec,
                                     PlantedTruth* truth) {
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE Obs (id INT, v INT, h INT HIDDEN)"));
  Rng visible(11);  // identical across hidden seeds
  Rng hidden(hidden_seed);
  truth->hot = static_cast<uint32_t>(hidden.Uniform(spec.domain));
  truth->histogram.assign(spec.domain, 0);
  GHOSTDB_ASSIGN_OR_RETURN(auto* staged, db->MutableStaging("Obs"));
  for (uint32_t i = 0; i < spec.rows; ++i) {
    uint32_t h = hidden.Uniform(1000) < spec.hot_permille
                     ? truth->hot
                     : static_cast<uint32_t>(hidden.Uniform(spec.domain));
    truth->histogram[h] += 1;
    GHOSTDB_RETURN_NOT_OK(staged->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(visible.Uniform(100))),
         catalog::Value::Int32(static_cast<int32_t>(h))}));
  }
  return db->Build();
}

/// Join target: DimG(id, g, h HIDDEN) with visible group g = id % domain,
/// FactG(id, fk HIDDEN -> DimG, v) with hidden fks concentrated on the
/// hot group's dim rows.
inline Status BuildSkewedJoinDb(core::GhostDB* db, uint64_t hidden_seed,
                                const SkewSpec& spec, PlantedTruth* truth) {
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE DimG (id INT, g INT, h INT HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE FactG (id INT, fk INT REFERENCES DimG HIDDEN, v INT)"));
  Rng visible(13);
  Rng hidden(hidden_seed);
  truth->hot = static_cast<uint32_t>(hidden.Uniform(spec.domain));
  truth->histogram.assign(spec.domain, 0);
  GHOSTDB_ASSIGN_OR_RETURN(auto* dim, db->MutableStaging("DimG"));
  for (uint32_t i = 0; i < spec.dim_rows; ++i) {
    GHOSTDB_RETURN_NOT_OK(dim->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(i % spec.domain)),
         catalog::Value::Int32(static_cast<int32_t>(hidden.Uniform(100)))}));
  }
  uint32_t per_group = spec.dim_rows / spec.domain;
  GHOSTDB_ASSIGN_OR_RETURN(auto* fact, db->MutableStaging("FactG"));
  for (uint32_t i = 0; i < spec.rows; ++i) {
    uint32_t fk;
    if (hidden.Uniform(1000) < spec.hot_permille) {
      // A dim row whose id % domain == hot, i.e. the hot visible group.
      fk = truth->hot + spec.domain * hidden.Uniform(per_group);
    } else {
      fk = static_cast<uint32_t>(hidden.Uniform(spec.dim_rows));
    }
    truth->histogram[fk % spec.domain] += 1;
    GHOSTDB_RETURN_NOT_OK(fact->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(fk)),
         catalog::Value::Int32(static_cast<int32_t>(visible.Uniform(100)))}));
  }
  return db->Build();
}

/// The per-candidate probe workloads the observer watches.
inline std::string HistogramProbe(uint32_t value) {
  return "SELECT Obs.id FROM Obs WHERE Obs.h = " + std::to_string(value);
}
inline std::string JoinProbe(uint32_t group) {
  return "SELECT FactG.id FROM FactG, DimG WHERE FactG.fk = DimG.id "
         "AND DimG.g = " + std::to_string(group);
}

/// The inference step: the candidate with the largest observed volume.
/// Ties (the worst-case-padded picture: every probe the same size) are
/// broken uniformly at random — the attacker is reduced to guessing.
inline uint32_t ArgmaxVolume(const std::vector<Observation>& obs,
                             Rng* tie_rng) {
  uint64_t best = 0;
  for (const auto& o : obs) best = std::max(best, o.volume);
  std::vector<uint32_t> ties;
  for (uint32_t i = 0; i < obs.size(); ++i) {
    if (obs[i].volume == best) ties.push_back(i);
  }
  if (ties.empty()) return 0;
  return ties[tie_rng->Uniform(ties.size())];
}

/// Selectivity-histogram recovery error: the observer normalizes observed
/// volumes into a distribution and compares against the true hidden
/// histogram — total variation distance in [0, 1]. ~0 means full
/// selectivity recovery; padding pushes it toward the distance between
/// uniform and truth.
inline double HistogramRecoveryError(const std::vector<Observation>& obs,
                                     const std::vector<uint64_t>& truth) {
  double obs_total = 0, truth_total = 0;
  for (const auto& o : obs) obs_total += static_cast<double>(o.volume);
  for (uint64_t t : truth) truth_total += static_cast<double>(t);
  if (obs_total == 0 || truth_total == 0) return 1.0;
  double tv = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double p = static_cast<double>(obs[i].volume) / obs_total;
    double q = static_cast<double>(truth[i]) / truth_total;
    tv += p > q ? p - q : q - p;
  }
  return tv / 2.0;
}

/// Aggregate outcome of an attack campaign.
struct AttackReport {
  uint32_t trials = 0;
  uint32_t hits = 0;           ///< trials where argmax == planted hot
  double histogram_error = 0;  ///< mean HistogramRecoveryError
  double accuracy() const {
    return trials == 0 ? 0.0 : static_cast<double>(hits) / trials;
  }
  double chance(const SkewSpec& spec) const { return 1.0 / spec.domain; }
};

enum class AttackKind { kVolumeFrequency, kCoOccurrence };

/// Runs `trials` independent campaigns: fresh hidden seed each, build the
/// planted database under `config`, observe the probe workload, infer.
inline Result<AttackReport> MeasureAttack(const core::GhostDBConfig& config,
                                          AttackKind kind, uint32_t trials,
                                          const SkewSpec& spec,
                                          uint64_t seed0) {
  AttackReport report;
  Rng tie_rng(seed0 ^ 0x9e3779b97f4a7c15ull);
  for (uint32_t t = 0; t < trials; ++t) {
    core::GhostDB db(config);
    PlantedTruth truth;
    if (kind == AttackKind::kVolumeFrequency) {
      GHOSTDB_RETURN_NOT_OK(
          BuildSkewedHistogramDb(&db, seed0 + 1000 * t + 1, spec, &truth));
    } else {
      GHOSTDB_RETURN_NOT_OK(
          BuildSkewedJoinDb(&db, seed0 + 1000 * t + 1, spec, &truth));
    }
    std::vector<Observation> obs;
    for (uint32_t c = 0; c < spec.domain; ++c) {
      obs.push_back(Observe(&db, kind == AttackKind::kVolumeFrequency
                                     ? HistogramProbe(c)
                                     : JoinProbe(c)));
      if (!obs.back().ok) {
        return Status::Internal("attack probe failed on candidate " +
                                std::to_string(c));
      }
    }
    report.trials += 1;
    if (ArgmaxVolume(obs, &tie_rng) == truth.hot) report.hits += 1;
    report.histogram_error += HistogramRecoveryError(obs, truth.histogram);
  }
  if (report.trials > 0) report.histogram_error /= report.trials;
  return report;
}

}  // namespace ghostdb::attack

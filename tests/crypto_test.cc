// Crypto substrate tests: FIPS-197 / SP 800-38A / FIPS-180-4 / RFC 4231 /
// RFC 8439 known-answer vectors plus roundtrip and tamper properties.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hash.h"
#include "crypto/secure_channel.h"
#include "crypto/sha256.h"

namespace ghostdb::crypto {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const std::vector<uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

// --- AES-128 (FIPS-197 Appendix C.1 and SP 800-38A F.1.1) ---

TEST(Aes128Test, Fips197AppendixC1) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto plain = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key.data());
  std::vector<uint8_t> cipher(16);
  aes.EncryptBlock(plain.data(), cipher.data());
  EXPECT_EQ(ToHex(cipher), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128Test, Sp80038aEcbVector) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto plain = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key.data());
  std::vector<uint8_t> cipher(16);
  aes.EncryptBlock(plain.data(), cipher.data());
  EXPECT_EQ(ToHex(cipher), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128Test, DecryptInvertsEncrypt) {
  Rng rng(42);
  uint8_t key[16], block[16], restored[16];
  for (int round = 0; round < 50; ++round) {
    for (auto& b : key) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : block) b = static_cast<uint8_t>(rng.Next());
    Aes128 aes(key);
    uint8_t cipher[16];
    aes.EncryptBlock(block, cipher);
    aes.DecryptBlock(cipher, restored);
    EXPECT_EQ(std::memcmp(block, restored, 16), 0);
  }
}

TEST(Aes128Test, EncryptInPlaceAliasing) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto block = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key.data());
  aes.EncryptBlock(block.data(), block.data());
  EXPECT_EQ(ToHex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// --- AES-128-CTR (SP 800-38A F.5.1) ---

TEST(Aes128CtrTest, Sp80038aCtrFirstBlock) {
  // SP 800-38A F.5.1 uses a full 16-byte initial counter block
  // f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff; our nonce is its first 12 bytes and
  // the starting counter its last 4 (0xfcfdfeff). We reproduce that by
  // seeking to block offset 0xfcfdfeff via the offset parameter.
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto nonce = FromHex("f0f1f2f3f4f5f6f7f8f9fafb");
  auto plain = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128Ctr ctr(key.data(), nonce.data());
  uint64_t start = 0xfcfdfeffull * 16;
  ctr.Crypt(plain.data(), plain.size(), start);
  EXPECT_EQ(ToHex(plain), "874d6191b620e3261bef6864990db6ce");
}

TEST(Aes128CtrTest, CryptIsItsOwnInverse) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto nonce = FromHex("000000000000000000000001");
  Aes128Ctr ctr(key.data(), nonce.data());
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  auto original = data;
  ctr.Crypt(data.data(), data.size());
  EXPECT_NE(data, original);
  ctr.Crypt(data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(Aes128CtrTest, OffsetCryptMatchesFullStream) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto nonce = FromHex("0102030405060708090a0b0c");
  Aes128Ctr ctr(key.data(), nonce.data());
  std::vector<uint8_t> whole(256, 0);
  ctr.Crypt(whole.data(), whole.size(), 0);
  // Decrypting a middle slice with the matching offset must align.
  std::vector<uint8_t> slice(33, 0);
  ctr.Crypt(slice.data(), slice.size(), 77);
  for (size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], whole[77 + i]) << "at " << i;
  }
}

// --- SHA-256 (FIPS-180-4) ---

TEST(Sha256Test, EmptyString) {
  auto d = Sha256::Hash(nullptr, 0);
  EXPECT_EQ(Sha256::ToHex(d.data()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const char* msg = "abc";
  auto d = Sha256::Hash(reinterpret_cast<const uint8_t*>(msg), 3);
  EXPECT_EQ(Sha256::ToHex(d.data()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  auto d = Sha256::Hash(reinterpret_cast<const uint8_t*>(msg),
                        std::strlen(msg));
  EXPECT_EQ(Sha256::ToHex(d.data()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk.data(), chunk.size());
  uint8_t digest[Sha256::kDigestSize];
  hasher.Finish(digest);
  EXPECT_EQ(Sha256::ToHex(digest),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(7777);
  Rng rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  auto oneshot = Sha256::Hash(data.data(), data.size());
  Sha256 hasher;
  size_t off = 0;
  size_t steps[] = {1, 63, 64, 65, 1000, 6584};
  for (size_t s : steps) {
    hasher.Update(data.data() + off, s);
    off += s;
  }
  ASSERT_EQ(off, data.size());
  uint8_t digest[32];
  hasher.Finish(digest);
  EXPECT_EQ(std::memcmp(digest, oneshot.data(), 32), 0);
}

// --- HMAC-SHA-256 (RFC 4231) ---

TEST(HmacSha256Test, Rfc4231Case1) {
  auto key = FromHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const char* msg = "Hi There";
  auto tag = HmacSha256::Mac(key.data(), key.size(),
                             reinterpret_cast<const uint8_t*>(msg), 8);
  EXPECT_EQ(Sha256::ToHex(tag.data()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  const char* key = "Jefe";
  const char* msg = "what do ya want for nothing?";
  auto tag = HmacSha256::Mac(reinterpret_cast<const uint8_t*>(key), 4,
                             reinterpret_cast<const uint8_t*>(msg),
                             std::strlen(msg));
  EXPECT_EQ(Sha256::ToHex(tag.data()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, LongKeyIsHashed) {
  std::vector<uint8_t> key(131, 0xaa);  // RFC 4231 case 6
  const char* msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto tag = HmacSha256::Mac(key.data(), key.size(),
                             reinterpret_cast<const uint8_t*>(msg),
                             std::strlen(msg));
  EXPECT_EQ(Sha256::ToHex(tag.data()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- ChaCha20 (RFC 8439) ---

TEST(ChaCha20Test, Rfc8439Section231KeystreamViaZeroPlaintext) {
  // RFC 8439 2.4.2 test vector: sunscreen plaintext, counter starts at 1.
  auto key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = FromHex("000000000000004a00000000");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<uint8_t> data(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key.data(), nonce.data());
  cipher.Crypt(data.data(), data.size(), /*counter=*/1);
  EXPECT_EQ(ToHex(std::vector<uint8_t>(data.begin(), data.begin() + 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(ToHex(std::vector<uint8_t>(data.end() - 8, data.end())),
            "8eedf2785e42874d");
}

TEST(ChaCha20Test, RoundTrips) {
  auto key = FromHex(
      "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
  auto nonce = FromHex("0123456789ab0123456789ab");
  ChaCha20 cipher(key.data(), nonce.data());
  std::vector<uint8_t> data(5000);
  Rng rng(11);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  auto original = data;
  cipher.Crypt(data.data(), data.size(), 7);
  EXPECT_NE(data, original);
  cipher.Crypt(data.data(), data.size(), 7);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20Test, DistinctNoncesGiveDistinctStreams) {
  auto key = FromHex(
      "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
  auto n1 = FromHex("000000000000000000000001");
  auto n2 = FromHex("000000000000000000000002");
  std::vector<uint8_t> a(64, 0), b(64, 0);
  ChaCha20(key.data(), n1.data()).Crypt(a.data(), a.size());
  ChaCha20(key.data(), n2.data()).Crypt(b.data(), b.size());
  EXPECT_NE(a, b);
}

// --- Sealed channel ---

TEST(SecureChannelTest, SealOpenRoundTrip) {
  uint8_t master[] = "correct horse battery staple";
  auto keys = DeviceKeys::Derive(master, sizeof(master) - 1);
  std::vector<uint8_t> secret = {1, 2, 3, 42, 255, 0, 9};
  auto blob = Seal(keys, secret, /*nonce_seed=*/7);
  auto opened = Open(keys, blob);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(*opened, secret);
}

TEST(SecureChannelTest, TamperedCiphertextRejected) {
  uint8_t master[] = "master";
  auto keys = DeviceKeys::Derive(master, 6);
  std::vector<uint8_t> secret(100, 0x5A);
  auto blob = Seal(keys, secret, 1);
  blob.bytes[20] ^= 0x01;
  EXPECT_TRUE(Open(keys, blob).status().IsCorruption());
}

TEST(SecureChannelTest, TruncatedBlobRejected) {
  uint8_t master[] = "master";
  auto keys = DeviceKeys::Derive(master, 6);
  auto blob = Seal(keys, {1, 2, 3}, 1);
  blob.bytes.resize(10);
  EXPECT_TRUE(Open(keys, blob).status().IsCorruption());
}

TEST(SecureChannelTest, WrongKeysRejected) {
  uint8_t m1[] = "alpha", m2[] = "bravo";
  auto k1 = DeviceKeys::Derive(m1, 5);
  auto k2 = DeviceKeys::Derive(m2, 5);
  auto blob = Seal(k1, {9, 9, 9}, 3);
  EXPECT_TRUE(Open(k2, blob).status().IsCorruption());
}

TEST(SecureChannelTest, CiphertextHidesPlaintext) {
  uint8_t master[] = "k";
  auto keys = DeviceKeys::Derive(master, 1);
  std::vector<uint8_t> zeros(64, 0);
  auto blob = Seal(keys, zeros, 5);
  // The ciphertext region must not be all zeros.
  bool all_zero = true;
  for (size_t i = 12; i < 12 + 64; ++i) all_zero &= (blob.bytes[i] == 0);
  EXPECT_FALSE(all_zero);
}

TEST(SecureChannelTest, EmptyPlaintext) {
  uint8_t master[] = "k";
  auto keys = DeviceKeys::Derive(master, 1);
  auto blob = Seal(keys, {}, 5);
  auto opened = Open(keys, blob);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

// --- Bloom hashing ---

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip ~half the output bits on average.
  int total_flips = 0;
  for (uint64_t x = 1; x < 100; ++x) {
    uint64_t h1 = Mix64(x);
    uint64_t h2 = Mix64(x ^ 1);
    total_flips += __builtin_popcountll(h1 ^ h2);
  }
  double avg = total_flips / 99.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, SeedsAreIndependent) {
  EXPECT_NE(HashId(12345, 1), HashId(12345, 2));
  uint8_t data[] = {1, 2, 3};
  EXPECT_NE(HashBytes(data, 3, 1), HashBytes(data, 3, 2));
}

}  // namespace
}  // namespace ghostdb::crypto

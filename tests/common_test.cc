// Tests for the common substrate: Status/Result, coding, RNG, SimClock.
#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"

namespace ghostdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kSecurityViolation),
            "SecurityViolation");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IOError("boom"); };
  auto outer = [&]() -> Status {
    GHOSTDB_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool good) -> Result<int> {
    if (good) return 5;
    return Status::NotFound("x");
  };
  auto consume = [&](bool good) -> Result<int> {
    GHOSTDB_ASSIGN_OR_RETURN(int v, produce(good));
    return v * 2;
  };
  EXPECT_EQ(*consume(true), 10);
  EXPECT_TRUE(consume(false).status().IsNotFound());
}

TEST(CodingTest, Fixed16RoundTrip) {
  uint8_t buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  uint8_t buf[4];
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  uint8_t buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodingTest, Fixed64RoundTrip) {
  uint8_t buf[8];
  for (uint64_t v : {0ull, 1ull, 0x0123456789ABCDEFull, ~0ull}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, DoubleRoundTrip) {
  uint8_t buf[8];
  for (double d : {0.0, -1.5, 3.14159265358979, 1e300, -1e-300}) {
    EncodeDouble(buf, d);
    EXPECT_EQ(DecodeDouble(buf), d);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(5);
  clock.Advance(10);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(SimClockTest, CategoriesAttributeToCurrentScope) {
  SimClock clock;
  clock.Advance(1);  // "other"
  {
    auto scope = clock.Enter("merge");
    clock.Advance(10);
    {
      auto inner = clock.Enter("sjoin");
      clock.Advance(100);
    }
    clock.Advance(20);  // back to merge
  }
  clock.Advance(2);  // other again
  EXPECT_EQ(clock.Category("merge"), 30u);
  EXPECT_EQ(clock.Category("sjoin"), 100u);
  EXPECT_EQ(clock.Category("other"), 3u);
  EXPECT_EQ(clock.now(), 133u);
}

TEST(SimClockTest, ResetClearsEverything) {
  SimClock clock;
  {
    auto scope = clock.Enter("x");
    clock.Advance(10);
  }
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.Category("x"), 0u);
  EXPECT_EQ(clock.current_category(), "other");
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(kMicrosecond, 1000u);
  EXPECT_EQ(kSecond, 1000000000u);
  EXPECT_DOUBLE_EQ(ToSeconds(1500000000ull), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(2500000ull), 2.5);
}

}  // namespace
}  // namespace ghostdb

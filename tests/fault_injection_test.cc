// Deterministic fault injection — the chaos harness for the failure model:
// seeded fault schedules drive flash read/write faults (transient and
// permanent), torn run writes, RAM-acquire failures, channel stalls, and
// whole-shard resets through the full query stack, asserting the hardening
// invariants:
//
//  * clean Status on every error path (tagged with FaultInjector::kTag so
//    a scheduled fault is distinguishable from a genuine one);
//  * zero flash-page and RAM leaks after a fault (the executor's per-query
//    leak check runs on error paths too, and these tests double-check the
//    allocator/RAM levels directly);
//  * the store stays serviceable after any fault — the same query reruns
//    cleanly and answers exactly;
//  * under padded volume modes, faults are invisible on the wire: the
//    failed attempt's transcript span is erased and the query deterministically
//    replayed with the injector masked, so transcripts stay byte-identical
//    across hidden-data variants AND across fault/no-fault schedules.
//
// Budget knobs (environment):
//   GHOSTDB_CHAOS_ROUNDS       chaos-sweep schedule rounds (default 6)
//   GHOSTDB_FUZZ_SEED          base seed (default 20070611)
//   GHOSTDB_FUZZ_FAILURE_FILE  failing-schedule log (default fuzz_failures.txt)
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "device/channel.h"
#include "device/fault_injector.h"
#include "fuzz_common.h"
#include "transcript_common.h"

namespace ghostdb {
namespace {

using core::GhostDB;
using core::GhostDBConfig;
using device::FaultInjector;
using device::FaultKind;
using device::FaultSite;

using transcript::ExpectIdenticalTranscripts;

// A small Fig-3 fuzz database under a fixed visible seed: big enough that
// every query touches flash, small enough to rebuild per test.
constexpr uint64_t kVisibleSeed = 20070611;

GhostDBConfig BaseConfig() {
  auto cfg = fuzztest::FuzzConfig(kVisibleSeed, /*retain_staged=*/true);
  return cfg;
}

std::unique_ptr<GhostDB> MakeDb(const GhostDBConfig& cfg,
                                uint64_t hidden_seed = 111) {
  auto db = std::make_unique<GhostDB>(cfg);
  Status built = fuzztest::BuildFuzzDb(db.get(), kVisibleSeed, hidden_seed);
  EXPECT_TRUE(built.ok()) << built.ToString();
  return db;
}

// A query that sorts (acquires RAM, and spills under a tiny sort budget)
// and reads both visible and hidden columns of the anchor table.
const char* kSortQuery =
    "SELECT T0.id, T0.v, T0.h FROM T0 WHERE T0.v < 150 ORDER BY T0.h DESC";
// A root-anchored join: fans out across a sharded fleet.
const char* kFanoutQuery =
    "SELECT T0.id, T1.v FROM T0, T1 WHERE T0.fk1 = T1.id AND T0.v < 120 "
    "ORDER BY T0.id";

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(FaultConfigTest, BuildRejectsMalformedSchedules) {
  auto expect_rejected = [](device::FaultConfig fault, const char* what) {
    GhostDBConfig cfg;
    cfg.fault_config = fault;
    GhostDB db(cfg);
    ASSERT_TRUE(db.Execute("CREATE TABLE T (id INT, v INT)").ok());
    Status built = db.Build();
    EXPECT_EQ(built.code(), StatusCode::kInvalidArgument) << what;
    EXPECT_FALSE(db.built()) << what;
  };
  device::FaultConfig negative;
  negative.flash_read_p = -0.25;
  expect_rejected(negative, "negative probability");
  device::FaultConfig over_one;
  over_one.ram_acquire_p = 1.5;
  expect_rejected(over_one, "probability > 1");
  device::FaultConfig bad_fraction;
  bad_fraction.transient_fraction = 2.0;
  expect_rejected(bad_fraction, "transient fraction > 1");
  device::FaultConfig zero_budget;
  zero_budget.retry_enabled = true;
  zero_budget.flash_retry_budget = 0;
  expect_rejected(zero_budget, "zero retry budget with retries enabled");
  device::FaultConfig absurd_budget;
  absurd_budget.flash_retry_budget = 1000;
  expect_rejected(absurd_budget, "absurd retry budget");

  // The same shapes are rejected directly (unit surface of the validator),
  // and the all-defaults schedule is accepted.
  EXPECT_TRUE(device::ValidateFaultConfig(device::FaultConfig{}).ok());
  EXPECT_FALSE(device::ValidateFaultConfig(negative).ok());
}

TEST(FaultConfigTest, DisabledScheduleInjectsNothing) {
  // Non-zero probabilities but enabled=false: the master switch wins and
  // the whole sweep is fault-free.
  auto cfg = BaseConfig();
  cfg.fault_config.enabled = false;
  cfg.fault_config.flash_read_p = 1.0;
  cfg.fault_config.ram_acquire_p = 1.0;
  auto db = MakeDb(cfg);
  auto r = db->Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->metrics.faults_injected, 0u);
  EXPECT_EQ(db->device().fault_injector().faults_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Per-site behavior (one-shot schedules: exact, config-independent)
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, TransientFlashFaultIsRetriedAndCharged) {
  auto db = MakeDb(BaseConfig());
  db->device().fault_injector().ArmOnce(FaultSite::kFlashRead,
                                        FaultKind::kTransient);
  auto r = db->Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The fault was absorbed: one retry, one injected fault, and the backoff
  // shows up as simulated time in its own cost category.
  EXPECT_EQ(r->metrics.flash_retries, 1u);
  EXPECT_EQ(r->metrics.faults_injected, 1u);
  auto it = r->metrics.categories.find("fault-retry");
  ASSERT_NE(it, r->metrics.categories.end());
  EXPECT_GE(it->second, db->device().fault_injector().config().retry_backoff);
}

TEST(FaultInjectionTest, PermanentFlashFaultFailsCleanlyAndStoreServes) {
  auto db = MakeDb(BaseConfig());
  auto expected = db->Query(kSortQuery);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  const uint32_t pages0 = db->allocator().used_pages();
  const uint32_t ram0 = db->device().ram().physical_free_buffers();
  db->device().fault_injector().ArmOnce(FaultSite::kFlashRead,
                                        FaultKind::kPermanent);
  auto r = db->Query(kSortQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(r.status()))
      << r.status().ToString();
  // The error is the injected fault, not a downstream leak report.
  EXPECT_EQ(r.status().message().find("leaked"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(db->allocator().used_pages(), pages0);
  EXPECT_EQ(db->device().ram().physical_free_buffers(), ram0);

  // Serviceable and exact afterwards.
  auto again = db->Query(kSortQuery);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows, expected->rows);
}

TEST(FaultInjectionTest, TornRunWriteReclaimsSpilledExtents) {
  // Force the external sorter to spill, then tear one of its run-page
  // writes. The abort path must hand every allocated extent back.
  auto cfg = BaseConfig();
  cfg.exec.sort_budget_buffers = 1;
  auto db = MakeDb(cfg);
  auto expected = db->Query(kSortQuery);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  const uint32_t pages0 = db->allocator().used_pages();
  // Skip a couple of run-write draws so the tear lands mid-run, after
  // extents were already allocated.
  db->device().fault_injector().ArmOnce(FaultSite::kRunWrite,
                                        FaultKind::kPermanent,
                                        /*after_draws=*/2);
  auto r = db->Query(kSortQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(r.status()))
      << r.status().ToString();
  EXPECT_EQ(r.status().message().find("leaked"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(db->allocator().used_pages(), pages0);

  auto again = db->Query(kSortQuery);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows, expected->rows);
}

TEST(FaultInjectionTest, PageAllocFaultFailsCleanly) {
  auto cfg = BaseConfig();
  cfg.exec.sort_budget_buffers = 1;  // spills allocate pages
  auto db = MakeDb(cfg);
  const uint32_t pages0 = db->allocator().used_pages();
  db->device().fault_injector().ArmOnce(FaultSite::kPageAlloc,
                                        FaultKind::kPermanent);
  auto r = db->Query(kSortQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(r.status()))
      << r.status().ToString();
  EXPECT_EQ(db->allocator().used_pages(), pages0);
  EXPECT_TRUE(db->Query(kSortQuery).ok());
}

TEST(FaultInjectionTest, RamAcquireFaultIsAResourceErrorScopedToTheQuery) {
  auto db = MakeDb(BaseConfig());
  db->device().fault_injector().ArmOnce(FaultSite::kRamAcquire,
                                        FaultKind::kPermanent);
  auto r = db->Query(kSortQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(FaultInjector::IsInjectedFault(r.status()))
      << r.status().ToString();
  // Every buffer came back; the next query has the full arena again.
  EXPECT_EQ(db->device().ram().physical_free_buffers(),
            db->device().ram().total_buffers());
  EXPECT_TRUE(db->Query(kSortQuery).ok());
}

TEST(FaultInjectionTest, ChannelStallCostsTimeButNotWire) {
  auto cfg = BaseConfig();
  auto stalled = MakeDb(cfg);
  auto smooth = MakeDb(cfg);
  stalled->device().channel().ClearTranscript();
  smooth->device().channel().ClearTranscript();
  stalled->device().fault_injector().ArmOnce(FaultSite::kChannelStall,
                                             FaultKind::kPermanent);
  auto r1 = stalled->Query(kSortQuery);
  auto r2 = smooth->Query(kSortQuery);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows, r2->rows);
  // Same wire image; the stall exists only in the simulated-time ledger.
  ExpectIdenticalTranscripts(stalled->device().channel().transcript(),
                             smooth->device().channel().transcript());
  EXPECT_EQ(stalled->device().fault_injector().channel_stalls(), 1u);
  auto it = r1->metrics.categories.find("fault-stall");
  ASSERT_NE(it, r1->metrics.categories.end());
  EXPECT_EQ(it->second, stalled->device().fault_injector().config().channel_stall);
}

// ---------------------------------------------------------------------------
// No-leak error paths: padded modes mask faults on the wire
// ---------------------------------------------------------------------------

GhostDBConfig PaddedConfig() {
  auto cfg = BaseConfig();
  cfg.exec.volume_padding = exec::VolumePadding::kWorstCase;
  cfg.exec.pad_spill_runs = true;
  cfg.exec.sort_budget_buffers = 1;
  return cfg;
}

TEST(FaultInjectionTest, PaddedModeRecoversInvisiblyFromAFault) {
  // Same padded config, one db with a scheduled permanent flash fault, one
  // without: the faulted query must still SUCCEED (masked replay), answer
  // exactly, and leave a byte-identical transcript — fault occurrence is
  // not observable.
  auto faulted = MakeDb(PaddedConfig());
  auto clean = MakeDb(PaddedConfig());
  faulted->device().channel().ClearTranscript();
  clean->device().channel().ClearTranscript();
  faulted->device().fault_injector().ArmOnce(FaultSite::kFlashRead,
                                             FaultKind::kPermanent,
                                             /*after_draws=*/5);
  auto r1 = faulted->Query(kSortQuery);
  auto r2 = clean->Query(kSortQuery);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows, r2->rows);
  ExpectIdenticalTranscripts(faulted->device().channel().transcript(),
                             clean->device().channel().transcript());
  // The recovery is visible in the (secure-side) metrics, not on the wire.
  EXPECT_GE(r1->metrics.faults_injected, 1u);
  EXPECT_EQ(r2->metrics.faults_injected, 0u);
}

TEST(FaultInjectionTest, PaddedRecoveryIsHiddenDataInvariant) {
  // The tentpole property: with a live probabilistic fault schedule under a
  // padded mode, transcripts stay byte-identical across databases that
  // differ only in hidden data. Faults may fire at different operations in
  // the two databases (hidden values steer index probes); erase-and-replay
  // must still converge both to the canonical fault-free wire image.
  auto cfg = PaddedConfig();
  cfg.fault_config.enabled = true;
  cfg.fault_config.seed = 1234;
  cfg.fault_config.flash_read_p = 0.003;
  cfg.fault_config.flash_write_p = 0.003;
  cfg.fault_config.run_write_p = 0.01;
  cfg.fault_config.ram_acquire_p = 0.02;
  cfg.fault_config.channel_stall_p = 0.02;
  cfg.fault_config.transient_fraction = 0.5;
  auto db1 = MakeDb(cfg, /*hidden_seed=*/111);
  auto db2 = MakeDb(cfg, /*hidden_seed=*/999);
  auto clean_cfg = PaddedConfig();
  auto db3 = MakeDb(clean_cfg, /*hidden_seed=*/111);

  fuzztest::FuzzShape shape = fuzztest::MakeShape(kVisibleSeed);
  uint64_t recovered = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    Rng rng(kVisibleSeed ^ (i * 0x9E3779B9ULL));
    std::string sql = fuzztest::GenerateQuery(rng, shape);
    SCOPED_TRACE("query " + std::to_string(i) + ": " + sql);
    db1->device().channel().ClearTranscript();
    db2->device().channel().ClearTranscript();
    db3->device().channel().ClearTranscript();
    auto r1 = db1->Query(sql);
    auto r2 = db2->Query(sql);
    auto r3 = db3->Query(sql);
    // Injected faults never surface under a padded mode: a failing status
    // must be a genuine (data-dependent) error, same as the fault-free db.
    if (!r1.ok()) {
      EXPECT_FALSE(FaultInjector::IsInjectedFault(r1.status()))
          << r1.status().ToString();
    }
    ASSERT_EQ(r1.ok(), r3.ok()) << (r1.ok() ? r3.status().ToString()
                                            : r1.status().ToString());
    if (r1.ok() && r3.ok()) {
      EXPECT_EQ(r1->rows, r3->rows);
      recovered += r1->metrics.faults_injected;
    }
    ExpectIdenticalTranscripts(db1->device().channel().transcript(),
                               db2->device().channel().transcript());
    ExpectIdenticalTranscripts(db1->device().channel().transcript(),
                               db3->device().channel().transcript());
  }
  // The schedule must actually have fired somewhere, or this test is
  // vacuous.
  EXPECT_GT(db1->device().fault_injector().faults_injected() +
                db2->device().fault_injector().faults_injected(),
            0u);
  (void)recovered;
}

// ---------------------------------------------------------------------------
// Sharded fleet: leg death, graceful degradation, recovery
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ShardLegDeathIsACleanErrorWithoutPadding) {
  auto cfg = BaseConfig();
  cfg.shard_count = 3;
  auto db = MakeDb(cfg);
  ASSERT_EQ(db->shard_count(), 3u);
  auto expected = db->Query(kFanoutQuery);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  db->shard_device(1).fault_injector().ArmOnce(FaultSite::kShardReset,
                                               FaultKind::kPermanent);
  auto r = db->Query(kFanoutQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(r.status()))
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
      << r.status().ToString();

  // The fleet stays serviceable and oracle-exact after the reset.
  auto again = db->Query(kFanoutQuery);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows, expected->rows);
}

TEST(FaultInjectionTest, ShardLegDeathIsInvisibleUnderPadding) {
  auto cfg = PaddedConfig();
  cfg.shard_count = 3;
  auto faulted = MakeDb(cfg);
  auto clean = MakeDb(cfg);
  ASSERT_EQ(faulted->shard_count(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    faulted->shard_device(s).channel().ClearTranscript();
    clean->shard_device(s).channel().ClearTranscript();
  }
  faulted->shard_device(2).fault_injector().ArmOnce(FaultSite::kShardReset,
                                                    FaultKind::kPermanent);
  auto r1 = faulted->Query(kFanoutQuery);
  auto r2 = clean->Query(kFanoutQuery);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows, r2->rows);
  EXPECT_GE(r1->metrics.faults_injected, 1u);
  // Per-shard wire images — including the shard that died and replayed —
  // match the never-faulted fleet's.
  for (uint32_t s = 0; s < 3; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ExpectIdenticalTranscripts(faulted->shard_device(s).channel().transcript(),
                               clean->shard_device(s).channel().transcript());
  }
}

// ---------------------------------------------------------------------------
// Metrics accumulate across sessions and shards
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, RetryMetricsAccumulateAcrossSessionsAndShards) {
  auto cfg = BaseConfig();
  cfg.shard_count = 2;
  cfg.fault_config.enabled = true;
  cfg.fault_config.seed = 77;
  cfg.fault_config.flash_read_p = 0.01;
  cfg.fault_config.transient_fraction = 1.0;  // retries always absorb
  cfg.fault_config.flash_retry_budget = 16;
  auto db = MakeDb(cfg);

  core::SessionOptions a, b;
  a.name = "alice";
  b.name = "bob";
  auto sa = db->OpenSession(a);
  auto sb = db->OpenSession(b);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (int i = 0; i < 3; ++i) {
    (*sa)->Enqueue(kFanoutQuery);
    (*sb)->Enqueue(kSortQuery);
  }
  auto ran = db->DrainSessions({sa->get(), sb->get()});
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_EQ(*ran, 6u);

  uint64_t query_faults = 0, query_retries = 0;
  for (auto* session : {sa->get(), sb->get()}) {
    for (auto& r : session->TakeResults()) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      query_faults += r->metrics.faults_injected;
      query_retries += r->metrics.flash_retries;
    }
  }
  // Per-query deltas tile the device counters exactly: nothing double
  // counted across scatter legs / the gather tail, nothing dropped.
  uint64_t device_faults = 0, device_retries = 0;
  for (uint32_t s = 0; s < db->shard_count(); ++s) {
    device_faults += db->shard_device(s).fault_injector().faults_injected();
    device_retries += db->shard_device(s).fault_injector().flash_retries();
  }
  EXPECT_EQ(query_faults, device_faults);
  EXPECT_EQ(query_retries, device_retries);
  EXPECT_GT(query_retries, 0u) << "schedule never fired; test is vacuous";
}

// ---------------------------------------------------------------------------
// Chaos sweep: randomized schedules x shard counts x padding modes
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ChaosSweepStaysServiceableExactAndLeakFree) {
  // Randomized fault schedules over randomized queries. Invariants per
  // round: padded rounds succeed (or fail exactly like the fault-free
  // oracle db) and answer identically; unpadded rounds may surface tagged
  // injected errors, but always with a clean Status; flash pages return to
  // the pre-query level after every statement; the db answers the full
  // query list exactly once the schedule is disarmed.
  const uint64_t rounds = fuzztest::EnvOr("GHOSTDB_CHAOS_ROUNDS", 6);
  const uint64_t base_seed =
      fuzztest::EnvOr("GHOSTDB_FUZZ_SEED", 20070611, /*allow_zero=*/true);
  const uint32_t kShardCycle[] = {1, 2, 3};
  fuzztest::FuzzShape shape = fuzztest::MakeShape(kVisibleSeed);

  for (uint64_t round = 0; round < rounds; ++round) {
    Rng dice(base_seed ^ (0xC4A05ULL + round * 0x9E3779B97F4A7C15ULL));
    auto cfg = BaseConfig();
    cfg.shard_count = kShardCycle[round % 3];
    bool padded = round % 2 == 0;
    if (padded) {
      cfg.exec.volume_padding = round % 4 == 0
                                    ? exec::VolumePadding::kWorstCase
                                    : exec::VolumePadding::kQuantize;
      cfg.exec.pad_spill_runs = true;
    }
    if (dice.Chance(0.5)) cfg.exec.sort_budget_buffers = 1;
    cfg.fault_config.enabled = true;
    cfg.fault_config.seed = dice.Uniform(1u << 30);
    cfg.fault_config.flash_read_p = 0.002 * static_cast<double>(dice.Uniform(4));
    cfg.fault_config.flash_write_p = 0.002 * static_cast<double>(dice.Uniform(4));
    cfg.fault_config.page_alloc_p = 0.005 * static_cast<double>(dice.Uniform(3));
    cfg.fault_config.run_write_p = 0.01 * static_cast<double>(dice.Uniform(3));
    cfg.fault_config.channel_stall_p = 0.01 * static_cast<double>(dice.Uniform(4));
    cfg.fault_config.ram_acquire_p = 0.01 * static_cast<double>(dice.Uniform(3));
    cfg.fault_config.shard_reset_p = 0.05 * static_cast<double>(dice.Uniform(3));
    cfg.fault_config.transient_fraction = 0.25 * static_cast<double>(dice.Uniform(5));
    std::string repro = "[chaos] round=" + std::to_string(round) +
                        " shards=" + std::to_string(cfg.shard_count) +
                        " padded=" + std::to_string(padded) +
                        " fault_seed=" + std::to_string(cfg.fault_config.seed);
    SCOPED_TRACE(repro);

    auto db = MakeDb(cfg);
    auto oracle_cfg = cfg;
    oracle_cfg.fault_config = device::FaultConfig{};
    auto oracle = MakeDb(oracle_cfg);
    bool had_failure = ::testing::Test::HasFailure();

    for (uint64_t q = 0; q < 12; ++q) {
      Rng rng(base_seed ^ (round << 32) ^ (q * 0x9E3779B9ULL));
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      SCOPED_TRACE("query " + std::to_string(q) + ": " + sql);
      const uint32_t pages0 = db->allocator().used_pages();
      auto got = db->Query(sql);
      auto want = oracle->Query(sql);
      EXPECT_EQ(db->allocator().used_pages(), pages0)
          << "flash page leak\n"
          << db->StorageReport();
      if (!got.ok()) {
        if (padded) {
          // Padded modes recover every injected fault; a failure must be
          // genuine and must match the fault-free db's failure.
          EXPECT_FALSE(FaultInjector::IsInjectedFault(got.status()))
              << got.status().ToString();
          EXPECT_FALSE(want.ok());
        } else if (FaultInjector::IsInjectedFault(got.status())) {
          // Tolerated: a clean tagged error. The leak check above already
          // ran; serviceability is asserted by the disarmed pass below.
          EXPECT_EQ(got.status().message().find("leaked"), std::string::npos)
              << got.status().ToString();
          continue;
        }
      }
      if (want.ok()) {
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got->rows, want->rows);
        EXPECT_EQ(got->total_rows, want->total_rows);
      } else {
        ASSERT_FALSE(got.ok());
        EXPECT_EQ(got.status().code(), want.status().code());
      }
    }

    // Disarm and re-verify: the store must be fully serviceable and exact
    // after the whole chaos schedule.
    for (uint32_t s = 0; s < db->shard_count(); ++s) {
      db->shard_device(s).fault_injector().set_armed(false);
    }
    auto got = db->Query(kFanoutQuery);
    auto want = oracle->Query(kFanoutQuery);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(got->rows, want->rows);

    if (!had_failure && ::testing::Test::HasFailure()) {
      std::ofstream out(fuzztest::FailureFile(), std::ios::app);
      out << repro << "\n";
    }
  }
}

}  // namespace
}  // namespace ghostdb

// Session-layer tests: K concurrent sessions over one SecureStore with
// per-session RAM partitions, the channel arbiter's deterministic
// interleaving, the shared plan cache (cross-session hits, stats-version
// re-planning), per-session metrics, and QueryBatch as the degenerate
// single-session case of the scheduler.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "transcript_common.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;
using core::Session;
using core::SessionOptions;

GhostDBConfig Config(bool retain_staged = false) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.retain_staged_data = retain_staged;
  return cfg;
}

// The two-table database the leak tests use; `hidden_seed` perturbs ONLY
// hidden column values.
void BuildDb(GhostDB* db, uint64_t hidden_seed) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Dim (id INT, v INT, h INT HIDDEN)").ok());
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                  "v INT, h INT HIDDEN)")
          .ok());
  Rng shared(7);
  Rng hidden(hidden_seed);
  auto dim = db->MutableStaging("Dim");
  ASSERT_TRUE(dim.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*dim)
                    ->AppendRow({Value::Int32(static_cast<int32_t>(
                                     shared.Uniform(100))),
                                 Value::Int32(static_cast<int32_t>(
                                     hidden.Uniform(100)))})
                    .ok());
  }
  auto fact = db->MutableStaging("Fact");
  ASSERT_TRUE(fact.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*fact)
                    ->AppendRow({Value::Int32(static_cast<int32_t>(
                                     shared.Uniform(300))),
                                 Value::Int32(static_cast<int32_t>(
                                     shared.Uniform(100))),
                                 Value::Int32(static_cast<int32_t>(
                                     hidden.Uniform(100)))})
                    .ok());
  }
  ASSERT_TRUE(db->Build().ok());
}

// Checks a session's answer for `sql` against the reference oracle (the db
// must retain staged data).
void ExpectMatchesOracle(GhostDB& db, const std::string& sql,
                         const Result<exec::QueryResult>& got) {
  SCOPED_TRACE(sql);
  auto stmt = sql::Parse(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto bound =
      sql::Bind(std::get<sql::SelectStmt>(*stmt), db.schema(), sql);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto expected = reference::Evaluate(db.schema(), db.staged(), *bound);
  if (!expected.ok()) {
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(expected.status().code(), got.status().code());
    return;
  }
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->total_rows, expected->size());
  ASSERT_EQ(got->rows.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    ASSERT_EQ(got->rows[i].size(), (*expected)[i].size());
    for (size_t j = 0; j < (*expected)[i].size(); ++j) {
      EXPECT_TRUE(got->rows[i][j] == (*expected)[i][j])
          << "row " << i << " col " << j;
    }
  }
}

TEST(SessionTest, OpenAndCloseSessions) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  uint32_t reserve0 = db.device().ram().reserve_buffers();
  EXPECT_EQ(db.open_sessions(), 0u);
  {
    SessionOptions options;
    options.name = "alice";
    options.ram_quota_buffers = 6;
    auto alice = db.OpenSession(std::move(options));
    ASSERT_TRUE(alice.ok()) << alice.status().ToString();
    EXPECT_EQ((*alice)->name(), "alice");
    EXPECT_EQ(db.open_sessions(), 1u);
    // The pledge left the reserve.
    EXPECT_EQ(db.device().ram().reserve_buffers(), reserve0 - 6);
    auto bob = db.OpenSession();  // default quota: a quarter of the arena
    ASSERT_TRUE(bob.ok());
    EXPECT_NE((*bob)->id(), (*alice)->id());
    EXPECT_EQ(db.open_sessions(), 2u);
  }
  // Sessions closed: partitions returned, arbiter slots freed.
  EXPECT_EQ(db.open_sessions(), 0u);
  EXPECT_EQ(db.device().ram().reserve_buffers(), reserve0);
}

TEST(SessionTest, SessionBeforeBuildIsRejected) {
  GhostDB db(Config());
  EXPECT_TRUE(db.OpenSession().status().IsInvalidArgument());
}

TEST(SessionTest, FourConcurrentSessionsAreOracleCorrect) {
  // K = 4 sessions over one store, each driven by its own thread through
  // the blocking Query() surface. The arbiter interleaves them; every
  // session must still get exactly its own answers (checked against the
  // oracle after the threads join).
  GhostDB db(Config(/*retain_staged=*/true));
  BuildDb(&db, 42);
  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::vector<std::string>> sqls(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    SessionOptions options;
    options.name = "t" + std::to_string(s);
    options.ram_quota_buffers = 6;  // 24 pledged, 8 in the shared reserve
    auto session = db.OpenSession(std::move(options));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(*session));
    for (int q = 0; q < 6; ++q) {
      int lit = 10 + 13 * s + 7 * q;
      switch (q % 3) {
        case 0:
          sqls[s].push_back("SELECT Fact.id FROM Fact WHERE Fact.h < " +
                            std::to_string(lit % 100));
          break;
        case 1:
          sqls[s].push_back(
              "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE "
              "Fact.fk = Dim.id AND Dim.h < " +
              std::to_string(lit % 100) + " AND Fact.v < 50");
          break;
        default:
          sqls[s].push_back(
              "SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h >= " +
              std::to_string(lit % 100) + " ORDER BY Fact.v LIMIT 7");
          break;
      }
    }
  }
  std::vector<std::vector<Result<exec::QueryResult>>> answers(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (const std::string& sql : sqls[s]) {
        answers[s].push_back(sessions[s]->Query(sql));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(answers[s].size(), sqls[s].size());
    for (size_t q = 0; q < sqls[s].size(); ++q) {
      ExpectMatchesOracle(db, sqls[s][q], answers[s][q]);
    }
    EXPECT_EQ(sessions[s]->queries_executed(), sqls[s].size());
  }
}

TEST(SessionTest, DrainInterleavingIsDeterministic) {
  // The deterministic scheduler: two identically built databases given the
  // same per-session workloads must produce byte-identical global
  // transcripts — the arbiter's DRR interleaving is a pure function of
  // visible inputs (who queues what, at which declared weight).
  auto run = [&](GhostDB* db, std::vector<std::string>* labels) {
    BuildDb(db, 42);
    SessionOptions oa, ob;
    oa.name = "a";
    oa.ram_quota_buffers = 8;
    ob.name = "b";
    ob.ram_quota_buffers = 8;
    auto a = db->OpenSession(std::move(oa));
    auto b = db->OpenSession(std::move(ob));
    ASSERT_TRUE(a.ok() && b.ok());
    for (int i = 0; i < 5; ++i) {
      (*a)->Enqueue("SELECT Fact.id FROM Fact WHERE Fact.h < " +
                    std::to_string(20 + i));
      (*b)->Enqueue(
          "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE Fact.fk = Dim.id "
          "AND Dim.h < " +
          std::to_string(30 + i) + " AND Fact.v < 60");
    }
    db->device().channel().ClearTranscript();
    auto ran = db->DrainSessions({a->get(), b->get()});
    ASSERT_TRUE(ran.ok());
    EXPECT_EQ(*ran, 10u);
    *labels =
        transcript::TranscriptSignature(db->device().channel().transcript());
  };
  GhostDB db1(Config()), db2(Config());
  std::vector<std::string> t1, t2;
  run(&db1, &t1);
  run(&db2, &t2);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

TEST(SessionTest, SharedPlanCacheServesAllSessions) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  SessionOptions oa, ob;
  oa.ram_quota_buffers = 8;
  ob.ram_quota_buffers = 8;
  auto a = db.OpenSession(std::move(oa));
  auto b = db.OpenSession(std::move(ob));
  ASSERT_TRUE(a.ok() && b.ok());
  // Same shape, different literals: session b must hit the plan session a
  // populated (the cache keys on visible shape, not on the principal).
  auto ra = (*a)->Query("SELECT Fact.id FROM Fact WHERE Fact.h < 40");
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  EXPECT_EQ(ra->metrics.plan_cache_misses, 1u);
  auto rb = (*b)->Query("SELECT Fact.id FROM Fact WHERE Fact.h < 77");
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(rb->metrics.plan_cache_hits, 1u);
  EXPECT_EQ(rb->metrics.plan_cache_misses, 0u);
  EXPECT_EQ(db.plan_cache_size(), 1u);
}

TEST(SessionTest, StaleStatsVersionTriggersReplan) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  const char* sql = "SELECT Fact.id FROM Fact WHERE Fact.h < 40";
  auto r1 = db.Query(sql);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->metrics.plan_cache_misses, 1u);
  auto r2 = db.Query(sql);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->metrics.plan_cache_hits, 1u);
  // Stats change: the cached strategy was chosen under selectivities that
  // are now dead. The next use must re-plan, not reuse.
  uint64_t v0 = db.stats_version();
  db.NotifyStatsChanged();
  EXPECT_EQ(db.stats_version(), v0 + 1);
  auto r3 = db.Query(sql);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->metrics.plan_cache_replans, 1u);
  EXPECT_EQ(r3->metrics.plan_cache_hits, 0u);
  EXPECT_EQ(r3->metrics.plan_cache_misses, 0u);
  EXPECT_EQ(db.plan_cache_replans(), 1u);
  // Re-stamped: back to plain hits, still one cache entry.
  auto r4 = db.Query(sql);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->metrics.plan_cache_hits, 1u);
  EXPECT_EQ(db.plan_cache_size(), 1u);
  // The answer survives every transition.
  EXPECT_EQ(r1->total_rows, r3->total_rows);
  EXPECT_EQ(r1->total_rows, r4->total_rows);
}

TEST(SessionTest, ExhaustedPartitionFailsCleanlyWithoutStarvingNeighbors) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  // Pledge the whole arena: tiny gets 1 buffer and the reserve is empty,
  // so tiny's queries cannot borrow anything.
  SessionOptions ot, o1, o2;
  ot.name = "tiny";
  ot.ram_quota_buffers = 1;
  o1.name = "big1";
  o1.ram_quota_buffers = 16;
  o2.name = "big2";
  o2.ram_quota_buffers = 15;
  auto tiny = db.OpenSession(std::move(ot));
  auto big1 = db.OpenSession(std::move(o1));
  auto big2 = db.OpenSession(std::move(o2));
  ASSERT_TRUE(tiny.ok() && big1.ok() && big2.ok());
  const char* sql =
      "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 40 AND Fact.v < 50";
  // tiny: clean per-session ResourceExhausted naming its partition.
  auto rt = (*tiny)->Query(sql);
  ASSERT_FALSE(rt.ok());
  EXPECT_TRUE(rt.status().IsResourceExhausted()) << rt.status().ToString();
  EXPECT_NE(rt.status().message().find("'tiny'"), std::string::npos)
      << rt.status().ToString();
  // All of tiny's buffers came back (RAII handles), so the failure left no
  // residue in its partition.
  EXPECT_EQ(db.device().ram().partition_used((*tiny)->ram_partition()), 0u);
  // Neighbors are unaffected: same query completes in their quotas.
  auto r1 = (*big1)->Query(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = (*big2)->Query(sql);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->total_rows, r2->total_rows);
  // And tiny still works for queries that fit one buffer's discipline...
  // none do (every plan needs a few), so tiny keeps failing cleanly
  // rather than poisoning the device.
  auto rt2 = (*tiny)->Query(sql);
  EXPECT_TRUE(rt2.status().IsResourceExhausted());
  auto r3 = (*big1)->Query(sql);
  EXPECT_TRUE(r3.ok());
}

TEST(SessionTest, SessionMetricsAccumulatePerSession) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  SessionOptions oa, ob;
  oa.ram_quota_buffers = 8;
  ob.ram_quota_buffers = 8;
  auto a = db.OpenSession(std::move(oa));
  auto b = db.OpenSession(std::move(ob));
  ASSERT_TRUE(a.ok() && b.ok());
  uint64_t rows = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = (*a)->Query("SELECT Fact.id FROM Fact WHERE Fact.h < " +
                         std::to_string(30 + i));
    ASSERT_TRUE(r.ok());
    rows += r->total_rows;
  }
  auto rb = (*b)->Query("SELECT Dim.v FROM Dim WHERE Dim.h < 10");
  ASSERT_TRUE(rb.ok());
  // a's baseline is its own: three queries, their rows, 1 miss + 2 hits.
  exec::QueryMetrics ma = (*a)->metrics();
  EXPECT_EQ((*a)->queries_executed(), 3u);
  EXPECT_EQ(ma.result_rows, rows);
  EXPECT_EQ(ma.plan_cache_misses, 1u);
  EXPECT_EQ(ma.plan_cache_hits, 2u);
  EXPECT_GT(ma.total_ns, 0u);
  // b saw only its own query.
  exec::QueryMetrics mb = (*b)->metrics();
  EXPECT_EQ((*b)->queries_executed(), 1u);
  EXPECT_EQ(mb.result_rows, rb->total_rows);
}

TEST(SessionTest, QueryBatchIsADegenerateSingleSessionSchedule) {
  GhostDB db1(Config()), db2(Config());
  BuildDb(&db1, 42);
  BuildDb(&db2, 42);
  std::vector<std::string> sqls;
  for (int i = 0; i < 8; ++i) {
    sqls.push_back("SELECT Fact.id FROM Fact WHERE Fact.h < " +
                   std::to_string(25 + 5 * i));
    sqls.push_back("SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h >= " +
                   std::to_string(4 * i) + " ORDER BY Fact.v LIMIT 3");
  }
  db1.device().channel().ClearTranscript();
  auto batch = db1.QueryBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), sqls.size());
  EXPECT_GT(batch->total.plan_cache_hits, 0u);
  // Statement-for-statement identical to the one-at-a-time path.
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto r = db2.Query(sqls[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(batch->results[i].total_rows, r->total_rows) << sqls[i];
    EXPECT_EQ(batch->results[i].rows, r->rows) << sqls[i];
  }
  // The whole batch ran as one session: every message carries the same
  // (non-main) session tag.
  int32_t tag = -2;
  for (const auto& m : db1.device().channel().transcript()) {
    if (tag == -2) tag = m.session;
    EXPECT_EQ(m.session, tag);
  }
  EXPECT_GE(tag, 0);
  // The ephemeral session is gone.
  EXPECT_EQ(db1.open_sessions(), 0u);
}

TEST(SessionTest, QueryBatchFailsFastOnError) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  db.device().channel().ClearTranscript();
  auto batch = db.QueryBatch({
      "SELECT Fact.id FROM Fact WHERE Fact.h < 20",
      "SELECT Fact.nope FROM Fact",  // bind error
      "SELECT Fact.id FROM Fact WHERE Fact.h < 40",
      "SELECT Fact.id FROM Fact WHERE Fact.h < 60",
  });
  ASSERT_FALSE(batch.ok());
  // Statements after the failing one never reached the device: only the
  // first statement was ever announced.
  int announced = 0;
  for (const auto& m : db.device().channel().transcript()) {
    if (m.label == "query") announced += 1;
  }
  EXPECT_EQ(announced, 1);
}

}  // namespace
}  // namespace ghostdb

// Shared fuzz machinery for the differential and leak property tests: a
// randomized Fig-3-schema database builder and a seeded random query
// generator covering the bound query model (conjunctive filters on visible
// and hidden columns, key/fk joins along the schema tree, aggregates,
// GROUP BY, DISTINCT, ORDER BY, LIMIT).
//
// Determinism contract: everything visible — schema shape (CHAR widths),
// cardinalities, visible column values, foreign keys, index choices — is
// drawn from `visible_seed` only; `hidden_seed` perturbs hidden column
// values alone. Two databases built with the same visible seed and
// different hidden seeds therefore differ only in hidden data, which is
// exactly what the leak sweep needs.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"

namespace ghostdb::fuzztest {

/// Budget/seed knob from the environment. Malformed values fail loudly so
/// a typo'd budget can never make a fuzz run vacuous; zero is rejected for
/// budgets (vacuous run) but legal for seeds.
inline uint64_t EnvOr(const char* name, uint64_t fallback,
                      bool allow_zero = false) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || (parsed == 0 && !allow_zero)) {
    ADD_FAILURE() << name << "='" << v << "' is not a valid "
                  << (allow_zero ? "integer" : "positive integer")
                  << "; using default " << fallback;
    return fallback;
  }
  return parsed;
}

/// Appends one reproduction line to the failure log CI uploads as an
/// artifact (GHOSTDB_FUZZ_FAILURE_FILE, default fuzz_failures.txt).
inline std::string FailureFile() {
  const char* v = std::getenv("GHOSTDB_FUZZ_FAILURE_FILE");
  return v != nullptr && *v != '\0' ? v : "fuzz_failures.txt";
}

/// Randomized shape parameters, derived from the visible seed.
struct FuzzShape {
  uint32_t t0, t1, t2, t11, t12;  ///< cardinalities
  int domain;                     ///< int values uniform in [0, domain)
  uint32_t str_width;             ///< width of the CHAR columns
};

inline FuzzShape MakeShape(uint64_t visible_seed) {
  Rng rng(visible_seed ^ 0x5a5a5a5aULL);
  FuzzShape s;
  s.t0 = 150 + static_cast<uint32_t>(rng.Uniform(250));
  s.t1 = 30 + static_cast<uint32_t>(rng.Uniform(90));
  s.t2 = 15 + static_cast<uint32_t>(rng.Uniform(45));
  s.t11 = 10 + static_cast<uint32_t>(rng.Uniform(30));
  s.t12 = 10 + static_cast<uint32_t>(rng.Uniform(30));
  s.domain = 20 + static_cast<int>(rng.Uniform(180));
  s.str_width = 4 + static_cast<uint32_t>(rng.Uniform(7));
  return s;
}

/// Config for a fuzz database: a random subset of hidden attributes gets
/// climbing indexes (drawn from the visible seed — index choice is visible
/// metadata), so both the indexed and the scan selection paths are hit.
inline core::GhostDBConfig FuzzConfig(uint64_t visible_seed,
                                      bool retain_staged,
                                      uint32_t worker_threads = 1) {
  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.retain_staged_data = retain_staged;
  cfg.worker_threads = worker_threads;
  Rng rng(visible_seed ^ 0xc0ffeeULL);
  std::map<std::string, std::vector<std::string>> indexed;
  const std::pair<const char*, const char*> candidates[] = {
      {"T0", "h"},  {"T0", "hs"},  {"T1", "h"},  {"T2", "h"},
      {"T2", "bh"}, {"T11", "h"}, {"T11", "dh"}, {"T12", "h"},
  };
  for (const auto& [table, column] : candidates) {
    if (rng.Chance(0.5)) indexed[table].push_back(column);
  }
  if (!indexed.empty()) cfg.indexed_attrs_by_name = std::move(indexed);
  return cfg;
}

/// Builds the Fig-3 tree T0 -> {T1 -> {T11, T12}, T2} with randomized
/// cardinalities/widths/values. `db` must be fresh, constructed from
/// FuzzConfig(visible_seed, ...).
inline Status BuildFuzzDb(core::GhostDB* db, uint64_t visible_seed,
                          uint64_t hidden_seed) {
  FuzzShape s = MakeShape(visible_seed);
  std::string w = std::to_string(s.str_width);
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T11 (id INT, v INT, h INT HIDDEN, "
                  "dh DOUBLE HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T12 (id INT, v INT, h INT HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T2 (id INT, v INT, d DOUBLE, "
                  "h INT HIDDEN, bh BIGINT HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T1 (id INT, fk11 INT REFERENCES T11 HIDDEN, "
                  "fk12 INT REFERENCES T12 HIDDEN, v INT, vs CHAR(" +
                  w + "), h INT HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T0 (id INT, fk1 INT REFERENCES T1 HIDDEN, "
                  "fk2 INT REFERENCES T2 HIDDEN, v INT, h INT HIDDEN, "
                  "hs CHAR(" + w + ") HIDDEN)"));

  using catalog::Value;
  Rng vis(visible_seed);
  Rng hid(hidden_seed);
  auto vint = [&] {
    return Value::Int32(static_cast<int32_t>(vis.Uniform(s.domain)));
  };
  auto hint = [&] {
    return Value::Int32(static_cast<int32_t>(hid.Uniform(s.domain)));
  };
  auto vstr = [&] {
    return Value::String("s" + std::to_string(vis.Uniform(50)));
  };
  auto hstr = [&] {
    return Value::String("s" + std::to_string(hid.Uniform(50)));
  };
  auto fk = [&](uint32_t bound) {
    return Value::Int32(static_cast<int32_t>(vis.Uniform(bound)));
  };
  // Doubles include exact +0.0 and -0.0 so non-canonical encodings (the
  // DISTINCT row-key edge case) actually occur in the data.
  auto dbl = [&](Rng& rng) {
    uint64_t pick = rng.Uniform(8);
    if (pick == 0) return Value::Double(0.0);
    if (pick == 1) return Value::Double(-0.0);
    return Value::Double(static_cast<double>(rng.Uniform(s.domain)) + 0.5);
  };
  auto big = [&](Rng& rng) {
    return Value::Int64(static_cast<int64_t>(rng.Uniform(s.domain)) *
                        3000000000LL);
  };
  auto stage = [&](const char* name, uint32_t n,
                   auto make_row) -> Status {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging(name));
    for (uint32_t i = 0; i < n; ++i) {
      GHOSTDB_RETURN_NOT_OK(data->AppendRow(make_row()));
    }
    return Status::OK();
  };
  GHOSTDB_RETURN_NOT_OK(stage("T11", s.t11, [&] {
    return std::vector<Value>{vint(), hint(), dbl(hid)};
  }));
  GHOSTDB_RETURN_NOT_OK(stage("T12", s.t12, [&] {
    return std::vector<Value>{vint(), hint()};
  }));
  GHOSTDB_RETURN_NOT_OK(stage("T2", s.t2, [&] {
    return std::vector<Value>{vint(), dbl(vis), hint(), big(hid)};
  }));
  GHOSTDB_RETURN_NOT_OK(stage("T1", s.t1, [&] {
    return std::vector<Value>{fk(s.t11), fk(s.t12), vint(), vstr(), hint()};
  }));
  GHOSTDB_RETURN_NOT_OK(stage("T0", s.t0, [&] {
    return std::vector<Value>{fk(s.t1), fk(s.t2), vint(), hint(), hstr()};
  }));
  return db->Build();
}

// ---------------------------------------------------------------------------
// Query generator
// ---------------------------------------------------------------------------

namespace detail {

enum class ColKind { kInt, kStr, kDbl, kBig };

struct FuzzColumn {
  const char* name;
  ColKind kind;
};

struct FuzzTable {
  const char* name;
  uint32_t FuzzShape::* rows;
  std::vector<FuzzColumn> cols;
};

inline const std::vector<FuzzTable>& Tables() {
  static const std::vector<FuzzTable> tables = {
      {"T0", &FuzzShape::t0,
       {{"v", ColKind::kInt}, {"h", ColKind::kInt}, {"hs", ColKind::kStr}}},
      {"T1", &FuzzShape::t1,
       {{"v", ColKind::kInt}, {"vs", ColKind::kStr}, {"h", ColKind::kInt}}},
      {"T2", &FuzzShape::t2,
       {{"v", ColKind::kInt},
        {"d", ColKind::kDbl},
        {"h", ColKind::kInt},
        {"bh", ColKind::kBig}}},
      {"T11", &FuzzShape::t11,
       {{"v", ColKind::kInt}, {"h", ColKind::kInt}, {"dh", ColKind::kDbl}}},
      {"T12", &FuzzShape::t12,
       {{"v", ColKind::kInt}, {"h", ColKind::kInt}}},
  };
  return tables;
}

/// Connected FROM sets of the Fig-3 tree with their join clauses
/// (table indexes into Tables()).
struct FromSet {
  std::vector<size_t> tables;
  const char* joins;  ///< "" for single-table sets
};

inline const std::vector<FromSet>& FromSets() {
  static const std::vector<FromSet> sets = {
      {{0}, ""},
      {{1}, ""},
      {{2}, ""},
      {{3}, ""},
      {{4}, ""},
      {{0, 1}, "T0.fk1 = T1.id"},
      {{0, 2}, "T0.fk2 = T2.id"},
      {{1, 3}, "T1.fk11 = T11.id"},
      {{1, 4}, "T1.fk12 = T12.id"},
      {{0, 1, 2}, "T0.fk1 = T1.id AND T0.fk2 = T2.id"},
      {{0, 1, 3}, "T0.fk1 = T1.id AND T1.fk11 = T11.id"},
      {{0, 1, 4}, "T0.fk1 = T1.id AND T1.fk12 = T12.id"},
      {{1, 3, 4}, "T1.fk11 = T11.id AND T1.fk12 = T12.id"},
      {{0, 1, 3, 4},
       "T0.fk1 = T1.id AND T1.fk11 = T11.id AND T1.fk12 = T12.id"},
  };
  return sets;
}

inline const char* CompareOpText(uint64_t pick) {
  switch (pick) {
    case 0: return "=";
    case 1: return "<";
    case 2: return "<=";
    case 3: return ">";
    case 4: return ">=";
    default: return "<>";
  }
}

}  // namespace detail

/// One random query over the fuzz schema, drawn from `rng`. Always
/// bindable: FROM sets are connected subtrees, ORDER BY references the
/// select list, mixed aggregate/plain selects always carry a GROUP BY
/// covering the plain items.
inline std::string GenerateQuery(Rng& rng, const FuzzShape& shape) {
  using detail::FromSets;
  using detail::Tables;
  const auto& set = FromSets()[rng.Uniform(FromSets().size())];

  // A select item: table index + column index, or -1 for the id.
  struct Item {
    size_t table;
    int col;
    std::string text;
  };
  auto random_item = [&]() -> Item {
    size_t t = set.tables[rng.Uniform(set.tables.size())];
    const auto& table = Tables()[t];
    if (rng.Chance(0.2)) {
      return {t, -1, std::string(table.name) + ".id"};
    }
    int c = static_cast<int>(rng.Uniform(table.cols.size()));
    return {t, c, std::string(table.name) + "." + table.cols[c].name};
  };
  // One random aggregate item's text ("COUNT(*)", "SUM(T0.v)", ...).
  auto random_agg = [&]() -> std::string {
    uint64_t f = rng.Uniform(6);
    if (f == 0) return "COUNT(*)";
    Item item = random_item();
    detail::ColKind kind = item.col < 0
                               ? detail::ColKind::kInt
                               : Tables()[item.table].cols[item.col].kind;
    bool numeric = kind != detail::ColKind::kStr;
    if (item.col < 0 || f == 1) return "COUNT(" + item.text + ")";
    if (numeric && (f == 2 || f == 3)) {
      return (f == 2 ? "SUM(" : "AVG(") + item.text + ")";
    }
    return (f == 4 ? "MIN(" : "MAX(") + item.text + ")";
  };

  // Three select shapes: plain columns, whole-result aggregates, or
  // grouped aggregation (plain keys + aggregates + GROUP BY).
  uint64_t mode = rng.Uniform(10);
  bool aggregate = mode >= 6 && mode < 8;
  bool grouped = mode >= 8;
  std::vector<Item> items;          // plain select items (keys if grouped)
  std::vector<std::string> orderable;  // legal ORDER BY key texts
  std::string select;
  if (aggregate) {
    size_t n = 1 + rng.Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      if (!select.empty()) select += ", ";
      select += random_agg();
    }
  } else {
    size_t n = grouped ? 1 + rng.Uniform(2) : 1 + rng.Uniform(4);
    for (size_t i = 0; i < n; ++i) {
      Item item = random_item();
      bool dup = false;
      for (const auto& prev : items) dup |= prev.text == item.text;
      if (dup) continue;
      if (!select.empty()) select += ", ";
      select += item.text;
      orderable.push_back(item.text);
      items.push_back(std::move(item));
    }
  }
  std::string group_clause;
  if (grouped) {
    // Keys first (every plain item must be a group key), then 0-2
    // aggregate outputs — both are legal ORDER BY keys.
    size_t naggs = rng.Uniform(3);
    for (size_t i = 0; i < naggs; ++i) {
      std::string agg = random_agg();
      select += ", " + agg;
      orderable.push_back(std::move(agg));
    }
    for (const auto& item : items) {
      if (!group_clause.empty()) group_clause += ", ";
      group_clause += item.text;
    }
    // Sometimes repeat a key: duplicate GROUP BY entries must collapse.
    if (rng.Chance(0.15)) group_clause += ", " + items[0].text;
  }

  std::string from;
  for (size_t t : set.tables) {
    if (!from.empty()) from += ", ";
    from += Tables()[t].name;
  }

  std::vector<std::string> conjuncts;
  if (*set.joins != '\0') conjuncts.push_back(set.joins);
  size_t preds = rng.Uniform(4);
  for (size_t i = 0; i < preds; ++i) {
    size_t t = set.tables[rng.Uniform(set.tables.size())];
    const auto& table = Tables()[t];
    const char* op = detail::CompareOpText(rng.Uniform(6));
    if (rng.Chance(0.15)) {
      uint64_t bound = shape.*(table.rows);
      conjuncts.push_back(std::string(table.name) + ".id " + op + " " +
                          std::to_string(rng.Uniform(bound + 1)));
      continue;
    }
    const auto& col = table.cols[rng.Uniform(table.cols.size())];
    std::string lhs = std::string(table.name) + "." + col.name;
    uint64_t span = static_cast<uint64_t>(shape.domain) +
                    static_cast<uint64_t>(shape.domain) / 5 + 1;
    switch (col.kind) {
      case detail::ColKind::kStr:
        conjuncts.push_back(lhs + " " + op + " 's" +
                            std::to_string(rng.Uniform(60)) + "'");
        break;
      case detail::ColKind::kDbl:
        // Mix float literals with the int literals the binder coerces,
        // and an exact 0 (the ±0.0 data edge).
        if (rng.Chance(0.15)) {
          conjuncts.push_back(lhs + " " + op + " 0");
        } else {
          conjuncts.push_back(lhs + " " + op + " " +
                              std::to_string(rng.Uniform(span)) + ".5");
        }
        break;
      case detail::ColKind::kBig:
        conjuncts.push_back(
            lhs + " " + op + " " +
            std::to_string(static_cast<int64_t>(rng.Uniform(span)) *
                           3000000000LL));
        break;
      case detail::ColKind::kInt:
        conjuncts.push_back(lhs + " " + op + " " +
                            std::to_string(rng.Uniform(span)));
        break;
    }
  }

  std::string sql = "SELECT ";
  if (!aggregate && !grouped && rng.Chance(0.3)) sql += "DISTINCT ";
  sql += select + " FROM " + from;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    sql += (i == 0 ? " WHERE " : " AND ") + conjuncts[i];
  }
  if (!group_clause.empty()) sql += " GROUP BY " + group_clause;
  if (!orderable.empty() && rng.Chance(0.4)) {
    size_t keys = 1 + rng.Uniform(orderable.size() > 1 ? 2 : 1);
    sql += " ORDER BY ";
    for (size_t k = 0; k < keys; ++k) {
      if (k > 0) sql += ", ";
      sql += orderable[rng.Uniform(orderable.size())];
      if (rng.Chance(0.5)) sql += " DESC";
    }
  }
  if (rng.Chance(0.3)) {
    sql += " LIMIT " + std::to_string(1 + rng.Uniform(25));
  }
  return sql;
}

// ---------------------------------------------------------------------------
// Multi-session fuzz mode
// ---------------------------------------------------------------------------

/// Deals `n` generated queries to `k` sessions. The deal (which session
/// gets which query, and thus the arbiter's interleaving once the sessions
/// drain) is drawn from `rng`, so different seeds exercise different
/// interleavings; everything drawn is visible information (the queries and
/// their assignment), never hidden data.
inline std::vector<std::vector<std::string>> DealQueries(
    Rng& rng, const FuzzShape& shape, size_t n, size_t k) {
  std::vector<std::vector<std::string>> per_session(k);
  for (size_t i = 0; i < n; ++i) {
    per_session[rng.Uniform(k)].push_back(GenerateQuery(rng, shape));
  }
  return per_session;
}

/// Opens one session per deal slot with equal RAM quotas (an eighth of the
/// arena each, so four sessions leave half the buffers in the shared
/// reserve) and queues the dealt statements, ready for
/// GhostDB::DrainSessions().
inline Result<std::vector<std::unique_ptr<core::Session>>> OpenFuzzSessions(
    core::GhostDB* db, const std::vector<std::vector<std::string>>& deal) {
  std::vector<std::unique_ptr<core::Session>> sessions;
  uint32_t quota =
      std::max<uint32_t>(1, db->device().ram().total_buffers() / 8);
  for (size_t s = 0; s < deal.size(); ++s) {
    core::SessionOptions options;
    options.name = "fuzz" + std::to_string(s);
    options.ram_quota_buffers = quota;
    GHOSTDB_ASSIGN_OR_RETURN(std::unique_ptr<core::Session> session,
                             db->OpenSession(std::move(options)));
    for (const std::string& sql : deal[s]) session->Enqueue(sql);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace ghostdb::fuzztest

// Catalog tests: values, schema tree validation, partitioning, stats.
#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"
#include "common/rng.h"

namespace ghostdb::catalog {
namespace {

TEST(ValueTest, TypeAndAccessors) {
  EXPECT_EQ(Value::Int32(5).type(), DataType::kInt32);
  EXPECT_EQ(Value::Int64(5).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Int32(-7).AsInt32(), -7);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, CompareInts) {
  EXPECT_LT(Value::Int32(-5).Compare(Value::Int32(3)), 0);
  EXPECT_GT(Value::Int32(7).Compare(Value::Int32(3)), 0);
  EXPECT_EQ(Value::Int32(3).Compare(Value::Int32(3)), 0);
}

TEST(ValueTest, CompareStringsPadded) {
  // CHAR(n) semantics: trailing spaces are insignificant.
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc   ")), 0);
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("ab")), 0);
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  uint8_t buf[32];
  Value::Int32(-123456).Encode(buf, 4);
  EXPECT_EQ(Value::Decode(buf, DataType::kInt32, 4), Value::Int32(-123456));
  Value::Int64(1LL << 40).Encode(buf, 8);
  EXPECT_EQ(Value::Decode(buf, DataType::kInt64, 8),
            Value::Int64(1LL << 40));
  Value::Double(3.25).Encode(buf, 8);
  EXPECT_EQ(Value::Decode(buf, DataType::kDouble, 8), Value::Double(3.25));
  Value::String("hello").Encode(buf, 10);
  EXPECT_EQ(buf[5], ' ');  // padded
  EXPECT_EQ(Value::Decode(buf, DataType::kString, 10),
            Value::String("hello"));
}

TEST(ValueTest, StringTruncatedToWidth) {
  uint8_t buf[4];
  Value::String("abcdefgh").Encode(buf, 4);
  EXPECT_EQ(Value::Decode(buf, DataType::kString, 4), Value::String("abcd"));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int32(7).ToString(), "7");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
}

// --- Schema ---

Schema PaperSchema() {
  // The Fig 3 tree: T0 -> {T1 -> {T11, T12}, T2}.
  Schema s;
  TableDef t0{"T0",
              {{"fk1", DataType::kInt32, 4, true, "T1"},
               {"fk2", DataType::kInt32, 4, true, "T2"},
               {"v1", DataType::kString, 10, false, ""},
               {"h1", DataType::kString, 10, true, ""}},
              false};
  TableDef t1{"T1",
              {{"fk11", DataType::kInt32, 4, true, "T11"},
               {"fk12", DataType::kInt32, 4, true, "T12"},
               {"v1", DataType::kString, 10, false, ""},
               {"h1", DataType::kString, 10, true, ""}},
              false};
  TableDef t2{"T2", {{"v1", DataType::kString, 10, false, ""}}, false};
  TableDef t11{"T11", {{"h1", DataType::kString, 10, true, ""}}, false};
  TableDef t12{"T12", {{"h2", DataType::kString, 10, true, ""}}, false};
  EXPECT_TRUE(s.AddTable(t0).ok());
  EXPECT_TRUE(s.AddTable(t1).ok());
  EXPECT_TRUE(s.AddTable(t2).ok());
  EXPECT_TRUE(s.AddTable(t11).ok());
  EXPECT_TRUE(s.AddTable(t12).ok());
  EXPECT_TRUE(s.Finalize().ok());
  return s;
}

TEST(SchemaTest, PaperTreeValidates) {
  Schema s = PaperSchema();
  auto t0 = s.FindTable("T0");
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(s.root(), *t0);
  auto t12 = s.FindTable("T12");
  ASSERT_TRUE(t12.ok());
  const auto& info = s.tree(*t12);
  EXPECT_EQ(info.depth, 2u);
  ASSERT_EQ(info.ancestors.size(), 2u);
  EXPECT_EQ(s.table(info.ancestors[0]).name, "T1");  // nearest first
  EXPECT_EQ(s.table(info.ancestors[1]).name, "T0");
  // Descendants of T0 cover all other tables.
  EXPECT_EQ(s.tree(*t0).descendants.size(), 4u);
}

TEST(SchemaTest, RejectsDuplicateTable) {
  Schema s;
  ASSERT_TRUE(s.AddTable({"A", {}, false}).ok());
  EXPECT_TRUE(s.AddTable({"A", {}, false}).IsAlreadyExists());
}

TEST(SchemaTest, RejectsDuplicateColumn) {
  Schema s;
  TableDef t{"A",
             {{"x", DataType::kInt32, 4, false, ""},
              {"x", DataType::kInt32, 4, false, ""}},
             false};
  EXPECT_TRUE(s.AddTable(t).IsAlreadyExists());
}

TEST(SchemaTest, RejectsReservedIdColumn) {
  Schema s;
  TableDef t{"A", {{"id", DataType::kInt32, 4, false, ""}}, false};
  EXPECT_TRUE(s.AddTable(t).IsInvalidArgument());
}

TEST(SchemaTest, RejectsUnknownFkTarget) {
  Schema s;
  TableDef t{"A", {{"fk", DataType::kInt32, 4, false, "Nope"}}, false};
  ASSERT_TRUE(s.AddTable(t).ok());
  EXPECT_TRUE(s.Finalize().IsInvalidArgument());
}

TEST(SchemaTest, RejectsDagShape) {
  // Two tables referencing the same child: not a tree.
  Schema s;
  ASSERT_TRUE(s.AddTable({"C", {}, false}).ok());
  ASSERT_TRUE(
      s.AddTable({"A", {{"fk", DataType::kInt32, 4, false, "C"}}, false})
          .ok());
  ASSERT_TRUE(
      s.AddTable({"B", {{"fk", DataType::kInt32, 4, false, "C"}}, false})
          .ok());
  EXPECT_TRUE(s.Finalize().IsInvalidArgument());
}

TEST(SchemaTest, RejectsTwoRoots) {
  Schema s;
  ASSERT_TRUE(s.AddTable({"A", {}, false}).ok());
  ASSERT_TRUE(s.AddTable({"B", {}, false}).ok());
  EXPECT_TRUE(s.Finalize().IsInvalidArgument());
}

TEST(SchemaTest, RejectsCycle) {
  Schema s;
  ASSERT_TRUE(
      s.AddTable({"A", {{"fk", DataType::kInt32, 4, false, "B"}}, false})
          .ok());
  ASSERT_TRUE(
      s.AddTable({"B", {{"fk", DataType::kInt32, 4, false, "A"}}, false})
          .ok());
  EXPECT_FALSE(s.Finalize().ok());
}

TEST(SchemaTest, RejectsNonIntFk) {
  Schema s;
  ASSERT_TRUE(s.AddTable({"B", {}, false}).ok());
  ASSERT_TRUE(
      s.AddTable({"A", {{"fk", DataType::kString, 8, false, "B"}}, false})
          .ok());
  EXPECT_TRUE(s.Finalize().IsInvalidArgument());
}

TEST(SchemaTest, HiddenTableHidesAllColumns) {
  Schema s;
  TableDef t{"A",
             {{"x", DataType::kInt32, 4, false, ""},
              {"y", DataType::kString, 8, false, ""}},
             true};
  ASSERT_TRUE(s.AddTable(t).ok());
  ASSERT_TRUE(s.Finalize().ok());
  auto id = s.FindTable("A");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(s.VisibleColumns(*id).empty());
  EXPECT_EQ(s.HiddenColumns(*id).size(), 2u);
}

TEST(SchemaTest, PartitionWidths) {
  Schema s = PaperSchema();
  auto t0 = s.FindTable("T0");
  ASSERT_TRUE(t0.ok());
  // Hidden: fk1(4) + fk2(4) + h1(10) = 18; Visible: v1(10).
  EXPECT_EQ(s.HiddenRowWidth(*t0), 18u);
  EXPECT_EQ(s.VisibleRowWidth(*t0), 10u);
  EXPECT_EQ(s.FullRowWidth(*t0), 4u + 28u);
}

TEST(SchemaTest, IsAncestorOrSelf) {
  Schema s = PaperSchema();
  TableId t0 = *s.FindTable("T0");
  TableId t1 = *s.FindTable("T1");
  TableId t12 = *s.FindTable("T12");
  TableId t2 = *s.FindTable("T2");
  EXPECT_TRUE(s.IsAncestorOrSelf(t12, t1));
  EXPECT_TRUE(s.IsAncestorOrSelf(t12, t0));
  EXPECT_TRUE(s.IsAncestorOrSelf(t12, t12));
  EXPECT_FALSE(s.IsAncestorOrSelf(t12, t2));
  EXPECT_FALSE(s.IsAncestorOrSelf(t0, t1));
}

TEST(SchemaTest, DdlRoundTripRendering) {
  Schema s = PaperSchema();
  std::string ddl = s.ToDdl();
  EXPECT_NE(ddl.find("CREATE TABLE T0"), std::string::npos);
  EXPECT_NE(ddl.find("fk1 INT REFERENCES T1 HIDDEN"), std::string::npos);
  EXPECT_NE(ddl.find("v1 CHAR(10)"), std::string::npos);
}

TEST(SchemaTest, CannotAddAfterFinalize) {
  Schema s;
  ASSERT_TRUE(s.AddTable({"A", {}, false}).ok());
  ASSERT_TRUE(s.Finalize().ok());
  EXPECT_TRUE(s.AddTable({"B", {}, false}).IsInvalidArgument());
}

// --- Compare ops & stats ---

TEST(CompareOpTest, EvalAllOps) {
  Value a = Value::Int32(5), b = Value::Int32(7);
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGt, b));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGe, b));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kEq, b));
}

TEST(StatsTest, UniformSelectivityEstimates) {
  Rng rng(17);
  std::vector<Value> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(1000))));
  }
  auto stats = ColumnStats::Build(std::move(values));
  EXPECT_EQ(stats.row_count(), 20000u);
  // P(x < 100) ~ 0.1 for uniform [0, 1000).
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLt, Value::Int32(100)),
              0.1, 0.03);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kGe, Value::Int32(500)),
              0.5, 0.05);
  // Point predicate on ~1000 distinct values.
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kEq, Value::Int32(42)),
              0.001, 0.01);
}

TEST(StatsTest, EmptyColumn) {
  auto stats = ColumnStats::Build({});
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(
      stats.EstimateSelectivity(CompareOp::kEq, Value::Int32(1)), 0.0);
}

TEST(StatsTest, ConstantColumn) {
  std::vector<Value> values(100, Value::Int32(9));
  auto stats = ColumnStats::Build(std::move(values));
  EXPECT_EQ(stats.distinct_estimate(), 1u);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kEq, Value::Int32(9)),
              1.0, 0.01);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLt, Value::Int32(9)),
              0.0, 0.01);
}

}  // namespace
}  // namespace ghostdb::catalog

// Aggregate tests: the Aggregator unit, SQL parsing/binding of aggregate
// selects, and end-to-end aggregates over hidden + visible data checked
// against the oracle.
#include <gtest/gtest.h>

#include <memory>

#include "core/database.h"
#include "exec/aggregate.h"
#include "reference/oracle.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/synthetic.h"

namespace ghostdb {
namespace {

using catalog::DataType;
using catalog::Value;
using exec::AggFunc;
using exec::Aggregator;

TEST(AggregatorTest, CountStar) {
  Aggregator a(AggFunc::kCountStar, DataType::kInt32);
  for (int i = 0; i < 7; ++i) a.AccumulateRow();
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 7);
}

TEST(AggregatorTest, SumIntWidensToInt64) {
  Aggregator a(AggFunc::kSum, DataType::kInt32);
  ASSERT_TRUE(a.Accumulate(Value::Int32(2'000'000'000)).ok());
  ASSERT_TRUE(a.Accumulate(Value::Int32(2'000'000'000)).ok());
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), DataType::kInt64);
  EXPECT_EQ(v->AsInt64(), 4'000'000'000LL);
}

TEST(AggregatorTest, SumDouble) {
  Aggregator a(AggFunc::kSum, DataType::kDouble);
  ASSERT_TRUE(a.Accumulate(Value::Double(1.5)).ok());
  ASSERT_TRUE(a.Accumulate(Value::Double(2.25)).ok());
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 3.75);
}

TEST(AggregatorTest, AvgIsDouble) {
  Aggregator a(AggFunc::kAvg, DataType::kInt32);
  ASSERT_TRUE(a.Accumulate(Value::Int32(1)).ok());
  ASSERT_TRUE(a.Accumulate(Value::Int32(2)).ok());
  auto v = a.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 1.5);
}

TEST(AggregatorTest, MinMaxKeepType) {
  Aggregator mn(AggFunc::kMin, DataType::kString);
  Aggregator mx(AggFunc::kMax, DataType::kString);
  for (const char* s : {"pear", "apple", "quince"}) {
    ASSERT_TRUE(mn.Accumulate(Value::String(s)).ok());
    ASSERT_TRUE(mx.Accumulate(Value::String(s)).ok());
  }
  EXPECT_EQ(mn.Finish()->AsString(), "apple");
  EXPECT_EQ(mx.Finish()->AsString(), "quince");
}

TEST(AggregatorTest, MinOverEmptyFails) {
  Aggregator a(AggFunc::kMin, DataType::kInt32);
  EXPECT_TRUE(a.Finish().status().IsNotFound());
}

TEST(AggregatorTest, SumOverStringRejected) {
  Aggregator a(AggFunc::kSum, DataType::kString);
  EXPECT_TRUE(a.Accumulate(Value::String("x")).IsInvalidArgument());
}

// --- SQL surface ---

TEST(AggregateSqlTest, ParsesAggregates) {
  auto stmt = sql::Parse(
      "SELECT COUNT(*), SUM(t.a), AVG(b), MIN(t.c), MAX(t.d) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto& select = std::get<sql::SelectStmt>(*stmt);
  ASSERT_EQ(select.items.size(), 5u);
  EXPECT_EQ(select.items[0].agg, AggFunc::kCountStar);
  EXPECT_EQ(select.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(select.items[1].ref.ToString(), "t.a");
  EXPECT_EQ(select.items[2].agg, AggFunc::kAvg);
  EXPECT_EQ(select.items[4].agg, AggFunc::kMax);
}

TEST(AggregateSqlTest, RejectsMalformedAggregates) {
  EXPECT_FALSE(sql::Parse("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(sql::Parse("SELECT COUNT( FROM t").ok());
  EXPECT_FALSE(sql::Parse("SELECT MAX() FROM t").ok());
}

// --- End-to-end ---

class AggregateE2eTest : public ::testing::Test {
 protected:
  AggregateE2eTest() {
    workload::SyntheticConfig wl;
    wl.scale = 0.002;
    auto cfg = workload::SyntheticDbConfig(wl);
    cfg.retain_staged_data = true;
    db_ = std::make_unique<core::GhostDB>(cfg);
    EXPECT_TRUE(workload::BuildSynthetic(db_.get(), wl).ok());
  }

  void ExpectMatchesOracle(const std::string& sql) {
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto bound =
        sql::Bind(std::get<sql::SelectStmt>(*stmt), db_->schema(), sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto expected =
        reference::Evaluate(db_->schema(), db_->staged(), *bound);
    ASSERT_TRUE(expected.ok());
    auto got = db_->Query(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->rows.size(), expected->size()) << sql;
    for (size_t i = 0; i < expected->size(); ++i) {
      for (size_t j = 0; j < (*expected)[i].size(); ++j) {
        if ((*expected)[i][j].type() == catalog::DataType::kDouble) {
          EXPECT_NEAR(got->rows[i][j].AsDouble(),
                      (*expected)[i][j].AsDouble(), 1e-9)
              << sql;
        } else {
          EXPECT_EQ(got->rows[i][j], (*expected)[i][j]) << sql;
        }
      }
    }
  }

  std::unique_ptr<core::GhostDB> db_;
};

TEST_F(AggregateE2eTest, CountStarOverHiddenSelection) {
  ExpectMatchesOracle(
      "SELECT COUNT(*) FROM T12 WHERE T12.h2 < '300000'");
}

TEST_F(AggregateE2eTest, CountOverJoin) {
  ExpectMatchesOracle(
      "SELECT COUNT(T0.id) FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
      "T1.fk12 = T12.id AND T1.v1 < '200000' AND T12.h2 < '500000'");
}

TEST_F(AggregateE2eTest, MinMaxOverHiddenAttribute) {
  ExpectMatchesOracle(
      "SELECT MIN(T1.h1), MAX(T1.h1) FROM T1 WHERE T1.v1 < '500000'");
}

TEST_F(AggregateE2eTest, MultipleAggregatesAcrossTables) {
  ExpectMatchesOracle(
      "SELECT COUNT(*), MIN(T12.h2), MAX(T1.v1) FROM T0, T1, T12 WHERE "
      "T0.fk1 = T1.id AND T1.fk12 = T12.id AND T12.h2 < '400000'");
}

TEST_F(AggregateE2eTest, MixingAggAndPlainRejected) {
  auto r = db_->Query("SELECT COUNT(*), T1.v1 FROM T1");
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST_F(AggregateE2eTest, AggregateRowNeverLeavesTheKey) {
  // The transcript for an aggregate query is identical in shape to the
  // non-aggregate one: per-row data and the aggregate stay on the key.
  db_->device().channel().ClearTranscript();
  auto r = db_->Query("SELECT COUNT(*) FROM T1 WHERE T1.h1 < '300000'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_rows, 1u);
  for (const auto& m : db_->device().channel().transcript()) {
    if (m.direction == device::Direction::kToUntrusted) {
      EXPECT_EQ(m.label, "query");
    }
  }
}

}  // namespace
}  // namespace ghostdb

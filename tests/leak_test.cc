// Leak-freedom property tests — the paper's core security claim: "the only
// information revealed to a potential spy is which queries you pose" plus
// the Visible data transmitted.
//
// Method: run the same query against two databases that differ ONLY in
// Hidden data and assert that everything observable outside the Secure key
// — the channel transcript (direction, order, labels, sizes, payload
// digests) — is byte-identical. Any strategy decision, intermediate size,
// or request pattern influenced by Hidden data would show up here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "device/channel.h"
#include "fuzz_common.h"
#include "plan/strategy.h"
#include "transcript_common.h"

namespace ghostdb {
namespace {

using catalog::Value;
using core::GhostDB;
using core::GhostDBConfig;
using device::ChannelMessage;
using device::Direction;

GhostDBConfig Config() {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  return cfg;
}

// Builds a two-table database; `hidden_seed` perturbs ONLY hidden column
// values (visible columns and fks stay identical).
void BuildDb(GhostDB* db, uint64_t hidden_seed) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Dim (id INT, v INT, h INT HIDDEN)").ok());
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                  "v INT, h INT HIDDEN)")
          .ok());
  Rng shared(7);        // visible data + fks: identical across databases
  Rng hidden(hidden_seed);
  auto dim = db->MutableStaging("Dim");
  ASSERT_TRUE(dim.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        (*dim)
            ->AppendRow({Value::Int32(static_cast<int32_t>(
                             shared.Uniform(100))),
                         Value::Int32(static_cast<int32_t>(
                             hidden.Uniform(100)))})
            .ok());
  }
  auto fact = db->MutableStaging("Fact");
  ASSERT_TRUE(fact.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        (*fact)
            ->AppendRow({Value::Int32(static_cast<int32_t>(
                             shared.Uniform(300))),
                         Value::Int32(static_cast<int32_t>(
                             shared.Uniform(100))),
                         Value::Int32(static_cast<int32_t>(
                             hidden.Uniform(100)))})
            .ok());
  }
  ASSERT_TRUE(db->Build().ok());
}

// Transcript equality lives in transcript_common.h, shared with the attack
// harness (which feeds the same observer view into inference procedures).
using transcript::ExpectIdenticalTranscripts;

void RunAndCompare(const std::string& sql,
                   const GhostDBConfig& config = Config()) {
  GhostDB db1(config), db2(config);
  BuildDb(&db1, /*hidden_seed=*/111);
  BuildDb(&db2, /*hidden_seed=*/999);
  db1.device().channel().ClearTranscript();
  db2.device().channel().ClearTranscript();
  auto r1 = db1.Query(sql);
  auto r2 = db2.Query(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                             db2.device().channel().transcript());
}

TEST(LeakTest, HiddenSelectionQuery) {
  RunAndCompare(
      "SELECT Fact.id FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 40 AND Fact.v < 50");
}

TEST(LeakTest, HiddenEqualityWithProjection) {
  RunAndCompare(
      "SELECT Fact.id, Fact.h, Dim.v FROM Fact, Dim WHERE "
      "Fact.fk = Dim.id AND Dim.h = 13 AND Dim.v < 60");
}

TEST(LeakTest, HiddenOnlyQuery) {
  RunAndCompare("SELECT Fact.id FROM Fact WHERE Fact.h >= 77");
}

TEST(LeakTest, StarProjection) {
  RunAndCompare("SELECT * FROM Dim WHERE Dim.v < 30 AND Dim.h > 10");
}

TEST(LeakTest, TranscriptDependsOnlyOnQueryNotOnHiddenResultSize) {
  // A query matching nothing vs (on the other db) potentially many rows:
  // the transcript must still be identical — result rows never cross the
  // channel.
  RunAndCompare("SELECT Fact.id FROM Fact WHERE Fact.h = 0 AND Fact.v < 99");
}

TEST(LeakTest, SortOperatorLeaksNothing) {
  // ORDER BY sorts on the Secure side, after everything observable: key
  // values, comparison counts, and the sorted order must not touch the
  // channel.
  RunAndCompare(
      "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.v < 50 AND Fact.h < 60 "
      "ORDER BY Fact.h DESC");
}

TEST(LeakTest, LimitOperatorLeaksNothing) {
  // LIMIT cuts the pull stream early; how early depends on hidden data,
  // but all channel traffic happened before the projection stream starts.
  RunAndCompare(
      "SELECT Fact.id FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 40 AND Fact.v < 50 LIMIT 5");
}

TEST(LeakTest, DistinctOperatorLeaksNothing) {
  // The distinct set (its size is hidden-derived) lives on Secure only.
  RunAndCompare(
      "SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h < 30 AND Fact.v < 80");
}

TEST(LeakTest, ComposedSortLimitDistinctLeaksNothing) {
  RunAndCompare(
      "SELECT DISTINCT Fact.v FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 70 AND Fact.v < 60 ORDER BY Fact.v DESC LIMIT 3");
}

TEST(LeakTest, GroupedAggregationLeaksNothing) {
  // The group table (how many groups, their keys, every aggregate) is
  // hidden-derived and lives on Secure only; the grouped result never
  // crosses the channel.
  RunAndCompare(
      "SELECT Fact.v, COUNT(*), SUM(Fact.h) FROM Fact WHERE Fact.h < 60 "
      "GROUP BY Fact.v");
  RunAndCompare(
      "SELECT Fact.v, Dim.v, MIN(Fact.h) FROM Fact, Dim WHERE "
      "Fact.fk = Dim.id AND Dim.h < 70 GROUP BY Fact.v, Dim.v "
      "ORDER BY MIN(Fact.h) DESC LIMIT 5");
}

TEST(LeakTest, ForcedSpillShapesAreTranscriptInvariant) {
  // Forced-spill shapes: a one-buffer relational-tail budget makes Sort
  // and Distinct spill runs to flash, and makes the fused top-K take both
  // its heap and its large-k fallback paths. How much each database spills
  // depends on its hidden data (the predicates below admit hidden-chosen
  // row counts) — but spilling is device-side flash work, so the channel
  // transcripts must still be byte-identical.
  GhostDBConfig tiny = Config();
  tiny.exec.sort_budget_buffers = 1;
  for (const char* sql : {
           // Sort spill; hidden-dependent input size.
           "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.h < 60 "
           "ORDER BY Fact.h DESC",
           // One side may spill while the other stays in memory.
           "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.h < 10 "
           "ORDER BY Fact.id",
           // Distinct hash-overflow into sort-based dedup.
           "SELECT DISTINCT Fact.v, Fact.h FROM Fact WHERE Fact.h < 80",
           // Fused top-K (bounded heap).
           "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.h < 70 "
           "ORDER BY Fact.h LIMIT 4",
           // Fused top-K, k past the budget (spilling fallback).
           "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.h < 70 "
           "ORDER BY Fact.h LIMIT 900",
           // Everything composed across a join.
           "SELECT DISTINCT Fact.v, Dim.v FROM Fact, Dim WHERE "
           "Fact.fk = Dim.id AND Fact.h < 50 ORDER BY Fact.v LIMIT 200",
           // Grouped aggregation: the hidden-dependent group count pushes
           // the table past the 1-buffer budget, so the hash phase
           // freezes and new groups reroute through sort-based grouping
           // — both the hash and overflow paths run, device-side only.
           "SELECT Fact.v, COUNT(*), SUM(Fact.h) FROM Fact WHERE "
           "Fact.h < 80 GROUP BY Fact.v",
           // Two-key grouping over a join with an aggregate sort on top
           // (group spill feeding a sort spill).
           "SELECT Fact.v, Dim.v, AVG(Fact.h), MAX(Fact.h) FROM Fact, "
           "Dim WHERE Fact.fk = Dim.id AND Fact.h < 70 GROUP BY Fact.v, "
           "Dim.v ORDER BY AVG(Fact.h) DESC LIMIT 30",
           // Grouping with no aggregates (pure key dedup via the group
           // table, spilling).
           "SELECT Fact.v, Fact.h FROM Fact WHERE Fact.h < 90 "
           "GROUP BY Fact.v, Fact.h",
       }) {
    SCOPED_TRACE(sql);
    RunAndCompare(sql, tiny);
  }
}

TEST(LeakTest, BatchPathTranscriptsAreHiddenIndependent) {
  // QueryBatch() reuses cached plans after the first statement of each
  // shape; cache behavior keys on the visible query text only, so the
  // whole batch transcript must be hidden-independent.
  GhostDB db1(Config()), db2(Config());
  BuildDb(&db1, /*hidden_seed=*/21);
  BuildDb(&db2, /*hidden_seed=*/22);
  std::vector<std::string> sqls;
  for (int i = 0; i < 12; ++i) {
    sqls.push_back("SELECT Fact.id FROM Fact WHERE Fact.h < " +
                   std::to_string(10 + 5 * i) + " AND Fact.v < 50");
    sqls.push_back("SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h >= " +
                   std::to_string(3 * i) + " ORDER BY Fact.v LIMIT 4");
  }
  db1.device().channel().ClearTranscript();
  db2.device().channel().ClearTranscript();
  auto r1 = db1.QueryBatch(sqls);
  auto r2 = db2.QueryBatch(sqls);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_GT(r1->total.plan_cache_hits, 0u);
  ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                             db2.device().channel().transcript());
}

TEST(LeakTest, NewOperatorsSendZeroHiddenDerivedBytesToUntrusted) {
  // For Sort/Limit/Distinct and the batch path alike, everything Secure
  // ever sends Untrusted is the query announcements — nothing sized or
  // timed by hidden data.
  GhostDB db(Config());
  BuildDb(&db, 42);
  std::vector<std::string> sqls = {
      "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.v < 40 AND Fact.h < 50 "
      "ORDER BY Fact.h",
      "SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h < 25",
      "SELECT Fact.id FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 35 AND Fact.v < 45 ORDER BY Fact.id DESC LIMIT 2",
  };
  db.device().channel().ClearTranscript();
  auto batch = db.QueryBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  uint64_t announced = 0;
  for (const auto& m : db.device().channel().transcript()) {
    if (m.direction == Direction::kToUntrusted) {
      EXPECT_EQ(m.label, "query");  // only the visible statement text
      announced += m.bytes;
    }
  }
  uint64_t query_text_bytes = 0;
  for (const auto& sql : sqls) query_text_bytes += sql.size();
  EXPECT_EQ(announced, query_text_bytes);
  EXPECT_EQ(batch->total.bytes_to_untrusted, query_text_bytes);
}

TEST(LeakTest, NoHiddenBytesEverReachUntrusted) {
  GhostDB db(Config());
  BuildDb(&db, 42);
  db.device().channel().ClearTranscript();
  auto r = db.Query(
      "SELECT Fact.id, Fact.h FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 50 AND Fact.v < 50");
  ASSERT_TRUE(r.ok());
  // Everything Secure sent to Untrusted is a request derived from the
  // query: the query text and tiny fixed-size descriptors.
  for (const auto& m : db.device().channel().transcript()) {
    if (m.direction == Direction::kToUntrusted) {
      EXPECT_EQ(m.label, "query");
      EXPECT_EQ(m.bytes, r->metrics.bytes_to_untrusted);
    }
  }
}

TEST(LeakTest, VisibleStoreRefusesHiddenWork) {
  // Defense in depth: Untrusted must refuse to evaluate hidden predicates
  // or project hidden columns even if asked.
  GhostDB db(Config());
  BuildDb(&db, 42);
  auto dim = db.schema().FindTable("Dim");
  ASSERT_TRUE(dim.ok());
  sql::BoundPredicate hidden_pred;
  hidden_pred.table = *dim;
  hidden_pred.column = 1;  // h
  hidden_pred.hidden = true;
  hidden_pred.op = catalog::CompareOp::kEq;
  hidden_pred.value = Value::Int32(1);
  auto ids = db.untrusted().store().SelectIds(*dim, {hidden_pred});
  EXPECT_TRUE(ids.status().IsSecurityViolation());
  auto proj = db.untrusted().store().Project(*dim, {}, {1});
  EXPECT_TRUE(proj.status().IsSecurityViolation());
}

TEST(LeakTest, FuzzedQueryShapesAreTranscriptInvariant) {
  // Property-style sweep over the fuzz query generator: for every query
  // shape it produces, two databases that differ ONLY in hidden rows must
  // drive the columnar pipeline through byte-identical transcripts. The
  // user-facing status may differ with the data (e.g. MIN over an empty
  // result) — only what crosses the channel is constrained.
  uint64_t queries = fuzztest::EnvOr("GHOSTDB_LEAK_FUZZ_ITERS", 40);
  uint64_t base_seed = fuzztest::EnvOr("GHOSTDB_LEAK_FUZZ_SEED", 20070611,
                                       /*allow_zero=*/true);
  // Rotate the visible seed every 20 queries so larger budgets also vary
  // schema shape, cardinalities, CHAR widths, and index choices — all of
  // which change the transcript a query produces.
  const uint64_t kQueriesPerShape = 20;
  for (uint64_t done = 0; done < queries;) {
    uint64_t visible_seed = base_seed + 3000 * (done / kQueriesPerShape);
    GhostDB db1(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false));
    GhostDB db2(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false));
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db1, visible_seed, 111).ok());
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db2, visible_seed, 999).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t i = 0; i < kQueriesPerShape && done < queries;
         ++i, ++done) {
      uint64_t query_seed = visible_seed ^ (i * 0x9E3779B9ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      db1.device().channel().ClearTranscript();
      db2.device().channel().ClearTranscript();
      auto r1 = db1.Query(sql);
      auto r2 = db2.Query(sql);
      // The user-facing status may legitimately differ (it reflects hidden
      // answers, shown only on the secure display); the transcripts may
      // not.
      (void)r1;
      (void)r2;
      std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                          " query_seed=" + std::to_string(query_seed) +
                          " sql=" + sql;
      SCOPED_TRACE(repro);
      bool had_failure = ::testing::Test::HasFailure();
      ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                                 db2.device().channel().transcript());
      if (!had_failure && ::testing::Test::HasFailure()) {
        // Mirror the differential harness: repro seeds land in the file
        // CI uploads as an artifact.
        std::ofstream out(fuzztest::FailureFile(), std::ios::app);
        out << "[leak] " << repro << "\n";
      }
    }
  }
}

TEST(LeakTest, FuzzedInterleavedSessionsAreTranscriptInvariant) {
  // The multi-session headline property: random queries dealt to K
  // sessions, drained under the arbiter, against two databases that differ
  // ONLY in hidden data. The *global interleaved* transcript — message
  // order, sizes, labels, digests, and session tags — must be
  // byte-identical: neither any session's scheduling slot nor any message
  // it causes may depend on any session's hidden data. This is strictly
  // stronger than the single-query invariance above (an arbiter that
  // consulted, say, result sizes would reorder admissions and fail here
  // even if each individual query's messages were unchanged).
  uint64_t rounds = fuzztest::EnvOr("GHOSTDB_SESSION_LEAK_ROUNDS", 3);
  uint64_t base_seed = fuzztest::EnvOr("GHOSTDB_LEAK_FUZZ_SEED", 20070611,
                                       /*allow_zero=*/true);
  const size_t kSessions = 4;
  const size_t kQueries = 40;
  for (uint64_t round = 0; round < rounds; ++round) {
    uint64_t visible_seed = base_seed + 700 * round + 23;
    GhostDB db1(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false));
    GhostDB db2(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false));
    // A third database varying BOTH axes at once — hidden data and morsel
    // width — pins the interleaved transcript against the worker pool too.
    GhostDB db3(fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false,
                                     /*worker_threads=*/4));
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db1, visible_seed, 111).ok());
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db2, visible_seed, 999).ok());
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&db3, visible_seed, 999).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    // One deal (visible information) replayed against all databases.
    Rng rng(visible_seed ^ 0xabcddcbaULL);
    auto deal = fuzztest::DealQueries(rng, shape, kQueries, kSessions);
    auto s1 = fuzztest::OpenFuzzSessions(&db1, deal);
    auto s2 = fuzztest::OpenFuzzSessions(&db2, deal);
    auto s3 = fuzztest::OpenFuzzSessions(&db3, deal);
    ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
    std::vector<core::Session*> raw1, raw2, raw3;
    for (auto& s : *s1) raw1.push_back(s.get());
    for (auto& s : *s2) raw2.push_back(s.get());
    for (auto& s : *s3) raw3.push_back(s.get());
    db1.device().channel().ClearTranscript();
    db2.device().channel().ClearTranscript();
    db3.device().channel().ClearTranscript();
    auto r1 = db1.DrainSessions(raw1);
    auto r2 = db2.DrainSessions(raw2);
    auto r3 = db3.DrainSessions(raw3);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ASSERT_TRUE(r3.ok()) << r3.status().ToString();
    std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                        " sessions=" + std::to_string(kSessions) +
                        " queries=" + std::to_string(kQueries);
    SCOPED_TRACE(repro);
    bool had_failure = ::testing::Test::HasFailure();
    ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                               db2.device().channel().transcript());
    ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                               db3.device().channel().transcript());
    if (!had_failure && ::testing::Test::HasFailure()) {
      std::ofstream out(fuzztest::FailureFile(), std::ios::app);
      out << "[session-leak] " << repro << "\n";
    }
  }
}

// The worker pool's determinism contract: the morsel width is performance
// tuning, never semantics. Everything observable — the channel transcript
// AND the answer — must be byte-identical across worker_threads counts.
void ExpectSameAnswer(const exec::QueryResult& a, const exec::QueryResult& b,
                      const std::string& sql) {
  EXPECT_EQ(a.total_rows, b.total_rows) << sql;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << sql;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << sql << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c] == b.rows[r][c])
          << sql << " row " << r << " col " << c << ": "
          << a.rows[r][c].ToString() << " vs " << b.rows[r][c].ToString();
    }
  }
}

TEST(LeakTest, WorkerCountIsTranscriptAndAnswerInvariant) {
  // Same database, worker_threads 1 vs 4: every query shape that crosses a
  // parallel site (visible scans/projections, sorts, DISTINCT, GROUP BY)
  // must produce identical transcripts and identical answers, including
  // under the forced-spill budget (parallel run generation and merges).
  for (bool forced_spill : {false, true}) {
    GhostDBConfig serial = Config(), wide = Config();
    if (forced_spill) {
      serial.exec.sort_budget_buffers = 1;
      wide.exec.sort_budget_buffers = 1;
    }
    wide.worker_threads = 4;
    GhostDB db1(serial), db4(wide);
    BuildDb(&db1, /*hidden_seed=*/42);
    BuildDb(&db4, /*hidden_seed=*/42);
    for (const char* sql : {
             "SELECT Fact.id, Fact.v FROM Fact WHERE Fact.v < 70",
             "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.v < 80 AND "
             "Fact.h < 60 ORDER BY Fact.h DESC",
             "SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h < 50",
             "SELECT Fact.v, COUNT(*), SUM(Fact.h) FROM Fact WHERE "
             "Fact.h < 80 GROUP BY Fact.v",
             "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE Fact.fk = Dim.id "
             "AND Fact.v < 60 AND Dim.h < 70 ORDER BY Fact.id LIMIT 9",
         }) {
      SCOPED_TRACE(std::string(sql) +
                   (forced_spill ? " [forced spill]" : ""));
      db1.device().channel().ClearTranscript();
      db4.device().channel().ClearTranscript();
      auto r1 = db1.Query(sql);
      auto r4 = db4.Query(sql);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      ASSERT_TRUE(r4.ok()) << r4.status().ToString();
      ExpectSameAnswer(*r1, *r4, sql);
      ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                                 db4.device().channel().transcript());
    }
  }
}

TEST(LeakTest, FuzzedShapesAreWorkerCountInvariant) {
  // The two invariance axes composed, over the fuzz generator's query
  // space: db(workers=1, hidden=111) vs db(workers=4, hidden=999). A
  // byte-identical transcript here means the morsel width neither changes
  // any message NOR opens a hidden-data channel that only shows at one
  // width. Same-hidden-seed pairs additionally pin the answers equal.
  uint64_t queries = fuzztest::EnvOr("GHOSTDB_WORKER_FUZZ_ITERS", 30);
  uint64_t base_seed = fuzztest::EnvOr("GHOSTDB_LEAK_FUZZ_SEED", 20070611,
                                       /*allow_zero=*/true);
  const uint64_t kQueriesPerShape = 15;
  for (uint64_t done = 0; done < queries;) {
    uint64_t visible_seed = base_seed + 5000 * (done / kQueriesPerShape) + 7;
    auto cfg1 = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false,
                                     /*worker_threads=*/1);
    auto cfg4 = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false,
                                     /*worker_threads=*/4);
    // Half the shapes under the forced-spill budget: parallel spill-run
    // sorts and merges are the most structure-sensitive site.
    if ((done / kQueriesPerShape) % 2 == 1) {
      cfg1.exec.sort_budget_buffers = 1;
      cfg4.exec.sort_budget_buffers = 1;
    }
    GhostDB same1(cfg1), same4(cfg4);   // same hidden data, widths 1 vs 4
    GhostDB other4(cfg4);               // different hidden data, width 4
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&same1, visible_seed, 111).ok());
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&same4, visible_seed, 111).ok());
    ASSERT_TRUE(fuzztest::BuildFuzzDb(&other4, visible_seed, 999).ok());
    fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
    for (uint64_t i = 0; i < kQueriesPerShape && done < queries;
         ++i, ++done) {
      uint64_t query_seed = visible_seed ^ (i * 0x61C88647ULL);
      Rng rng(query_seed);
      std::string sql = fuzztest::GenerateQuery(rng, shape);
      std::string repro = "visible_seed=" + std::to_string(visible_seed) +
                          " query_seed=" + std::to_string(query_seed) +
                          " sql=" + sql;
      SCOPED_TRACE(repro);
      same1.device().channel().ClearTranscript();
      same4.device().channel().ClearTranscript();
      other4.device().channel().ClearTranscript();
      auto r1 = same1.Query(sql);
      auto r4 = same4.Query(sql);
      auto ro = other4.Query(sql);
      ASSERT_EQ(r1.ok(), r4.ok()) << r1.status().ToString() << " vs "
                                  << r4.status().ToString();
      if (r1.ok()) ExpectSameAnswer(*r1, *r4, sql);
      (void)ro;  // its status reflects its hidden data; only the
                 // transcript is constrained
      bool had_failure = ::testing::Test::HasFailure();
      ExpectIdenticalTranscripts(same1.device().channel().transcript(),
                                 same4.device().channel().transcript());
      ExpectIdenticalTranscripts(same1.device().channel().transcript(),
                                 other4.device().channel().transcript());
      if (!had_failure && ::testing::Test::HasFailure()) {
        std::ofstream out(fuzztest::FailureFile(), std::ios::app);
        out << "[worker-leak] " << repro << "\n";
      }
    }
  }
}

TEST(LeakTest, ShardedFleetPerShardTranscriptsAreHiddenInvariant) {
  // The sharding axis of the leak property: a fleet of N devices must not
  // leak more than one device does. Rows shard by a hash of the *visible*
  // global id, every scatter leg announces and executes under its own
  // arbiter, and volume padding targets the fleet-wide bound — so EACH
  // shard's channel transcript, taken separately, must be byte-identical
  // across databases differing only in hidden data. (A single combined
  // check could mask a leak that moved bytes between shards.)
  uint64_t queries = fuzztest::EnvOr("GHOSTDB_SHARD_LEAK_ITERS", 15);
  uint64_t base_seed = fuzztest::EnvOr("GHOSTDB_LEAK_FUZZ_SEED", 20070611,
                                       /*allow_zero=*/true);
  for (uint32_t shards : {1u, 2u, 4u}) {
    uint64_t visible_seed = base_seed + 11 * shards;
    auto cfg = fuzztest::FuzzConfig(visible_seed, /*retain_staged=*/false);
    cfg.shard_count = shards;
    // Half the sweep under the forced-spill budget + worst-case padding:
    // per-shard spill counts and padded volumes are the newest surfaces.
    auto padded = cfg;
    padded.exec.sort_budget_buffers = 1;
    padded.exec.volume_padding = exec::VolumePadding::kWorstCase;
    padded.exec.pad_spill_runs = true;
    for (const auto& config : {cfg, padded}) {
      GhostDB db1(config), db2(config);
      ASSERT_TRUE(fuzztest::BuildFuzzDb(&db1, visible_seed, 111).ok());
      ASSERT_TRUE(fuzztest::BuildFuzzDb(&db2, visible_seed, 999).ok());
      ASSERT_EQ(db1.shard_count(), shards);
      fuzztest::FuzzShape shape = fuzztest::MakeShape(visible_seed);
      for (uint64_t i = 0; i < queries; ++i) {
        uint64_t query_seed = visible_seed ^ (i * 0x9E3779B9ULL);
        Rng rng(query_seed);
        std::string sql = fuzztest::GenerateQuery(rng, shape);
        std::string repro =
            "shards=" + std::to_string(shards) +
            " visible_seed=" + std::to_string(visible_seed) +
            " query_seed=" + std::to_string(query_seed) + " sql=" + sql;
        SCOPED_TRACE(repro);
        for (uint32_t s = 0; s < shards; ++s) {
          db1.shard_device(s).channel().ClearTranscript();
          db2.shard_device(s).channel().ClearTranscript();
        }
        auto r1 = db1.Query(sql);
        auto r2 = db2.Query(sql);
        (void)r1;  // statuses reflect hidden answers; transcripts may not
        (void)r2;
        bool had_failure = ::testing::Test::HasFailure();
        for (uint32_t s = 0; s < shards; ++s) {
          SCOPED_TRACE("shard " + std::to_string(s));
          ExpectIdenticalTranscripts(
              db1.shard_device(s).channel().transcript(),
              db2.shard_device(s).channel().transcript());
        }
        if (!had_failure && ::testing::Test::HasFailure()) {
          std::ofstream out(fuzztest::FailureFile(), std::ios::app);
          out << "[shard-leak] " << repro << "\n";
        }
      }
    }
  }
}

TEST(LeakTest, SessionTagsPartitionTheTranscriptByPrincipal) {
  // Sanity on the tagging itself: in a drained two-session run, every
  // query-time message carries one of the two session ids, and both appear.
  GhostDB db(Config());
  BuildDb(&db, 42);
  core::SessionOptions oa, ob;
  oa.name = "alice";
  oa.ram_quota_buffers = 8;
  ob.name = "bob";
  ob.ram_quota_buffers = 8;
  auto alice = db.OpenSession(std::move(oa));
  auto bob = db.OpenSession(std::move(ob));
  ASSERT_TRUE(alice.ok() && bob.ok());
  (*alice)->Enqueue("SELECT Fact.id FROM Fact WHERE Fact.h < 40");
  (*alice)->Enqueue("SELECT Dim.v FROM Dim WHERE Dim.h > 10");
  (*bob)->Enqueue("SELECT Fact.v FROM Fact WHERE Fact.v < 50 AND "
                  "Fact.h < 30");
  db.device().channel().ClearTranscript();
  auto ran = db.DrainSessions({alice->get(), bob->get()});
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_EQ(*ran, 3u);
  bool saw_alice = false, saw_bob = false;
  for (const auto& m : db.device().channel().transcript()) {
    ASSERT_TRUE(m.session == (*alice)->id() || m.session == (*bob)->id())
        << "untagged message: " << m.label;
    saw_alice |= m.session == (*alice)->id();
    saw_bob |= m.session == (*bob)->id();
  }
  EXPECT_TRUE(saw_alice);
  EXPECT_TRUE(saw_bob);
}

TEST(LeakTest, InjectedFaultsAreTranscriptInvariantUnderPaddedModes) {
  // The error-status channel, closed: under a padded volume mode a live
  // fault schedule (flash faults, torn run writes, RAM-acquire failures,
  // channel stalls) must not move the wire image. Faults may fire at
  // different operations on the two hidden variants — erase-and-masked-
  // replay converges both to the canonical fault-free transcript, and a
  // third, never-faulted database pins that canon: neither fault
  // occurrence nor fault kind is observable.
  auto cfg = Config();
  cfg.exec.volume_padding = exec::VolumePadding::kWorstCase;
  cfg.exec.pad_spill_runs = true;
  cfg.exec.sort_budget_buffers = 1;  // spill paths: run-write faults live
  auto faulted = cfg;
  faulted.fault_config.enabled = true;
  faulted.fault_config.seed = 4242;
  faulted.fault_config.flash_read_p = 0.004;
  faulted.fault_config.flash_write_p = 0.004;
  faulted.fault_config.run_write_p = 0.02;
  faulted.fault_config.ram_acquire_p = 0.03;
  faulted.fault_config.channel_stall_p = 0.02;
  faulted.fault_config.transient_fraction = 0.5;

  GhostDB db1(faulted), db2(faulted), canon(cfg);
  BuildDb(&db1, /*hidden_seed=*/111);
  BuildDb(&db2, /*hidden_seed=*/999);
  BuildDb(&canon, /*hidden_seed=*/111);
  const char* queries[] = {
      "SELECT Fact.id, Fact.h FROM Fact WHERE Fact.v < 50 AND Fact.h < 60 "
      "ORDER BY Fact.h DESC",
      "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
      "Dim.h < 40 ORDER BY Fact.id",
      "SELECT DISTINCT Fact.v, Fact.h FROM Fact WHERE Fact.h < 80",
  };
  for (const char* sql : queries) {
    SCOPED_TRACE(sql);
    db1.device().channel().ClearTranscript();
    db2.device().channel().ClearTranscript();
    canon.device().channel().ClearTranscript();
    auto r1 = db1.Query(sql);
    auto r2 = db2.Query(sql);
    auto r3 = canon.Query(sql);
    // Padded modes recover every injected fault: the queries succeed.
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ASSERT_TRUE(r3.ok()) << r3.status().ToString();
    EXPECT_EQ(r1->rows, r3->rows);
    ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                               db2.device().channel().transcript());
    ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                               canon.device().channel().transcript());
  }
  // The schedule must actually have fired, or the property was tested
  // against nothing.
  EXPECT_GT(db1.device().fault_injector().faults_injected() +
                db2.device().fault_injector().faults_injected(),
            0u);
}

TEST(LeakTest, PerStrategyTranscriptsAreHiddenIndependent) {
  // Pin each strategy explicitly; the property must hold for all of them.
  for (auto strategy :
       {plan::VisStrategy::kPreFilter, plan::VisStrategy::kCrossPreFilter,
        plan::VisStrategy::kPostFilter, plan::VisStrategy::kCrossPostFilter,
        plan::VisStrategy::kPostSelect, plan::VisStrategy::kNoFilter}) {
    GhostDB db1(Config()), db2(Config());
    BuildDb(&db1, 5);
    BuildDb(&db2, 6);
    auto fact = db1.schema().FindTable("Fact");
    ASSERT_TRUE(fact.ok());
    plan::PlanChoice plan;
    plan.vis[*fact] = strategy;
    const char* sql =
        "SELECT Fact.id, Dim.v FROM Fact, Dim WHERE Fact.fk = Dim.id AND "
        "Fact.v < 60 AND Dim.h < 70";
    db1.device().channel().ClearTranscript();
    db2.device().channel().ClearTranscript();
    auto r1 = db1.QueryWithPlan(sql, plan);
    auto r2 = db2.QueryWithPlan(sql, plan);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ExpectIdenticalTranscripts(db1.device().channel().transcript(),
                               db2.device().channel().transcript());
  }
}

}  // namespace
}  // namespace ghostdb

// Figure 14: impact of the communication throughput (0.3..10 MB/s) on the
// total query time, for projections of 1, 2 or 3 visible attributes
// (Cross-Pre-Filtering, sV = 0.01, sH = 0.1). Below ~1.3 MB/s the channel
// becomes the bottleneck.
//
// Usage: bench_fig14_throughput [scale=0.05] [--json FILE]
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::JsonReporter json(argc, argv);
  bench::Banner("Figure 14",
                "Impact of communication throughput (Cross-Pre, sV=0.01, "
                "sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::vector<double> throughputs = {0.3e6, 0.5e6, 0.75e6, 1e6, 1.3e6,
                                     2e6,   3e6,   5e6,    7e6, 10e6};
  std::printf("%-12s %10s %10s %10s\n", "MB/s", "Project1", "Project2",
              "Project3");
  for (double bps : throughputs) {
    db->device().channel().set_throughput(bps);
    double t[3];
    for (int attrs = 1; attrs <= 3; ++attrs) {
      std::string sql = workload::QueryQ(0.01, 0.1, attrs);
      auto t0 = std::chrono::steady_clock::now();
      auto metrics = bench::Run(
          *db, sql, bench::Pin(*db, "T1", VisStrategy::kCrossPreFilter));
      double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      t[attrs - 1] = bench::Sec(metrics.total_ns);
      char name[64];
      std::snprintf(name, sizeof(name), "mbps_%.2f_project%d", bps / 1e6,
                    attrs);
      json.Record(name, wall_ms, t[attrs - 1], metrics);
    }
    std::printf("%-12.2f %10.3f %10.3f %10.3f\n", bps / 1e6, t[0], t[1],
                t[2]);
  }
  std::printf("\npaper: curves flatten above ~1.3 MB/s — below that the "
              "channel dominates\n");
  return 0;
}

// Figure 7: storage cost of the indexing schemes vs the number of indexed
// hidden attributes per table, plus the real (medical) dataset sizes.
// Every structure is actually built and its flash pages counted.
#include <cstdio>

#include "bench_common.h"
#include "workload/index_schemes.h"

using namespace ghostdb;
using workload::IndexScheme;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.02);
  bench::Banner("Figure 7", "storage cost of indexing schemes", scale);

  // Synthetic dataset, staged only (structures are built per scheme).
  workload::SyntheticConfig wl;
  wl.scale = scale;
  auto cfg = workload::SyntheticDbConfig(wl);
  cfg.retain_staged_data = true;
  core::GhostDB db(cfg);
  auto st = workload::StageSynthetic(&db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Staging finalizes the schema lazily via MutableStaging.
  const auto& staged = db.staged();

  double to_paper = 1.0 / scale;  // linear extrapolation to 10M-row T0
  std::printf("synthetic dataset (sizes in MB at paper scale, measured at "
              "scale %.3f and scaled x%.0f; DBSize constant)\n\n",
              scale, to_paper);
  std::printf("%-8s %10s %11s %10s %10s %8s\n", "k-attrs", "FullIndex",
              "BasicIndex", "StarIndex", "JoinIndex", "DBSize");
  for (int k = 0; k <= 5; ++k) {
    double mb[4] = {0, 0, 0, 0};
    double data_mb = 0;
    int i = 0;
    for (auto scheme :
         {IndexScheme::kFullIndex, IndexScheme::kBasicIndex,
          IndexScheme::kStarIndex, IndexScheme::kJoinIndex}) {
      auto sizes = workload::MeasureScheme(db.schema(), staged, scheme, k);
      if (!sizes.ok()) {
        std::fprintf(stderr, "%s\n", sizes.status().ToString().c_str());
        return 1;
      }
      mb[i++] = sizes->index_mb() * to_paper;
      data_mb = sizes->data_mb() * to_paper;
    }
    std::printf("%-8d %10.0f %11.0f %10.0f %10.0f %8.0f\n", k, mb[0], mb[1],
                mb[2], mb[3], data_mb);
  }
  std::printf("\npaper (Fig 7, 10M-row T0): FullIndex ~1200, BasicIndex "
              "~1150, StarIndex ~700, JoinIndex ~400, DBSize ~1100 MB at 5 "
              "attrs; Full ~= Basic >> Star > Join.\n"
              "note: linear extrapolation overstates B+-tree leaf overhead "
              "— attribute values stay ~unique at small scale while the "
              "paper's 10M rows share ~1M distinct values; run with a "
              "larger --scale for tighter absolute numbers.\n");

  // Real (medical) dataset.
  workload::MedicalConfig med;
  med.scale = scale * 5;  // the medical dataset is ~8x smaller
  auto med_cfg = workload::MedicalDbConfig(med);
  med_cfg.retain_staged_data = true;
  core::GhostDB med_db(med_cfg);
  // Stage without building: reuse BuildMedical's staging through a private
  // path — stage by building schema+rows then measuring on staged data.
  {
    // BuildMedical also builds the device image; acceptable at this scale,
    // and retain_staged_data keeps what MeasureScheme needs.
    auto med_st = workload::BuildMedical(&med_db, med);
    if (!med_st.ok()) {
      std::fprintf(stderr, "%s\n", med_st.ToString().c_str());
      return 1;
    }
  }
  double med_to_paper = 1.0 / med.scale;
  std::printf("\nmedical dataset (MB at paper scale: 4.5K doctors, 14K "
              "patients, 1.3M measurements)\n");
  std::printf("%-12s %8s   %s\n", "scheme", "ours", "paper");
  const double paper_mb[4] = {57, 56, 36, 26};
  int i = 0;
  for (auto scheme :
       {IndexScheme::kFullIndex, IndexScheme::kBasicIndex,
        IndexScheme::kStarIndex, IndexScheme::kJoinIndex}) {
    // Index all (non-fk) hidden attributes, as the paper did.
    auto sizes =
        workload::MeasureScheme(med_db.schema(), med_db.staged(), scheme, 99);
    if (!sizes.ok()) {
      std::fprintf(stderr, "%s\n", sizes.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %8.0f   %.0f\n",
                std::string(workload::IndexSchemeName(scheme)).c_str(),
                sizes->index_mb() * med_to_paper, paper_mb[i++]);
    if (scheme == IndexScheme::kJoinIndex) {
      std::printf("%-12s %8.0f   %d\n", "DBSize",
                  sizes->data_mb() * med_to_paper, 169);
    }
  }
  return 0;
}

// Batch workload throughput: host-side wall-clock of QueryBatch() over a
// mixed statement stream with full row materialization. Unlike the paper
// figures (simulated device seconds), this measures the engine's own CPU —
// the value-space pipeline, plan cache, and result assembly — which is
// what the columnar batches are for. Usage: bench_batch_throughput
// [statements, default 400] [--json FILE] — the JSON results join the
// BENCH_*.json trajectory artifacts CI uploads.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/database.h"

using namespace ghostdb;

int main(int argc, char** argv) {
  int statements =
      argc > 1 && argv[1][0] != '-' ? std::atoi(argv[1]) : 400;
  bench::JsonReporter json(argc, argv);

  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 256 * 1024;
  core::GhostDB db(cfg);
  auto die = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  die(db.Execute("CREATE TABLE Dim (id INT, v INT, name CHAR(12), "
                 "h INT HIDDEN)"));
  die(db.Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                 "v INT, h INT HIDDEN)"));
  Rng rng(7);
  {
    auto dim = db.MutableStaging("Dim");
    die(dim.status());
    for (int i = 0; i < 2000; ++i) {
      die((*dim)->AppendRow(
          {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
           catalog::Value::String("n" + std::to_string(rng.Uniform(500))),
           catalog::Value::Int32(
               static_cast<int32_t>(rng.Uniform(1000)))}));
    }
    auto fact = db.MutableStaging("Fact");
    die(fact.status());
    for (int i = 0; i < 20000; ++i) {
      die((*fact)->AppendRow(
          {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(2000))),
           catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
           catalog::Value::Int32(
               static_cast<int32_t>(rng.Uniform(1000)))}));
    }
  }
  die(db.Build());

  // Mixed shapes with rotating literals: wide scans (hundreds of rows
  // materialized), sorts, DISTINCT, joins, aggregates, grouped
  // aggregation.
  std::vector<std::string> sqls;
  sqls.reserve(statements);
  for (int i = 0; i < statements; ++i) {
    switch (i % 6) {
      case 0:
        sqls.push_back("SELECT Fact.id, Fact.v, Fact.h FROM Fact WHERE "
                       "Fact.h < " + std::to_string(100 + i % 400));
        break;
      case 1:
        sqls.push_back("SELECT Fact.id, Fact.v FROM Fact WHERE Fact.v < " +
                       std::to_string(200 + i % 300) +
                       " AND Fact.h < 500 ORDER BY Fact.v DESC");
        break;
      case 2:
        sqls.push_back("SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h < " +
                       std::to_string(300 + i % 200));
        break;
      case 3:
        sqls.push_back("SELECT Fact.id, Dim.v, Dim.name FROM Fact, Dim "
                       "WHERE Fact.fk = Dim.id AND Dim.v < " +
                       std::to_string(150 + i % 100) +
                       " AND Fact.h < 300 LIMIT 200");
        break;
      case 4:
        sqls.push_back("SELECT COUNT(*), SUM(Fact.v), MAX(Fact.h) FROM "
                       "Fact WHERE Fact.h >= " + std::to_string(i % 500));
        break;
      default:
        sqls.push_back("SELECT Dim.v, COUNT(*), SUM(Fact.v) FROM Fact, "
                       "Dim WHERE Fact.fk = Dim.id AND Fact.h < " +
                       std::to_string(400 + i % 300) +
                       " GROUP BY Dim.v ORDER BY SUM(Fact.v) DESC "
                       "LIMIT 10");
        break;
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  auto batch = db.QueryBatch(sqls);
  auto t1 = std::chrono::steady_clock::now();
  die(batch.status());

  double wall = std::chrono::duration<double>(t1 - t0).count();
  uint64_t rows = 0;
  for (const auto& r : batch->results) rows += r.rows.size();
  std::printf("batch workload: %d statements, %llu materialized rows\n",
              statements, static_cast<unsigned long long>(rows));
  std::printf("host wall: %.3f s  (%.0f stmts/s, %.0f rows/s)\n", wall,
              statements / wall, static_cast<double>(rows) / wall);
  std::printf("plan cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(batch->total.plan_cache_hits),
              static_cast<unsigned long long>(
                  batch->total.plan_cache_misses));
  std::printf("simulated device time: %.3f s\n",
              static_cast<double>(batch->total.total_ns) / 1e9);
  json.Record("batch_" + std::to_string(statements) + "_statements",
              wall * 1e3, static_cast<double>(batch->total.total_ns) / 1e9,
              batch->total);
  json.Write();
  return 0;
}

// Ablation A4: what the climbing index buys (paper section 3.2). With
// climbing disabled, a hidden selection on T12 yields T12 ids that must
// cascade through per-id index lookups (T12 -> T1 -> ... -> anchor),
// paying repeated traversals and a many-sublist union — exactly the
// motivation the paper gives for the climbing index.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Ablation A4",
                "climbing index vs cascading lookups (Query Q, sV=0.01)",
                scale);

  std::printf("%-8s %12s %12s %8s\n", "sH", "climbing_s", "cascading_s",
              "ratio");
  for (double sh : {0.01, 0.05, 0.1, 0.2}) {
    double secs[2];
    int i = 0;
    for (bool climbing : {true, false}) {
      workload::SyntheticConfig wl;
      wl.scale = scale;
      auto cfg = workload::SyntheticDbConfig(wl);
      cfg.exec.result_row_limit = 4;
      cfg.exec.climbing_enabled = climbing;
      core::GhostDB db(cfg);
      auto st = workload::BuildSynthetic(&db, wl);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      auto m = bench::Run(db, workload::QueryQ(0.01, sh),
                          bench::Pin(db, "T1", VisStrategy::kPreFilter));
      secs[i++] = bench::Sec(m.total_ns);
    }
    std::printf("%-8.2f %12.3f %12.3f %8.2f\n", sh, secs[0], secs[1],
                secs[1] / secs[0]);
  }
  std::printf("\nexpectation: cascading pays per-id descents and a bigger "
              "union; the gap widens with the hidden selectivity\n");
  return 0;
}

// Figure 10: Pre- vs Post-Filtering when the Cross optimization does NOT
// apply, plus the NoFilter baseline. The Post-Filter column reports
// "n/a (bloom infeasible)" where the filter would inject more false
// positives than it eliminates — the paper stops the curve at sV = 0.5.
//
// To disable Cross, the query places the hidden selection OUTSIDE T1's
// subtree (on T2), so the Visible selection on T1 cannot be intersected
// early.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.3);
  bench::JsonReporter reporter(argc, argv);
  bench::Banner("Figure 10",
                "Pre vs Post filtering, Cross not applicable (hidden "
                "selection on T2, visible on T1, sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %12s %12s %12s\n", "sV", "Pre-Filter", "Post-Filter",
              "NoFilter");
  for (double sv : bench::SvSweep()) {
    std::string sql =
        "SELECT T0.id, T1.id, T1.v1 FROM T0, T1, T2 WHERE "
        "T0.fk1 = T1.id AND T0.fk2 = T2.id AND T1.v1 < " +
        workload::Dial(sv).ToString() + " AND T2.h1 < " +
        workload::Dial(0.1).ToString();
    auto timed = [&](VisStrategy strategy, double* wall_ms) {
      auto start = std::chrono::steady_clock::now();
      auto metrics = bench::Run(*db, sql, bench::Pin(*db, "T1", strategy));
      *wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      return metrics;
    };
    double pre_ms, post_ms, nof_ms;
    auto pre = timed(VisStrategy::kPreFilter, &pre_ms);
    auto post = timed(VisStrategy::kPostFilter, &post_ms);
    auto nof = timed(VisStrategy::kNoFilter, &nof_ms);
    // When the bloom was infeasible the executor fell back to NoFilter
    // behaviour; report it the way the paper plots it (curve stops).
    bool bloom_used = post.bloom_fpr_estimate > 0.0;
    char entry[64];
    std::snprintf(entry, sizeof(entry), "fig10.sv%.3f.PreFilter", sv);
    reporter.Record(entry, pre_ms, bench::Sec(pre.total_ns), pre);
    std::snprintf(entry, sizeof(entry), "fig10.sv%.3f.PostFilter", sv);
    reporter.Record(entry, post_ms, bench::Sec(post.total_ns), post,
                    bloom_used ? "ok" : "n/a");
    std::snprintf(entry, sizeof(entry), "fig10.sv%.3f.NoFilter", sv);
    reporter.Record(entry, nof_ms, bench::Sec(nof.total_ns), nof);
    std::printf("%-8.3f %12.3f ", sv, bench::Sec(pre.total_ns));
    if (bloom_used) {
      std::printf("%12.3f ", bench::Sec(post.total_ns));
    } else {
      std::printf("%12s ", "n/a");
    }
    std::printf("%12.3f\n", bench::Sec(nof.total_ns));
  }
  std::printf("\npaper: Post beats Pre above sV~0.05 (30%% at sV=0.1); "
              "Post's curve stops at sV=0.5 (bloom can no longer help)\n");
  return 0;
}

// Figure 16: cost decomposition of Query Q on the (synthesized) medical
// dataset — Measurements/Patients/Doctors in place of T0/T1/T12. The
// Measurements/Patients fan-out (~92 vs 10 in the synthetic set) makes
// SJoin the dominant operator, and node tables are small so Project
// shrinks.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Figure 16",
                "cost decomposition, medical dataset (simulated seconds, "
                "communication excluded)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildMedicalDb(scale));

  std::printf("%-8s %10s %10s %10s %10s %10s\n", "plan", "Merge", "Sjoin",
              "Store", "Project", "total");
  const double svs[] = {0.01, 0.05, 0.2};
  const char* names[] = {"PRE1", "POST1", "PRE5", "POST5", "PRE20",
                         "POST20"};
  int n = 0;
  for (double sv : svs) {
    for (auto strategy : {VisStrategy::kCrossPreFilter,
                          VisStrategy::kCrossPostFilter}) {
      std::string sql = workload::MedicalQueryQ(sv, 0.1);
      auto m = bench::Run(*db, sql, bench::Pin(*db, "Patients", strategy));
      auto cat = [&](const char* c) {
        auto it = m.categories.find(c);
        return it == m.categories.end() ? 0.0 : bench::Sec(it->second);
      };
      double comm = cat("comm");
      std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f\n", names[n++],
                  cat("merge"), cat("sjoin"), cat("store"), cat("project"),
                  bench::Sec(m.total_ns) - comm);
    }
  }
  std::printf("\npaper: SJoin dominates every bar (fan-out ~92); Project's "
              "share shrinks vs Fig 15\n");
  return 0;
}

// Leakage vs performance: what each volume-padding mode buys and costs.
//
// Runs the same observer attacks as tests/leakage_attack_test.cc (shared
// harness, tests/attack_common.h) against every ExecConfig::volume_padding
// mode, then measures the padding overhead on the probe workload and a
// spill-heavy sort. Emits attack accuracy (vs the 1/domain chance floor),
// histogram-recovery error, wall-clock, and simulated-cost overhead —
// CI uploads the --json output as BENCH_leakage_tradeoff.json, so the
// tradeoff curve is a tracked trajectory artifact:
//   off        -> attack ~1.0 accuracy, zero overhead (the baseline leak)
//   quantize   -> pow-2 volume buckets; cheap, strong skew may survive
//   worst_case -> constant volumes, attack at chance; highest overhead
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "../tests/attack_common.h"
#include "bench_common.h"

using namespace ghostdb;
using attack::AttackKind;
using exec::VolumePadding;

namespace {

const char* ModeName(VolumePadding mode) {
  switch (mode) {
    case VolumePadding::kOff: return "off";
    case VolumePadding::kQuantize: return "quantize";
    case VolumePadding::kWorstCase: return "worst_case";
  }
  return "?";
}

core::GhostDBConfig ModeConfig(VolumePadding mode) {
  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 32 * 1024;
  cfg.exec.volume_padding = mode;
  cfg.exec.pad_spill_runs = mode != VolumePadding::kOff;
  return cfg;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter(argc, argv);
  bool smoke = bench::HasFlag(argc, argv, "--smoke");
  uint32_t trials = smoke ? 4 : 12;
  if (const char* env = std::getenv("GHOSTDB_ATTACK_TRIALS")) {
    trials = static_cast<uint32_t>(std::atoi(env));
  }
  attack::SkewSpec spec;
  std::printf("=== Leakage tradeoff: volume attacks vs padding modes ===\n");
  std::printf("%u trials per attack, domain %u, hot mass %.2f, chance %.3f\n\n",
              trials, spec.domain, spec.hot_permille / 1000.0,
              1.0 / spec.domain);

  const VolumePadding kModes[] = {VolumePadding::kOff,
                                  VolumePadding::kQuantize,
                                  VolumePadding::kWorstCase};

  // --- Attack accuracy per mode -------------------------------------------
  std::printf("%-12s %-18s %10s %10s %12s %10s\n", "padding", "attack",
              "accuracy", "chance", "hist_error", "wall_ms");
  for (VolumePadding mode : kModes) {
    for (AttackKind kind :
         {AttackKind::kVolumeFrequency, AttackKind::kCoOccurrence}) {
      const char* attack_name = kind == AttackKind::kVolumeFrequency
                                    ? "volume_frequency"
                                    : "co_occurrence";
      auto t0 = std::chrono::steady_clock::now();
      auto report = attack::MeasureAttack(ModeConfig(mode), kind, trials,
                                          spec, /*seed0=*/4242);
      double wall_ms = MsSince(t0);
      if (!report.ok()) {
        std::fprintf(stderr, "attack failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("%-12s %-18s %10.3f %10.3f %12.3f %10.1f\n",
                  ModeName(mode), attack_name, report->accuracy(),
                  report->chance(spec), report->histogram_error, wall_ms);
      char fields[256];
      std::snprintf(fields, sizeof(fields),
                    "\"status\": \"ok\", \"attack\": \"%s\", "
                    "\"padding\": \"%s\", \"trials\": %u, "
                    "\"accuracy\": %.4f, \"chance\": %.4f, "
                    "\"histogram_error\": %.4f, \"wall_ms\": %.3f",
                    attack_name, ModeName(mode), report->trials,
                    report->accuracy(), report->chance(spec),
                    report->histogram_error, wall_ms);
      reporter.RecordCustom(std::string("leakage.attack.") + attack_name +
                                "." + ModeName(mode),
                            fields);
    }
  }

  // --- Padding overhead on the probe workload -----------------------------
  std::printf("\n%-12s %14s %14s %14s %12s\n", "padding", "sim_seconds",
              "sim_overhead", "obs_volume", "pad_rows");
  double base_sim = 0;
  for (VolumePadding mode : kModes) {
    core::GhostDB db(ModeConfig(mode));
    attack::PlantedTruth truth;
    auto st = attack::BuildSkewedHistogramDb(&db, /*hidden_seed=*/4242, spec,
                                             &truth);
    if (!st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto t0 = std::chrono::steady_clock::now();
    double sim_seconds = 0;
    unsigned long long volume = 0, pad_rows = 0;
    for (uint32_t v = 0; v < spec.domain; ++v) {
      auto r = db.Query(attack::HistogramProbe(v));
      if (!r.ok()) {
        std::fprintf(stderr, "probe failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      sim_seconds += bench::Sec(r->metrics.total_ns);
      volume += r->metrics.observed_volume;
      pad_rows += r->metrics.padding_rows;
    }
    double wall_ms = MsSince(t0);
    if (mode == VolumePadding::kOff) base_sim = sim_seconds;
    double overhead = base_sim > 0 ? sim_seconds / base_sim : 0.0;
    std::printf("%-12s %14.6f %14.2fx %14llu %12llu\n", ModeName(mode),
                sim_seconds, overhead, volume, pad_rows);
    char fields[256];
    std::snprintf(fields, sizeof(fields),
                  "\"status\": \"ok\", \"padding\": \"%s\", "
                  "\"sim_seconds\": %.6f, \"sim_overhead\": %.4f, "
                  "\"observed_volume\": %llu, \"padding_rows\": %llu, "
                  "\"wall_ms\": %.3f",
                  ModeName(mode), sim_seconds, overhead, volume, pad_rows,
                  wall_ms);
    reporter.RecordCustom(std::string("leakage.overhead.probes.") +
                              ModeName(mode),
                          fields);
  }

  // --- Spill-run padding overhead on a spilling sort ----------------------
  std::printf("\nspilling ORDER BY (sort budget pinned to one buffer):\n");
  std::printf("%-12s %14s %12s %12s\n", "padding", "sim_seconds",
              "spill_runs", "pad_runs");
  for (VolumePadding mode : kModes) {
    auto cfg = ModeConfig(mode);
    cfg.exec.sort_budget_buffers = 1;
    core::GhostDB db(cfg);
    attack::PlantedTruth truth;
    auto st = attack::BuildSkewedHistogramDb(&db, /*hidden_seed=*/4242, spec,
                                             &truth);
    if (!st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto t0 = std::chrono::steady_clock::now();
    auto r = db.Query("SELECT Obs.v FROM Obs WHERE Obs.v < 40 "
                      "ORDER BY Obs.v");
    double wall_ms = MsSince(t0);
    if (!r.ok()) {
      std::fprintf(stderr, "sort failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %14.6f %12llu %12llu\n", ModeName(mode),
                bench::Sec(r->metrics.total_ns),
                static_cast<unsigned long long>(r->metrics.sort_spill_runs),
                static_cast<unsigned long long>(
                    r->metrics.padding_spill_runs));
    reporter.Record(std::string("leakage.spill_sort.") + ModeName(mode),
                    wall_ms, bench::Sec(r->metrics.total_ns), r->metrics);
  }
  std::printf("\nexpected: attacks succeed at padding=off, collapse to "
              "chance at worst_case; quantize sits between, at a fraction "
              "of worst_case's volume overhead\n");
  return 0;
}

// Table 1: main performance parameters of the smart USB key.
// Prints the device configuration the simulator enforces — by construction
// identical to the paper's values.
#include <cstdio>

#include "device/secure_device.h"

int main() {
  ghostdb::device::DeviceConfig cfg;
  std::printf("=== Table 1: Main performance parameters of USB keys ===\n");
  std::printf("%-55s %10s %10s\n", "Parameter", "paper", "ours");
  std::printf("%-55s %10s %10.1f\n",
              "Communication throughput (MB/s)", "varying",
              cfg.channel_throughput_bytes_per_sec / 1e6);
  std::printf("%-55s %10d %10d\n", "Size of an ID (bytes)", 4, 4);
  std::printf("%-55s %10d %10u\n", "Size of a page in Flash (bytes)", 2048,
              cfg.flash.page_size);
  std::printf("%-55s %10d %10zu\n", "RAM size (bytes)", 65536,
              cfg.ram_bytes);
  std::printf("%-55s %10d %10.0f\n", "Time to read a page in Flash (us)",
              25, cfg.flash.read_page_latency / 1000.0);
  std::printf("%-55s %10d %10.0f\n", "Time to write a page in Flash (us)",
              200, cfg.flash.write_page_latency / 1000.0);
  std::printf("%-55s %10d %10llu\n",
              "Time to transfer a byte Data Register<->RAM (ns)", 50,
              static_cast<unsigned long long>(
                  cfg.flash.byte_transfer_latency));
  std::printf("\nDerived: full-page read 25..127 us; page write ~302 us; "
              "write/read ratio 2.4x..12x (paper: 2.5..12, section 2.3)\n");
  return 0;
}

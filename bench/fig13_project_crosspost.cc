// Figure 13: projection algorithms under a Cross-Post-Filtering QEP_SJ —
// same comparison as Fig 12, but the QEP_SJ result now carries Bloom false
// positives, which the Project algorithm must eliminate. Shows their
// insignificant impact.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::ProjectAlgo;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Figure 13",
                "Projection algorithms under Cross-Post-Filtering "
                "(Query Q + T1.h2 projection, sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %12s %14s %13s\n", "sV", "Project", "Project-NoBF",
              "Brute-Force");
  for (double sv : bench::SvSweep()) {
    std::string sql =
        workload::QueryQ(sv, 0.1, /*projected_vis_attrs=*/1,
                         /*project_hidden=*/true);
    double t[3];
    int i = 0;
    for (auto algo : {ProjectAlgo::kProject, ProjectAlgo::kProjectNoBF,
                      ProjectAlgo::kBruteForce}) {
      auto metrics = bench::Run(
          *db, sql,
          bench::Pin(*db, "T1", VisStrategy::kCrossPostFilter, algo));
      t[i++] = bench::Sec(metrics.total_ns);
    }
    std::printf("%-8.3f %12.3f %14.3f %13.3f\n", sv, t[0], t[1], t[2]);
  }
  std::printf("\npaper: same ordering as Fig 12 — bloom false positives "
              "have insignificant impact on Project\n");
  return 0;
}

// Shared helpers for the figure-reproduction benches. Every bench is
// deterministic: times are *simulated* seconds from the device cost model
// (the paper's own evaluation platform was an I/O-accurate simulator, so
// this is apples to apples). Scale is configurable:
//   ./fig08_cross_filtering --scale 0.2      (1.0 = the paper's 10M-row T0)
// or via GHOSTDB_SCALE. The default keeps the full suite under a few
// minutes; curve shapes and crossover selectivities are scale-invariant.
// Machine-readable results: every bench can take `--json FILE` and emit a
// JSON array of measurements (name, wall_ms, simulated seconds, flash and
// spill counters) alongside the human-readable table — what CI uploads as
// the BENCH_*.json trajectory artifacts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "plan/strategy.h"
#include "workload/medical.h"
#include "workload/synthetic.h"

namespace ghostdb::bench {

inline double ScaleArg(int argc, char** argv, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      return std::atof(argv[i + 1]);
    }
  }
  if (const char* env = std::getenv("GHOSTDB_SCALE")) {
    return std::atof(env);
  }
  return fallback;
}

inline void Banner(const char* figure, const char* what, double scale) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("scale %.3f (1.0 = paper size); times are simulated seconds "
              "(I/O-accurate device model)\n\n", scale);
}

/// Builds the synthetic database once (slowest part of each bench).
inline core::GhostDB* BuildSyntheticDb(double scale) {
  workload::SyntheticConfig wl;
  wl.scale = scale;
  auto cfg = workload::SyntheticDbConfig(wl);
  cfg.exec.result_row_limit = 4;  // results stay on the secure display
  auto* db = new core::GhostDB(cfg);
  auto st = workload::BuildSynthetic(db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "synthetic build failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

inline core::GhostDB* BuildMedicalDb(double scale) {
  workload::MedicalConfig wl;
  wl.scale = scale;
  auto cfg = workload::MedicalDbConfig(wl);
  cfg.exec.result_row_limit = 4;
  auto* db = new core::GhostDB(cfg);
  auto st = workload::BuildMedical(db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "medical build failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

/// Pins one strategy on the table carrying the visible selection.
inline plan::PlanChoice Pin(core::GhostDB& db, const std::string& table,
                            plan::VisStrategy strategy,
                            plan::ProjectAlgo project =
                                plan::ProjectAlgo::kProject) {
  plan::PlanChoice plan;
  auto t = db.schema().FindTable(table);
  if (t.ok()) plan.vis[*t] = strategy;
  plan.project = project;
  return plan;
}

/// Runs a pinned query and returns its metrics (aborts on error).
inline exec::QueryMetrics Run(core::GhostDB& db, const std::string& sql,
                              const plan::PlanChoice& plan) {
  auto r = db.QueryWithPlan(sql, plan);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\nsql: %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return r->metrics;
}

inline double Sec(SimNanos ns) { return ToSeconds(ns); }

/// True when `flag` (e.g. "--smoke") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// \brief Collects measurements and, when `--json FILE` was passed, writes
/// them as a JSON array on destruction (or Write()). Without the flag it
/// is a no-op, so benches can Record() unconditionally.
class JsonReporter {
 public:
  JsonReporter(int argc, char** argv, const char* flag = "--json") {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], flag) == 0) path_ = argv[i + 1];
    }
  }
  ~JsonReporter() { Write(); }

  bool enabled() const { return !path_.empty(); }

  /// One measurement: wall-clock, simulated cost, and the observable
  /// flash/spill counters of `m`. `status` is "ok" unless the run was
  /// expected to fail (e.g. the no-spill baseline hitting its budget).
  void Record(const std::string& name, double wall_ms, double sim_seconds,
              const exec::QueryMetrics& m,
              const std::string& status = "ok") {
    if (!enabled()) return;
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"name\": \"%s\", \"status\": \"%s\", \"wall_ms\": %.3f, "
        "\"sim_seconds\": %.6f, \"result_rows\": %llu, "
        "\"observed_volume\": %llu, \"padding_rows\": %llu, "
        "\"flash_pages_read\": %llu, \"flash_pages_written\": %llu, "
        "\"sort_spill_runs\": %llu, \"sort_spill_pages\": %llu, "
        "\"topk_short_circuits\": %llu, \"peak_ram_buffers\": %u}",
        name.c_str(), status.c_str(), wall_ms, sim_seconds,
        static_cast<unsigned long long>(m.result_rows),
        static_cast<unsigned long long>(m.observed_volume),
        static_cast<unsigned long long>(m.padding_rows),
        static_cast<unsigned long long>(m.flash.pages_read),
        static_cast<unsigned long long>(m.flash.pages_written),
        static_cast<unsigned long long>(m.sort_spill_runs),
        static_cast<unsigned long long>(m.sort_spill_pages),
        static_cast<unsigned long long>(m.topk_short_circuits),
        m.peak_ram_buffers);
    entries_.push_back(buf);
  }

  /// One free-form measurement: `fields` is the inner JSON of the object
  /// after its "name" key (caller formats its own keys). Used by entries
  /// that aren't a single query's metrics — e.g. the leakage bench's
  /// attack-accuracy records.
  void RecordCustom(const std::string& name, const std::string& fields) {
    if (!enabled()) return;
    entries_.push_back("  {\"name\": \"" + name + "\", " + fields + "}");
  }

  void Write() {
    if (!enabled() || written_) return;
    written_ = true;
    FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(out, "%s%s\n", entries_[i].c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("json results -> %s (%zu entries)\n", path_.c_str(),
                entries_.size());
  }

 private:
  std::string path_;
  std::vector<std::string> entries_;
  bool written_ = false;
};

/// The selectivity sweep used by Figs 8-13 (log-spaced like the paper's
/// x-axis).
inline std::vector<double> SvSweep() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
}

}  // namespace ghostdb::bench

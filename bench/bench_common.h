// Shared helpers for the figure-reproduction benches. Every bench is
// deterministic: times are *simulated* seconds from the device cost model
// (the paper's own evaluation platform was an I/O-accurate simulator, so
// this is apples to apples). Scale is configurable:
//   ./fig08_cross_filtering --scale 0.2      (1.0 = the paper's 10M-row T0)
// or via GHOSTDB_SCALE. The default keeps the full suite under a few
// minutes; curve shapes and crossover selectivities are scale-invariant.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "plan/strategy.h"
#include "workload/medical.h"
#include "workload/synthetic.h"

namespace ghostdb::bench {

inline double ScaleArg(int argc, char** argv, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      return std::atof(argv[i + 1]);
    }
  }
  if (const char* env = std::getenv("GHOSTDB_SCALE")) {
    return std::atof(env);
  }
  return fallback;
}

inline void Banner(const char* figure, const char* what, double scale) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("scale %.3f (1.0 = paper size); times are simulated seconds "
              "(I/O-accurate device model)\n\n", scale);
}

/// Builds the synthetic database once (slowest part of each bench).
inline core::GhostDB* BuildSyntheticDb(double scale) {
  workload::SyntheticConfig wl;
  wl.scale = scale;
  auto cfg = workload::SyntheticDbConfig(wl);
  cfg.exec.result_row_limit = 4;  // results stay on the secure display
  auto* db = new core::GhostDB(cfg);
  auto st = workload::BuildSynthetic(db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "synthetic build failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

inline core::GhostDB* BuildMedicalDb(double scale) {
  workload::MedicalConfig wl;
  wl.scale = scale;
  auto cfg = workload::MedicalDbConfig(wl);
  cfg.exec.result_row_limit = 4;
  auto* db = new core::GhostDB(cfg);
  auto st = workload::BuildMedical(db, wl);
  if (!st.ok()) {
    std::fprintf(stderr, "medical build failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

/// Pins one strategy on the table carrying the visible selection.
inline plan::PlanChoice Pin(core::GhostDB& db, const std::string& table,
                            plan::VisStrategy strategy,
                            plan::ProjectAlgo project =
                                plan::ProjectAlgo::kProject) {
  plan::PlanChoice plan;
  auto t = db.schema().FindTable(table);
  if (t.ok()) plan.vis[*t] = strategy;
  plan.project = project;
  return plan;
}

/// Runs a pinned query and returns its metrics (aborts on error).
inline exec::QueryMetrics Run(core::GhostDB& db, const std::string& sql,
                              const plan::PlanChoice& plan) {
  auto r = db.QueryWithPlan(sql, plan);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\nsql: %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return r->metrics;
}

inline double Sec(SimNanos ns) { return ToSeconds(ns); }

/// The selectivity sweep used by Figs 8-13 (log-spaced like the paper's
/// x-axis).
inline std::vector<double> SvSweep() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
}

}  // namespace ghostdb::bench

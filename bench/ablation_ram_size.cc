// Ablation A6: sensitivity to the Secure RAM size. The paper fixes 64 KB
// (security: small silicon is hard to probe); this sweeps the budget and
// shows where the RAM-bounded algorithms start/stop paying reduction
// passes, bloom degradation and extra MJoin passes.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Ablation A6", "Secure RAM size sweep (Query Q, sV=0.2, "
                "sH=0.1, Cross-Post)", scale);

  std::printf("%-10s %10s %12s %12s\n", "ram_KiB", "time_s", "buffers",
              "peak_used");
  for (size_t kib : {16, 32, 64, 128, 256, 512}) {
    workload::SyntheticConfig wl;
    wl.scale = scale;
    auto cfg = workload::SyntheticDbConfig(wl);
    cfg.exec.result_row_limit = 4;
    cfg.device.ram_bytes = kib * 1024;
    core::GhostDB db(cfg);
    auto st = workload::BuildSynthetic(&db, wl);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto m =
        bench::Run(db, workload::QueryQ(0.2, 0.1, 1, true),
                   bench::Pin(db, "T1", VisStrategy::kCrossPostFilter));
    std::printf("%-10zu %10.3f %12zu %12u\n", kib, bench::Sec(m.total_ns),
                kib * 1024 / 2048, m.peak_ram_buffers);
  }
  std::printf("\nexpectation: diminishing returns past 64-128 KB — the "
              "paper's constraint costs little once the fully indexed "
              "model removes the need for big working sets\n");
  return 0;
}

// Wall-clock micro-benchmarks (google-benchmark) of the hot primitives:
// crypto (AES block, ChaCha20 page, SHA-256), Bloom insert/probe, encoded
// key comparison, B+-tree page search, RNG, and the SIMD scan kernels
// against their scalar references. These measure the host implementation,
// not the simulated device.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "catalog/value.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hash.h"
#include "crypto/sha256.h"
#include "device/ram_manager.h"
#include "exec/bloom.h"
#include "exec/simd.h"

namespace {

using namespace ghostdb;

void BM_AesEncryptBlock(benchmark::State& state) {
  uint8_t key[16] = {1, 2, 3};
  crypto::Aes128 aes(key);
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_ChaCha20Page(benchmark::State& state) {
  uint8_t key[32] = {7};
  uint8_t nonce[12] = {9};
  crypto::ChaCha20 cipher(key, nonce);
  std::vector<uint8_t> page(2048, 0xAB);
  for (auto _ : state) {
    cipher.Crypt(page.data(), page.size());
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_ChaCha20Page);

void BM_Sha256Page(benchmark::State& state) {
  std::vector<uint8_t> page(2048, 0x5C);
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(page.data(), page.size());
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_Sha256Page);

void BM_BloomInsert(benchmark::State& state) {
  device::RamManager ram(64 * 1024, 2048);
  auto bloom = exec::BloomFilter::Create(&ram, 100000, 32);
  Rng rng(3);
  for (auto _ : state) {
    bloom->Insert(static_cast<catalog::RowId>(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
  device::RamManager ram(64 * 1024, 2048);
  auto bloom = exec::BloomFilter::Create(&ram, 100000, 32);
  for (catalog::RowId id = 0; id < 100000; ++id) bloom->Insert(id * 3);
  Rng rng(4);
  size_t hits = 0;
  for (auto _ : state) {
    hits += bloom->MightContain(static_cast<catalog::RowId>(rng.Next()));
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_CompareEncodedStrings(benchmark::State& state) {
  uint8_t a[10], b[10];
  catalog::Value::String("042731").Encode(a, 10);
  catalog::Value::String("042732").Encode(b, 10);
  for (auto _ : state) {
    int c = catalog::CompareEncoded(catalog::DataType::kString, 10, a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompareEncodedStrings);

void BM_HashId(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    uint64_t h = crypto::HashId(static_cast<uint32_t>(rng.Next()), 0x51);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashId);

// ---- SIMD scan kernels vs scalar references -------------------------------
// A synthetic encoded partition: 64K rows, 24-byte stride, an INT column at
// offset 4 and a DOUBLE column at offset 8 — the layout the visible-store
// and hidden-image scans run over. ~50% selectivity.

constexpr size_t kScanRows = 64 * 1024;
constexpr size_t kScanStride = 24;

std::vector<uint8_t> ScanPartition() {
  std::vector<uint8_t> part(kScanRows * kScanStride);
  Rng rng(11);
  for (size_t i = 0; i < kScanRows; ++i) {
    uint8_t* row = part.data() + i * kScanStride;
    catalog::Value::Int32(static_cast<int32_t>(i)).Encode(row, 4);
    catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000)))
        .Encode(row + 4, 4);
    catalog::Value::Double(static_cast<double>(rng.Uniform(1000)))
        .Encode(row + 8, 8);
  }
  return part;
}

template <bool kSimd>
void BM_FilterEncodedI32(benchmark::State& state) {
  auto part = ScanPartition();
  uint8_t lit[4];
  catalog::Value::Int32(500).Encode(lit, 4);
  std::vector<uint32_t> out(kScanRows);
  for (auto _ : state) {
    size_t count;
    if constexpr (kSimd) {
      count = exec::simd::FilterEncoded(
          catalog::DataType::kInt32, 4, part.data() + 4, kScanStride,
          kScanRows, lit, catalog::CompareOp::kLt, 0, out.data());
    } else {
      count = exec::simd::scalar::FilterEncoded(
          catalog::DataType::kInt32, 4, part.data() + 4, kScanStride,
          kScanRows, lit, catalog::CompareOp::kLt, 0, out.data());
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_FilterEncodedI32<false>)->Name("BM_FilterEncodedI32_scalar");
BENCHMARK(BM_FilterEncodedI32<true>)->Name("BM_FilterEncodedI32_simd");

template <bool kSimd>
void BM_FilterEncodedF64(benchmark::State& state) {
  auto part = ScanPartition();
  uint8_t lit[8];
  catalog::Value::Double(500.0).Encode(lit, 8);
  std::vector<uint32_t> out(kScanRows);
  for (auto _ : state) {
    size_t count;
    if constexpr (kSimd) {
      count = exec::simd::FilterEncoded(
          catalog::DataType::kDouble, 8, part.data() + 8, kScanStride,
          kScanRows, lit, catalog::CompareOp::kGe, 0, out.data());
    } else {
      count = exec::simd::scalar::FilterEncoded(
          catalog::DataType::kDouble, 8, part.data() + 8, kScanStride,
          kScanRows, lit, catalog::CompareOp::kGe, 0, out.data());
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_FilterEncodedF64<false>)->Name("BM_FilterEncodedF64_scalar");
BENCHMARK(BM_FilterEncodedF64<true>)->Name("BM_FilterEncodedF64_simd");

template <bool kSimd>
void BM_CompactFlags(benchmark::State& state) {
  std::vector<uint8_t> flags(kScanRows);
  Rng rng(12);
  for (auto& f : flags) f = rng.Uniform(2) ? 1 : 0;
  std::vector<uint32_t> out(kScanRows);
  for (auto _ : state) {
    size_t count;
    if constexpr (kSimd) {
      count = exec::simd::CompactFlags(flags.data(), kScanRows, 0,
                                       out.data());
    } else {
      count = exec::simd::scalar::CompactFlags(flags.data(), kScanRows, 0,
                                               out.data());
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_CompactFlags<false>)->Name("BM_CompactFlags_scalar");
BENCHMARK(BM_CompactFlags<true>)->Name("BM_CompactFlags_simd");

template <bool kSimd>
void BM_GatherCells(benchmark::State& state) {
  auto part = ScanPartition();
  Rng rng(13);
  std::vector<uint32_t> idx(kScanRows / 2);
  for (auto& i : idx) i = static_cast<uint32_t>(rng.Uniform(kScanRows));
  std::vector<uint8_t> dst(idx.size() * 16);
  for (auto _ : state) {
    if constexpr (kSimd) {
      exec::simd::GatherCells(part.data(), kScanStride, 4, 4, idx.data(),
                              idx.size(), dst.data(), 16);
    } else {
      exec::simd::scalar::GatherCells(part.data(), kScanStride, 4, 4,
                                      idx.data(), idx.size(), dst.data(), 16);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * idx.size());
}
BENCHMARK(BM_GatherCells<false>)->Name("BM_GatherCells_scalar");
BENCHMARK(BM_GatherCells<true>)->Name("BM_GatherCells_simd");

void BM_RngNext(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace

BENCHMARK_MAIN();

// Wall-clock micro-benchmarks (google-benchmark) of the hot primitives:
// crypto (AES block, ChaCha20 page, SHA-256), Bloom insert/probe, encoded
// key comparison, B+-tree page search, RNG. These measure the host
// implementation, not the simulated device.
#include <benchmark/benchmark.h>

#include <vector>

#include "catalog/value.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hash.h"
#include "crypto/sha256.h"
#include "device/ram_manager.h"
#include "exec/bloom.h"

namespace {

using namespace ghostdb;

void BM_AesEncryptBlock(benchmark::State& state) {
  uint8_t key[16] = {1, 2, 3};
  crypto::Aes128 aes(key);
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_ChaCha20Page(benchmark::State& state) {
  uint8_t key[32] = {7};
  uint8_t nonce[12] = {9};
  crypto::ChaCha20 cipher(key, nonce);
  std::vector<uint8_t> page(2048, 0xAB);
  for (auto _ : state) {
    cipher.Crypt(page.data(), page.size());
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_ChaCha20Page);

void BM_Sha256Page(benchmark::State& state) {
  std::vector<uint8_t> page(2048, 0x5C);
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(page.data(), page.size());
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_Sha256Page);

void BM_BloomInsert(benchmark::State& state) {
  device::RamManager ram(64 * 1024, 2048);
  auto bloom = exec::BloomFilter::Create(&ram, 100000, 32);
  Rng rng(3);
  for (auto _ : state) {
    bloom->Insert(static_cast<catalog::RowId>(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
  device::RamManager ram(64 * 1024, 2048);
  auto bloom = exec::BloomFilter::Create(&ram, 100000, 32);
  for (catalog::RowId id = 0; id < 100000; ++id) bloom->Insert(id * 3);
  Rng rng(4);
  size_t hits = 0;
  for (auto _ : state) {
    hits += bloom->MightContain(static_cast<catalog::RowId>(rng.Next()));
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_CompareEncodedStrings(benchmark::State& state) {
  uint8_t a[10], b[10];
  catalog::Value::String("042731").Encode(a, 10);
  catalog::Value::String("042732").Encode(b, 10);
  for (auto _ : state) {
    int c = catalog::CompareEncoded(catalog::DataType::kString, 10, a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompareEncodedStrings);

void BM_HashId(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    uint64_t h = crypto::HashId(static_cast<uint32_t>(rng.Next()), 0x51);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashId);

void BM_RngNext(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace

BENCHMARK_MAIN();

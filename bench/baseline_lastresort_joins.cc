// Ablation A5: why GhostDB is fully indexed (paper section 3.1). Runs the
// join chain sigma(T12) |><| T1 |><| T0 three ways on the same device:
//   * GhostDB's climbing-index plan (Cross-Pre);
//   * block-nested-loop over the hidden images ("last resort"): RAM-sized
//     chunks of the outer id set, one full scan of the inner per chunk;
//   * sort-merge over the hidden images: externally sort the inner on its
//     fk (write-heavy on flash), then merge with the sorted outer.
// With 64 KB of RAM the last-resort algorithms pay multiple scans/passes
// over the million-row root table; the indexed plan touches only what it
// needs.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/coding.h"
#include "storage/fixed_table.h"
#include "storage/run.h"

using namespace ghostdb;
using catalog::RowId;
using plan::VisStrategy;

namespace {

// sigma(h2 < dial) on a table's hidden image: returns matching ids.
std::vector<RowId> HiddenScan(core::GhostDB& db, const std::string& table,
                              const std::string& column, double sel) {
  auto t = *db.schema().FindTable(table);
  const auto& image = db.store().tables[t];
  auto c = *db.schema().table(t).FindColumn(column);
  auto buf = db.device().ram().AcquireOne("scan");
  storage::FixedTableReader reader(&db.device().flash(),
                                   image.hidden_image.value(),
                                   buf->data());
  std::vector<uint8_t> row(image.hidden_image->row_width);
  std::vector<RowId> out;
  catalog::Value cut = workload::Dial(sel);
  const auto& col = db.schema().table(t).columns[c];
  for (RowId r = 0; r < image.row_count; ++r) {
    if (!reader.ReadRow(r, row.data()).ok()) std::exit(1);
    auto v = catalog::Value::Decode(row.data() + image.hidden_offsets[c],
                                    col.type, col.width);
    if (v.Compare(cut) < 0) out.push_back(r);
  }
  return out;
}

// Block-nested-loop semi-join: which rows of `parent` have fk in `keys`?
// RAM-sized chunks of `keys`; one full hidden-image scan per chunk.
std::vector<RowId> BnlSemiJoin(core::GhostDB& db, const std::string& parent,
                               const std::string& fk_col,
                               const std::vector<RowId>& keys) {
  auto t = *db.schema().FindTable(parent);
  const auto& image = db.store().tables[t];
  auto c = *db.schema().table(t).FindColumn(fk_col);
  uint32_t off = image.hidden_offsets[c];
  auto& ram = db.device().ram();
  auto chunk_buf = ram.Acquire(ram.free_buffers() - 2, "bnl-chunk");
  size_t chunk_cap = chunk_buf->size() / 4;
  auto buf = ram.AcquireOne("bnl-scan");
  std::vector<uint8_t> row(image.hidden_image->row_width);
  std::vector<RowId> out;
  for (size_t base = 0; base < keys.size(); base += chunk_cap) {
    size_t end = std::min(keys.size(), base + chunk_cap);
    storage::FixedTableReader reader(&db.device().flash(),
                                     image.hidden_image.value(),
                                     buf->data());
    for (RowId r = 0; r < image.row_count; ++r) {
      if (!reader.ReadRow(r, row.data()).ok()) std::exit(1);
      RowId fk = DecodeFixed32(row.data() + off);
      if (std::binary_search(keys.begin() + static_cast<long>(base),
                             keys.begin() + static_cast<long>(end), fk)) {
        out.push_back(r);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Sort-merge semi-join: externally sort (fk, id) pairs of `parent` by fk
// (chunk-sort + write runs + merge passes), then merge with sorted keys.
std::vector<RowId> SortMergeSemiJoin(core::GhostDB& db,
                                     const std::string& parent,
                                     const std::string& fk_col,
                                     const std::vector<RowId>& keys) {
  auto t = *db.schema().FindTable(parent);
  const auto& image = db.store().tables[t];
  auto c = *db.schema().table(t).FindColumn(fk_col);
  uint32_t off = image.hidden_offsets[c];
  auto& ram = db.device().ram();
  auto& flash = db.device().flash();
  storage::PageAllocator scratch(&flash);  // separate temp space

  // Pass 1: scan, chunk-sort (fk,id) pairs, write sorted runs.
  std::vector<storage::RunRef> runs;
  {
    auto chunk_buf = ram.Acquire(ram.free_buffers() - 3, "sm-chunk");
    size_t cap = chunk_buf->size() / 8;
    auto scan_buf = ram.AcquireOne("sm-scan");
    auto write_buf = ram.AcquireOne("sm-write");
    storage::FixedTableReader reader(&flash, image.hidden_image.value(),
                                     scan_buf->data());
    std::vector<uint8_t> row(image.hidden_image->row_width);
    std::vector<std::pair<RowId, RowId>> pairs;
    pairs.reserve(cap);
    auto flush = [&]() {
      if (pairs.empty()) return;
      std::sort(pairs.begin(), pairs.end());
      storage::RunWriter w(&flash, &scratch, write_buf->data(), "sm-run");
      for (auto& [fk, id] : pairs) {
        if (!w.AppendU32(fk).ok() || !w.AppendU32(id).ok()) std::exit(1);
      }
      auto ref = w.Finish();
      if (!ref.ok()) std::exit(1);
      runs.push_back(*ref);
      pairs.clear();
    };
    for (RowId r = 0; r < image.row_count; ++r) {
      if (!reader.ReadRow(r, row.data()).ok()) std::exit(1);
      pairs.emplace_back(DecodeFixed32(row.data() + off), r);
      if (pairs.size() == cap) flush();
    }
    flush();
  }
  // Pass 2: hierarchical k-way merge of the (fk,id) runs until they fit
  // the RAM fan-in (classic external merge sort under 64 KB).
  while (runs.size() > static_cast<size_t>(ram.free_buffers() - 2)) {
    size_t take = ram.free_buffers() - 2;
    auto in_bufs = ram.Acquire(static_cast<uint32_t>(take), "sm-fanin");
    auto out_buf = ram.AcquireOne("sm-fanout");
    if (!in_bufs.ok() || !out_buf.ok()) std::exit(1);
    std::vector<std::unique_ptr<storage::RunReader>> readers;
    std::vector<std::pair<RowId, RowId>> heads(take);
    std::vector<bool> valid(take);
    for (size_t i = 0; i < take; ++i) {
      readers.push_back(std::make_unique<storage::RunReader>(
          &flash, runs[i], in_bufs->data() + i * 2048));
      uint8_t enc[8];
      auto n = readers[i]->Read(enc, 8);
      valid[i] = n.ok() && *n == 8;
      if (valid[i]) {
        heads[i] = {DecodeFixed32(enc), DecodeFixed32(enc + 4)};
      }
    }
    storage::RunWriter w(&flash, &scratch, out_buf->data(), "sm-run");
    while (true) {
      int best = -1;
      for (size_t i = 0; i < take; ++i) {
        if (valid[i] && (best < 0 || heads[i] < heads[best])) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      if (!w.AppendU32(heads[best].first).ok() ||
          !w.AppendU32(heads[best].second).ok()) {
        std::exit(1);
      }
      uint8_t enc[8];
      auto n = readers[best]->Read(enc, 8);
      valid[best] = n.ok() && *n == 8;
      if (valid[best]) {
        heads[best] = {DecodeFixed32(enc), DecodeFixed32(enc + 4)};
      }
    }
    auto merged = w.Finish();
    if (!merged.ok()) std::exit(1);
    for (size_t i = 0; i < take; ++i) {
      (void)storage::FreeRun(&scratch, runs[i], "sm-run");
    }
    runs.erase(runs.begin(), runs.begin() + static_cast<long>(take));
    runs.push_back(*merged);
  }

  // Final pass: merge the remaining runs against the sorted key list.
  std::vector<RowId> out;
  {
    auto bufs = ram.Acquire(static_cast<uint32_t>(runs.size()), "sm-merge");
    if (!bufs.ok()) std::exit(1);
    struct Cursor {
      std::unique_ptr<storage::RunReader> r;
      RowId fk, id;
      bool valid;
      void Next() {
        uint8_t enc[8];
        auto n = r->Read(enc, 8);
        valid = n.ok() && *n == 8;
        if (valid) {
          fk = DecodeFixed32(enc);
          id = DecodeFixed32(enc + 4);
        }
      }
    };
    std::vector<Cursor> cursors(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      cursors[i].r = std::make_unique<storage::RunReader>(
          &flash, runs[i], bufs->data() + i * 2048);
      cursors[i].Next();
    }
    while (true) {
      Cursor* best = nullptr;
      for (auto& cur : cursors) {
        if (cur.valid && (best == nullptr || cur.fk < best->fk)) best = &cur;
      }
      if (best == nullptr) break;
      if (std::binary_search(keys.begin(), keys.end(), best->fk)) {
        out.push_back(best->id);
      }
      best->Next();
    }
    for (auto& run : runs) {
      (void)storage::FreeRun(&scratch, run, "sm-run");
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Baseline A5",
                "last-resort joins vs the fully indexed model "
                "(sigma_h2<0.1(T12) |><| T1 |><| T0)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));
  auto& clock = db->device().clock();

  // Indexed plan (hidden-only query; result = T0 ids).
  std::string sql =
      "SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND "
      "T1.fk12 = T12.id AND T12.h2 < " +
      workload::Dial(0.1).ToString();
  auto m = bench::Run(*db, sql, plan::PlanChoice{});
  uint64_t indexed_rows = m.result_rows;
  double indexed_s = bench::Sec(m.total_ns);

  // Block-nested-loop chain.
  SimNanos t0 = clock.now();
  auto t12 = HiddenScan(*db, "T12", "h2", 0.1);
  auto t1_bnl = BnlSemiJoin(*db, "T1", "fk12", t12);
  auto t0_bnl = BnlSemiJoin(*db, "T0", "fk1", t1_bnl);
  double bnl_s = ToSeconds(clock.now() - t0);

  // Sort-merge chain.
  t0 = clock.now();
  auto t12b = HiddenScan(*db, "T12", "h2", 0.1);
  auto t1_sm = SortMergeSemiJoin(*db, "T1", "fk12", t12b);
  auto t0_sm = SortMergeSemiJoin(*db, "T0", "fk1", t1_sm);
  double sm_s = ToSeconds(clock.now() - t0);

  std::printf("%-28s %10s %12s\n", "algorithm", "time_s", "result_rows");
  std::printf("%-28s %10.3f %12llu\n", "GhostDB (climbing index)",
              indexed_s, static_cast<unsigned long long>(indexed_rows));
  std::printf("%-28s %10.3f %12llu\n", "block-nested-loop", bnl_s,
              static_cast<unsigned long long>(t0_bnl.size()));
  std::printf("%-28s %10.3f %12llu\n", "sort-merge", sm_s,
              static_cast<unsigned long long>(t0_sm.size()));
  if (t0_bnl.size() != indexed_rows || t0_sm.size() != indexed_rows) {
    std::printf("WARNING: result cardinalities disagree!\n");
    return 1;
  }
  std::printf("\npaper section 3.1: last-resort joins degenerate when the "
              "smaller operand exceeds RAM; the fully indexed model avoids "
              "them entirely\n");
  return 0;
}

// Figure 8: Filtering vs Cross-Filtering. Query Q (visible selection on
// T1.v1 swept over sV, hidden selection on T12.h2 at sH = 0.1, joins to
// T0), comparing Pre-Filter vs Cross-Pre-Filter and Post-Filter vs
// Cross-Post-Filter.
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.2);
  bench::JsonReporter reporter(argc, argv);
  bench::Banner("Figure 8", "Filtering vs Cross-Filtering (QEP_SJ of "
                "Query Q, sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  const std::pair<VisStrategy, const char*> kStrategies[] = {
      {VisStrategy::kPreFilter, "PreFilter"},
      {VisStrategy::kCrossPreFilter, "CrossPreFilter"},
      {VisStrategy::kPostFilter, "PostFilter"},
      {VisStrategy::kCrossPostFilter, "CrossPostFilter"},
  };
  std::printf("%-8s %12s %16s %12s %17s\n", "sV", "Pre-Filter",
              "Cross-Pre-Filter", "Post-Filter", "Cross-Post-Filter");
  for (double sv : bench::SvSweep()) {
    std::string sql = workload::QueryQ(sv, 0.1);
    double t[4];
    int i = 0;
    for (const auto& [strategy, name] : kStrategies) {
      auto start = std::chrono::steady_clock::now();
      auto metrics =
          bench::Run(*db, sql, bench::Pin(*db, "T1", strategy));
      double wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      t[i++] = bench::Sec(metrics.total_ns);
      char entry[64];
      std::snprintf(entry, sizeof(entry), "fig08.sv%.3f.%s", sv, name);
      reporter.Record(entry, wall_ms, bench::Sec(metrics.total_ns), metrics);
    }
    std::printf("%-8.3f %12.3f %16.3f %12.3f %17.3f\n", sv, t[0], t[1],
                t[2], t[3]);
  }
  std::printf("\npaper: Cross beats plain at every sV; benefit grows with "
              "sV (1.8x at sV=0.01, ~2.3x at 0.5 for Pre; ~2x for Post at "
              "0.5)\n");
  return 0;
}

// The memory-bounded relational tail, measured three ways over the same
// data and ORDER BY workload:
//
//   in-memory   — budget covers the working set (the pre-spill fast path)
//   spilling    — a 1-buffer budget forces run spills + streamed merges
//   no-spill    — the same tiny budget with spilling disabled: the honest
//                 version of the old unbounded operators, which can only
//                 fail (ResourceExhausted) where spilling completes
//   top-K       — ORDER BY ... LIMIT k fused into a bounded heap, vs the
//                 unfused Sort -> Limit over the full input
//
// Wall-clock is real host time (the sort work is host-side secure
// compute); simulated seconds add the device I/O model (spill flash
// traffic shows up here). `--smoke` shrinks the data for CI; `--json FILE`
// emits the machine-readable results CI uploads as a BENCH_*.json
// trajectory artifact.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"

namespace {

using ghostdb::Rng;
using ghostdb::catalog::Value;
using ghostdb::core::GhostDB;
using ghostdb::core::GhostDBConfig;

GhostDBConfig MakeConfig(uint32_t budget_buffers, bool spill_enabled,
                         bool topk_fusion) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 64 * 1024;
  cfg.exec.sort_budget_buffers = budget_buffers;
  cfg.exec.spill_enabled = spill_enabled;
  cfg.exec.topk_fusion = topk_fusion;
  cfg.exec.result_row_limit = 4;  // results stay on the secure display
  return cfg;
}

void BuildTable(GhostDB* db, uint32_t rows) {
  if (!db->Execute("CREATE TABLE R (id INT, v INT, h INT HIDDEN)").ok()) {
    std::fprintf(stderr, "create failed\n");
    std::exit(1);
  }
  Rng rng(99);
  auto staging = db->MutableStaging("R");
  for (uint32_t i = 0; i < rows; ++i) {
    (void)(*staging)->AppendRow(
        {Value::Int32(static_cast<int32_t>(rng.Uniform(1000000))),
         Value::Int32(static_cast<int32_t>(rng.Uniform(100)))});
  }
  if (!db->Build().ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }
}

struct Timed {
  double wall_ms = 0;
  ghostdb::Result<ghostdb::exec::QueryResult> result;

  Timed(double ms, ghostdb::Result<ghostdb::exec::QueryResult> r)
      : wall_ms(ms), result(std::move(r)) {}
};

Timed Run(GhostDB* db, const std::string& sql) {
  auto start = std::chrono::steady_clock::now();
  auto result = db->Query(sql);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return Timed(wall_ms, std::move(result));
}

}  // namespace

int main(int argc, char** argv) {
  using ghostdb::bench::JsonReporter;
  double scale = ghostdb::bench::ScaleArg(argc, argv, 0.5);
  if (ghostdb::bench::HasFlag(argc, argv, "--smoke")) scale = 0.05;
  JsonReporter json(argc, argv);
  uint32_t rows = static_cast<uint32_t>(100000 * scale);
  if (rows < 1000) rows = 1000;
  ghostdb::bench::Banner("sort_spill",
                         "memory-bounded relational tail", scale);
  std::printf("R: %u rows; ORDER BY over the full hidden-filtered set\n\n",
              rows);

  const std::string kSortSql =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v";
  const std::string kTopKSql = kSortSql + " LIMIT 10";

  struct Case {
    const char* name;
    uint32_t budget;
    bool spill;
    bool fuse;
    const std::string* sql;
  };
  const Case cases[] = {
      {"sort_in_memory", 4096, true, true, &kSortSql},
      {"sort_spilling_1buf", 1, true, true, &kSortSql},
      {"sort_no_spill_1buf", 1, false, true, &kSortSql},
      {"topk_fused", 0, true, true, &kTopKSql},
      {"topk_fused_1buf", 1, true, true, &kTopKSql},
      {"topk_unfused_full_sort", 4096, true, false, &kTopKSql},
  };

  std::printf("%-26s %12s %12s %10s %10s %8s\n", "case", "wall_ms",
              "sim_s", "rows", "spills", "topk_sc");
  double fused_ms = 0, unfused_ms = 0, inmem_ms = 0, spill_ms = 0;
  for (const Case& c : cases) {
    GhostDB db(MakeConfig(c.budget, c.spill, c.fuse));
    BuildTable(&db, rows);
    Timed t = Run(&db, *c.sql);
    if (!t.result.ok()) {
      std::printf("%-26s %12.2f %12s %10s %10s %8s  (%s)\n", c.name,
                  t.wall_ms, "-", "-", "-", "-",
                  t.result.status().ToString().c_str());
      json.Record(c.name, t.wall_ms, 0.0, ghostdb::exec::QueryMetrics{},
                  "resource_exhausted");
      continue;
    }
    const auto& m = t.result->metrics;
    std::printf("%-26s %12.2f %12.4f %10llu %10llu %8llu\n", c.name,
                t.wall_ms, ghostdb::bench::Sec(m.total_ns),
                static_cast<unsigned long long>(m.result_rows),
                static_cast<unsigned long long>(m.sort_spill_runs),
                static_cast<unsigned long long>(m.topk_short_circuits));
    json.Record(c.name, t.wall_ms, ghostdb::bench::Sec(m.total_ns), m);
    if (std::string(c.name) == "topk_fused") fused_ms = t.wall_ms;
    if (std::string(c.name) == "topk_unfused_full_sort") {
      unfused_ms = t.wall_ms;
    }
    if (std::string(c.name) == "sort_in_memory") inmem_ms = t.wall_ms;
    if (std::string(c.name) == "sort_spilling_1buf") spill_ms = t.wall_ms;
  }

  std::printf("\n");
  if (fused_ms > 0 && unfused_ms > 0) {
    std::printf("top-K fusion speedup over full sort: %.2fx\n",
                unfused_ms / fused_ms);
  }
  if (inmem_ms > 0 && spill_ms > 0) {
    std::printf("spilling overhead vs in-memory sort: %.2fx "
                "(completes where no-spill fails)\n",
                spill_ms / inmem_ms);
  }
  return 0;
}

// Figure 12: projection algorithms under a Cross-Pre-Filtering QEP_SJ.
// Query Q augmented with a projection on a hidden attribute (T1.h2):
// Project (section 4) vs Project-NoBF vs Brute-Force.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::ProjectAlgo;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Figure 12",
                "Projection algorithms under Cross-Pre-Filtering "
                "(Query Q + T1.h2 projection, sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %12s %14s %13s\n", "sV", "Project", "Project-NoBF",
              "Brute-Force");
  for (double sv : bench::SvSweep()) {
    std::string sql =
        workload::QueryQ(sv, 0.1, /*projected_vis_attrs=*/1,
                         /*project_hidden=*/true);
    double t[3];
    int i = 0;
    for (auto algo : {ProjectAlgo::kProject, ProjectAlgo::kProjectNoBF,
                      ProjectAlgo::kBruteForce}) {
      auto metrics = bench::Run(
          *db, sql,
          bench::Pin(*db, "T1", VisStrategy::kCrossPreFilter, algo));
      t[i++] = bench::Sec(metrics.total_ns);
    }
    std::printf("%-8.3f %12.3f %14.3f %13.3f\n", sv, t[0], t[1], t[2]);
  }
  std::printf("\npaper: Project ~60%% faster than Brute-Force at sV=0.1, "
              "gap grows with sV; NoBF pays extra MJoin passes\n");
  return 0;
}

// Figure 9: Cross-Pre vs Cross-Post filtering on Query Q (sH = 0.1).
// Expected shape: Cross-Pre wins for selective Visible selections and loses
// past sV ~ 0.1 (where SJoin touches every SKT page anyway), but never by
// more than ~25%.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Figure 9", "Cross-Pre vs Cross-Post filtering (Query Q, "
                "sH=0.1)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %16s %17s %8s\n", "sV", "Cross-Pre-Filter",
              "Cross-Post-Filter", "ratio");
  for (double sv : bench::SvSweep()) {
    std::string sql = workload::QueryQ(sv, 0.1);
    auto pre = bench::Run(
        *db, sql, bench::Pin(*db, "T1", VisStrategy::kCrossPreFilter));
    auto post = bench::Run(
        *db, sql, bench::Pin(*db, "T1", VisStrategy::kCrossPostFilter));
    double tp = bench::Sec(pre.total_ns), tq = bench::Sec(post.total_ns);
    std::printf("%-8.3f %16.3f %17.3f %8.2f\n", sv, tp, tq, tp / tq);
  }
  std::printf("\npaper: Cross-Pre better below sV~0.1, worse above; "
              "differential never beyond ~25%%\n");
  return 0;
}

// Grouped aggregation, measured across the GroupAggregateOp regimes over
// the same data and GROUP BY workload:
//
//   hash         — the group table fits the relational-tail budget (the
//                  streaming hash path end to end)
//   spilling     — a 1-buffer budget freezes the hash table almost
//                  immediately; new groups reroute through sort-based
//                  grouping on flash
//   no-spill     — the same tiny budget with spilling disabled: can only
//                  fail (ResourceExhausted) where the reroute completes
//   grouped topk — ORDER BY SUM(..) DESC LIMIT k over the grouped output
//                  (group spill feeding the fused top-K)
//   whole-result — the ungrouped Aggregate baseline over the same rows
//
// Wall-clock is real host time (grouping is host-side secure compute);
// simulated seconds add the device I/O model (group-spill flash traffic
// shows up here). `--smoke` shrinks the data for CI; `--json FILE` emits
// the machine-readable results CI uploads as a BENCH_*.json trajectory
// artifact.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"

namespace {

using ghostdb::Rng;
using ghostdb::catalog::Value;
using ghostdb::core::GhostDB;
using ghostdb::core::GhostDBConfig;

GhostDBConfig MakeConfig(uint32_t budget_buffers, bool spill_enabled) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 64 * 1024;
  cfg.exec.sort_budget_buffers = budget_buffers;
  cfg.exec.spill_enabled = spill_enabled;
  cfg.exec.result_row_limit = 4;  // results stay on the secure display
  return cfg;
}

void BuildTable(GhostDB* db, uint32_t rows, uint32_t groups) {
  if (!db->Execute("CREATE TABLE R (id INT, g INT, v INT, h INT HIDDEN)")
           .ok()) {
    std::fprintf(stderr, "create failed\n");
    std::exit(1);
  }
  Rng rng(99);
  auto staging = db->MutableStaging("R");
  for (uint32_t i = 0; i < rows; ++i) {
    (void)(*staging)->AppendRow(
        {Value::Int32(static_cast<int32_t>(rng.Uniform(groups))),
         Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
         Value::Int32(static_cast<int32_t>(rng.Uniform(100)))});
  }
  if (!db->Build().ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }
}

struct Timed {
  double wall_ms = 0;
  ghostdb::Result<ghostdb::exec::QueryResult> result;

  Timed(double ms, ghostdb::Result<ghostdb::exec::QueryResult> r)
      : wall_ms(ms), result(std::move(r)) {}
};

Timed Run(GhostDB* db, const std::string& sql) {
  auto start = std::chrono::steady_clock::now();
  auto result = db->Query(sql);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return Timed(wall_ms, std::move(result));
}

}  // namespace

int main(int argc, char** argv) {
  using ghostdb::bench::JsonReporter;
  double scale = ghostdb::bench::ScaleArg(argc, argv, 0.5);
  if (ghostdb::bench::HasFlag(argc, argv, "--smoke")) scale = 0.05;
  JsonReporter json(argc, argv);
  uint32_t rows = static_cast<uint32_t>(100000 * scale);
  if (rows < 1000) rows = 1000;
  uint32_t groups = rows / 20;  // ~20 rows per group
  ghostdb::bench::Banner("group_agg", "grouped aggregation (GROUP BY)",
                         scale);
  std::printf("R: %u rows, ~%u groups; grouped aggregation over the full "
              "hidden-filtered set\n\n", rows, groups);

  const std::string kGroupSql =
      "SELECT R.g, COUNT(*), SUM(R.v), MIN(R.h) FROM R WHERE R.h >= 0 "
      "GROUP BY R.g";
  const std::string kTopKSql =
      "SELECT R.g, SUM(R.v) FROM R WHERE R.h >= 0 GROUP BY R.g "
      "ORDER BY SUM(R.v) DESC LIMIT 10";
  const std::string kUngroupedSql =
      "SELECT COUNT(*), SUM(R.v), MIN(R.h) FROM R WHERE R.h >= 0";

  struct Case {
    const char* name;
    uint32_t budget;
    bool spill;
    const std::string* sql;
  };
  const Case cases[] = {
      {"group_hash", 4096, true, &kGroupSql},
      {"group_spilling_1buf", 1, true, &kGroupSql},
      {"group_no_spill_1buf", 1, false, &kGroupSql},
      {"group_topk_sum_desc", 4096, true, &kTopKSql},
      {"group_topk_spilling_1buf", 1, true, &kTopKSql},
      {"whole_result_aggregate", 4096, true, &kUngroupedSql},
  };

  std::printf("%-26s %12s %12s %10s %10s\n", "case", "wall_ms", "sim_s",
              "groups", "spills");
  double hash_ms = 0, spill_ms = 0;
  for (const Case& c : cases) {
    GhostDB db(MakeConfig(c.budget, c.spill));
    BuildTable(&db, rows, groups);
    Timed t = Run(&db, *c.sql);
    if (!t.result.ok()) {
      std::printf("%-26s %12.2f %12s %10s %10s  (%s)\n", c.name, t.wall_ms,
                  "-", "-", "-", t.result.status().ToString().c_str());
      json.Record(c.name, t.wall_ms, 0.0, ghostdb::exec::QueryMetrics{},
                  t.result.status().IsResourceExhausted()
                      ? "resource_exhausted"
                      : "error");
      continue;
    }
    const auto& m = t.result->metrics;
    std::printf("%-26s %12.2f %12.4f %10llu %10llu\n", c.name, t.wall_ms,
                ghostdb::bench::Sec(m.total_ns),
                static_cast<unsigned long long>(m.result_rows),
                static_cast<unsigned long long>(m.sort_spill_runs));
    json.Record(c.name, t.wall_ms, ghostdb::bench::Sec(m.total_ns), m);
    if (std::string(c.name) == "group_hash") hash_ms = t.wall_ms;
    if (std::string(c.name) == "group_spilling_1buf") spill_ms = t.wall_ms;
  }
  if (hash_ms > 0 && spill_ms > 0) {
    std::printf("\nhash vs forced-spill wall-clock: %.2fx (spill completes "
                "where no-spill fails)\n", spill_ms / hash_ms);
  }
  json.Write();
  return 0;
}

// Figure 11: Post-Filtering alternatives — Bloom-based Post-Filter vs exact
// Post-Select, with and without the Cross optimization (Query Q, sH=0.1).
// Justifies rejecting Post-Select: the exact in-RAM selection forces
// multiple passes over the SJoin result once the Vis id list outgrows RAM.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.2);
  bench::Banner("Figure 11", "Post-Filtering alternatives (Query Q, sH=0.1)",
                scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %12s %12s %18s %18s\n", "sV", "Post-Select",
              "Post-Filter", "Cross-Post-Select", "Cross-Post-Filter");
  for (double sv : bench::SvSweep()) {
    std::string sql = workload::QueryQ(sv, 0.1);
    double t[4];
    int i = 0;
    for (auto strategy :
         {VisStrategy::kPostSelect, VisStrategy::kPostFilter,
          VisStrategy::kCrossPostSelect, VisStrategy::kCrossPostFilter}) {
      auto metrics = bench::Run(*db, sql, bench::Pin(*db, "T1", strategy));
      t[i++] = bench::Sec(metrics.total_ns);
    }
    std::printf("%-8.3f %12.3f %12.3f %18.3f %18.3f\n", sv, t[0], t[1],
                t[2], t[3]);
  }
  std::printf("\npaper: the Bloom variants dominate the exact Select "
              "variants; Cross shrinks both\n");
  return 0;
}

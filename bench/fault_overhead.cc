// Cost of the fault-injection subsystem, measured three ways over the
// same data and workload:
//
//   injection_off   — FaultConfig.enabled = false: the production default.
//                     Hook sites compile in but short-circuit on the
//                     master switch; this is the baseline.
//   hooks_zero_prob — injection enabled with every site probability at
//                     zero: each flash/channel/RAM operation pays one
//                     schedule draw (a splitmix64 hash) but no fault ever
//                     fires. The delta vs injection_off is the pure hook
//                     overhead.
//   transient_retry — transient flash faults (transient_fraction = 1.0)
//                     at a rate chosen so retries actually happen: the
//                     retry-with-backoff path cost, visible mostly as
//                     simulated backoff time, plus exact retry counters.
//
// Wall-clock is real host time; simulated seconds add the device I/O
// model (retry backoff is charged there, under the "fault-retry" clock
// category). `--smoke` shrinks the data for CI; `--json FILE` emits the
// machine-readable results the bench-smoke job uploads as
// BENCH_fault_overhead.json.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "device/fault_injector.h"

namespace {

using ghostdb::Rng;
using ghostdb::catalog::Value;
using ghostdb::core::GhostDB;
using ghostdb::core::GhostDBConfig;

GhostDBConfig MakeConfig(const ghostdb::device::FaultConfig& fault) {
  GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 64 * 1024;
  cfg.exec.sort_budget_buffers = 1;  // force spill traffic through flash
  cfg.exec.result_row_limit = 4;     // results stay on the secure display
  cfg.fault_config = fault;
  return cfg;
}

void BuildTable(GhostDB* db, uint32_t rows) {
  if (!db->Execute("CREATE TABLE R (id INT, v INT, h INT HIDDEN)").ok()) {
    std::fprintf(stderr, "create failed\n");
    std::exit(1);
  }
  Rng rng(99);
  auto staging = db->MutableStaging("R");
  for (uint32_t i = 0; i < rows; ++i) {
    (void)(*staging)->AppendRow(
        {Value::Int32(static_cast<int32_t>(rng.Uniform(1000000))),
         Value::Int32(static_cast<int32_t>(rng.Uniform(100)))});
  }
  if (!db->Build().ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }
}

struct Timed {
  double wall_ms = 0;
  ghostdb::Result<ghostdb::exec::QueryResult> result;

  Timed(double ms, ghostdb::Result<ghostdb::exec::QueryResult> r)
      : wall_ms(ms), result(std::move(r)) {}
};

Timed Run(GhostDB* db, const std::string& sql) {
  auto start = std::chrono::steady_clock::now();
  auto result = db->Query(sql);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return Timed(wall_ms, std::move(result));
}

}  // namespace

int main(int argc, char** argv) {
  using ghostdb::bench::JsonReporter;
  using ghostdb::device::FaultConfig;
  double scale = ghostdb::bench::ScaleArg(argc, argv, 0.5);
  if (ghostdb::bench::HasFlag(argc, argv, "--smoke")) scale = 0.05;
  JsonReporter json(argc, argv);
  uint32_t rows = static_cast<uint32_t>(60000 * scale);
  if (rows < 1000) rows = 1000;
  uint32_t reps = 3;
  ghostdb::bench::Banner("fault_overhead",
                         "fault-injection hook + retry-path cost", scale);
  std::printf("R: %u rows; spilling ORDER BY, %u reps per config\n\n", rows,
              reps);

  const std::string kSql =
      "SELECT R.id, R.v FROM R WHERE R.h >= 0 ORDER BY R.v";

  FaultConfig off;  // enabled = false

  FaultConfig zero;
  zero.enabled = true;
  zero.seed = 7;

  FaultConfig retry;
  retry.enabled = true;
  retry.seed = 7;
  retry.flash_read_p = 0.002;
  retry.flash_write_p = 0.002;
  retry.transient_fraction = 1.0;  // every fault transient: retried, never
                                   // surfaced as an error

  struct Case {
    const char* name;
    const FaultConfig* fault;
  };
  const Case cases[] = {
      {"injection_off", &off},
      {"hooks_zero_prob", &zero},
      {"transient_retry", &retry},
  };

  std::printf("%-18s %12s %12s %10s %10s %10s\n", "case", "wall_ms",
              "sim_s", "rows", "faults", "retries");
  double off_ms = 0, zero_ms = 0, retry_ms = 0;
  for (const Case& c : cases) {
    GhostDB db(MakeConfig(*c.fault));
    BuildTable(&db, rows);
    double wall_ms = 0, sim_s = 0;
    uint64_t faults = 0, retries = 0, result_rows = 0;
    ghostdb::exec::QueryMetrics last{};
    bool ok = true;
    for (uint32_t r = 0; r < reps && ok; ++r) {
      Timed t = Run(&db, kSql);
      if (!t.result.ok()) {
        std::printf("%-18s %12.2f  (%s)\n", c.name, t.wall_ms,
                    t.result.status().ToString().c_str());
        json.Record(c.name, t.wall_ms, 0.0, ghostdb::exec::QueryMetrics{},
                    "error");
        ok = false;
        break;
      }
      const auto& m = t.result->metrics;
      wall_ms += t.wall_ms;
      sim_s += ghostdb::bench::Sec(m.total_ns);
      faults += m.faults_injected;
      retries += m.flash_retries;
      result_rows = m.result_rows;
      last = m;
    }
    if (!ok) continue;
    wall_ms /= reps;
    sim_s /= reps;
    std::printf("%-18s %12.2f %12.4f %10llu %10llu %10llu\n", c.name,
                wall_ms, sim_s,
                static_cast<unsigned long long>(result_rows),
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(retries));
    json.Record(c.name, wall_ms, sim_s, last);
    char fields[256];
    std::snprintf(fields, sizeof(fields),
                  "\"faults_injected\": %llu, \"flash_retries\": %llu, "
                  "\"reps\": %u",
                  static_cast<unsigned long long>(faults),
                  static_cast<unsigned long long>(retries), reps);
    json.RecordCustom(std::string(c.name) + "_counters", fields);
    if (std::string(c.name) == "injection_off") off_ms = wall_ms;
    if (std::string(c.name) == "hooks_zero_prob") zero_ms = wall_ms;
    if (std::string(c.name) == "transient_retry") retry_ms = wall_ms;
  }

  std::printf("\n");
  if (off_ms > 0 && zero_ms > 0) {
    std::printf("hook overhead (zero-prob vs off): %+.1f%% wall\n",
                100.0 * (zero_ms - off_ms) / off_ms);
    char fields[128];
    std::snprintf(fields, sizeof(fields),
                  "\"hook_overhead_pct\": %.2f",
                  100.0 * (zero_ms - off_ms) / off_ms);
    json.RecordCustom("hook_overhead", fields);
  }
  if (off_ms > 0 && retry_ms > 0) {
    std::printf("retry-path overhead (transient vs off): %+.1f%% wall\n",
                100.0 * (retry_ms - off_ms) / off_ms);
    char fields[128];
    std::snprintf(fields, sizeof(fields),
                  "\"retry_overhead_pct\": %.2f",
                  100.0 * (retry_ms - off_ms) / off_ms);
    json.RecordCustom("retry_overhead", fields);
  }
  return 0;
}

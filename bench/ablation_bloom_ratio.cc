// Ablation A3: Bloom-filter m/n calibration. The paper picks m = 8n
// (fpr ~2.4%) as the sweet spot between RAM use and false positives; this
// sweeps the target bits-per-element and reports end-to-end time and the
// achieved filter quality for a Post-Filter plan.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.1);
  bench::Banner("Ablation A3",
                "Bloom m/n calibration for Cross-Post-Filter (Query Q, "
                "sV=0.2, sH=0.1)", scale);

  std::printf("%-10s %10s %12s %14s\n", "target_bpe", "time_s",
              "est_fpr", "qepsj_rows");
  for (double bpe : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    workload::SyntheticConfig wl;
    wl.scale = scale;
    auto cfg = workload::SyntheticDbConfig(wl);
    cfg.exec.result_row_limit = 4;
    cfg.exec.bloom_target_bpe = bpe;
    cfg.exec.bloom_min_bpe = 0.5;  // let even poor filters run
    core::GhostDB db(cfg);
    auto st = workload::BuildSynthetic(&db, wl);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto m =
        bench::Run(db, workload::QueryQ(0.2, 0.1, 1, true),
                   bench::Pin(db, "T1", VisStrategy::kCrossPostFilter));
    std::printf("%-10.1f %10.3f %12.4f %14llu\n", bpe,
                bench::Sec(m.total_ns), m.bloom_fpr_estimate,
                static_cast<unsigned long long>(m.qepsj_rows));
  }
  std::printf("\nexpectation: below ~4 bits/element false positives bloat "
              "the QEP_SJ superset and projection pays for it; above ~8 "
              "the gain flattens (paper section 3.4)\n");
  return 0;
}

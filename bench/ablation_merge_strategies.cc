// Ablation A1: the two RAM-overflow alternatives of the Merge operator
// (paper section 3.4): the reduction phase (pre-union sublists into
// temporary runs — write-heavy) vs sub-buffer splitting (more page loads,
// no temporary writes). The paper implements the former and sketches the
// latter; the better choice depends on how many sublists overflow RAM.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.05);
  bench::Banner("Ablation A1",
                "Merge overflow policy: reduction vs sub-buffer "
                "(Cross-Pre Query Q, sH=0.1)", scale);

  std::printf("%-8s %12s %12s %14s %14s\n", "sV", "reduction_s",
              "subbuffer_s", "red_wr_pages", "sub_rd_pages");
  for (double sv : {0.05, 0.1, 0.2, 0.5}) {
    double secs[2];
    uint64_t writes[2], reads[2];
    int i = 0;
    for (auto policy : {exec::MergeOverflowPolicy::kReduction,
                        exec::MergeOverflowPolicy::kSubBuffer}) {
      workload::SyntheticConfig wl;
      wl.scale = scale;
      auto cfg = workload::SyntheticDbConfig(wl);
      cfg.exec.result_row_limit = 4;
      cfg.exec.merge_policy = policy;
      core::GhostDB db(cfg);
      auto st = workload::BuildSynthetic(&db, wl);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      auto m = bench::Run(db, workload::QueryQ(sv, 0.1),
                          bench::Pin(db, "T1", VisStrategy::kPreFilter));
      secs[i] = bench::Sec(m.total_ns);
      writes[i] = m.flash.pages_written;
      reads[i] = m.flash.pages_read;
      ++i;
    }
    std::printf("%-8.3f %12.3f %12.3f %14llu %14llu\n", sv, secs[0],
                secs[1], static_cast<unsigned long long>(writes[0]),
                static_cast<unsigned long long>(reads[1]));
  }
  std::printf("\nexpectation: sub-buffer avoids temp writes but re-reads "
              "pages through tiny windows; reduction wins once sublist "
              "counts explode (writes amortize)\n");
  return 0;
}

// Figure 15: cost decomposition of Query Q (with projection) on the
// synthetic dataset: Merge / SJoin / Store / Project per strategy
// (Cross-Pre = PRE, Cross-Post = POST) at sV in {0.01, 0.05, 0.2}.
// Communication time is excluded, as in the paper.
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ghostdb;
using plan::VisStrategy;

int main(int argc, char** argv) {
  double scale = bench::ScaleArg(argc, argv, 0.1);
  bench::Banner("Figure 15",
                "cost decomposition, synthetic dataset (simulated seconds, "
                "communication excluded)", scale);
  std::unique_ptr<core::GhostDB> db(bench::BuildSyntheticDb(scale));

  std::printf("%-8s %10s %10s %10s %10s %10s\n", "plan", "Merge", "Sjoin",
              "Store", "Project", "total");
  const double svs[] = {0.01, 0.05, 0.2};
  const char* names[] = {"PRE1", "POST1", "PRE5", "POST5", "PRE20",
                         "POST20"};
  int n = 0;
  for (double sv : svs) {
    for (auto strategy : {VisStrategy::kCrossPreFilter,
                          VisStrategy::kCrossPostFilter}) {
      std::string sql = workload::QueryQ(sv, 0.1, 1, true);
      auto m = bench::Run(*db, sql, bench::Pin(*db, "T1", strategy));
      auto cat = [&](const char* c) {
        auto it = m.categories.find(c);
        return it == m.categories.end() ? 0.0 : bench::Sec(it->second);
      };
      double comm = cat("comm");
      std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f\n", names[n++],
                  cat("merge"), cat("sjoin"), cat("store"), cat("project"),
                  bench::Sec(m.total_ns) - comm);
    }
  }
  std::printf("\npaper: PRE wins at sV=0.01/0.05, loses at 0.2; at sV=0.2 "
              "SJoin cost equalizes (all SKT pages touched) while PRE's "
              "Merge grows\n");
  return 0;
}

// Multi-session serving throughput, on two axes:
//
//  * the session layer's structural win: K sessions over ONE shared GhostDB
//    (one store partitioned/indexed/encrypted once, shared plan cache,
//    arbitrated channel) versus K separate serial instances;
//  * the morsel-pool scaling win: the same K-session drain with
//    worker_threads 1 / 2 / 4. The drain itself is the deterministic
//    single-threaded scheduler, so the pool is the *only* parallelism axis
//    — wall-clock improvements are the worker pool's alone, and every
//    width must produce identical answers (asserted).
//
// Host CPU does the work that scales: sharded+SIMD visible scans and
// projection payloads, parallel spill-generation sorts, morsel key
// extraction for DISTINCT/GROUP BY. Device work (hidden scans, flash,
// channel) stays serial under the arbiter, so the workload leans on
// visible columns. Needs >1 host core for the widths to separate.
//
//  * the sharded-fleet scaling win: the same drain over a store
//    hash-partitioned across shard_count 1 / 2 / 4 SecureDevices.
//    Scatter-gather divides the per-query device work (hidden scans,
//    flash, projection streaming) across per-shard clocks, so *simulated*
//    serving time — a deterministic function of the cost model — must
//    drop monotonically and reach >= 1.5x at 4 shards (asserted, with the
//    answers pinned to the serial baseline).
//
// Usage: bench_multi_session_throughput [sessions=4] [stmts/session=40]
//                                       [--json FILE] [--shard-json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/database.h"

using namespace ghostdb;

namespace {

void Die(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
}

// The serving dataset: a large, mostly visible Fact table (the PC-side
// scans are what the pool shards) over a small Dim.
void BuildDb(core::GhostDB* db) {
  Die(db->Execute("CREATE TABLE Dim (id INT, v INT, name CHAR(12), "
                  "h INT HIDDEN)"));
  Die(db->Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                  "v INT, tag CHAR(16), h INT HIDDEN)"));
  Rng rng(7);
  auto dim = db->MutableStaging("Dim");
  Die(dim.status());
  for (int i = 0; i < 2000; ++i) {
    Die((*dim)->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
         catalog::Value::String("n" + std::to_string(rng.Uniform(500))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000)))}));
  }
  auto fact = db->MutableStaging("Fact");
  Die(fact.status());
  for (int i = 0; i < 60000; ++i) {
    Die((*fact)->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(2000))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
         catalog::Value::String("t" + std::to_string(rng.Uniform(900))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000)))}));
  }
  Die(db->Build());
}

// One principal's statement stream: shapes whose cost is host-side value
// work (visible scans, sorts, DISTINCT, GROUP BY), rotating literals,
// per-session offsets so streams differ without changing the shape mix.
std::vector<std::string> SessionWorkload(int session, int statements) {
  std::vector<std::string> sqls;
  sqls.reserve(static_cast<size_t>(statements));
  for (int i = 0; i < statements; ++i) {
    int lit = 37 * session + i;
    switch (i % 5) {
      case 0:
        // Wide visible scan + projection payload: the sharded SIMD path.
        sqls.push_back("SELECT Fact.id, Fact.v, Fact.tag FROM Fact "
                       "WHERE Fact.v < " + std::to_string(600 + lit % 300));
        break;
      case 1:
        // Large multi-key ORDER BY: parallel generation sorts; every
        // comparator byte is morsel work.
        sqls.push_back("SELECT Fact.id, Fact.tag, Fact.v FROM Fact WHERE "
                       "Fact.v < " + std::to_string(500 + lit % 300) +
                       " ORDER BY Fact.v DESC, Fact.tag, Fact.id");
        break;
      case 2:
        // String-keyed sort: the memcmp comparator, all morsel-parallel.
        sqls.push_back("SELECT Fact.tag, Fact.v, Fact.id FROM Fact WHERE "
                       "Fact.v < " + std::to_string(500 + lit % 300) +
                       " ORDER BY Fact.tag, Fact.v, Fact.id DESC");
        break;
      case 3:
        // Grouped aggregation: morsel key extraction + host folds.
        sqls.push_back("SELECT Fact.tag, COUNT(*), SUM(Fact.v) FROM Fact "
                       "WHERE Fact.v < " + std::to_string(600 + lit % 300) +
                       " GROUP BY Fact.tag");
        break;
      default:
        // One joined + hidden-predicate shape so the serial device path
        // (QEP_SJ, hidden scan) stays in the mix.
        sqls.push_back("SELECT Fact.id, Fact.tag, Dim.v FROM Fact, Dim "
                       "WHERE Fact.fk = Dim.id AND Dim.v < " +
                       std::to_string(150 + lit % 100) +
                       " AND Fact.h < 300 LIMIT 200");
        break;
    }
  }
  return sqls;
}

core::GhostDBConfig Config(uint32_t workers, uint32_t shards = 1) {
  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 256 * 1024;
  cfg.worker_threads = workers;
  cfg.shard_count = shards;
  // Row counts stay exact; capping materialization keeps the serial
  // decode-to-Values tail from flattening the scaling signal.
  cfg.exec.result_row_limit = 64;
  // A generous relational-tail budget: ORDER BY/DISTINCT working sets stay
  // in memory, so their cost is the morsel-parallel generation sort rather
  // than serialized spill I/O — the host-compute serving profile this
  // bench scales across worker counts.
  cfg.exec.sort_budget_buffers = 512;
  return cfg;
}

struct DrainOutcome {
  double wall_s = 0.0;
  uint64_t rows = 0;
  exec::QueryMetrics totals;
};

// Builds a fresh shared store with `workers` pool width (partitioned across
// `shards` devices), opens K sessions, queues every workload, and drains
// under the deterministic scheduler.
DrainOutcome RunSharedStore(int sessions, int per_session, uint32_t workers,
                            uint32_t shards = 1) {
  core::GhostDB db(Config(workers, shards));
  BuildDb(&db);
  std::vector<std::unique_ptr<core::Session>> handles;
  for (int s = 0; s < sessions; ++s) {
    core::SessionOptions options;
    options.name = "bench" + std::to_string(s);
    // A healthy quota: sorts mostly stay in memory, so the serving cost is
    // the host-side value work the pool shards, not serialized spill I/O.
    options.ram_quota_buffers = 6;
    auto session = db.OpenSession(std::move(options));
    Die(session.status());
    handles.push_back(std::move(*session));
  }
  for (int s = 0; s < sessions; ++s) {
    for (std::string& sql : SessionWorkload(s, per_session)) {
      handles[static_cast<size_t>(s)]->Enqueue(std::move(sql));
    }
  }
  std::vector<core::Session*> raw;
  for (auto& h : handles) raw.push_back(h.get());
  auto t0 = std::chrono::steady_clock::now();
  auto drained = db.DrainSessions(raw);
  Die(drained.status());
  DrainOutcome out;
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& h : handles) {
    for (auto& r : h->TakeResults()) {
      Die(r.status());
      out.rows += r->total_rows;
    }
    out.totals.Accumulate(h->metrics());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = argc > 1 && argv[1][0] != '-' ? std::atoi(argv[1]) : 4;
  int per_session = argc > 2 && argv[2][0] != '-' ? std::atoi(argv[2]) : 40;
  bench::JsonReporter json(argc, argv);
  int total = sessions * per_session;
  std::printf("multi-session serving: %d sessions x %d statements "
              "(%d total, %u host core%s)\n",
              sessions, per_session, total,
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() == 1 ? "" : "s");

  // ---- Baseline: K serial instances, own store each ---------------------
  uint64_t serial_rows = 0;
  double serial_wall = 0.0;
  exec::QueryMetrics serial_totals;
  auto b0 = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    core::GhostDB instance(Config(1));
    BuildDb(&instance);
    auto t0 = std::chrono::steady_clock::now();
    for (const std::string& sql : SessionWorkload(s, per_session)) {
      auto r = instance.Query(sql);
      Die(r.status());
      serial_rows += r->total_rows;
      serial_totals.Accumulate(r->metrics);
    }
    serial_wall +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  double serial_batch =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - b0)
          .count();
  json.Record("serial_instances", serial_wall * 1e3,
              bench::Sec(serial_totals.total_ns), serial_totals);
  std::printf("  K serial instances:          batch %.3f s (serve %.3f; "
              "%.0f stmts/s, %llu rows)\n",
              serial_batch, serial_wall, total / serial_wall,
              static_cast<unsigned long long>(serial_rows));

  // ---- K sessions, one shared store, worker_threads axis ----------------
  double wall_w1 = 0.0, wall_w4 = 0.0;
  for (uint32_t workers : {1u, 2u, 4u}) {
    DrainOutcome out = RunSharedStore(sessions, per_session, workers);
    json.Record("sessions_w" + std::to_string(workers), out.wall_s * 1e3,
                bench::Sec(out.totals.total_ns), out.totals);
    std::printf("  K sessions, %u worker%s:      serve %.3f s "
                "(%.0f stmts/s, %llu rows)\n",
                workers, workers == 1 ? " " : "s", out.wall_s,
                total / out.wall_s,
                static_cast<unsigned long long>(out.rows));
    if (out.rows != serial_rows) {
      std::fprintf(stderr,
                   "row mismatch vs serial baseline at %u workers: "
                   "%llu vs %llu\n",
                   workers, static_cast<unsigned long long>(out.rows),
                   static_cast<unsigned long long>(serial_rows));
      return 1;
    }
    if (workers == 1) wall_w1 = out.wall_s;
    if (workers == 4) wall_w4 = out.wall_s;
  }
  std::printf("  worker-pool scaling (w1/w4): %.2fx%s\n", wall_w1 / wall_w4,
              std::thread::hardware_concurrency() < 4
                  ? "  (needs >=4 host cores to mean anything)"
                  : "");

  // ---- Sharded fleet axis: shard_count 1 / 2 / 4 ------------------------
  // One logical store hash-partitioned across N simulated SecureDevices;
  // the same K-session drain. Root-anchored statements scatter across the
  // fleet (each shard's device does ~1/N of the hidden scans, flash reads,
  // and projection streaming on its own clock) and gather on shard 0, so
  // the *simulated* serving time — max over scatter legs plus the gather
  // tail, summed over statements — is the scaling signal. It is a pure
  // function of the cost model, so the monotonicity and speedup criteria
  // below are deterministic, unlike wall-clock. Answers must not move.
  bench::JsonReporter shard_json(argc, argv, "--shard-json");
  double sim_s1 = 0.0, sim_s4 = 0.0;
  bool shard_scaling_ok = true;
  double prev_sim = 0.0;
  for (uint32_t shards : {1u, 2u, 4u}) {
    DrainOutcome out = RunSharedStore(sessions, per_session, /*workers=*/1,
                                      shards);
    double sim = bench::Sec(out.totals.total_ns);
    shard_json.Record("shards_" + std::to_string(shards), out.wall_s * 1e3,
                      sim, out.totals);
    std::printf("  %u-shard fleet:              serve %.3f s sim "
                "(%.0f stmts/sim-s; wall %.3f s, %llu rows)\n",
                shards, sim, total / sim, out.wall_s,
                static_cast<unsigned long long>(out.rows));
    if (out.rows != serial_rows) {
      std::fprintf(stderr,
                   "row mismatch vs serial baseline at %u shards: "
                   "%llu vs %llu\n",
                   shards, static_cast<unsigned long long>(out.rows),
                   static_cast<unsigned long long>(serial_rows));
      return 1;
    }
    if (prev_sim > 0.0 && sim > prev_sim) {
      std::fprintf(stderr,
                   "shard scaling not monotonic: %u shards took %.6f "
                   "sim-s after %.6f\n",
                   shards, sim, prev_sim);
      shard_scaling_ok = false;
    }
    prev_sim = sim;
    if (shards == 1) sim_s1 = sim;
    if (shards == 4) sim_s4 = sim;
  }
  double shard_speedup = sim_s1 / sim_s4;
  shard_json.RecordCustom(
      "shard_scaling",
      "\"speedup_4v1\": " + std::to_string(shard_speedup) +
          ", \"criterion\": 1.5");
  std::printf("  shard-fleet scaling (1/4):   %.2fx simulated (criterion "
              ">= 1.50x, monotonic)\n", shard_speedup);
  if (shard_speedup < 1.5) {
    std::fprintf(stderr,
                 "shard scaling criterion failed: %.2fx < 1.5x at 4 "
                 "shards\n", shard_speedup);
    shard_scaling_ok = false;
  }
  return shard_scaling_ok ? 0 : 1;
}

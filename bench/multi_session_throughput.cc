// Multi-session serving throughput: host wall-clock of K concurrent
// sessions over ONE shared GhostDB (one store, one plan cache, arbitrated
// channel) versus the same total workload on K separate serial GhostDB
// instances — the only other way to give each principal isolated metrics,
// RAM budget, and result surface without a session layer.
//
// Two comparisons are reported:
//  * batch wall-clock (cold start -> all answers): the session layer's
//    structural win — one store is partitioned, indexed, and encrypted
//    once instead of K times, and the plan cache is shared;
//  * serving-only wall-clock (builds excluded): sessions bind, render
//    (decode), and run the PC's visible scans on their own threads, off
//    the key's critical section — overlap that needs >1 host core to show
//    up as wall-clock (on a single-core host it measures arbiter overhead,
//    which should be near zero).
//
// Usage: bench_multi_session_throughput [sessions, default 4]
//                                       [statements/session, default 120]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"

using namespace ghostdb;

namespace {

void Die(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
}

// The serving dataset (same shape as bench_batch_throughput).
void BuildDb(core::GhostDB* db) {
  Die(db->Execute("CREATE TABLE Dim (id INT, v INT, name CHAR(12), "
                  "h INT HIDDEN)"));
  Die(db->Execute("CREATE TABLE Fact (id INT, fk INT REFERENCES Dim HIDDEN, "
                  "v INT, tag CHAR(16), h INT HIDDEN)"));
  Rng rng(7);
  auto dim = db->MutableStaging("Dim");
  Die(dim.status());
  for (int i = 0; i < 2000; ++i) {
    Die((*dim)->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
         catalog::Value::String("n" + std::to_string(rng.Uniform(500))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000)))}));
  }
  auto fact = db->MutableStaging("Fact");
  Die(fact.status());
  for (int i = 0; i < 20000; ++i) {
    Die((*fact)->AppendRow(
        {catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(2000))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
         catalog::Value::String("t" + std::to_string(rng.Uniform(900))),
         catalog::Value::Int32(static_cast<int32_t>(rng.Uniform(1000)))}));
  }
  Die(db->Build());
}

// One principal's statement stream: mixed shapes, rotating literals,
// per-session offsets so streams differ without changing the shape mix.
std::vector<std::string> SessionWorkload(int session, int statements) {
  std::vector<std::string> sqls;
  sqls.reserve(static_cast<size_t>(statements));
  for (int i = 0; i < statements; ++i) {
    int lit = 37 * session + i;
    switch (i % 5) {
      case 0:
        // Wide row-serving scan: visible tag column (prefetched payload)
        // plus hidden columns, thousands of rows rendered per statement.
        sqls.push_back("SELECT Fact.id, Fact.v, Fact.tag, Fact.h FROM "
                       "Fact WHERE Fact.h < " +
                       std::to_string(100 + lit % 400));
        break;
      case 1:
        sqls.push_back("SELECT Fact.id, Fact.tag, Fact.v FROM Fact WHERE "
                       "Fact.v < " + std::to_string(200 + lit % 300) +
                       " AND Fact.h < 500 ORDER BY Fact.v DESC");
        break;
      case 2:
        sqls.push_back("SELECT DISTINCT Fact.v FROM Fact WHERE Fact.h < " +
                       std::to_string(300 + lit % 200));
        break;
      case 3:
        sqls.push_back("SELECT Fact.id, Fact.tag, Dim.v, Dim.name FROM "
                       "Fact, Dim WHERE Fact.fk = Dim.id AND Dim.v < " +
                       std::to_string(150 + lit % 100) +
                       " AND Fact.h < 300 LIMIT 200");
        break;
      default:
        sqls.push_back("SELECT COUNT(*), SUM(Fact.v), MAX(Fact.h) FROM "
                       "Fact WHERE Fact.h >= " + std::to_string(lit % 500));
        break;
    }
  }
  return sqls;
}

core::GhostDBConfig Config() {
  core::GhostDBConfig cfg;
  cfg.device.flash.logical_pages = 256 * 1024;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = argc > 1 ? std::atoi(argv[1]) : 4;
  int per_session = argc > 2 ? std::atoi(argv[2]) : 120;

  // ---- K concurrent sessions, one shared store --------------------------
  auto b0 = std::chrono::steady_clock::now();
  core::GhostDB shared(Config());
  BuildDb(&shared);
  double multi_build =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - b0)
          .count();
  std::vector<std::unique_ptr<core::Session>> handles;
  for (int s = 0; s < sessions; ++s) {
    // Minimal guaranteed quota, maximal shared reserve: queries execute
    // one at a time (the arbiter serializes the device), so the reserve
    // lets the running query use nearly the full buffer budget — the same
    // pass counts as a dedicated device — while the quota still
    // guarantees each session a floor no neighbor can take.
    core::SessionOptions options;
    options.name = "bench" + std::to_string(s);
    options.ram_quota_buffers = 1;
    auto session = shared.OpenSession(std::move(options));
    Die(session.status());
    handles.push_back(std::move(*session));
  }
  uint64_t multi_rows = 0;
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    std::vector<uint64_t> rows(static_cast<size_t>(sessions), 0);
    for (int s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        for (const std::string& sql :
             SessionWorkload(s, per_session)) {
          auto r = handles[static_cast<size_t>(s)]->Query(sql);
          Die(r.status());
          rows[static_cast<size_t>(s)] += r->rows.size();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (uint64_t r : rows) multi_rows += r;
  }
  auto t1 = std::chrono::steady_clock::now();
  double multi_wall = std::chrono::duration<double>(t1 - t0).count();
  uint64_t hits = 0, misses = 0;
  for (auto& h : handles) {
    auto m = h->metrics();
    hits += m.plan_cache_hits;
    misses += m.plan_cache_misses;
  }

  // ---- Baseline: K serial instances, own store each ---------------------
  uint64_t serial_rows = 0;
  double serial_build = 0.0, serial_wall = 0.0;
  for (int s = 0; s < sessions; ++s) {
    auto b1 = std::chrono::steady_clock::now();
    core::GhostDB instance(Config());
    BuildDb(&instance);
    auto t2 = std::chrono::steady_clock::now();
    serial_build += std::chrono::duration<double>(t2 - b1).count();
    for (const std::string& sql : SessionWorkload(s, per_session)) {
      auto r = instance.Query(sql);
      Die(r.status());
      serial_rows += r->rows.size();
    }
    serial_wall +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
            .count();
  }

  int total = sessions * per_session;
  double multi_total = multi_build + multi_wall;
  double serial_total = serial_build + serial_wall;
  std::printf("multi-session serving: %d sessions x %d statements "
              "(%d total, %u host core%s)\n",
              sessions, per_session, total,
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() == 1 ? "" : "s");
  std::printf("  K sessions, one store:   batch %.3f s "
              "(build %.3f + serve %.3f; %.0f stmts/s, %llu rows, "
              "plan cache %llu hits / %llu misses)\n",
              multi_total, multi_build, multi_wall, total / multi_wall,
              static_cast<unsigned long long>(multi_rows),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  std::printf("  K serial instances:      batch %.3f s "
              "(build %.3f + serve %.3f; %.0f stmts/s, %llu rows)\n",
              serial_total, serial_build, serial_wall, total / serial_wall,
              static_cast<unsigned long long>(serial_rows));
  std::printf("  batch wall-clock:  %.2fx %s\n", serial_total / multi_total,
              multi_total < serial_total ? "(sessions win)"
                                         : "(REGRESSION: serial won)");
  std::printf("  serving-only:      %.2fx%s\n", serial_wall / multi_wall,
              std::thread::hardware_concurrency() == 1
                  ? "  (single host core: session overlap — render, "
                    "bind, PC prefetch — cannot parallelize here)"
                  : "");
  if (multi_rows != serial_rows) {
    std::fprintf(stderr,
                 "row mismatch between modes: %llu vs %llu\n",
                 static_cast<unsigned long long>(multi_rows),
                 static_cast<unsigned long long>(serial_rows));
    return 1;
  }
  return multi_total < serial_total ? 0 : 2;
}

// The facts model: what leakcheck's clang frontend extracts from each
// translation unit, and what the rule engine (engine.h) consumes.
//
// Keeping the model free of clang types splits the tool into a frontend
// that needs libclang headers (frontend.cc, built only where clang dev
// packages exist — in the static-analysis CI job) and a rule engine that
// is plain C++ and unit-tested in the regular build (leakcheck_engine_test
// runs under ctest everywhere, so the analysis logic itself cannot rot on
// machines without clang).
#pragma once

#include <string>
#include <vector>

namespace leakcheck {

struct SourceLoc {
  std::string file;
  unsigned line = 0;
};

/// One call expression inside a function body.
struct CallFacts {
  /// Fully qualified callee name ("ghostdb::device::Channel::Transfer");
  /// empty for indirect calls.
  std::string callee;
  SourceLoc loc;

  bool callee_hidden = false;       ///< callee annotated GHOSTDB_HIDDEN
  bool callee_sink = false;         ///< callee annotated GHOSTDB_TRANSCRIPT_SINK
  bool callee_worker_safe = false;  ///< callee annotated GHOSTDB_WORKER_SAFE

  /// Per argument: names of local variables/parameters referenced.
  std::vector<std::vector<std::string>> arg_vars;
  /// Per argument: whether the expression references a GHOSTDB_HIDDEN
  /// field or calls a GHOSTDB_HIDDEN function directly.
  std::vector<bool> arg_hidden;

  /// Variable the result is stored into ("" when none).
  std::string assigned_to;
  /// True when the callee returns Status/Result and the value is used as a
  /// full-expression statement (discarded).
  bool result_discarded = false;
  /// True when the callee's return type is Status or Result<T>.
  bool returns_status = false;

  /// Innermost enclosing branch id (index into FunctionFacts::branches),
  /// -1 at function top level.
  int branch_id = -1;
};

/// One assignment or initialization: lhs <- rhs.
struct AssignFacts {
  std::string lhs;
  std::vector<std::string> rhs_vars;
  /// RHS mentions a GHOSTDB_HIDDEN field or GHOSTDB_HIDDEN call directly.
  bool rhs_hidden = false;
  /// LHS is a field annotated GHOSTDB_TRANSCRIPT_SINK (e.g. a padding
  /// bound): storing into it is a sink.
  bool lhs_is_sink_field = false;
  SourceLoc loc;
  int branch_id = -1;
};

/// One branch condition (if/while/for/switch/ternary).
struct BranchFacts {
  std::vector<std::string> cond_vars;
  bool cond_hidden = false;  ///< condition mentions a hidden field/call
  SourceLoc loc;
  int parent_id = -1;  ///< enclosing branch, -1 at top level
};

/// One function definition (or lambda) in the translation unit.
struct FunctionFacts {
  /// Fully qualified name; lambdas get "<qualified-enclosing>::lambda@line".
  std::string qualified_name;
  SourceLoc loc;

  bool is_host_compute = false;   ///< GHOSTDB_HOST_COMPUTE / ParallelShards body
  bool is_resource_impl = false;  ///< GHOSTDB_RESOURCE_IMPL
  bool is_worker_safe = false;    ///< GHOSTDB_WORKER_SAFE

  std::vector<CallFacts> calls;
  std::vector<AssignFacts> assigns;
  std::vector<BranchFacts> branches;
};

struct TranslationUnitFacts {
  std::vector<FunctionFacts> functions;
};

/// A rule violation.
struct Finding {
  std::string rule;  ///< "hidden-taint" | "status-discipline" |
                     ///< "paired-resource" | "worker-purity"
  SourceLoc loc;
  std::string message;
};

}  // namespace leakcheck

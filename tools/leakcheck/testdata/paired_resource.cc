// leakcheck self-test fixture: rule 3 (paired-resource discipline).
//
// Raw Alloc/Free, Acquire, Admit/Release pairings belong inside the RAII
// guards (device/guards.h); everywhere else they are findings, annotated
// or not — the rule is name-driven so a forgotten annotation cannot
// silence it.
#include <cstdint>
#include <string>

#include "core/annotations.h"

namespace ghostdb {
namespace storage {
class PageAllocator {
 public:
  uint32_t Alloc(uint32_t count, const std::string& tag);
  void Free(uint32_t first, uint32_t count, const std::string& tag);
};
}  // namespace storage

namespace device {
class RamManager {
 public:
  uint8_t* Acquire(uint32_t buffers, const std::string& owner);

  // Negative: the resource class's own convenience wrapper is the
  // implementation, not a client.
  uint8_t* AcquireOne(const std::string& owner) { return Acquire(1, owner); }
};

class ChannelArbiter {
 public:
  void Admit(int32_t session, uint32_t weight);
  void Release(int32_t session);
};

// Negative: guard implementations are exempt via GHOSTDB_RESOURCE_IMPL.
class PageGuard {
 public:
  GHOSTDB_RESOURCE_IMPL static uint32_t Wrap(storage::PageAllocator* alloc) {
    return alloc->Alloc(4, "guard");
  }
};
}  // namespace device

namespace exec {

// Violation: a raw Alloc/Free pairing in operator code — exactly the
// leak-on-error-path shape the guards were introduced to kill.
uint32_t RawSpill(storage::PageAllocator* alloc) {
  uint32_t first = alloc->Alloc(16, "spill");  // expect-finding: paired-resource
  alloc->Free(first, 16, "spill");  // expect-finding: paired-resource
  return first;
}

// Violation: raw RAM acquisition and a hand-rolled admission pairing.
void RawSession(device::RamManager* ram, device::ChannelArbiter* arbiter) {
  arbiter->Admit(1, 1);  // expect-finding: paired-resource
  ram->Acquire(2, "raw");  // expect-finding: paired-resource
  arbiter->Release(1);  // expect-finding: paired-resource
}

}  // namespace exec
}  // namespace ghostdb

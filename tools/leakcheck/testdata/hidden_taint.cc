// leakcheck self-test fixture: rule 1 (hidden-taint).
//
// Minimal mocks reusing the real annotations; each "// expect-finding:"
// marker names the rule leakcheck must report on that exact line, and the
// self-test fails on any finding without a marker (negatives below prove
// visible-derived flows stay clean). Parsed by the analyzer only — never
// compiled into the library.
#include <cstdint>

#include "core/annotations.h"

namespace ghostdb {

class SimClock {
 public:
  GHOSTDB_TRANSCRIPT_SINK void Advance(uint64_t ns);
};

namespace device {
class Channel {
 public:
  GHOSTDB_TRANSCRIPT_SINK void TransferSized(int direction, const char* label,
                                             uint64_t bytes);
};
}  // namespace device

struct Image {
  GHOSTDB_HIDDEN uint64_t hidden_rows = 0;
  uint64_t visible_rows = 0;
};

struct PadContext {
  GHOSTDB_TRANSCRIPT_SINK uint64_t padding_row_bound = 0;
};

uint64_t CountMatches(uint64_t upto);

namespace exec {

// Violation: a hidden field propagates through two locals into a channel
// transfer size.
void LeakSize(device::Channel* chan, const Image& image) {
  uint64_t n = image.hidden_rows;
  uint64_t bytes = n * 8;
  chan->TransferSized(0, "rows", bytes);  // expect-finding: hidden-taint
}

// Violation: a clock charge guarded by a hidden-dependent branch — the
// charge amount is constant, but *whether* it happens depends on hidden
// data, so the branch itself is reported.
void LeakTiming(SimClock* clock, const Image& image) {
  uint64_t n = image.hidden_rows;
  if (n > 100) {  // expect-finding: hidden-taint
    clock->Advance(5000);
  }
}

// Violation: hidden-derived call result stored into a transcript-sink
// field (the padding bound decides the padded result volume).
void LeakBound(PadContext* ctx, const Image& image) {
  uint64_t rows = CountMatches(image.hidden_rows);
  ctx->padding_row_bound = rows;  // expect-finding: hidden-taint
}

// Negative: visible-derived size, branch, and bound — no findings.
void PadVisible(device::Channel* chan, PadContext* ctx, const Image& image) {
  uint64_t bytes = image.visible_rows * 8;
  ctx->padding_row_bound = image.visible_rows;
  if (image.visible_rows > 0) {
    chan->TransferSized(1, "pad", bytes);
  }
}

}  // namespace exec
}  // namespace ghostdb

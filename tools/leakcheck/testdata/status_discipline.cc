// leakcheck self-test fixture: rule 2 (status-discipline).
//
// Uses the real Status/GHOSTDB_IGNORE_STATUS from common/status.h so the
// fixture exercises exactly the escape hatch src/ uses.
#include "common/status.h"

namespace ghostdb {
namespace storage {
class RunWriter {
 public:
  Status Finish();
  Status Abort();
};
}  // namespace storage

namespace exec {

// Violation: plainly dropped Status.
Status CloseAll(storage::RunWriter* w) {
  w->Finish();  // expect-finding: status-discipline
  return Status::OK();
}

// Violation: the `.ok()` discard — calling ok() and ignoring the bool
// defeats [[nodiscard]], so leakcheck attributes the discard to the
// Status-returning call underneath.
Status CloseQuietly(storage::RunWriter* w) {
  w->Finish().ok();  // expect-finding: status-discipline
  return Status::OK();
}

// Negatives: bound-and-checked, propagated, and deliberately ignored via
// the audited macro — all clean.
Status CloseChecked(storage::RunWriter* w) {
  Status finish = w->Finish();
  if (!finish.ok()) {
    GHOSTDB_IGNORE_STATUS(w->Abort(), "already failing; report Finish");
    return finish;
  }
  return w->Abort();
}

}  // namespace exec
}  // namespace ghostdb

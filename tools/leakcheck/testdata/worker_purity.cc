// leakcheck self-test fixture: rule 4 (worker-purity).
//
// Lambdas handed to ThreadPool::ParallelShards run on pool workers;
// everything reachable from them must stay pure host-memory compute. The
// frontend roots shard lambdas automatically (inline or passed by name)
// plus anything annotated GHOSTDB_HOST_COMPUTE, then walks the intra-TU
// call graph.
#include <cstdint>

#include "core/annotations.h"

namespace ghostdb {

class SimClock {
 public:
  GHOSTDB_TRANSCRIPT_SINK void Advance(uint64_t ns);
};

namespace device {
class Channel {
 public:
  GHOSTDB_TRANSCRIPT_SINK void TransferSized(int direction, const char* label,
                                             uint64_t bytes);
};
}  // namespace device

namespace exec {

class ThreadPool {
 public:
  template <typename Body>
  void ParallelShards(uint64_t items, uint64_t grain, Body body) {
    body(0u, uint64_t{0}, items);
  }
};

// Pure helper: a declared-only callee; the walk stops at the TU edge.
uint64_t Checksum(const uint8_t* data, uint64_t n);

// A helper a worker body calls transitively; its transfer is the finding.
void FlushProgress(device::Channel* chan, uint64_t done) {
  chan->TransferSized(1, "progress", done);  // expect-finding: worker-purity
}

// Fixture contrivance: worker-safe vouches for a callee, so the walk must
// not descend into it even though its body touches the clock.
GHOSTDB_WORKER_SAFE void TrustedKernel(SimClock* clock) {
  clock->Advance(1);
}

// Violation: a shard body charging the simulated clock directly.
void SortShards(ThreadPool* pool, SimClock* clock, uint64_t n) {
  pool->ParallelShards(n, 64, [clock](uint32_t, uint64_t, uint64_t) {
    clock->Advance(50);  // expect-finding: worker-purity
  });
}

// Violation: the body is bound to a named variable and the forbidden call
// sits one level down the call graph.
void ScanShards(ThreadPool* pool, device::Channel* chan, uint64_t n) {
  auto body = [chan](uint32_t, uint64_t end, uint64_t) {
    FlushProgress(chan, end);
  };
  pool->ParallelShards(n, 64, body);
}

// Negative: pure compute and worker-safe callees — clean.
void HashShards(ThreadPool* pool, SimClock* clock, const uint8_t* data,
                uint64_t n) {
  pool->ParallelShards(n, 64, [=](uint32_t, uint64_t begin, uint64_t end) {
    Checksum(data + begin, end - begin);
    TrustedKernel(clock);
  });
}

// Negative: non-worker code may of course touch the device.
void HostSide(SimClock* clock) { clock->Advance(10); }

}  // namespace exec
}  // namespace ghostdb

#include "engine.h"

#include <algorithm>
#include <map>
#include <set>

namespace leakcheck {

namespace {

bool InFilter(const SourceLoc& loc, const EngineOptions& options) {
  return options.filter.empty() ||
         loc.file.find(options.filter) != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// The class prefix of a qualified member name ("a::b::C::m" -> "a::b::C").
std::string ClassOf(const std::string& qualified) {
  size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? std::string() : qualified.substr(0, pos);
}

// ---------------------------------------------------------------------------
// Rule 1: hidden-taint
// ---------------------------------------------------------------------------

/// Flow-insensitive fixpoint: a variable is tainted when any assignment (or
/// call-result binding, or by-reference argument position) anywhere in the
/// function can derive it from a hidden source or from another tainted
/// variable. Flow-insensitivity over-approximates, which is the right
/// polarity for a leak lint.
std::set<std::string> TaintedVars(const FunctionFacts& fn) {
  std::set<std::string> tainted;
  bool changed = true;
  auto any_tainted = [&](const std::vector<std::string>& vars) {
    return std::any_of(vars.begin(), vars.end(), [&](const std::string& v) {
      return tainted.count(v) != 0;
    });
  };
  while (changed) {
    changed = false;
    for (const AssignFacts& a : fn.assigns) {
      if (a.lhs.empty() || tainted.count(a.lhs)) continue;
      if (a.rhs_hidden || any_tainted(a.rhs_vars)) {
        tainted.insert(a.lhs);
        changed = true;
      }
    }
    for (const CallFacts& c : fn.calls) {
      if (c.assigned_to.empty() || tainted.count(c.assigned_to)) continue;
      bool arg_taint = false;
      for (size_t i = 0; i < c.arg_vars.size(); ++i) {
        bool hidden_arg = i < c.arg_hidden.size() && c.arg_hidden[i];
        if (hidden_arg || any_tainted(c.arg_vars[i])) {
          arg_taint = true;
          break;
        }
      }
      if (c.callee_hidden || arg_taint) {
        tainted.insert(c.assigned_to);
        changed = true;
      }
    }
  }
  return tainted;
}

void RunHiddenTaint(const FunctionFacts& fn, const EngineOptions& options,
                    std::vector<Finding>* out) {
  std::set<std::string> tainted = TaintedVars(fn);
  auto any_tainted = [&](const std::vector<std::string>& vars) {
    return std::any_of(vars.begin(), vars.end(), [&](const std::string& v) {
      return tainted.count(v) != 0;
    });
  };
  // Branch ids whose condition is hidden-derived.
  std::set<int> tainted_branches;
  for (size_t i = 0; i < fn.branches.size(); ++i) {
    const BranchFacts& b = fn.branches[i];
    if (b.cond_hidden || any_tainted(b.cond_vars)) {
      tainted_branches.insert(static_cast<int>(i));
    }
  }
  auto guarded_by_tainted = [&](int branch_id) -> int {
    for (int id = branch_id; id != -1;
         id = fn.branches[static_cast<size_t>(id)].parent_id) {
      if (tainted_branches.count(id)) return id;
    }
    return -1;
  };

  for (const CallFacts& c : fn.calls) {
    if (!c.callee_sink) continue;
    if (!InFilter(c.loc, options)) continue;
    // Hidden value as a sink argument.
    for (size_t i = 0; i < c.arg_vars.size(); ++i) {
      bool hidden_arg = i < c.arg_hidden.size() && c.arg_hidden[i];
      if (hidden_arg || any_tainted(c.arg_vars[i])) {
        out->push_back(
            {"hidden-taint", c.loc,
             "hidden-derived value reaches transcript sink '" + c.callee +
                 "' (argument " + std::to_string(i + 1) + ") in '" +
                 fn.qualified_name + "'"});
        break;
      }
    }
    // Sink under a hidden-dependent branch.
    int guard = guarded_by_tainted(c.branch_id);
    if (guard != -1) {
      out->push_back(
          {"hidden-taint", fn.branches[static_cast<size_t>(guard)].loc,
           "hidden-dependent branch guards transcript sink '" + c.callee +
               "' in '" + fn.qualified_name + "'"});
    }
  }
  for (const AssignFacts& a : fn.assigns) {
    if (!a.lhs_is_sink_field) continue;
    if (!InFilter(a.loc, options)) continue;
    if (a.rhs_hidden || any_tainted(a.rhs_vars)) {
      out->push_back({"hidden-taint", a.loc,
                      "hidden-derived value stored into transcript-sink "
                      "field '" +
                          a.lhs + "' in '" + fn.qualified_name + "'"});
    }
    int guard = -1;
    for (int id = a.branch_id; id != -1;
         id = fn.branches[static_cast<size_t>(id)].parent_id) {
      if (tainted_branches.count(id)) {
        guard = id;
        break;
      }
    }
    if (guard != -1) {
      out->push_back(
          {"hidden-taint", fn.branches[static_cast<size_t>(guard)].loc,
           "hidden-dependent branch guards transcript-sink field '" + a.lhs +
               "' in '" + fn.qualified_name + "'"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: status-discipline
// ---------------------------------------------------------------------------

void RunStatusDiscipline(const FunctionFacts& fn,
                         const EngineOptions& options,
                         std::vector<Finding>* out) {
  for (const CallFacts& c : fn.calls) {
    if (!c.returns_status || !c.result_discarded) continue;
    if (!InFilter(c.loc, options)) continue;
    out->push_back({"status-discipline", c.loc,
                    "result of Status/Result-returning call '" + c.callee +
                        "' is discarded in '" + fn.qualified_name +
                        "' (check it, propagate it, or use "
                        "GHOSTDB_IGNORE_STATUS)"});
  }
}

// ---------------------------------------------------------------------------
// Rule 3: paired-resource discipline
// ---------------------------------------------------------------------------

void RunPairedResource(const FunctionFacts& fn, const EngineOptions& options,
                       std::vector<Finding>* out) {
  if (fn.is_resource_impl) return;
  for (const CallFacts& c : fn.calls) {
    if (!InFilter(c.loc, options)) continue;
    for (const std::string& raw : options.raw_pairs) {
      if (c.callee != raw) continue;
      // The resource class's own members (incl. nested classes) are the
      // implementation; everything else goes through the guards.
      if (StartsWith(fn.qualified_name, ClassOf(raw) + "::")) continue;
      out->push_back({"paired-resource", c.loc,
                      "raw paired-resource call '" + c.callee + "' in '" +
                          fn.qualified_name +
                          "' (use PageGuard/RamGuard/AdmissionGuard from "
                          "device/guards.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: worker-purity
// ---------------------------------------------------------------------------

void RunWorkerPurity(const TranslationUnitFacts& tu,
                     const EngineOptions& options,
                     std::vector<Finding>* out) {
  std::map<std::string, const FunctionFacts*> by_name;
  for (const FunctionFacts& fn : tu.functions) {
    by_name.emplace(fn.qualified_name, &fn);
  }
  // Reachability from host-compute roots, following intra-TU edges.
  std::set<const FunctionFacts*> reachable;
  std::vector<const FunctionFacts*> work;
  for (const FunctionFacts& fn : tu.functions) {
    if (fn.is_host_compute) {
      reachable.insert(&fn);
      work.push_back(&fn);
    }
  }
  while (!work.empty()) {
    const FunctionFacts* fn = work.back();
    work.pop_back();
    for (const CallFacts& c : fn->calls) {
      auto it = by_name.find(c.callee);
      if (it == by_name.end()) continue;
      if (it->second->is_worker_safe) continue;
      if (reachable.insert(it->second).second) work.push_back(it->second);
    }
  }
  for (const FunctionFacts* fn : reachable) {
    if (fn->is_worker_safe) continue;
    for (const CallFacts& c : fn->calls) {
      if (c.callee_worker_safe) continue;
      auto callee_it = by_name.find(c.callee);
      if (callee_it != by_name.end() && callee_it->second->is_worker_safe) {
        continue;
      }
      for (const std::string& prefix : options.worker_forbidden) {
        if (!StartsWith(c.callee, prefix)) continue;
        if (!InFilter(c.loc, options)) continue;
        out->push_back(
            {"worker-purity", c.loc,
             "'" + fn->qualified_name +
                 "' is reachable from a ParallelShards body but calls '" +
                 c.callee +
                 "' (workers may only do host-memory value compute)"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> Analyze(const TranslationUnitFacts& tu,
                             const EngineOptions& options) {
  std::vector<Finding> findings;
  for (const FunctionFacts& fn : tu.functions) {
    RunHiddenTaint(fn, options, &findings);
    RunStatusDiscipline(fn, options, &findings);
    RunPairedResource(fn, options, &findings);
  }
  RunWorkerPurity(tu, options, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.loc.file != b.loc.file) return a.loc.file < b.loc.file;
              if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.loc.file + ":" + std::to_string(finding.loc.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace leakcheck

// Unit tests for the leakcheck rule engine over hand-built facts. These run
// in the regular build (no clang needed), so the analysis logic is covered
// by tier-1 ctest even on machines without libclang; the fixture self-test
// (leakcheck_selftest, CI only) covers the clang frontend lowering.
#include "engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "facts.h"

namespace leakcheck {
namespace {

SourceLoc Loc(unsigned line) { return {"/repo/src/test.cc", line}; }

FunctionFacts Fn(const std::string& name) {
  FunctionFacts fn;
  fn.qualified_name = name;
  fn.loc = Loc(1);
  return fn;
}

CallFacts Call(const std::string& callee, unsigned line) {
  CallFacts c;
  c.callee = callee;
  c.loc = Loc(line);
  return c;
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// ---------------------------------------------------------------------------
// Rule 1: hidden-taint
// ---------------------------------------------------------------------------

TEST(HiddenTaint, DirectHiddenArgToSink) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  CallFacts sink = Call("ghostdb::device::Channel::TransferSized", 10);
  sink.callee_sink = true;
  sink.arg_vars = {{}};
  sink.arg_hidden = {true};  // hidden field referenced in the size expr
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hidden-taint");
  EXPECT_EQ(findings[0].loc.line, 10u);
}

TEST(HiddenTaint, TaintPropagatesThroughAssignments) {
  // a = hidden; b = a + 1; sink(b)  — two hops.
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  fn.assigns.push_back({"a", {}, /*rhs_hidden=*/true, false, Loc(5), -1});
  fn.assigns.push_back({"b", {"a"}, false, false, Loc(6), -1});
  CallFacts sink = Call("ghostdb::SimClock::Advance", 7);
  sink.callee_sink = true;
  sink.arg_vars = {{"b"}};
  sink.arg_hidden = {false};
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  EXPECT_EQ(Rules(Analyze(tu, EngineOptions{})),
            (std::vector<std::string>{"hidden-taint"}));
}

TEST(HiddenTaint, TaintPropagatesThroughCallResults) {
  // n = CountRows(hidden_ref); sink(n) — call result binding.
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  CallFacts count = Call("ghostdb::storage::CountRows", 5);
  count.arg_vars = {{}};
  count.arg_hidden = {true};
  count.assigned_to = "n";
  fn.calls.push_back(count);
  CallFacts sink = Call("ghostdb::device::Channel::Transfer", 6);
  sink.callee_sink = true;
  sink.arg_vars = {{"n"}};
  sink.arg_hidden = {false};
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  EXPECT_EQ(Rules(Analyze(tu, EngineOptions{})),
            (std::vector<std::string>{"hidden-taint"}));
}

TEST(HiddenTaint, HiddenBranchGuardingSink) {
  // if (hidden) { sink(constant); } — the branch is the leak.
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  BranchFacts branch;
  branch.cond_hidden = true;
  branch.loc = Loc(8);
  fn.branches.push_back(branch);
  CallFacts sink = Call("ghostdb::device::Channel::TransferSized", 9);
  sink.callee_sink = true;
  sink.branch_id = 0;
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hidden-taint");
  EXPECT_EQ(findings[0].loc.line, 8u);  // reported at the branch
}

TEST(HiddenTaint, NestedBranchChainIsSearched) {
  // if (hidden) { if (visible) { sink(); } } — outer guard still flagged.
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  BranchFacts outer;
  outer.cond_hidden = true;
  outer.loc = Loc(3);
  fn.branches.push_back(outer);
  BranchFacts inner;
  inner.cond_vars = {"visible"};
  inner.loc = Loc(4);
  inner.parent_id = 0;
  fn.branches.push_back(inner);
  CallFacts sink = Call("ghostdb::SimClock::Advance", 5);
  sink.callee_sink = true;
  sink.branch_id = 1;
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].loc.line, 3u);
}

TEST(HiddenTaint, SinkFieldStore) {
  // ctx->padding_row_bound = hidden_count;
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Leak");
  fn.assigns.push_back({"a", {}, /*rhs_hidden=*/true, false, Loc(5), -1});
  fn.assigns.push_back({"ghostdb::exec::ExecContext::padding_row_bound",
                        {"a"},
                        false,
                        /*lhs_is_sink_field=*/true,
                        Loc(6),
                        -1});
  tu.functions.push_back(fn);

  EXPECT_EQ(Rules(Analyze(tu, EngineOptions{})),
            (std::vector<std::string>{"hidden-taint"}));
}

TEST(HiddenTaint, VisibleFlowsAreClean) {
  // n = row_count (visible); sink(n); if (visible) sink(constant).
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Pad");
  fn.assigns.push_back({"n", {"row_count"}, false, false, Loc(5), -1});
  BranchFacts branch;
  branch.cond_vars = {"n"};
  branch.loc = Loc(6);
  fn.branches.push_back(branch);
  CallFacts sink = Call("ghostdb::device::Channel::TransferSized", 7);
  sink.callee_sink = true;
  sink.arg_vars = {{"n"}};
  sink.arg_hidden = {false};
  sink.branch_id = 0;
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

TEST(HiddenTaint, FilterSuppressesOutOfTreeFindings) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("leakcheck::SelfTest");
  fn.loc = {"/repo/tools/other.cc", 1};
  CallFacts sink = Call("ghostdb::device::Channel::Transfer", 10);
  sink.callee_sink = true;
  sink.loc = {"/repo/tools/other.cc", 10};
  sink.arg_vars = {{}};
  sink.arg_hidden = {true};
  fn.calls.push_back(sink);
  tu.functions.push_back(fn);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());  // default filter /src/
}

// ---------------------------------------------------------------------------
// Rule 2: status-discipline
// ---------------------------------------------------------------------------

TEST(StatusDiscipline, DiscardedStatusIsFlagged) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Close");
  CallFacts c = Call("ghostdb::storage::RunWriter::Finish", 12);
  c.returns_status = true;
  c.result_discarded = true;
  fn.calls.push_back(c);
  tu.functions.push_back(fn);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "status-discipline");
}

TEST(StatusDiscipline, CheckedAndVoidCallsAreClean) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Close");
  CallFacts checked = Call("ghostdb::storage::RunWriter::Finish", 12);
  checked.returns_status = true;
  checked.assigned_to = "status";  // bound, not discarded
  fn.calls.push_back(checked);
  CallFacts void_call = Call("ghostdb::exec::QueryMetrics::Bump", 13);
  void_call.result_discarded = true;  // discarded but not Status-typed
  fn.calls.push_back(void_call);
  tu.functions.push_back(fn);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

// ---------------------------------------------------------------------------
// Rule 3: paired-resource
// ---------------------------------------------------------------------------

TEST(PairedResource, RawCallOutsideGuardIsFlagged) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::SpillPath");
  fn.calls.push_back(Call("ghostdb::device::RamManager::Acquire", 20));
  fn.calls.push_back(Call("ghostdb::storage::PageAllocator::Alloc", 21));
  fn.calls.push_back(Call("ghostdb::device::ChannelArbiter::Admit", 22));
  tu.functions.push_back(fn);

  EXPECT_EQ(Rules(Analyze(tu, EngineOptions{})),
            (std::vector<std::string>{"paired-resource", "paired-resource",
                                      "paired-resource"}));
}

TEST(PairedResource, ResourceImplFunctionsAreExempt) {
  TranslationUnitFacts tu;
  FunctionFacts guard = Fn("ghostdb::device::RamGuard::Acquire");
  guard.is_resource_impl = true;  // GHOSTDB_RESOURCE_IMPL
  guard.calls.push_back(Call("ghostdb::device::RamManager::Acquire", 30));
  tu.functions.push_back(guard);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

TEST(PairedResource, OwningClassMembersAreExempt) {
  // RamManager::AcquireOne forwards to Acquire; the class implements its
  // own primitive.
  TranslationUnitFacts tu;
  FunctionFacts member = Fn("ghostdb::device::RamManager::AcquireOne");
  member.calls.push_back(Call("ghostdb::device::RamManager::Acquire", 40));
  tu.functions.push_back(member);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

// ---------------------------------------------------------------------------
// Rule 4: worker-purity
// ---------------------------------------------------------------------------

TEST(WorkerPurity, ForbiddenCallInWorkerBodyIsFlagged) {
  TranslationUnitFacts tu;
  FunctionFacts body = Fn("ghostdb::exec::Sort::lambda@64");
  body.is_host_compute = true;
  body.calls.push_back(Call("ghostdb::SimClock::Advance", 64));
  tu.functions.push_back(body);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "worker-purity");
}

TEST(WorkerPurity, TransitiveCalleesAreWalked) {
  // worker body -> Helper -> RamManager::Acquire: flagged two hops deep
  // (the raw Acquire is also a rule-3 finding — both fire).
  TranslationUnitFacts tu;
  FunctionFacts body = Fn("ghostdb::exec::Scan::lambda@178");
  body.is_host_compute = true;
  body.calls.push_back(Call("ghostdb::exec::Helper", 50));
  tu.functions.push_back(body);
  FunctionFacts helper = Fn("ghostdb::exec::Helper");
  helper.calls.push_back(Call("ghostdb::device::RamManager::Acquire", 60));
  tu.functions.push_back(helper);

  auto rules = Rules(Analyze(tu, EngineOptions{}));
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "paired-resource");
  EXPECT_EQ(rules[1], "worker-purity");
}

TEST(WorkerPurity, WorkerSafeCalleeStopsTheWalk) {
  TranslationUnitFacts tu;
  FunctionFacts body = Fn("ghostdb::exec::Scan::lambda@178");
  body.is_host_compute = true;
  CallFacts safe = Call("ghostdb::exec::simd::scalar::GatherCells", 50);
  safe.callee_worker_safe = true;
  body.calls.push_back(safe);
  tu.functions.push_back(body);
  // GatherCells body does something that would look forbidden; the
  // worker-safe annotation vouches for it, so the walk must not descend.
  FunctionFacts cells = Fn("ghostdb::exec::simd::scalar::GatherCells");
  cells.is_worker_safe = true;
  cells.calls.push_back(Call("ghostdb::SimClock::Advance", 60));
  tu.functions.push_back(cells);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

TEST(WorkerPurity, NonWorkerCodeMayTouchTheDevice) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Executor::ExecuteTree");
  fn.calls.push_back(Call("ghostdb::device::SecureDevice::clock", 70));
  fn.calls.push_back(Call("ghostdb::SimClock::Advance", 71));
  tu.functions.push_back(fn);

  EXPECT_TRUE(Analyze(tu, EngineOptions{}).empty());
}

// ---------------------------------------------------------------------------
// Output format
// ---------------------------------------------------------------------------

TEST(Format, FindingRendersAsFileLineRuleMessage) {
  Finding f{"hidden-taint", {"src/a.cc", 12}, "boom"};
  EXPECT_EQ(FormatFinding(f), "src/a.cc:12: [hidden-taint] boom");
}

TEST(Analyze, FindingsAreSortedByLocation) {
  TranslationUnitFacts tu;
  FunctionFacts fn = Fn("ghostdb::exec::Messy");
  CallFacts late = Call("ghostdb::device::RamManager::Acquire", 90);
  fn.calls.push_back(late);
  CallFacts early = Call("ghostdb::storage::PageAllocator::Free", 10);
  fn.calls.push_back(early);
  tu.functions.push_back(fn);

  auto findings = Analyze(tu, EngineOptions{});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].loc.line, 10u);
  EXPECT_EQ(findings[1].loc.line, 90u);
}

}  // namespace
}  // namespace leakcheck

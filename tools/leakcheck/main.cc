// leakcheck: GhostDB's static analyzer for leakage, resource, and
// threading disciplines.
//
// Usage (over a CMake compilation database):
//   leakcheck -p build src/exec/executor.cc ...
// Self-test mode (fixtures carry "// expect-finding: <rule>" markers):
//   leakcheck --verify-expectations --filter=testdata <fixtures> -- <flags>
//
// Exit status: 0 when clean (or, under --verify-expectations, when the
// findings match the markers exactly), 1 otherwise.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/Error.h"
#include "llvm/Support/raw_ostream.h"

#include "engine.h"
#include "frontend.h"

namespace {

llvm::cl::OptionCategory kLeakcheckCategory("leakcheck options");

llvm::cl::opt<std::string> kFilter(
    "filter",
    llvm::cl::desc("Only report findings whose file path contains this "
                   "substring (default: /src/)"),
    llvm::cl::init("/src/"), llvm::cl::cat(kLeakcheckCategory));

llvm::cl::opt<std::string> kFindingsOut(
    "findings-out",
    llvm::cl::desc("Also write findings to this file (one per line)"),
    llvm::cl::init(""), llvm::cl::cat(kLeakcheckCategory));

llvm::cl::opt<bool> kVerifyExpectations(
    "verify-expectations",
    llvm::cl::desc("Self-test mode: compare findings against "
                   "'// expect-finding: <rule>' markers in the sources"),
    llvm::cl::init(false), llvm::cl::cat(kLeakcheckCategory));

std::mutex g_mutex;
std::vector<leakcheck::Finding> g_findings;

class FactsConsumer : public clang::ASTConsumer {
 public:
  void HandleTranslationUnit(clang::ASTContext& context) override {
    leakcheck::TranslationUnitFacts facts = leakcheck::ExtractFacts(context);
    leakcheck::EngineOptions options;
    options.filter = kFilter;
    std::vector<leakcheck::Finding> findings =
        leakcheck::Analyze(facts, options);
    std::lock_guard<std::mutex> lock(g_mutex);
    g_findings.insert(g_findings.end(), findings.begin(), findings.end());
  }
};

class FactsAction : public clang::ASTFrontendAction {
 public:
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& /*compiler*/, llvm::StringRef /*file*/) override {
    return std::make_unique<FactsConsumer>();
  }
};

/// Per (file, line): expected rule names from "// expect-finding:" markers.
std::map<std::pair<std::string, unsigned>, std::set<std::string>>
ReadExpectations(const std::vector<std::string>& files) {
  std::map<std::pair<std::string, unsigned>, std::set<std::string>> out;
  const std::string marker = "// expect-finding:";
  for (const std::string& file : files) {
    std::ifstream in(file);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t pos = line.find(marker);
      if (pos == std::string::npos) continue;
      std::istringstream rules(line.substr(pos + marker.size()));
      std::string rule;
      while (rules >> rule) {
        if (!rule.empty() && rule.back() == ',') rule.pop_back();
        out[{file, lineno}].insert(rule);
      }
    }
  }
  return out;
}

/// Dedupes findings (the same header-located finding repeats across TUs).
std::vector<leakcheck::Finding> Dedupe(
    const std::vector<leakcheck::Finding>& findings) {
  std::vector<leakcheck::Finding> out;
  std::set<std::string> seen;
  for (const leakcheck::Finding& f : findings) {
    if (seen.insert(leakcheck::FormatFinding(f)).second) out.push_back(f);
  }
  return out;
}

int VerifyExpectations(const std::vector<std::string>& sources,
                       const std::vector<leakcheck::Finding>& findings) {
  auto expected = ReadExpectations(sources);
  // A finding's file path may be absolute while the expectation key is the
  // path as passed on the command line; match on suffix.
  auto match_key = [&](const leakcheck::Finding& f)
      -> const std::pair<const std::pair<std::string, unsigned>,
                         std::set<std::string>>* {
    for (const auto& entry : expected) {
      const std::string& file = entry.first.first;
      if (entry.first.second != f.loc.line) continue;
      if (f.loc.file == file ||
          (f.loc.file.size() > file.size() &&
           f.loc.file.compare(f.loc.file.size() - file.size(), file.size(),
                              file) == 0) ||
          (file.size() > f.loc.file.size() &&
           file.compare(file.size() - f.loc.file.size(), f.loc.file.size(),
                        f.loc.file) == 0)) {
        return &entry;
      }
    }
    return nullptr;
  };

  int failures = 0;
  std::set<const void*> satisfied;
  for (const leakcheck::Finding& f : findings) {
    const auto* entry = match_key(f);
    if (entry == nullptr || entry->second.count(f.rule) == 0) {
      std::fprintf(stderr, "UNEXPECTED: %s\n",
                   leakcheck::FormatFinding(f).c_str());
      ++failures;
      continue;
    }
    satisfied.insert(entry);
  }
  for (const auto& entry : expected) {
    if (satisfied.count(&entry) == 0) {
      std::fprintf(stderr, "MISSING: %s:%u: expected finding(s):",
                   entry.first.first.c_str(), entry.first.second);
      for (const std::string& rule : entry.second) {
        std::fprintf(stderr, " %s", rule.c_str());
      }
      std::fprintf(stderr, "\n");
      ++failures;
    }
  }
  std::fprintf(stderr,
               "leakcheck self-test: %zu findings, %zu expectation sites, "
               "%d failure(s)\n",
               findings.size(), expected.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) {
  auto options_parser = clang::tooling::CommonOptionsParser::create(
      argc, argv, kLeakcheckCategory);
  if (!options_parser) {
    llvm::errs() << llvm::toString(options_parser.takeError()) << "\n";
    return 1;
  }
  clang::tooling::ClangTool tool(options_parser->getCompilations(),
                                 options_parser->getSourcePathList());
  int tool_status = tool.run(
      clang::tooling::newFrontendActionFactory<FactsAction>().get());
  if (tool_status != 0) {
    std::fprintf(stderr, "leakcheck: clang reported parse errors\n");
    return 1;
  }

  std::vector<leakcheck::Finding> findings = Dedupe(g_findings);

  if (!kFindingsOut.empty()) {
    std::ofstream out(kFindingsOut);
    for (const leakcheck::Finding& f : findings) {
      out << leakcheck::FormatFinding(f) << "\n";
    }
  }

  if (kVerifyExpectations) {
    return VerifyExpectations(options_parser->getSourcePathList(), findings);
  }

  for (const leakcheck::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", leakcheck::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "leakcheck: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::fprintf(stderr, "leakcheck: clean\n");
  return 0;
}

// Lowers a clang AST into the leakcheck facts model (facts.h).
//
// Written against the stable subset of the clang C++ API (tested on the
// clang the static-analysis CI job installs; avoids the matcher DSL and
// anything that churned between clang 14 and 18). The walk is a manual
// recursion over statement children rather than RecursiveASTVisitor so the
// enclosing-branch id and assignment targets can be threaded through
// explicitly.

#include "frontend.h"

#include <map>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Stmt.h"
#include "clang/AST/StmtCXX.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace leakcheck {
namespace {

using clang::ASTContext;
using clang::BinaryOperator;
using clang::CallExpr;
using clang::CompoundStmt;
using clang::ConditionalOperator;
using clang::CXXForRangeStmt;
using clang::CXXMemberCallExpr;
using clang::CXXMethodDecl;
using clang::CXXRecordDecl;
using clang::Decl;
using clang::DeclRefExpr;
using clang::DeclStmt;
using clang::DoStmt;
using clang::Expr;
using clang::FieldDecl;
using clang::ForStmt;
using clang::FunctionDecl;
using clang::IfStmt;
using clang::LambdaExpr;
using clang::MemberExpr;
using clang::QualType;
using clang::SourceManager;
using clang::Stmt;
using clang::SwitchStmt;
using clang::ValueDecl;
using clang::VarDecl;
using clang::WhileStmt;

constexpr llvm::StringRef kHidden = "ghostdb::hidden";
constexpr llvm::StringRef kSink = "ghostdb::transcript_sink";
constexpr llvm::StringRef kResourceImpl = "ghostdb::resource_impl";
constexpr llvm::StringRef kHostCompute = "ghostdb::host_compute";
constexpr llvm::StringRef kWorkerSafe = "ghostdb::worker_safe";

bool HasAnnotation(const Decl* decl, llvm::StringRef tag) {
  if (decl == nullptr) return false;
  for (const auto* attr : decl->specific_attrs<clang::AnnotateAttr>()) {
    if (attr->getAnnotation() == tag) return true;
  }
  return false;
}

/// Annotations may sit on any redeclaration (header declaration vs .cc
/// definition); check them all.
bool FunctionHasAnnotation(const FunctionDecl* fn, llvm::StringRef tag) {
  if (fn == nullptr) return false;
  for (const FunctionDecl* redecl : fn->redecls()) {
    if (HasAnnotation(redecl, tag)) return true;
  }
  return false;
}

bool IsStatusType(QualType type) {
  if (type.isNull()) return false;
  const CXXRecordDecl* record = type->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  const std::string name = record->getQualifiedNameAsString();
  return name == "ghostdb::Status" || name == "ghostdb::Result";
}

SourceLoc LocOf(clang::SourceLocation loc, const SourceManager& sm) {
  SourceLoc out;
  if (loc.isInvalid()) return out;
  clang::PresumedLoc presumed = sm.getPresumedLoc(sm.getExpansionLoc(loc));
  if (presumed.isValid()) {
    out.file = presumed.getFilename();
    out.line = presumed.getLine();
  }
  return out;
}

/// Collects variable/field names referenced anywhere under `stmt`, and
/// whether a GHOSTDB_HIDDEN field or call is mentioned directly.
void CollectVars(const Stmt* stmt, std::vector<std::string>* vars,
                 bool* hidden) {
  if (stmt == nullptr) return;
  if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(stmt)) {
    if (const auto* var = llvm::dyn_cast<VarDecl>(ref->getDecl())) {
      vars->push_back(var->getNameAsString());
    }
    if (HasAnnotation(ref->getDecl(), kHidden)) *hidden = true;
  } else if (const auto* member = llvm::dyn_cast<MemberExpr>(stmt)) {
    const ValueDecl* decl = member->getMemberDecl();
    if (llvm::isa<FieldDecl>(decl)) {
      vars->push_back(decl->getQualifiedNameAsString());
    }
    if (HasAnnotation(decl, kHidden)) *hidden = true;
  } else if (const auto* call = llvm::dyn_cast<CallExpr>(stmt)) {
    if (FunctionHasAnnotation(call->getDirectCallee(), kHidden)) {
      *hidden = true;
    }
  }
  for (const Stmt* child : stmt->children()) CollectVars(child, vars, hidden);
}

/// Finds a lambda expression anywhere under `stmt` (ParallelShards
/// arguments arrive wrapped in materialization/conversion nodes). Bodies
/// passed by name (`auto body = [&]...; pool->ParallelShards(n, g, body)`)
/// resolve through the named variable's initializer.
const LambdaExpr* FindLambda(const Stmt* stmt) {
  if (stmt == nullptr) return nullptr;
  if (const auto* lambda = llvm::dyn_cast<LambdaExpr>(stmt)) return lambda;
  if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(stmt)) {
    if (const auto* var = llvm::dyn_cast<VarDecl>(ref->getDecl())) {
      if (var->hasInit()) return FindLambda(var->getInit());
    }
    return nullptr;
  }
  for (const Stmt* child : stmt->children()) {
    if (const LambdaExpr* found = FindLambda(child)) return found;
  }
  return nullptr;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class Extractor {
 public:
  explicit Extractor(ASTContext& context)
      : context_(context), sm_(context.getSourceManager()) {}

  TranslationUnitFacts Run() {
    WalkDecl(context_.getTranslationUnitDecl());
    // Lambdas handed to ThreadPool::ParallelShards are worker bodies:
    // mark their facts host-compute so the purity walk roots there.
    for (const CXXMethodDecl* op : shard_lambdas_) {
      auto it = lambda_index_.find(op);
      if (it != lambda_index_.end()) {
        tu_.functions[it->second].is_host_compute = true;
      }
    }
    return std::move(tu_);
  }

 private:
  // -- declaration walk ----------------------------------------------------

  void WalkDecl(const Decl* decl) {
    if (decl == nullptr) return;
    if (const auto* fn = llvm::dyn_cast<FunctionDecl>(decl)) {
      HandleFunction(fn);
    }
    if (const auto* dc = llvm::dyn_cast<clang::DeclContext>(decl)) {
      for (const Decl* child : dc->decls()) WalkDecl(child);
    }
  }

  void HandleFunction(const FunctionDecl* fn) {
    if (!fn->doesThisDeclarationHaveABody()) return;
    if (fn->isDependentContext()) return;  // uninstantiated templates
    clang::SourceLocation loc = fn->getLocation();
    if (loc.isInvalid() || sm_.isInSystemHeader(loc)) return;
    // Lambda call operators are walked from their LambdaExpr so they get
    // the synthetic name and host-compute marking.
    if (const auto* method = llvm::dyn_cast<CXXMethodDecl>(fn)) {
      if (method->getParent()->isLambda()) return;
    }
    ExtractFunction(fn, fn->getQualifiedNameAsString());
  }

  size_t ExtractFunction(const FunctionDecl* fn, const std::string& name) {
    FunctionFacts facts;
    facts.qualified_name = name;
    facts.loc = LocOf(fn->getLocation(), sm_);
    facts.is_host_compute = FunctionHasAnnotation(fn, kHostCompute);
    facts.is_resource_impl = FunctionHasAnnotation(fn, kResourceImpl);
    facts.is_worker_safe = FunctionHasAnnotation(fn, kWorkerSafe);
    size_t index = tu_.functions.size();
    tu_.functions.push_back(std::move(facts));
    // Walk with an explicit current-function index: lambdas nested in this
    // body append their own FunctionFacts, so pointers would dangle.
    size_t saved = current_;
    current_ = index;
    WalkStmt(fn->getBody(), /*branch_id=*/-1);
    current_ = saved;
    return index;
  }

  FunctionFacts& Current() { return tu_.functions[current_]; }

  // -- statement walk ------------------------------------------------------

  void WalkStmt(const Stmt* stmt, int branch_id) {
    if (stmt == nullptr) return;

    if (const auto* compound = llvm::dyn_cast<CompoundStmt>(stmt)) {
      for (const Stmt* child : compound->body()) {
        WalkFullExpr(child, branch_id);
      }
      return;
    }
    if (const auto* ifs = llvm::dyn_cast<IfStmt>(stmt)) {
      WalkStmt(ifs->getInit(), branch_id);
      int id = AddBranch(ifs->getCond(), branch_id);
      WalkExpr(ifs->getCond(), branch_id, "", false);
      WalkStmt(ifs->getThen(), id);
      WalkStmt(ifs->getElse(), id);
      return;
    }
    if (const auto* whiles = llvm::dyn_cast<WhileStmt>(stmt)) {
      int id = AddBranch(whiles->getCond(), branch_id);
      WalkExpr(whiles->getCond(), branch_id, "", false);
      WalkStmt(whiles->getBody(), id);
      return;
    }
    if (const auto* dos = llvm::dyn_cast<DoStmt>(stmt)) {
      int id = AddBranch(dos->getCond(), branch_id);
      WalkExpr(dos->getCond(), branch_id, "", false);
      WalkStmt(dos->getBody(), id);
      return;
    }
    if (const auto* fors = llvm::dyn_cast<ForStmt>(stmt)) {
      WalkStmt(fors->getInit(), branch_id);
      int id = branch_id;
      if (fors->getCond() != nullptr) {
        id = AddBranch(fors->getCond(), branch_id);
        WalkExpr(fors->getCond(), branch_id, "", false);
      }
      WalkExpr(fors->getInc(), id, "", false);
      WalkStmt(fors->getBody(), id);
      return;
    }
    if (const auto* range = llvm::dyn_cast<CXXForRangeStmt>(stmt)) {
      // The range expression drives the trip count: model it as a branch
      // condition so iterating over a hidden-derived container guards the
      // body.
      int id = AddBranch(range->getRangeInit(), branch_id);
      WalkExpr(range->getRangeInit(), branch_id, "", false);
      WalkStmt(range->getBody(), id);
      return;
    }
    if (const auto* sw = llvm::dyn_cast<SwitchStmt>(stmt)) {
      WalkStmt(sw->getInit(), branch_id);
      int id = AddBranch(sw->getCond(), branch_id);
      WalkExpr(sw->getCond(), branch_id, "", false);
      WalkStmt(sw->getBody(), id);
      return;
    }
    if (const auto* decls = llvm::dyn_cast<DeclStmt>(stmt)) {
      for (const Decl* d : decls->decls()) {
        const auto* var = llvm::dyn_cast<VarDecl>(d);
        if (var == nullptr || !var->hasInit()) continue;
        RecordAssign(var->getNameAsString(), var->getInit(),
                     /*lhs_is_sink_field=*/false, var->getLocation(),
                     branch_id);
        WalkExpr(var->getInit(), branch_id, var->getNameAsString(), false);
      }
      return;
    }
    if (const auto* expr = llvm::dyn_cast<Expr>(stmt)) {
      WalkExpr(expr, branch_id, "", false);
      return;
    }
    for (const Stmt* child : stmt->children()) WalkStmt(child, branch_id);
  }

  /// A statement at full-expression position: a discarded Status/Result
  /// call here is a status-discipline violation.
  void WalkFullExpr(const Stmt* stmt, int branch_id) {
    const auto* expr = llvm::dyn_cast_or_null<Expr>(stmt);
    if (expr == nullptr) {
      WalkStmt(stmt, branch_id);
      return;
    }
    WalkExpr(expr, branch_id, "", /*discarded=*/true);
  }

  /// Walks an expression tree. `assigned_to` names the variable a
  /// top-level call result binds to; `discarded` marks full-expression
  /// position.
  void WalkExpr(const Expr* expr, int branch_id, const std::string& assigned_to,
                bool discarded) {
    if (expr == nullptr) return;
    // IgnoreImplicit strips ExprWithCleanups/CXXBindTemporaryExpr (how a
    // by-value Status call appears at statement position); then parens and
    // implicit casts.
    const Expr* core = expr->IgnoreImplicit()->IgnoreParenImpCasts();

    if (const auto* lambda = llvm::dyn_cast<LambdaExpr>(core)) {
      HandleLambda(lambda);
      return;
    }
    if (const auto* binop = llvm::dyn_cast<BinaryOperator>(core)) {
      if (binop->isAssignmentOp()) {
        HandleAssignment(binop, branch_id);
        return;
      }
    }
    if (const auto* cond = llvm::dyn_cast<ConditionalOperator>(core)) {
      int id = AddBranch(cond->getCond(), branch_id);
      WalkExpr(cond->getCond(), branch_id, "", false);
      WalkExpr(cond->getTrueExpr(), id, assigned_to, false);
      WalkExpr(cond->getFalseExpr(), id, assigned_to, false);
      return;
    }
    if (const auto* call = llvm::dyn_cast<CallExpr>(core)) {
      HandleCall(call, branch_id, assigned_to, discarded);
      return;
    }
    // Generic node: recurse; children are value-position subexpressions.
    for (const Stmt* child : core->children()) {
      if (const auto* sub = llvm::dyn_cast_or_null<Expr>(child)) {
        WalkExpr(sub, branch_id, "", false);
      } else {
        WalkStmt(child, branch_id);
      }
    }
  }

  void HandleAssignment(const BinaryOperator* binop, int branch_id) {
    const Expr* lhs = binop->getLHS()->IgnoreParenImpCasts();
    std::string lhs_name;
    bool sink_field = false;
    if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(lhs)) {
      lhs_name = ref->getDecl()->getNameAsString();
    } else if (const auto* member = llvm::dyn_cast<MemberExpr>(lhs)) {
      lhs_name = member->getMemberDecl()->getQualifiedNameAsString();
      sink_field = HasAnnotation(member->getMemberDecl(), kSink);
    }
    RecordAssign(lhs_name, binop->getRHS(), sink_field,
                 binop->getOperatorLoc(), branch_id);
    WalkExpr(binop->getRHS(), branch_id, lhs_name, false);
    WalkExpr(lhs, branch_id, "", false);
  }

  void HandleCall(const CallExpr* call, int branch_id,
                  const std::string& assigned_to, bool discarded) {
    const FunctionDecl* callee = call->getDirectCallee();

    // `foo().ok();` — the classic nodiscard escape. Attribute the discard
    // to the inner Status-returning call.
    if (discarded && callee != nullptr &&
        EndsWith(callee->getQualifiedNameAsString(), "::ok")) {
      if (const auto* member = llvm::dyn_cast<CXXMemberCallExpr>(call)) {
        const Expr* object = member->getImplicitObjectArgument()
                                 ->IgnoreImplicit()
                                 ->IgnoreParenImpCasts();
        if (const auto* inner = llvm::dyn_cast<CallExpr>(object)) {
          if (IsStatusType(inner->getType())) {
            HandleCall(inner, branch_id, "", /*discarded=*/true);
            return;
          }
        }
      }
    }

    CallFacts facts;
    facts.loc = LocOf(call->getExprLoc(), sm_);
    facts.branch_id = branch_id;
    facts.assigned_to = assigned_to;
    if (callee != nullptr) {
      facts.callee = callee->getQualifiedNameAsString();
      facts.callee_hidden = FunctionHasAnnotation(callee, kHidden);
      facts.callee_sink = FunctionHasAnnotation(callee, kSink);
      facts.callee_worker_safe = FunctionHasAnnotation(callee, kWorkerSafe);
    }
    facts.returns_status = IsStatusType(call->getType());
    facts.result_discarded = discarded && facts.returns_status;

    bool shards_call = EndsWith(facts.callee, "ThreadPool::ParallelShards");
    for (const Expr* arg : call->arguments()) {
      std::vector<std::string> vars;
      bool hidden = false;
      CollectVars(arg, &vars, &hidden);
      facts.arg_vars.push_back(std::move(vars));
      facts.arg_hidden.push_back(hidden);
      if (shards_call) {
        if (const LambdaExpr* lambda = FindLambda(arg)) {
          shard_lambdas_.push_back(lambda->getCallOperator());
        }
      }
    }
    // The object a member call runs on participates in taint like an
    // argument (`writer.Finish()` is tainted when `writer` is).
    if (const auto* member = llvm::dyn_cast<CXXMemberCallExpr>(call)) {
      std::vector<std::string> vars;
      bool hidden = false;
      CollectVars(member->getImplicitObjectArgument(), &vars, &hidden);
      facts.arg_vars.push_back(std::move(vars));
      facts.arg_hidden.push_back(hidden);
    }
    Current().calls.push_back(std::move(facts));

    for (const Expr* arg : call->arguments()) {
      WalkExpr(arg, branch_id, "", false);
    }
    if (const auto* member = llvm::dyn_cast<CXXMemberCallExpr>(call)) {
      WalkExpr(member->getImplicitObjectArgument(), branch_id, "", false);
    }
  }

  void HandleLambda(const LambdaExpr* lambda) {
    const CXXMethodDecl* op = lambda->getCallOperator();
    if (op == nullptr || !op->hasBody()) return;
    SourceLoc loc = LocOf(lambda->getBeginLoc(), sm_);
    std::string name = Current().qualified_name + "::lambda@" +
                       std::to_string(loc.line);
    size_t index = ExtractFunction(op, name);
    lambda_index_[op] = index;
  }

  void RecordAssign(const std::string& lhs, const Expr* rhs, bool sink_field,
                    clang::SourceLocation loc, int branch_id) {
    AssignFacts facts;
    facts.lhs = lhs;
    facts.lhs_is_sink_field = sink_field;
    facts.loc = LocOf(loc, sm_);
    facts.branch_id = branch_id;
    CollectVars(rhs, &facts.rhs_vars, &facts.rhs_hidden);
    Current().assigns.push_back(std::move(facts));
  }

  int AddBranch(const Expr* cond, int parent_id) {
    BranchFacts facts;
    facts.parent_id = parent_id;
    if (cond != nullptr) {
      facts.loc = LocOf(cond->getExprLoc(), sm_);
      CollectVars(cond, &facts.cond_vars, &facts.cond_hidden);
    }
    int id = static_cast<int>(Current().branches.size());
    Current().branches.push_back(std::move(facts));
    return id;
  }

  ASTContext& context_;
  const SourceManager& sm_;
  TranslationUnitFacts tu_;
  size_t current_ = 0;
  std::vector<const CXXMethodDecl*> shard_lambdas_;
  std::map<const CXXMethodDecl*, size_t> lambda_index_;
};

}  // namespace

TranslationUnitFacts ExtractFacts(ASTContext& context) {
  return Extractor(context).Run();
}

}  // namespace leakcheck

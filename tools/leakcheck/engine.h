// The rule engine: pure-C++ analysis over the facts model.
//
// Four rules (ARCHITECTURE.md, "Static leakage discipline"):
//   1. hidden-taint        — hidden values must not reach transcript sinks,
//                            nor the condition of a branch guarding one
//                            (flow-insensitive intra-procedural fixpoint).
//   2. status-discipline   — no Status/Result-returning call discarded.
//   3. paired-resource     — raw Alloc/Free, Acquire, Admit/Release only
//                            inside GHOSTDB_RESOURCE_IMPL functions (the
//                            RAII guards) or the resource class itself.
//   4. worker-purity       — nothing reachable from a GHOSTDB_HOST_COMPUTE
//                            root may touch clock/channel/RAM/arbiter/
//                            metrics (intra-TU call-graph walk).
#pragma once

#include <string>
#include <vector>

#include "facts.h"

namespace leakcheck {

struct EngineOptions {
  /// Findings are only reported for locations whose file path contains
  /// this substring (default: the project's src tree). Facts from headers
  /// outside it still feed the call graph and taint propagation.
  std::string filter = "/src/";

  /// Rule 3: the raw paired primitives. Callers outside the owning class
  /// and not annotated GHOSTDB_RESOURCE_IMPL may not call these.
  std::vector<std::string> raw_pairs = {
      "ghostdb::storage::PageAllocator::Alloc",
      "ghostdb::storage::PageAllocator::Free",
      "ghostdb::device::RamManager::Acquire",
      "ghostdb::device::RamManager::AcquireOne",
      "ghostdb::device::ChannelArbiter::Admit",
      "ghostdb::device::ChannelArbiter::Release",
  };

  /// Rule 4: forbidden callee prefixes for worker-reachable code.
  std::vector<std::string> worker_forbidden = {
      "ghostdb::device::Channel::",
      "ghostdb::device::RamManager::",
      "ghostdb::device::ChannelArbiter::",
      "ghostdb::device::SecureDevice::",
      "ghostdb::SimClock::",
      "ghostdb::flash::FlashDevice::",
      "ghostdb::exec::QueryMetrics::",
  };
};

/// Runs all four rules over one translation unit's facts.
std::vector<Finding> Analyze(const TranslationUnitFacts& tu,
                             const EngineOptions& options);

/// Renders one finding as "file:line: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace leakcheck

// The clang side of leakcheck: lowers one parsed translation unit into the
// facts model. Everything that needs clang headers lives behind this
// boundary; the rule engine and its tests never see clang types.
#pragma once

#include "facts.h"

namespace clang {
class ASTContext;
}  // namespace clang

namespace leakcheck {

/// Walks every function definition in `context` (excluding system headers)
/// and extracts calls, assignments, branches, and annotations.
TranslationUnitFacts ExtractFacts(clang::ASTContext& context);

}  // namespace leakcheck

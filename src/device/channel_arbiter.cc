#include "device/channel_arbiter.h"

#include <algorithm>
#include <cassert>

namespace ghostdb::device {

ChannelArbiter::ChannelArbiter(Channel* channel) : channel_(channel) {}

void ChannelArbiter::Register(int32_t session, std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(SessionState{session, std::move(name), 0, 0});
}

void ChannelArbiter::Unregister(int32_t session) {
  std::lock_guard<std::mutex> lk(mu_);
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].id != session) continue;
    sessions_.erase(sessions_.begin() + static_cast<ptrdiff_t>(i));
    if (cursor_ > i) cursor_ -= 1;
    if (!sessions_.empty()) cursor_ %= sessions_.size();
    return;
  }
}

size_t ChannelArbiter::IndexOfLocked(int32_t session) const {
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].id == session) return i;
  }
  return sessions_.size();
}

int32_t ChannelArbiter::PickNextLocked(
    const std::vector<std::pair<int32_t, uint32_t>>& pending, bool count) {
  assert(!pending.empty());
  auto charge = [&](int32_t id) {
    if (!count) return;
    size_t i = IndexOfLocked(id);
    if (i < sessions_.size()) sessions_[i].admissions += 1;
    total_admissions_ += 1;
  };
  // Work-conserving fast path: an uncontended request is admitted without
  // touching the DRR credit state (credit bookkeeping only matters for
  // choosing among competitors).
  if (pending.size() == 1) {
    charge(pending[0].first);
    return pending[0].first;
  }
  // Safety: if no pending session is registered the cycle scan could never
  // terminate; fall back to arrival order (still visible-only).
  bool any_registered = false;
  for (const auto& p : pending) {
    if (IndexOfLocked(p.first) < sessions_.size()) {
      any_registered = true;
      break;
    }
  }
  if (sessions_.empty() || !any_registered) {
    charge(pending[0].first);
    return pending[0].first;
  }
  // Deficit round-robin over the registration cycle: each visit earns one
  // credit; the first visited session whose credit covers its declared
  // weight wins. Weights are >= 1 and bounded by the query shape, so the
  // scan terminates within max_weight cycles.
  for (;;) {
    SessionState& s = sessions_[cursor_];
    const std::pair<int32_t, uint32_t>* req = nullptr;
    for (const auto& p : pending) {
      if (p.first == s.id) {
        req = &p;
        break;
      }
    }
    if (req != nullptr) {
      s.deficit += 1;
      uint32_t weight = std::max<uint32_t>(1, req->second);
      if (s.deficit >= weight) {
        s.deficit -= weight;
        if (count) {
          s.admissions += 1;
          total_admissions_ += 1;
        }
        cursor_ = (cursor_ + 1) % sessions_.size();
        return s.id;
      }
    }
    cursor_ = (cursor_ + 1) % sessions_.size();
  }
}

int32_t ChannelArbiter::PickNext(
    const std::vector<std::pair<int32_t, uint32_t>>& pending) {
  std::lock_guard<std::mutex> lk(mu_);
  return PickNextLocked(pending, /*count=*/false);
}

void ChannelArbiter::TryGrantLocked() {
  if (busy_ || waiting_.empty()) return;
  int32_t pick;
  if (waiting_.size() == 1) {
    // Uncontended grant: no policy consult (the deterministic scheduler
    // already picked via PickNext; re-running DRR here would charge the
    // query's weight twice).
    pick = waiting_[0].session;
  } else {
    std::vector<std::pair<int32_t, uint32_t>> pending;
    pending.reserve(waiting_.size());
    for (const Waiter& w : waiting_) pending.emplace_back(w.session, w.weight);
    pick = PickNextLocked(pending, /*count=*/false);
  }
  // Among waiters of the picked session, grant the earliest request.
  size_t best = waiting_.size();
  for (size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].session != pick) continue;
    if (best == waiting_.size() ||
        waiting_[i].ticket < waiting_[best].ticket) {
      best = i;
    }
  }
  assert(best < waiting_.size());
  busy_ = true;
  granted_ticket_ = waiting_[best].ticket;
  size_t idx = IndexOfLocked(pick);
  if (idx < sessions_.size()) sessions_[idx].admissions += 1;
  total_admissions_ += 1;
  waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(best));
  cv_.notify_all();
}

void ChannelArbiter::Admit(int32_t session, uint32_t weight) {
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t ticket = next_ticket_++;
  waiting_.push_back(Waiter{session, weight, ticket});
  TryGrantLocked();
  cv_.wait(lk, [&] { return granted_ticket_ == ticket; });
  // Exclusive until Release(): tag the transcript with the admitted
  // session. The write is ordered by mu_ against the previous holder's
  // clear.
  channel_->set_current_session(session);
}

void ChannelArbiter::Release(int32_t session) {
  std::lock_guard<std::mutex> lk(mu_);
  (void)session;
  channel_->set_current_session(-1);
  busy_ = false;
  granted_ticket_ = 0;
  TryGrantLocked();
}

uint64_t ChannelArbiter::admissions(int32_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t i = IndexOfLocked(session);
  return i < sessions_.size() ? sessions_[i].admissions : 0;
}

uint64_t ChannelArbiter::total_admissions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_admissions_;
}

size_t ChannelArbiter::registered_sessions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

}  // namespace ghostdb::device

#include "device/fault_injector.h"

#include <cmath>

namespace ghostdb::device {

namespace {

// splitmix64: the repo's standard cheap deterministic mixer (same core as
// the shard partitioner). Statelessly maps (seed, site, draw#) to a draw.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits of a mixed word.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Status BadProbability(const char* name, double value) {
  return Status::InvalidArgument("fault_config." + std::string(name) + " = " +
                                 std::to_string(value) +
                                 " is not a probability in [0, 1]");
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFlashRead:
      return "flash-read";
    case FaultSite::kFlashWrite:
      return "flash-write";
    case FaultSite::kPageAlloc:
      return "page-alloc";
    case FaultSite::kRunWrite:
      return "run-write";
    case FaultSite::kChannelStall:
      return "channel-stall";
    case FaultSite::kRamAcquire:
      return "ram-acquire";
    case FaultSite::kShardReset:
      return "shard-reset";
  }
  return "unknown";
}

Status ValidateFaultConfig(const FaultConfig& config) {
  const struct {
    const char* name;
    double value;
  } probs[] = {
      {"flash_read_p", config.flash_read_p},
      {"flash_write_p", config.flash_write_p},
      {"page_alloc_p", config.page_alloc_p},
      {"run_write_p", config.run_write_p},
      {"channel_stall_p", config.channel_stall_p},
      {"ram_acquire_p", config.ram_acquire_p},
      {"shard_reset_p", config.shard_reset_p},
      {"transient_fraction", config.transient_fraction},
  };
  for (const auto& p : probs) {
    if (!std::isfinite(p.value) || p.value < 0.0 || p.value > 1.0) {
      return BadProbability(p.name, p.value);
    }
  }
  if (config.retry_enabled && config.flash_retry_budget == 0) {
    return Status::InvalidArgument(
        "fault_config.flash_retry_budget must be nonzero while "
        "retry_enabled; set retry_enabled=false to disable retries");
  }
  if (config.flash_retry_budget > 64) {
    return Status::InvalidArgument(
        "fault_config.flash_retry_budget = " +
        std::to_string(config.flash_retry_budget) +
        " exceeds the sane bound of 64");
  }
  return Status::OK();
}

bool FaultInjector::IsInjectedFault(const Status& status) {
  // Substring, not prefix: the executor annotates ResourceExhausted
  // messages with session/partition context appended after the original
  // text.
  return !status.ok() && status.message().find(kTag) != std::string::npos;
}

void FaultInjector::Reseed(uint64_t seed) {
  seed_ = seed;
  draws_.fill(0);
  one_shot_ = {};
  faults_injected_ = 0;
  flash_retries_ = 0;
  channel_stalls_ = 0;
}

void FaultInjector::ArmOnce(FaultSite site, FaultKind kind,
                            uint64_t after_draws) {
  OneShot& slot = one_shot_[static_cast<size_t>(site)];
  slot.kind = kind;
  slot.after = after_draws;
  slot.pending = true;
}

double FaultInjector::SiteProbability(FaultSite site) const {
  switch (site) {
    case FaultSite::kFlashRead:
      return config_.flash_read_p;
    case FaultSite::kFlashWrite:
      return config_.flash_write_p;
    case FaultSite::kPageAlloc:
      return config_.page_alloc_p;
    case FaultSite::kRunWrite:
      return config_.run_write_p;
    case FaultSite::kChannelStall:
      return config_.channel_stall_p;
    case FaultSite::kRamAcquire:
      return config_.ram_acquire_p;
    case FaultSite::kShardReset:
      return config_.shard_reset_p;
  }
  return 0.0;
}

FaultKind FaultInjector::Draw(FaultSite site) {
  // Masked replays must not observe OR advance the schedule: the replay has
  // to be a pure function of the visible inputs.
  if (mask_depth_ > 0) {
    return FaultKind::kNone;
  }
  const size_t idx = static_cast<size_t>(site);
  OneShot& slot = one_shot_[idx];
  if (slot.pending) {
    if (slot.after == 0) {
      slot.pending = false;
      return slot.kind;
    }
    slot.after -= 1;
    return FaultKind::kNone;
  }
  if (!armed_ || !config_.enabled) {
    return FaultKind::kNone;
  }
  const double p = SiteProbability(site);
  if (p <= 0.0) {
    return FaultKind::kNone;
  }
  const uint64_t n = draws_[idx]++;
  const uint64_t word =
      SplitMix64(seed_ ^ SplitMix64((static_cast<uint64_t>(idx) << 56) ^ n));
  if (ToUnit(word) >= p) {
    return FaultKind::kNone;
  }
  if (site != FaultSite::kFlashRead && site != FaultSite::kFlashWrite) {
    return FaultKind::kPermanent;
  }
  return ToUnit(SplitMix64(word)) < config_.transient_fraction
             ? FaultKind::kTransient
             : FaultKind::kPermanent;
}

Status FaultInjector::OnFlashOp(FaultSite site) {
  uint32_t retries = 0;
  for (;;) {
    const FaultKind kind = Draw(site);
    if (kind == FaultKind::kNone) {
      return Status::OK();
    }
    faults_injected_ += 1;
    if (kind == FaultKind::kPermanent) {
      return Status::IOError(std::string(kTag) + " permanent " +
                             FaultSiteName(site) + " fault");
    }
    if (!config_.retry_enabled || retries >= config_.flash_retry_budget) {
      return Status::IOError(std::string(kTag) + " transient " +
                             FaultSiteName(site) + " fault persisted after " +
                             std::to_string(retries) + " retries");
    }
    // Exponential backoff before the re-issue, charged to simulated time so
    // the cost decomposition (and thus the transcript timing model) stays
    // deterministic.
    auto scope = clock_->Enter("fault-retry");
    clock_->Advance(config_.retry_backoff << retries);
    retries += 1;
    flash_retries_ += 1;
  }
}

Status FaultInjector::CheckSite(FaultSite site, const std::string& what) {
  if (Draw(site) == FaultKind::kNone) {
    return Status::OK();
  }
  faults_injected_ += 1;
  const std::string message =
      std::string(kTag) + " " + FaultSiteName(site) + " fault: " + what;
  return site == FaultSite::kRamAcquire ? Status::ResourceExhausted(message)
                                        : Status::IOError(message);
}

void FaultInjector::MaybeStallChannel() {
  if (Draw(FaultSite::kChannelStall) == FaultKind::kNone) {
    return;
  }
  faults_injected_ += 1;
  channel_stalls_ += 1;
  auto scope = clock_->Enter("fault-stall");
  clock_->Advance(config_.channel_stall);
}

bool FaultInjector::DrawShardReset() {
  if (Draw(FaultSite::kShardReset) == FaultKind::kNone) {
    return false;
  }
  faults_injected_ += 1;
  return true;
}

}  // namespace ghostdb::device

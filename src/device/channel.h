// The USB channel between Untrusted (PC) and Secure (smart USB key).
//
// Two roles:
//  * cost model — transfers are charged to the simulated clock at the
//    configured throughput (paper section 6.6 varies 0.3..10 MB/s; USB 2.0
//    full speed is 12 Mb/s = 1.5 MB/s);
//  * audit log — every message is recorded (direction, label, size, content
//    digest). Leak-freedom tests replay a query against databases that
//    differ only in Hidden data and assert byte-identical transcripts: the
//    only information Secure ever emits is the query itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/units.h"
#include "core/annotations.h"

namespace ghostdb::device {

class FaultInjector;

/// Transfer direction over the USB link.
enum class Direction { kToSecure, kToUntrusted };

/// One recorded transfer.
struct ChannelMessage {
  Direction direction;
  std::string label;        ///< e.g. "query", "vis:T1.id"
  uint64_t bytes;           ///< payload size
  uint64_t content_digest;  ///< 64-bit hash of the payload
  /// Session the transfer belongs to (-1 = outside any session, e.g. the
  /// build phase). Session ids and admission order are assigned from
  /// visible information only, so tagging leaks nothing — and the tags let
  /// the leak tests assert the *interleaved* multi-session transcript is
  /// hidden-independent, attribution included.
  int32_t session = -1;
};

/// \brief Simulated USB link with throughput accounting and transcript.
class Channel {
 public:
  Channel(SimClock* clock, double throughput_bytes_per_sec)
      : clock_(clock), throughput_(throughput_bytes_per_sec) {}

  /// Records a transfer of `payload` and charges `bytes / throughput` of
  /// simulated time to the "comm" category. Transcript sink: leakcheck
  /// rejects hidden-derived sizes/payloads reaching this call.
  GHOSTDB_TRANSCRIPT_SINK void Transfer(Direction direction,
                                        const std::string& label,
                                        const uint8_t* payload,
                                        uint64_t bytes);

  /// Convenience for size-only accounting (payload digest of empty data).
  GHOSTDB_TRANSCRIPT_SINK void TransferSized(Direction direction,
                                             const std::string& label,
                                             uint64_t bytes) {
    Transfer(direction, label, nullptr, bytes);
  }

  const std::vector<ChannelMessage>& transcript() const { return transcript_; }
  void ClearTranscript() { transcript_.clear(); }
  size_t transcript_size() const { return transcript_.size(); }

  /// Removes exactly the `count` messages starting at index `first` — the
  /// recovery path erases a failed attempt's recorded span before the
  /// masked replay re-emits the fault-free sequence. Clamped to the
  /// transcript bounds.
  void EraseTranscript(size_t first, size_t count);

  /// Session new transfers are attributed to. Set by the ChannelArbiter on
  /// admission (and only then — the channel is exclusive to the admitted
  /// session until release).
  void set_current_session(int32_t session) { current_session_ = session; }
  int32_t current_session() const { return current_session_; }

  /// Total bytes moved in `direction` since the transcript was cleared.
  uint64_t BytesMoved(Direction direction) const;

  double throughput() const { return throughput_; }
  void set_throughput(double bytes_per_sec) { throughput_ = bytes_per_sec; }

  /// Optional fault source consulted after each recorded transfer (stalls
  /// cost simulated time only; the transcript never sees them). Owned by
  /// the enclosing SecureDevice; may be null.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  SimClock* clock_;
  double throughput_;
  int32_t current_session_ = -1;
  FaultInjector* injector_ = nullptr;
  std::vector<ChannelMessage> transcript_;
};

}  // namespace ghostdb::device

#include "device/guards.h"

namespace ghostdb::device {

Result<PageGuard> PageGuard::Alloc(storage::PageAllocator* allocator,
                                   uint32_t count, const std::string& tag) {
  GHOSTDB_ASSIGN_OR_RETURN(uint32_t first, allocator->Alloc(count, tag));
  return PageGuard(allocator, first, count, tag);
}

PageGuard PageGuard::Adopt(storage::PageAllocator* allocator, uint32_t first,
                           uint32_t count, std::string tag) {
  return PageGuard(allocator, first, count, std::move(tag));
}

PageGuard::~PageGuard() {
  GHOSTDB_IGNORE_STATUS(Free(), "destructor cleanup is best-effort");
}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : allocator_(other.allocator_),
      first_(other.first_),
      count_(other.count_),
      tag_(std::move(other.tag_)) {
  other.allocator_ = nullptr;
  other.count_ = 0;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    GHOSTDB_IGNORE_STATUS(Free(), "overwritten guard frees best-effort");
    allocator_ = other.allocator_;
    first_ = other.first_;
    count_ = other.count_;
    tag_ = std::move(other.tag_);
    other.allocator_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

Status PageGuard::Free() {
  if (!valid()) return Status::OK();
  Status s = allocator_->Free(first_, count_, tag_);
  allocator_ = nullptr;
  count_ = 0;
  return s;
}

Status PageGuard::TrimTail(uint32_t keep) {
  if (!valid() || keep >= count_) return Status::OK();
  uint32_t extra = count_ - keep;
  Status s = allocator_->Free(first_ + keep, extra, tag_);
  count_ = keep;
  if (keep == 0) allocator_ = nullptr;
  return s;
}

std::pair<uint32_t, uint32_t> PageGuard::Detach() {
  std::pair<uint32_t, uint32_t> extent{first_, count_};
  allocator_ = nullptr;
  count_ = 0;
  return extent;
}

Result<RamGuard> RamGuard::Acquire(RamManager* ram, uint32_t buffers,
                                   std::string owner) {
  GHOSTDB_ASSIGN_OR_RETURN(BufferHandle handle,
                           ram->Acquire(buffers, std::move(owner)));
  return RamGuard(std::move(handle));
}

Result<RamGuard> RamGuard::AcquireOne(RamManager* ram, std::string owner) {
  GHOSTDB_ASSIGN_OR_RETURN(BufferHandle handle,
                           ram->AcquireOne(std::move(owner)));
  return RamGuard(std::move(handle));
}

AdmissionGuard::AdmissionGuard(ChannelArbiter* arbiter, int32_t session,
                               uint32_t weight)
    : arbiter_(arbiter), session_(session) {
  arbiter_->Admit(session_, weight);
}

AdmissionGuard::~AdmissionGuard() { arbiter_->Release(session_); }

}  // namespace ghostdb::device

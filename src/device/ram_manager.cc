#include "device/ram_manager.h"

#include <algorithm>

namespace ghostdb::device {

BufferHandle& BufferHandle::operator=(BufferHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    data_ = other.data_;
    size_ = other.size_;
    buffers_ = other.buffers_;
    other.manager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
    other.buffers_ = 0;
  }
  return *this;
}

BufferHandle::~BufferHandle() { Release(); }

void BufferHandle::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseBuffers(data_, buffers_);
    manager_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    buffers_ = 0;
  }
}

RamManager::RamManager(size_t ram_bytes, size_t buffer_size)
    : ram_bytes_(ram_bytes),
      buffer_size_(buffer_size),
      total_buffers_(static_cast<uint32_t>(ram_bytes / buffer_size)),
      arena_(ram_bytes, 0),
      buffer_used_(total_buffers_, false) {}

Result<BufferHandle> RamManager::Acquire(uint32_t buffers, std::string owner) {
  if (buffers == 0) {
    return Status::InvalidArgument("cannot acquire zero buffers");
  }
  // First-fit search for a contiguous free range.
  uint32_t run = 0;
  for (uint32_t i = 0; i < total_buffers_; ++i) {
    run = buffer_used_[i] ? 0 : run + 1;
    if (run == buffers) {
      uint32_t first = i + 1 - buffers;
      for (uint32_t b = first; b <= i; ++b) buffer_used_[b] = true;
      used_buffers_ += buffers;
      peak_used_buffers_ = std::max(peak_used_buffers_, used_buffers_);
      owners_.emplace_back(owner, buffers);
      return BufferHandle(this, arena_.data() + first * buffer_size_,
                          static_cast<size_t>(buffers) * buffer_size_,
                          buffers);
    }
  }
  return Status::ResourceExhausted(
      "secure RAM exhausted: " + owner + " wants " + std::to_string(buffers) +
      " buffers, " + std::to_string(free_buffers()) + " free of " +
      std::to_string(total_buffers_));
}

void RamManager::ReleaseBuffers(uint8_t* data, uint32_t buffers) {
  uint32_t first = static_cast<uint32_t>((data - arena_.data()) / buffer_size_);
  for (uint32_t b = first; b < first + buffers; ++b) buffer_used_[b] = false;
  used_buffers_ -= buffers;
}

std::vector<std::pair<std::string, uint32_t>> RamManager::Owners() const {
  return owners_;
}

}  // namespace ghostdb::device

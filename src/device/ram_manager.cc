#include "device/ram_manager.h"

#include <algorithm>

#include "device/fault_injector.h"

namespace ghostdb::device {

BufferHandle& BufferHandle::operator=(BufferHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    data_ = other.data_;
    size_ = other.size_;
    buffers_ = other.buffers_;
    other.manager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
    other.buffers_ = 0;
  }
  return *this;
}

BufferHandle::~BufferHandle() { Release(); }

void BufferHandle::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseBuffers(data_, buffers_);
    manager_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    buffers_ = 0;
  }
}

RamManager::RamManager(size_t ram_bytes, size_t buffer_size)
    : ram_bytes_(ram_bytes),
      buffer_size_(buffer_size),
      total_buffers_(static_cast<uint32_t>(ram_bytes / buffer_size)),
      arena_(ram_bytes, 0),
      buffer_used_(total_buffers_, false) {}

uint32_t RamManager::reserve_free_buffers() const {
  uint32_t in_use = shared_used_;
  for (const Partition& p : partitions_) {
    if (p.live && p.used > p.quota) in_use += p.used - p.quota;
  }
  uint32_t reserve = reserve_buffers();
  return in_use >= reserve ? 0 : reserve - in_use;
}

uint32_t RamManager::HeadroomOf(RamPartitionId id) const {
  if (id == kSharedRamPartition || id > partitions_.size() ||
      !partitions_[id - 1].live) {
    return reserve_free_buffers();
  }
  const Partition& p = partitions_[id - 1];
  uint32_t quota_left = p.used >= p.quota ? 0 : p.quota - p.used;
  return quota_left + reserve_free_buffers();
}

uint32_t RamManager::free_buffers() const {
  return std::min(physical_free_buffers(), HeadroomOf(active_));
}

Result<RamPartitionId> RamManager::CreatePartition(std::string name,
                                                   uint32_t quota_buffers) {
  if (quota_buffers == 0) {
    return Status::InvalidArgument("partition '" + name +
                                   "' needs a nonzero quota");
  }
  if (pledged_ + quota_buffers > total_buffers_) {
    return Status::ResourceExhausted(
        "cannot pledge " + std::to_string(quota_buffers) +
        " buffers to partition '" + name + "': " +
        std::to_string(pledged_) + " of " + std::to_string(total_buffers_) +
        " already pledged, " + std::to_string(reserve_buffers()) +
        " left in the shared reserve");
  }
  pledged_ += quota_buffers;
  // Reuse a released slot so long-lived servers opening/closing sessions
  // don't grow the table without bound.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (!partitions_[i].live) {
      partitions_[i] = Partition{std::move(name), quota_buffers, 0, true};
      return static_cast<RamPartitionId>(i + 1);
    }
  }
  partitions_.push_back(Partition{std::move(name), quota_buffers, 0, true});
  return static_cast<RamPartitionId>(partitions_.size());
}

Status RamManager::ReleasePartition(RamPartitionId id) {
  if (id == kSharedRamPartition || id > partitions_.size() ||
      !partitions_[id - 1].live) {
    return Status::InvalidArgument("no such RAM partition: " +
                                   std::to_string(id));
  }
  Partition& p = partitions_[id - 1];
  if (p.used != 0) {
    return Status::InvalidArgument(
        "partition '" + p.name + "' still holds " + std::to_string(p.used) +
        " buffers (" + DescribeOwners() + ")");
  }
  pledged_ -= p.quota;
  p = Partition{};
  if (active_ == id) active_ = kSharedRamPartition;
  return Status::OK();
}

uint32_t RamManager::partition_quota(RamPartitionId id) const {
  return id == kSharedRamPartition || id > partitions_.size()
             ? 0
             : partitions_[id - 1].quota;
}

uint32_t RamManager::partition_used(RamPartitionId id) const {
  if (id == kSharedRamPartition) return shared_used_;
  return id > partitions_.size() ? 0 : partitions_[id - 1].used;
}

const std::string& RamManager::partition_name(RamPartitionId id) const {
  static const std::string kShared = "shared";
  static const std::string kUnknown = "?";
  if (id == kSharedRamPartition) return kShared;
  if (id > partitions_.size() || !partitions_[id - 1].live) return kUnknown;
  return partitions_[id - 1].name;
}

Result<BufferHandle> RamManager::Acquire(uint32_t buffers, std::string owner) {
  if (buffers == 0) {
    return Status::InvalidArgument("cannot acquire zero buffers");
  }
  if (injector_ != nullptr) {
    GHOSTDB_RETURN_NOT_OK(injector_->CheckSite(
        FaultSite::kRamAcquire, "RAM acquire of " + std::to_string(buffers) +
                                    " buffers ('" + owner + "')"));
  }
  if (buffers > HeadroomOf(active_)) {
    // The active partition is out of budget: a per-session condition, not a
    // device-wide one. Name who holds what so the failure is actionable.
    const std::string& pname = partition_name(active_);
    std::string msg = "RAM partition '" + pname + "' exhausted: '" + owner +
                      "' wants " + std::to_string(buffers) + " buffers, ";
    if (active_ == kSharedRamPartition) {
      msg += "shared reserve has " +
             std::to_string(reserve_free_buffers()) + " of " +
             std::to_string(reserve_buffers()) + " free";
    } else {
      msg += "partition uses " + std::to_string(partition_used(active_)) +
             " of quota " + std::to_string(partition_quota(active_)) +
             ", shared reserve has " +
             std::to_string(reserve_free_buffers()) + " free";
    }
    msg += " (held by: " + DescribeOwners() + ")";
    return Status::ResourceExhausted(std::move(msg));
  }
  // First-fit search for a contiguous free range.
  uint32_t run = 0;
  for (uint32_t i = 0; i < total_buffers_; ++i) {
    run = buffer_used_[i] ? 0 : run + 1;
    if (run == buffers) {
      uint32_t first = i + 1 - buffers;
      for (uint32_t b = first; b <= i; ++b) buffer_used_[b] = true;
      used_buffers_ += buffers;
      peak_used_buffers_ = std::max(peak_used_buffers_, used_buffers_);
      if (active_ == kSharedRamPartition) {
        shared_used_ += buffers;
      } else {
        partitions_[active_ - 1].used += buffers;
      }
      allocations_[first] = Allocation{owner, buffers, active_};
      return BufferHandle(this, arena_.data() + first * buffer_size_,
                          static_cast<size_t>(buffers) * buffer_size_,
                          buffers);
    }
  }
  return Status::ResourceExhausted(
      "secure RAM exhausted: '" + owner + "' wants " +
      std::to_string(buffers) + " buffers, " +
      std::to_string(physical_free_buffers()) + " free of " +
      std::to_string(total_buffers_) + " (held by: " + DescribeOwners() +
      ")");
}

void RamManager::ReleaseBuffers(uint8_t* data, uint32_t buffers) {
  uint32_t first = static_cast<uint32_t>((data - arena_.data()) / buffer_size_);
  for (uint32_t b = first; b < first + buffers; ++b) buffer_used_[b] = false;
  used_buffers_ -= buffers;
  auto it = allocations_.find(first);
  if (it != allocations_.end()) {
    RamPartitionId charged = it->second.partition;
    if (charged == kSharedRamPartition) {
      shared_used_ -= buffers;
    } else if (charged <= partitions_.size()) {
      partitions_[charged - 1].used -= buffers;
    }
    allocations_.erase(it);
  }
}

std::vector<std::pair<std::string, uint32_t>> RamManager::Owners() const {
  std::vector<std::pair<std::string, uint32_t>> out;
  out.reserve(allocations_.size());
  for (const auto& [first, alloc] : allocations_) {
    out.emplace_back(alloc.owner, alloc.buffers);
  }
  return out;
}

std::string RamManager::DescribeOwners() const {
  if (allocations_.empty()) return "none";
  std::string out;
  for (const auto& [first, alloc] : allocations_) {
    if (!out.empty()) out += ", ";
    out += alloc.owner + "=" + std::to_string(alloc.buffers);
  }
  return out;
}

}  // namespace ghostdb::device

// The Secure chip's RAM: 64 KB split into 2 KB buffers (the flash I/O unit),
// i.e. 32 buffers (paper sections 2.2, 3.4). The budget is enforced, not
// advisory — running out of buffers is what forces the paper's reduction
// phases, Bloom-filter degradation, and multi-pass MJoin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ghostdb::device {

class RamManager;

/// \brief RAII handle over one or more contiguous RAM buffers.
class BufferHandle {
 public:
  BufferHandle() = default;
  BufferHandle(BufferHandle&& other) noexcept { *this = std::move(other); }
  BufferHandle& operator=(BufferHandle&& other) noexcept;
  ~BufferHandle();

  BufferHandle(const BufferHandle&) = delete;
  BufferHandle& operator=(const BufferHandle&) = delete;

  /// Pointer to the buffer memory (size() bytes).
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t buffer_count() const { return buffers_; }
  bool valid() const { return manager_ != nullptr; }

  /// Releases the buffers back to the manager.
  void Release();

 private:
  friend class RamManager;
  BufferHandle(RamManager* manager, uint8_t* data, size_t size,
               uint32_t buffers)
      : manager_(manager), data_(data), size_(size), buffers_(buffers) {}

  RamManager* manager_ = nullptr;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint32_t buffers_ = 0;
};

/// \brief Allocates the device's scarce RAM in buffer-sized units.
class RamManager {
 public:
  /// `ram_bytes` must be a multiple of `buffer_size`.
  RamManager(size_t ram_bytes, size_t buffer_size);

  /// Acquires `buffers` contiguous buffers; fails with ResourceExhausted if
  /// fewer are free. `owner` labels the allocation for diagnostics.
  Result<BufferHandle> Acquire(uint32_t buffers, std::string owner);

  /// Acquires one buffer.
  Result<BufferHandle> AcquireOne(std::string owner) {
    return Acquire(1, std::move(owner));
  }

  uint32_t total_buffers() const { return total_buffers_; }
  uint32_t free_buffers() const { return total_buffers_ - used_buffers_; }
  uint32_t used_buffers() const { return used_buffers_; }
  uint32_t peak_used_buffers() const { return peak_used_buffers_; }
  size_t buffer_size() const { return buffer_size_; }
  size_t ram_bytes() const { return ram_bytes_; }

  /// Zeros the peak-usage watermark (between queries).
  void ResetPeak() { peak_used_buffers_ = used_buffers_; }

  /// Diagnostic: current owners and their buffer counts.
  std::vector<std::pair<std::string, uint32_t>> Owners() const;

 private:
  friend class BufferHandle;
  void ReleaseBuffers(uint8_t* data, uint32_t buffers);

  size_t ram_bytes_;
  size_t buffer_size_;
  uint32_t total_buffers_;
  uint32_t used_buffers_ = 0;
  uint32_t peak_used_buffers_ = 0;
  std::vector<uint8_t> arena_;
  std::vector<bool> buffer_used_;  // per-buffer occupancy
  std::vector<std::pair<std::string, uint32_t>> owners_;
};

}  // namespace ghostdb::device

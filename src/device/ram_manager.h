// The Secure chip's RAM: 64 KB split into 2 KB buffers (the flash I/O unit),
// i.e. 32 buffers (paper sections 2.2, 3.4). The budget is enforced, not
// advisory — running out of buffers is what forces the paper's reduction
// phases, Bloom-filter degradation, and multi-pass MJoin.
//
// Multi-session serving partitions this budget: each session pledges a
// named partition with a fixed buffer quota, and the buffers left unpledged
// form the shared reserve. An allocation is charged to the *active*
// partition (a context-switch register the executor sets per query — device
// execution is serialized by the channel arbiter, so there is exactly one
// active partition at a time): first against the partition's quota, then
// against the shared reserve. A session can therefore never consume another
// session's guaranteed quota, and exhausting its own partition is a clean
// per-session error, not a device-wide one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ghostdb::device {

class FaultInjector;
class RamManager;

/// Identifies a RAM partition. 0 is the shared reserve (no quota of its
/// own; capped only by what no partition has pledged).
using RamPartitionId = uint32_t;
inline constexpr RamPartitionId kSharedRamPartition = 0;

/// \brief RAII handle over one or more contiguous RAM buffers.
class BufferHandle {
 public:
  BufferHandle() = default;
  BufferHandle(BufferHandle&& other) noexcept { *this = std::move(other); }
  BufferHandle& operator=(BufferHandle&& other) noexcept;
  ~BufferHandle();

  BufferHandle(const BufferHandle&) = delete;
  BufferHandle& operator=(const BufferHandle&) = delete;

  /// Pointer to the buffer memory (size() bytes).
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t buffer_count() const { return buffers_; }
  bool valid() const { return manager_ != nullptr; }

  /// Releases the buffers back to the manager.
  void Release();

 private:
  friend class RamManager;
  BufferHandle(RamManager* manager, uint8_t* data, size_t size,
               uint32_t buffers)
      : manager_(manager), data_(data), size_(size), buffers_(buffers) {}

  RamManager* manager_ = nullptr;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint32_t buffers_ = 0;
};

/// \brief Allocates the device's scarce RAM in buffer-sized units.
class RamManager {
 public:
  /// `ram_bytes` must be a multiple of `buffer_size`.
  RamManager(size_t ram_bytes, size_t buffer_size);

  /// Acquires `buffers` contiguous buffers, charged to the active
  /// partition; fails with ResourceExhausted — naming the current owners
  /// and their buffer counts — if the partition's headroom (quota plus
  /// shared reserve) or the physical arena cannot cover them. `owner`
  /// labels the allocation for diagnostics.
  Result<BufferHandle> Acquire(uint32_t buffers, std::string owner);

  /// Acquires one buffer.
  Result<BufferHandle> AcquireOne(std::string owner) {
    return Acquire(1, std::move(owner));
  }

  // -- Named partitions (per-session quotas) -------------------------------

  /// Pledges `quota_buffers` of the arena to a named partition; fails with
  /// ResourceExhausted when the pledge would exceed the unpledged reserve.
  Result<RamPartitionId> CreatePartition(std::string name,
                                         uint32_t quota_buffers);

  /// Returns a partition's quota to the shared reserve. The partition must
  /// hold no live allocations.
  Status ReleasePartition(RamPartitionId id);

  /// The partition new acquisitions are charged to. Device execution is
  /// serialized (channel arbiter), so this acts like a context register:
  /// the executor switches it per admitted query.
  RamPartitionId active_partition() const { return active_; }
  void SetActivePartition(RamPartitionId id) { active_ = id; }

  /// RAII active-partition switch (restores the previous partition).
  class PartitionScope {
   public:
    PartitionScope(RamManager* ram, RamPartitionId id)
        : ram_(ram), previous_(ram->active_partition()) {
      ram_->SetActivePartition(id);
    }
    ~PartitionScope() { ram_->SetActivePartition(previous_); }
    PartitionScope(const PartitionScope&) = delete;
    PartitionScope& operator=(const PartitionScope&) = delete;

   private:
    RamManager* ram_;
    RamPartitionId previous_;
  };

  uint32_t total_buffers() const { return total_buffers_; }
  /// Buffers the active partition may still acquire: the minimum of the
  /// physical free count and the partition's headroom (remaining quota +
  /// free shared reserve). The adaptive operators (merge reduction, Bloom
  /// sizing, MJoin chunking) size themselves from this, so a session under
  /// a small quota degrades to more passes instead of failing.
  uint32_t free_buffers() const;
  /// Buffers free in the arena, ignoring partition quotas.
  uint32_t physical_free_buffers() const {
    return total_buffers_ - used_buffers_;
  }
  uint32_t used_buffers() const { return used_buffers_; }
  uint32_t peak_used_buffers() const { return peak_used_buffers_; }
  size_t buffer_size() const { return buffer_size_; }
  size_t ram_bytes() const { return ram_bytes_; }

  /// Buffers not pledged to any partition (the shared reserve's size).
  uint32_t reserve_buffers() const { return total_buffers_ - pledged_; }
  /// Unused part of the shared reserve (what partition overflow and
  /// shared-partition acquisitions still have available).
  uint32_t reserve_free_buffers() const;

  uint32_t partition_quota(RamPartitionId id) const;
  uint32_t partition_used(RamPartitionId id) const;
  const std::string& partition_name(RamPartitionId id) const;

  /// The buffer budget a session on `id` can *plan* against: its pledged
  /// quota, or the shared reserve's size for unpartitioned sessions. A
  /// static property of the partition layout (not current occupancy), so
  /// planner/executor sizing derived from it stays deterministic across
  /// identical visible inputs — the relational tail's spill budget is
  /// computed from this.
  uint32_t partition_budget_buffers(RamPartitionId id) const {
    uint32_t quota = partition_quota(id);
    return quota != 0 ? quota : reserve_buffers();
  }

  /// Zeros the peak-usage watermark (between queries).
  void ResetPeak() { peak_used_buffers_ = used_buffers_; }

  /// Optional fault source consulted at the top of Acquire (an injected
  /// RAM fault is a tagged ResourceExhausted, the same shape as a real
  /// quota exhaustion). Owned by the enclosing SecureDevice; may be null.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Diagnostic: current owners and their buffer counts (live allocations
  /// only, in arena order).
  std::vector<std::pair<std::string, uint32_t>> Owners() const;
  /// Owners rendered as "a=2, b=1" (or "none") for error messages.
  std::string DescribeOwners() const;

 private:
  friend class BufferHandle;
  void ReleaseBuffers(uint8_t* data, uint32_t buffers);

  struct Partition {
    std::string name;
    uint32_t quota = 0;
    uint32_t used = 0;
    bool live = false;
  };
  struct Allocation {
    std::string owner;
    uint32_t buffers = 0;
    RamPartitionId partition = kSharedRamPartition;
  };

  /// Remaining headroom of `id`: quota left plus free reserve.
  uint32_t HeadroomOf(RamPartitionId id) const;

  size_t ram_bytes_;
  size_t buffer_size_;
  uint32_t total_buffers_;
  uint32_t used_buffers_ = 0;
  uint32_t peak_used_buffers_ = 0;
  uint32_t pledged_ = 0;      ///< sum of live partition quotas
  uint32_t shared_used_ = 0;  ///< buffers held by shared-partition owners
  RamPartitionId active_ = kSharedRamPartition;
  FaultInjector* injector_ = nullptr;
  std::vector<uint8_t> arena_;
  std::vector<bool> buffer_used_;  // per-buffer occupancy
  std::vector<Partition> partitions_;  // id - 1 indexes this
  std::map<uint32_t, Allocation> allocations_;  // keyed by first buffer
};

}  // namespace ghostdb::device

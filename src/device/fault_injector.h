// Deterministic fault injection for the Secure device stack.
//
// Every SecureDevice owns one FaultInjector. Sites in the flash simulator,
// the RAM manager, the channel, the page allocator, the run writer, and the
// scatter-gather orchestration consult it before doing their work; the
// injector answers from a seeded counter-based schedule (splitmix64 over
// (seed, site, draw index)), so a given config replays the exact same fault
// sequence on every run — a failing chaos schedule is a repro, not a flake.
//
// Fault taxonomy:
//  * flash read/write faults — transient (absorbed by the device's bounded
//    retry-with-backoff, charged to the simulated clock) or permanent
//    (surface as a tagged IOError);
//  * torn run writes — a RunWriter page flush fails mid-run, leaving
//    allocated extents for the abort path to reclaim;
//  * page-allocation faults — PageAllocator::Alloc fails;
//  * channel stalls — a transfer costs extra simulated time (the USB layer
//    retries transparently; stalls never error and never touch the
//    transcript);
//  * RAM-acquire faults — RamManager::Acquire fails with a tagged
//    ResourceExhausted;
//  * shard resets — a whole device drops out at the start of a scatter leg.
//
// Injected errors carry the kTag marker in their Status message, so upper
// layers can tell a scheduled fault from a genuine one: under the padded
// volume modes GhostDB erases the failed attempt's transcript range and
// deterministically replays the query with the injector masked, making
// fault occurrence and fault kind invisible on the wire.
//
// The injector is disarmed during construction and the Build()/load phase;
// GhostDB::Build() arms it (per shard, each on its own seed lane) just
// before the database becomes queryable. All query-time access is
// serialized by the device's channel-arbiter admission, so the counters
// need no atomics.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"

namespace ghostdb::device {

/// Where a fault can fire. One deterministic draw stream per site.
enum class FaultSite : uint8_t {
  kFlashRead = 0,   ///< FlashDevice::ReadPage
  kFlashWrite,      ///< FlashDevice::WritePage
  kPageAlloc,       ///< storage::PageAllocator::Alloc
  kRunWrite,        ///< storage::RunWriter page flush (torn run write)
  kChannelStall,    ///< Channel::Transfer (simulated-time stall, no error)
  kRamAcquire,      ///< RamManager::Acquire
  kShardReset,      ///< scatter leg entry in RunSelectSharded
};
inline constexpr size_t kFaultSiteCount = 7;

const char* FaultSiteName(FaultSite site);

/// What a draw produced. Transient flash faults are retried (with backoff)
/// up to the configured budget; everything else that fires is terminal for
/// the operation.
enum class FaultKind : uint8_t { kNone = 0, kTransient, kPermanent };

/// Seeded fault schedule. All-zero probabilities (the default) make the
/// injector free to keep in the hot path: one armed/enabled check per site.
struct FaultConfig {
  bool enabled = false;  ///< master switch; false = all sites inert
  uint64_t seed = 0;     ///< schedule seed (per shard: seed + lane offset)
  // Per-site fire probabilities in [0, 1], drawn once per operation.
  double flash_read_p = 0.0;
  double flash_write_p = 0.0;
  double page_alloc_p = 0.0;
  double run_write_p = 0.0;
  double channel_stall_p = 0.0;
  double ram_acquire_p = 0.0;
  double shard_reset_p = 0.0;
  /// Of the flash faults that fire, the fraction that are transient
  /// (retryable); the rest are permanent.
  double transient_fraction = 0.75;
  /// Retry transient flash faults (with exponential backoff charged to the
  /// simulated clock) before giving up.
  bool retry_enabled = true;
  /// Retries allowed per flash operation before a transient fault
  /// escalates to an error. Must be nonzero while retry_enabled.
  uint32_t flash_retry_budget = 3;
  /// Base backoff before re-issuing a faulted flash operation; doubles per
  /// retry. Charged to the "fault-retry" clock category.
  SimNanos retry_backoff = 100 * kMicrosecond;
  /// Simulated time one channel stall costs ("fault-stall" category).
  SimNanos channel_stall = 500 * kMicrosecond;
};

/// Rejects malformed schedules (probabilities outside [0, 1], a zero or
/// absurd retry budget with retries enabled) with InvalidArgument. Called
/// by GhostDB::Build() alongside ValidateExecConfig.
Status ValidateFaultConfig(const FaultConfig& config);

/// \brief Deterministic per-device fault source. See file comment.
class FaultInjector {
 public:
  /// Marker every injected error's Status message carries.
  static constexpr const char* kTag = "[injected fault]";

  FaultInjector(FaultConfig config, SimClock* clock)
      : config_(config), clock_(clock), seed_(config.seed) {}

  /// True when `status` was produced by a fault injector (any device's):
  /// the replay path recovers these and only these — genuine errors keep
  /// their documented residual visibility.
  static bool IsInjectedFault(const Status& status);

  /// Restarts the schedule from `seed` (draw counters reset). Build() uses
  /// this to give each shard its own seed lane.
  void Reseed(uint64_t seed);

  /// Armed = the probabilistic schedule is live. The injector is built
  /// disarmed so the load phase stays fault-free; one-shot faults armed
  /// via ArmOnce() fire regardless (targeted unit tests need no config).
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  /// Queues exactly one fault of `kind` at `site`, firing after skipping
  /// `after_draws` draws at that site. Works while disarmed and with
  /// enabled=false.
  void ArmOnce(FaultSite site, FaultKind kind, uint64_t after_draws = 0);

  /// Suppresses every draw (all sites report kNone) while in scope — the
  /// masked-replay error path. Nests.
  class MaskScope {
   public:
    explicit MaskScope(FaultInjector* injector) : injector_(injector) {
      injector_->mask_depth_ += 1;
    }
    ~MaskScope() { injector_->mask_depth_ -= 1; }
    MaskScope(const MaskScope&) = delete;
    MaskScope& operator=(const MaskScope&) = delete;

   private:
    FaultInjector* injector_;
  };

  /// Flash read/write entry hook: absorbs transient faults with the
  /// configured retry budget (backoff charged to the clock), errors on
  /// permanent faults or an exhausted budget. `site` must be kFlashRead or
  /// kFlashWrite.
  Status OnFlashOp(FaultSite site);

  /// Single-shot error sites (page alloc, run write, RAM acquire): returns
  /// a tagged error when the draw fires — ResourceExhausted for
  /// kRamAcquire (an out-of-RAM shape upper layers already handle),
  /// IOError otherwise. `what` names the failed operation.
  Status CheckSite(FaultSite site, const std::string& what);

  /// Channel-transfer hook: a firing draw charges one stall's worth of
  /// simulated time. Stalls never error — the wire image is unchanged.
  void MaybeStallChannel();

  /// Scatter-leg entry hook: true when this leg's device "resets".
  bool DrawShardReset();

  // Exact counters since construction / Reseed().
  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t flash_retries() const { return flash_retries_; }
  uint64_t channel_stalls() const { return channel_stalls_; }

  const FaultConfig& config() const { return config_; }

 private:
  /// One deterministic draw at `site` (advances that site's counter).
  FaultKind Draw(FaultSite site);
  double SiteProbability(FaultSite site) const;

  struct OneShot {
    FaultKind kind = FaultKind::kNone;
    uint64_t after = 0;
    bool pending = false;
  };

  FaultConfig config_;
  SimClock* clock_;
  uint64_t seed_;
  bool armed_ = false;
  uint32_t mask_depth_ = 0;
  std::array<uint64_t, kFaultSiteCount> draws_{};
  std::array<OneShot, kFaultSiteCount> one_shot_{};
  uint64_t faults_injected_ = 0;
  uint64_t flash_retries_ = 0;
  uint64_t channel_stalls_ = 0;
};

}  // namespace ghostdb::device

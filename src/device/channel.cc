#include "device/channel.h"

#include <algorithm>
#include <cstddef>

#include "crypto/hash.h"
#include "device/fault_injector.h"

namespace ghostdb::device {

void Channel::Transfer(Direction direction, const std::string& label,
                       const uint8_t* payload, uint64_t bytes) {
  uint64_t digest = 0;
  if (payload != nullptr) {
    digest = crypto::HashBytes(payload, bytes, /*seed=*/0x6864);
  }
  transcript_.push_back(
      ChannelMessage{direction, label, bytes, digest, current_session_});
  if (throughput_ > 0 && bytes > 0) {
    auto scope = clock_->Enter("comm");
    clock_->Advance(static_cast<SimNanos>(
        static_cast<double>(bytes) / throughput_ * kSecond));
  }
  if (injector_ != nullptr) {
    injector_->MaybeStallChannel();
  }
}

void Channel::EraseTranscript(size_t first, size_t count) {
  first = std::min(first, transcript_.size());
  count = std::min(count, transcript_.size() - first);
  transcript_.erase(
      transcript_.begin() + static_cast<std::ptrdiff_t>(first),
      transcript_.begin() + static_cast<std::ptrdiff_t>(first + count));
}

uint64_t Channel::BytesMoved(Direction direction) const {
  uint64_t total = 0;
  for (const auto& m : transcript_) {
    if (m.direction == direction) total += m.bytes;
  }
  return total;
}

}  // namespace ghostdb::device

// The Secure smart USB key: clock + RAM + flash + channel, wired together
// per the paper's Figure 2 and Table 1.
#pragma once

#include <memory>

#include "common/sim_clock.h"
#include "common/units.h"
#include "device/channel.h"
#include "device/channel_arbiter.h"
#include "device/fault_injector.h"
#include "device/ram_manager.h"
#include "flash/flash.h"

namespace ghostdb::device {

/// Hardware parameters of the Secure device (Table 1 defaults).
struct DeviceConfig {
  size_t ram_bytes = 64 * kKiB;  ///< Secure-chip RAM (32 buffers of 2 KB).
  size_t buffer_size = 2048;     ///< One flash page.
  /// USB 2.0 full speed = 12 Mb/s = 1.5 MB/s.
  double channel_throughput_bytes_per_sec = 1.5e6;
  flash::FlashConfig flash;
  /// Seeded fault schedule; inert by default (enabled=false, all
  /// probabilities zero).
  FaultConfig fault;
};

/// \brief The smart USB key: owns the simulated clock and all device
/// resources. Query processing on Secure goes through this object, so the
/// RAM budget and I/O costs cannot be bypassed.
class SecureDevice {
 public:
  explicit SecureDevice(DeviceConfig config)
      : config_(config),
        clock_(std::make_unique<SimClock>()),
        ram_(config.ram_bytes, config.buffer_size),
        flash_(config.flash, clock_.get()),
        channel_(clock_.get(), config.channel_throughput_bytes_per_sec),
        arbiter_(&channel_),
        injector_(config.fault, clock_.get()) {
    // The "main" pseudo-session (-1): direct Query()/Prepare() calls and
    // other pre-session surfaces arbitrate like everyone else, so all
    // query-time device access is serialized through one gate.
    arbiter_.Register(-1, "main");
    flash_.set_fault_injector(&injector_);
    channel_.set_fault_injector(&injector_);
    ram_.set_fault_injector(&injector_);
  }

  const DeviceConfig& config() const { return config_; }
  SimClock& clock() { return *clock_; }
  RamManager& ram() { return ram_; }
  flash::FlashDevice& flash() { return flash_; }
  Channel& channel() { return channel_; }
  ChannelArbiter& arbiter() { return arbiter_; }
  /// Only touch under this device's arbiter admission (or before Build()
  /// completes): the injector has no internal synchronization.
  FaultInjector& fault_injector() { return injector_; }

 private:
  DeviceConfig config_;
  std::unique_ptr<SimClock> clock_;
  RamManager ram_;
  flash::FlashDevice flash_;
  Channel channel_;
  ChannelArbiter arbiter_;
  FaultInjector injector_;
};

}  // namespace ghostdb::device

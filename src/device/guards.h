// RAII guards for GhostDB's three paired-resource primitives.
//
// leakcheck's paired-resource rule (rule 3) forbids calling
// PageAllocator::Alloc/Free, RamManager::Acquire/AcquireOne, and
// ChannelArbiter::Admit/Release anywhere except through these guards:
// the functions in guards.cc are the only ones annotated
// GHOSTDB_RESOURCE_IMPL, so a raw pairing anywhere else in src/ is a
// finding. PR 9 hand-audited every executor/operator/merge error path for
// leaked pages and stranded admissions; the guards make that audit a
// compile-time property instead of a review discipline.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "core/annotations.h"
#include "device/channel_arbiter.h"
#include "device/ram_manager.h"
#include "storage/page_allocator.h"

namespace ghostdb::device {

/// \brief Owns a contiguous flash page extent; frees it on destruction.
///
/// Two ownership transfers cover the non-scoped lifetimes in the storage
/// layer: Detach() hands the extent to a long-lived structure (RunRef /
/// FixedTableRef extents), and Adopt() re-wraps such an extent so it can be
/// freed through the guard (FreeRun, tail trims, abort sweeps).
class PageGuard {
 public:
  PageGuard() = default;

  /// Allocates `count` pages under `tag`. The guard owns them.
  GHOSTDB_RESOURCE_IMPL static Result<PageGuard> Alloc(
      storage::PageAllocator* allocator, uint32_t count,
      const std::string& tag);

  /// Wraps an extent currently owned elsewhere so the guard frees it.
  static PageGuard Adopt(storage::PageAllocator* allocator, uint32_t first,
                         uint32_t count, std::string tag);

  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return allocator_ != nullptr && count_ > 0; }
  uint32_t first() const { return first_; }
  uint32_t count() const { return count_; }

  /// Frees the extent now and disarms the guard. Idempotent.
  GHOSTDB_RESOURCE_IMPL Status Free();

  /// Frees the pages past the first `keep` (a writer trimming the unused
  /// tail of its preallocated extent). The guard keeps the head.
  GHOSTDB_RESOURCE_IMPL Status TrimTail(uint32_t keep);

  /// Transfers ownership out: returns (first, count) and disarms the
  /// guard. The caller's long-lived structure now owns the pages.
  std::pair<uint32_t, uint32_t> Detach();

 private:
  PageGuard(storage::PageAllocator* allocator, uint32_t first, uint32_t count,
            std::string tag)
      : allocator_(allocator),
        first_(first),
        count_(count),
        tag_(std::move(tag)) {}

  storage::PageAllocator* allocator_ = nullptr;
  uint32_t first_ = 0;
  uint32_t count_ = 0;
  std::string tag_;
};

/// \brief Owns secure-RAM buffers acquired from a RamManager.
///
/// Wraps the BufferHandle the manager vends; the handle type itself stays
/// an implementation detail of the RAM layer, and operator/executor code
/// holds RamGuards instead (leakcheck flags raw Acquire calls).
class RamGuard {
 public:
  RamGuard() = default;

  /// Acquires `buffers` contiguous buffers charged to the calling session.
  GHOSTDB_RESOURCE_IMPL static Result<RamGuard> Acquire(RamManager* ram,
                                                        uint32_t buffers,
                                                        std::string owner);

  /// Acquires a single buffer.
  GHOSTDB_RESOURCE_IMPL static Result<RamGuard> AcquireOne(RamManager* ram,
                                                           std::string owner);

  RamGuard(RamGuard&&) noexcept = default;
  RamGuard& operator=(RamGuard&&) noexcept = default;

  bool valid() const { return handle_.valid(); }
  uint8_t* data() { return handle_.data(); }
  const uint8_t* data() const { return handle_.data(); }
  size_t size() const { return handle_.size(); }
  uint32_t buffer_count() const { return handle_.buffer_count(); }

  /// Returns the buffers to the manager now (idempotent; the destructor
  /// otherwise does it).
  void Release() { handle_.Release(); }

 private:
  explicit RamGuard(BufferHandle handle) : handle_(std::move(handle)) {}

  BufferHandle handle_;
};

/// \brief Scoped admission to the channel arbiter: admits the session on
/// construction, releases it on destruction.
///
/// Replaces the old ChannelArbiter::Admission nested type; the deferred
/// engagement pattern (admit only once a leg actually runs) is spelled
/// `std::optional<AdmissionGuard>` + emplace.
class AdmissionGuard {
 public:
  GHOSTDB_RESOURCE_IMPL AdmissionGuard(ChannelArbiter* arbiter,
                                       int32_t session, uint32_t weight);
  GHOSTDB_RESOURCE_IMPL ~AdmissionGuard();

  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

 private:
  ChannelArbiter* arbiter_;
  int32_t session_;
};

}  // namespace ghostdb::device

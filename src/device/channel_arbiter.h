// The channel arbiter: admits per-session access to the device (channel +
// MCU + RAM + flash) one session at a time.
//
// Resource arbitration is a classic side channel: if the scheduler's
// decisions depended on hidden data (result sizes, selectivities, timing of
// hidden work), the *order* of messages on the USB link would leak what the
// per-message contents do not. The arbiter therefore decides from visible
// information only:
//
//   * the set of sessions with a pending request (who is asking),
//   * each request's declared weight — a pure function of the visible query
//     shape (the number of FROM tables), declared before execution,
//   * the arbiter's own state (registration order, deficit counters).
//
// The policy is deficit round-robin: sessions are visited in registration
// order; a visit earns one credit, and a session whose accumulated credit
// covers its pending request's weight is admitted (heavier shapes are
// admitted proportionally less often). Nothing derived from hidden data —
// not result sizes, not execution outcomes, not even whether a query
// erred — ever feeds back into the policy, so for a fixed submission
// pattern the interleaving (and with it the global transcript) is a
// function of visible inputs alone. The leak tests check exactly this:
// interleaved transcripts, session tags included, must be byte-identical
// across databases differing only in any session's hidden data.
//
// Two driving modes share the one policy:
//   * PickNext() — the deterministic scheduler (GhostDB::DrainSessions,
//     QueryBatch) asks the arbiter whom to serve next among the sessions
//     with queued statements;
//   * Admit()/Release() — concurrently driven sessions block until granted;
//     contention among simultaneous waiters resolves by the same DRR
//     policy. Admission doubles as the device's mutual exclusion: all
//     query-time device access happens between Admit and Release.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "device/channel.h"

namespace ghostdb::device {

/// \brief Deterministic, visible-only admission control for the channel.
class ChannelArbiter {
 public:
  /// `channel` receives the admitted session's id as the transcript tag.
  explicit ChannelArbiter(Channel* channel);

  /// Adds a session to the cycle (cycle position = registration order).
  void Register(int32_t session, std::string name);
  /// Removes a session. The session must not be waiting or admitted.
  void Unregister(int32_t session);

  /// Deficit-round-robin pick among `pending` (session id -> declared
  /// weight, in a caller-fixed order). Deterministic: depends only on the
  /// arbiter's state and the argument. `pending` must be non-empty. The
  /// pick advances the DRR credit state but not the admission counters —
  /// the caller is expected to follow up with Admit() for the picked
  /// session (uncontended, so the grant does not re-run the policy).
  int32_t PickNext(
      const std::vector<std::pair<int32_t, uint32_t>>& pending);

  /// Blocks until `session` is granted exclusive device access. `weight`
  /// is the declared shape weight of the request (>= 1). Reentrant
  /// admission is a caller bug (the device would deadlock); sessions admit
  /// once per query.
  void Admit(int32_t session, uint32_t weight);

  /// Releases the device and hands it to the next waiter (if any).
  void Release(int32_t session);

  // RAII admission lives in device/guards.h (AdmissionGuard): leakcheck's
  // paired-resource rule only permits Admit/Release through it.

  /// Queries admitted for `session` so far.
  uint64_t admissions(int32_t session) const;
  /// Total admissions across all sessions.
  uint64_t total_admissions() const;
  size_t registered_sessions() const;

 private:
  struct SessionState {
    int32_t id;
    std::string name;
    uint64_t deficit = 0;
    uint64_t admissions = 0;
  };
  struct Waiter {
    int32_t session;
    uint32_t weight;
    uint64_t ticket;  ///< unique per request; grants are by ticket so two
                      ///< waiters sharing a session id can't both proceed
  };

  int32_t PickNextLocked(
      const std::vector<std::pair<int32_t, uint32_t>>& pending, bool count);
  void TryGrantLocked();
  size_t IndexOfLocked(int32_t session) const;

  Channel* channel_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<SessionState> sessions_;  // registration order = cycle order
  size_t cursor_ = 0;                   // DRR position in sessions_
  std::vector<Waiter> waiting_;         // arrival order (policy reorders)
  bool busy_ = false;
  uint64_t next_ticket_ = 1;
  uint64_t granted_ticket_ = 0;  ///< 0 = none
  uint64_t total_admissions_ = 0;
};

}  // namespace ghostdb::device

// Typed values with fixed-width on-flash encodings.
//
// GhostDB follows the paper's storage math: every column has a declared
// byte width (e.g. char(20), int(4)), rows are fixed-width, and 4-byte
// surrogate ids (Table 1). Strings use binary collation and are
// space-padded to their declared width.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace ghostdb::catalog {

/// Column data types.
enum class DataType : uint8_t { kInt32, kInt64, kDouble, kString };

/// Human-readable type name ("INT", "BIGINT", "DOUBLE", "CHAR").
std::string_view DataTypeName(DataType type);

/// Default/intrinsic width in bytes (strings take their declared width).
uint32_t FixedWidth(DataType type);

/// Three-way comparison of two encoded cells of the same type/width without
/// materializing Values (strings memcmp their padded encodings; numerics
/// decode cheaply). Used by index builders and the B+-tree.
int CompareEncoded(DataType type, uint32_t width, const uint8_t* a,
                   const uint8_t* b);

/// \brief A typed SQL value.
class Value {
 public:
  Value() : data_(int32_t{0}) {}

  static Value Int32(int32_t v) { return Value(v); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  DataType type() const {
    switch (data_.index()) {
      case 0:
        return DataType::kInt32;
      case 1:
        return DataType::kInt64;
      case 2:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  int32_t AsInt32() const { return std::get<int32_t>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Three-way comparison; both values must have the same type. Strings use
  /// binary collation over their space-padded encodings (trailing spaces are
  /// insignificant).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return type() == other.type() && Compare(other) == 0;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Encodes into exactly `width` bytes at `dst` (little-endian for
  /// numerics; space-padded / truncated for strings).
  void Encode(uint8_t* dst, uint32_t width) const;

  /// Decodes a value of `type` from `width` bytes (strings lose trailing
  /// spaces).
  static Value Decode(const uint8_t* src, DataType type, uint32_t width);

  /// Renders for EXPLAIN / error messages.
  std::string ToString() const;

 private:
  explicit Value(int32_t v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<int32_t, int64_t, double, std::string> data_;
};

}  // namespace ghostdb::catalog

// Column statistics for selectivity estimation: an equi-depth quantile
// sketch built at load time. The paper assumes selectivities are known when
// choosing Pre- vs Post-filtering; we estimate them the way a real engine
// would (the cost-based optimizer is listed as future work in the paper and
// implemented here as an extension).
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/value.h"

namespace ghostdb::catalog {

/// Comparison operators appearing in predicates.
enum class CompareOp : uint8_t {
  kEq,   ///< =
  kNe,   ///< <> / !=
  kLt,   ///< <
  kLe,   ///< <=
  kGt,   ///< >
  kGe,   ///< >=
};

/// Renders the operator ("=", "<", ...).
std::string_view CompareOpName(CompareOp op);

/// True if `lhs op rhs` holds.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// True if `cmp op 0` holds, where `cmp` is a three-way comparison result
/// (Value::Compare / CompareEncoded). Lets scans evaluate predicates on
/// encoded cells without materializing a Value per row.
bool EvalCompareResult(int cmp, CompareOp op);

/// \brief Equi-depth quantile sketch over one column.
class ColumnStats {
 public:
  /// Builds from a full column scan (values may be in any order). Keeps at
  /// most `max_quantiles` boundary values.
  static ColumnStats Build(std::vector<Value> values,
                           size_t max_quantiles = 256);

  /// Estimated fraction of rows satisfying (column op literal), in [0, 1].
  double EstimateSelectivity(CompareOp op, const Value& literal) const;

  uint64_t row_count() const { return row_count_; }
  uint64_t distinct_estimate() const { return distinct_estimate_; }
  bool empty() const { return row_count_ == 0; }

 private:
  uint64_t row_count_ = 0;
  uint64_t distinct_estimate_ = 0;
  std::vector<Value> quantiles_;  // sorted boundaries, equi-depth
};

}  // namespace ghostdb::catalog

#include "catalog/value.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace ghostdb::catalog {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "INT";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "CHAR";
  }
  return "?";
}

uint32_t FixedWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 0;  // declared per column
  }
  return 0;
}

namespace {

// Compares strings under space-padded semantics (CHAR(n) collation).
int ComparePadded(const std::string& a, const std::string& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    uint8_t ca = i < a.size() ? static_cast<uint8_t>(a[i]) : ' ';
    uint8_t cb = i < b.size() ? static_cast<uint8_t>(b[i]) : ' ';
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  return 0;
}

template <typename T>
int Spaceship(T a, T b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int CompareEncoded(DataType type, uint32_t width, const uint8_t* a,
                   const uint8_t* b) {
  switch (type) {
    case DataType::kInt32: {
      int32_t va = static_cast<int32_t>(DecodeFixed32(a));
      int32_t vb = static_cast<int32_t>(DecodeFixed32(b));
      return Spaceship(va, vb);
    }
    case DataType::kInt64: {
      int64_t va = static_cast<int64_t>(DecodeFixed64(a));
      int64_t vb = static_cast<int64_t>(DecodeFixed64(b));
      return Spaceship(va, vb);
    }
    case DataType::kDouble:
      return Spaceship(DecodeDouble(a), DecodeDouble(b));
    case DataType::kString:
      return std::memcmp(a, b, width);
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  switch (type()) {
    case DataType::kInt32:
      return Spaceship(AsInt32(), other.AsInt32());
    case DataType::kInt64:
      return Spaceship(AsInt64(), other.AsInt64());
    case DataType::kDouble:
      return Spaceship(AsDouble(), other.AsDouble());
    case DataType::kString:
      return ComparePadded(AsString(), other.AsString());
  }
  return 0;
}

void Value::Encode(uint8_t* dst, uint32_t width) const {
  switch (type()) {
    case DataType::kInt32:
      EncodeFixed32(dst, static_cast<uint32_t>(AsInt32()));
      break;
    case DataType::kInt64:
      EncodeFixed64(dst, static_cast<uint64_t>(AsInt64()));
      break;
    case DataType::kDouble:
      EncodeDouble(dst, AsDouble());
      break;
    case DataType::kString: {
      const std::string& s = AsString();
      size_t copy = std::min<size_t>(s.size(), width);
      std::memcpy(dst, s.data(), copy);
      std::memset(dst + copy, ' ', width - copy);
      break;
    }
  }
}

Value Value::Decode(const uint8_t* src, DataType type, uint32_t width) {
  switch (type) {
    case DataType::kInt32:
      return Int32(static_cast<int32_t>(DecodeFixed32(src)));
    case DataType::kInt64:
      return Int64(static_cast<int64_t>(DecodeFixed64(src)));
    case DataType::kDouble:
      return Double(DecodeDouble(src));
    case DataType::kString: {
      size_t len = width;
      while (len > 0 && src[len - 1] == ' ') --len;
      return String(std::string(reinterpret_cast<const char*>(src), len));
    }
  }
  return Value();
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt32:
      return std::to_string(AsInt32());
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace ghostdb::catalog

#include "catalog/schema.h"

#include <algorithm>
#include <set>

namespace ghostdb::catalog {

std::optional<ColumnId> TableDef::FindColumn(
    const std::string& column_name) const {
  for (ColumnId i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return i;
  }
  return std::nullopt;
}

Status Schema::AddTable(TableDef def) {
  if (finalized_) {
    return Status::InvalidArgument("schema is finalized");
  }
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (by_name_.count(def.name)) {
    return Status::AlreadyExists("table '" + def.name + "' already declared");
  }
  std::set<std::string> seen;
  for (auto& col : def.columns) {
    if (col.name == "id") {
      return Status::InvalidArgument(
          "column name 'id' is reserved for the surrogate key (table '" +
          def.name + "')");
    }
    if (!seen.insert(col.name).second) {
      return Status::AlreadyExists("duplicate column '" + col.name +
                                   "' in table '" + def.name + "'");
    }
    if (col.type == DataType::kString && col.width == 0) {
      return Status::InvalidArgument("CHAR column '" + col.name +
                                     "' needs a positive width");
    }
    if (col.type != DataType::kString) {
      col.width = FixedWidth(col.type);
    }
    // An entirely-hidden table hides every column.
    if (def.hidden) col.hidden = true;
  }
  by_name_[def.name] = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::Finalize() {
  if (finalized_) return Status::OK();
  if (tables_.empty()) {
    return Status::InvalidArgument("schema has no tables");
  }
  tree_.assign(tables_.size(), TableTreeInfo{});

  // Resolve foreign keys -> parent/child edges.
  for (TableId t = 0; t < tables_.size(); ++t) {
    for (ColumnId c = 0; c < tables_[t].columns.size(); ++c) {
      const ColumnDef& col = tables_[t].columns[c];
      if (!col.is_foreign_key()) continue;
      if (col.type != DataType::kInt32) {
        return Status::InvalidArgument(
            "foreign key '" + tables_[t].name + "." + col.name +
            "' must be INT (4-byte surrogate ids)");
      }
      auto it = by_name_.find(col.references);
      if (it == by_name_.end()) {
        return Status::InvalidArgument("foreign key '" + tables_[t].name +
                                       "." + col.name +
                                       "' references unknown table '" +
                                       col.references + "'");
      }
      TableId child = it->second;
      if (child == t) {
        return Status::InvalidArgument("self-referencing foreign key in '" +
                                       tables_[t].name + "'");
      }
      if (tree_[child].parent != kInvalidTable) {
        return Status::InvalidArgument(
            "table '" + tables_[child].name +
            "' is referenced by more than one table; the schema must be a "
            "tree (paper section 3)");
      }
      tree_[child].parent = t;
      tree_[child].parent_fk = c;
      tree_[t].children.push_back(child);
    }
  }

  // Exactly one root: a table with no parent. (Tables with neither parent
  // nor children are also roots, which we reject for multi-table schemas.)
  std::vector<TableId> roots;
  for (TableId t = 0; t < tables_.size(); ++t) {
    if (tree_[t].parent == kInvalidTable) roots.push_back(t);
  }
  if (roots.size() != 1) {
    return Status::InvalidArgument(
        "schema must form a single tree; found " +
        std::to_string(roots.size()) + " root candidates");
  }
  root_ = roots[0];

  // Depths + ancestors via BFS from the root; also detects unreachable
  // tables (cycles among non-roots would leave parents set but disconnected
  // from the root).
  std::vector<bool> reached(tables_.size(), false);
  std::vector<TableId> queue = {root_};
  reached[root_] = true;
  for (size_t q = 0; q < queue.size(); ++q) {
    TableId t = queue[q];
    for (TableId child : tree_[t].children) {
      if (reached[child]) {
        return Status::InvalidArgument("cycle detected in schema tree");
      }
      reached[child] = true;
      tree_[child].depth = tree_[t].depth + 1;
      tree_[child].ancestors = tree_[t].ancestors;
      tree_[child].ancestors.insert(tree_[child].ancestors.begin(), t);
      queue.push_back(child);
    }
  }
  for (TableId t = 0; t < tables_.size(); ++t) {
    if (!reached[t]) {
      return Status::InvalidArgument("table '" + tables_[t].name +
                                     "' is not connected to the schema tree");
    }
  }

  // Descendants: pre-order DFS below each table.
  for (TableId t = 0; t < tables_.size(); ++t) {
    std::vector<TableId> stack(tree_[t].children.rbegin(),
                               tree_[t].children.rend());
    while (!stack.empty()) {
      TableId d = stack.back();
      stack.pop_back();
      tree_[t].descendants.push_back(d);
      for (auto it = tree_[d].children.rbegin(); it != tree_[d].children.rend();
           ++it) {
        stack.push_back(*it);
      }
    }
  }

  finalized_ = true;
  return Status::OK();
}

Result<TableId> Schema::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown table '" + name + "'");
  }
  return it->second;
}

std::vector<ColumnId> Schema::VisibleColumns(TableId id) const {
  std::vector<ColumnId> out;
  const auto& cols = tables_[id].columns;
  for (ColumnId c = 0; c < cols.size(); ++c) {
    if (!cols[c].hidden) out.push_back(c);
  }
  return out;
}

std::vector<ColumnId> Schema::HiddenColumns(TableId id) const {
  std::vector<ColumnId> out;
  const auto& cols = tables_[id].columns;
  for (ColumnId c = 0; c < cols.size(); ++c) {
    if (cols[c].hidden) out.push_back(c);
  }
  return out;
}

uint32_t Schema::HiddenRowWidth(TableId id) const {
  uint32_t width = 0;
  for (ColumnId c : HiddenColumns(id)) width += tables_[id].columns[c].width;
  return width;
}

uint32_t Schema::VisibleRowWidth(TableId id) const {
  uint32_t width = 0;
  for (ColumnId c : VisibleColumns(id)) width += tables_[id].columns[c].width;
  return width;
}

uint32_t Schema::FullRowWidth(TableId id) const {
  uint32_t width = kRowIdWidth;
  for (const auto& col : tables_[id].columns) width += col.width;
  return width;
}

bool Schema::IsAncestorOrSelf(TableId table, TableId maybe_ancestor) const {
  if (table == maybe_ancestor) return true;
  const auto& anc = tree_[table].ancestors;
  return std::find(anc.begin(), anc.end(), maybe_ancestor) != anc.end();
}

std::string Schema::ToDdl() const {
  std::string out;
  for (const auto& t : tables_) {
    out += "CREATE TABLE " + t.name + " (id INT";
    for (const auto& c : t.columns) {
      out += ", " + c.name + " ";
      if (c.type == DataType::kString) {
        out += "CHAR(" + std::to_string(c.width) + ")";
      } else {
        out += std::string(DataTypeName(c.type));
      }
      if (c.is_foreign_key()) out += " REFERENCES " + c.references;
      if (c.hidden) out += " HIDDEN";
    }
    out += ");\n";
  }
  return out;
}

}  // namespace ghostdb::catalog

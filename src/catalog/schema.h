// Schema: tables, HIDDEN annotations, tree-structure validation, and the
// Visible/Hidden vertical partitioning of section 2.1.
//
// The paper's query model (section 3, Fig 3) assumes a tree-structured
// schema: one Root table (T0, the largest/central table) plus Node tables
// reachable from it through key/foreign-key joins. Every table carries a
// dense 4-byte surrogate id, replicated on both Untrusted and Secure.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "common/status.h"

namespace ghostdb::catalog {

/// Dense table index within a schema.
using TableId = uint32_t;
/// Dense column index within a table (excludes the implicit `id`).
using ColumnId = uint32_t;
/// Dense 4-byte surrogate tuple id (paper Table 1).
using RowId = uint32_t;

constexpr uint32_t kRowIdWidth = 4;
constexpr TableId kInvalidTable = static_cast<TableId>(-1);

/// One column declaration.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt32;
  uint32_t width = 4;        ///< On-flash width in bytes.
  bool hidden = false;       ///< Declared HIDDEN in CREATE TABLE.
  /// Non-empty when this column is a foreign key: the referenced table.
  std::string references;

  bool is_foreign_key() const { return !references.empty(); }
};

/// One table declaration. The surrogate primary key `id` is implicit and
/// replicated on both sides (never listed in `columns`).
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  bool hidden = false;  ///< Entire table declared HIDDEN.

  /// Looks up a column index by name.
  std::optional<ColumnId> FindColumn(const std::string& column_name) const;
};

/// Derived tree metadata for one table.
struct TableTreeInfo {
  TableId parent = kInvalidTable;        ///< The (unique) table referencing us.
  ColumnId parent_fk = 0;                ///< Column in parent referencing us.
  std::vector<TableId> children;         ///< Tables we reference via FKs.
  std::vector<TableId> ancestors;        ///< Path to the root (nearest first).
  std::vector<TableId> descendants;      ///< All tables below us (pre-order).
  uint32_t depth = 0;                    ///< Root is depth 0.
};

/// \brief A validated, tree-structured GhostDB schema.
class Schema {
 public:
  /// Adds a table; fails on duplicate names or duplicate column names.
  Status AddTable(TableDef def);

  /// Validates tree structure and freezes the schema:
  ///  * every FK references an existing table;
  ///  * each table is referenced by at most one other table (tree, not DAG);
  ///  * exactly one root; no cycles;
  ///  * FK columns are 4-byte INT.
  /// Must be called before the tree accessors below.
  Status Finalize();

  bool finalized() const { return finalized_; }
  size_t table_count() const { return tables_.size(); }

  Result<TableId> FindTable(const std::string& name) const;
  const TableDef& table(TableId id) const { return tables_[id]; }
  const TableTreeInfo& tree(TableId id) const { return tree_[id]; }
  TableId root() const { return root_; }

  /// Visible (non-hidden) column ids of a table, in declaration order.
  std::vector<ColumnId> VisibleColumns(TableId id) const;
  /// Hidden column ids of a table (includes hidden FKs).
  std::vector<ColumnId> HiddenColumns(TableId id) const;

  /// Byte width of one row of the Hidden partition (hidden columns only,
  /// id implicit by position).
  uint32_t HiddenRowWidth(TableId id) const;
  /// Byte width of one row of the Visible partition.
  uint32_t VisibleRowWidth(TableId id) const;
  /// Byte width of the full (unpartitioned) row including the 4-byte id.
  uint32_t FullRowWidth(TableId id) const;

  /// True if `maybe_ancestor` is on `table`'s path to the root (or equal).
  bool IsAncestorOrSelf(TableId table, TableId maybe_ancestor) const;

  /// Renders the schema as CREATE TABLE statements (round-trips through the
  /// SQL parser).
  std::string ToDdl() const;

 private:
  bool finalized_ = false;
  std::vector<TableDef> tables_;
  std::map<std::string, TableId> by_name_;
  std::vector<TableTreeInfo> tree_;
  TableId root_ = kInvalidTable;
};

}  // namespace ghostdb::catalog

#include "catalog/stats.h"

#include <algorithm>

namespace ghostdb::catalog {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  return EvalCompareResult(lhs.Compare(rhs), op);
}

bool EvalCompareResult(int c, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

ColumnStats ColumnStats::Build(std::vector<Value> values,
                               size_t max_quantiles) {
  ColumnStats stats;
  stats.row_count_ = values.size();
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  // Distinct estimate by a linear pass over the sorted data.
  uint64_t distinct = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i].Compare(values[i - 1]) != 0) ++distinct;
  }
  stats.distinct_estimate_ = distinct;
  size_t q = std::min(max_quantiles, values.size());
  stats.quantiles_.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    size_t idx = (i * (values.size() - 1)) / (q - 1 == 0 ? 1 : q - 1);
    stats.quantiles_.push_back(values[idx]);
  }
  return stats;
}

double ColumnStats::EstimateSelectivity(CompareOp op,
                                        const Value& literal) const {
  if (row_count_ == 0 || quantiles_.empty()) return 0.0;
  // Fraction of quantile boundaries strictly below / equal to the literal.
  size_t below = 0, equal = 0;
  for (const auto& b : quantiles_) {
    int c = b.Compare(literal);
    if (c < 0) ++below;
    if (c == 0) ++equal;
  }
  double n = static_cast<double>(quantiles_.size());
  double frac_lt = below / n;
  double frac_eq =
      equal > 0
          ? std::max(equal / n, 1.0 / static_cast<double>(distinct_estimate_))
          : (1.0 / static_cast<double>(std::max<uint64_t>(distinct_estimate_,
                                                          1)));
  switch (op) {
    case CompareOp::kEq:
      return std::min(1.0, frac_eq);
    case CompareOp::kNe:
      return std::max(0.0, 1.0 - frac_eq);
    case CompareOp::kLt:
      return frac_lt;
    case CompareOp::kLe:
      return std::min(1.0, frac_lt + frac_eq);
    case CompareOp::kGt:
      return std::max(0.0, 1.0 - frac_lt - frac_eq);
    case CompareOp::kGe:
      return std::max(0.0, 1.0 - frac_lt);
  }
  return 0.5;
}

}  // namespace ghostdb::catalog

// Owner-side staging of table contents before they are split between
// Untrusted and Secure. Rows are kept packed (fixed-width, declaration
// order, ids implicit) so staging a million-row table costs megabytes, not
// gigabytes of heap-allocated Values.
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"
#include "common/status.h"

namespace ghostdb::core {

/// \brief Packed staged rows of one table.
class TableData {
 public:
  TableData() = default;
  TableData(const catalog::Schema* schema, catalog::TableId table);

  /// Appends a row given as Values (declaration order, no id).
  Status AppendRow(const std::vector<catalog::Value>& values);

  /// Appends a row already packed to the full row width (no id).
  void AppendPackedRow(const uint8_t* row);

  uint64_t row_count() const { return count_; }
  uint32_t row_width() const { return row_width_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Byte offset of column `c` within a packed row.
  uint32_t ColumnOffset(catalog::ColumnId c) const { return offsets_[c]; }

  /// Decodes one value.
  catalog::Value Get(catalog::RowId row, catalog::ColumnId c) const;

  /// Reads a foreign-key column (must be INT) of one row.
  catalog::RowId GetFk(catalog::RowId row, catalog::ColumnId c) const;

  /// Raw pointer to a column cell.
  const uint8_t* CellPtr(catalog::RowId row, catalog::ColumnId c) const {
    return bytes_.data() + static_cast<uint64_t>(row) * row_width_ +
           offsets_[c];
  }

 private:
  const catalog::Schema* schema_ = nullptr;
  catalog::TableId table_ = 0;
  uint32_t row_width_ = 0;
  std::vector<uint32_t> offsets_;
  std::vector<uint8_t> bytes_;
  uint64_t count_ = 0;
};

}  // namespace ghostdb::core

#ifndef GHOSTDB_CORE_ANNOTATIONS_H_
#define GHOSTDB_CORE_ANNOTATIONS_H_

/// \file
/// Source-level annotations consumed by `tools/leakcheck`, the static
/// analyzer that machine-checks GhostDB's leakage, resource, and threading
/// disciplines (see ARCHITECTURE.md, "Static leakage discipline").
///
/// Under clang the macros expand to `[[clang::annotate(...)]]` attributes
/// that leakcheck reads off the AST; under gcc they expand to nothing, so
/// the regular build is unaffected.

#if defined(__clang__)
#define GHOSTDB_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define GHOSTDB_ANNOTATE(tag)
#endif

/// Rule 1 (hidden-taint), sources: fields and functions whose values derive
/// from hidden data — hidden-image cells, hidden fks (SKT / climbing-index
/// postings), per-hidden-column statistics. Values flowing out of these must
/// never reach a transcript sink, nor the condition of a branch guarding one.
#define GHOSTDB_HIDDEN GHOSTDB_ANNOTATE("ghostdb::hidden")

/// Rule 1 (hidden-taint), sinks: calls whose arguments, and fields whose
/// stored values, are observable by the untrusted host — wire transfer
/// sizes, simulated-clock charges, flash page counts, volume-pad bounds.
#define GHOSTDB_TRANSCRIPT_SINK GHOSTDB_ANNOTATE("ghostdb::transcript_sink")

/// Rule 3 (paired resources): the only functions allowed to call the raw
/// paired primitives (PageAllocator::Alloc/Free, RamManager::Acquire/...,
/// ChannelArbiter::Admit/Release). Everything else goes through the RAII
/// guards in device/guards.h, which carry this annotation.
#define GHOSTDB_RESOURCE_IMPL GHOSTDB_ANNOTATE("ghostdb::resource_impl")

/// Rule 4 (worker purity): roots of the morsel-worker call graph. Lambdas
/// passed to ThreadPool::ParallelShards are treated as implicitly annotated;
/// named helpers they call get the macro explicitly. Nothing reachable from
/// a host-compute root may touch the clock, channel, RAM manager, arbiter,
/// or per-query metrics.
#define GHOSTDB_HOST_COMPUTE GHOSTDB_ANNOTATE("ghostdb::host_compute")

/// Rule 4 escape hatch: a function that name-matches a forbidden component
/// but is verified safe from workers (pure, no shared mutable state).
#define GHOSTDB_WORKER_SAFE GHOSTDB_ANNOTATE("ghostdb::worker_safe")

#endif  // GHOSTDB_CORE_ANNOTATIONS_H_

#include "core/loader.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <numeric>

#include "common/coding.h"
#include "crypto/secure_channel.h"
#include "storage/btree.h"

namespace ghostdb::core {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

namespace {

// Master secret shared between owner and device (in deployment this is
// provisioned at key personalization time).
constexpr char kMasterSecret[] = "ghostdb-device-master-secret";

crypto::DeviceKeys Keys() {
  return crypto::DeviceKeys::Derive(
      reinterpret_cast<const uint8_t*>(kMasterSecret),
      sizeof(kMasterSecret) - 1);
}

// splitmix64: a full-avalanche mix so consecutive ids spread uniformly
// across shards (modulo alone would stripe them).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Result<ShardedStaging> PartitionStagedByRoot(
    const catalog::Schema& schema, const std::vector<TableData>& staged,
    uint32_t shard_count) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (staged.size() != schema.table_count()) {
    return Status::InvalidArgument("staged data must cover every table");
  }
  ShardedStaging out;
  out.shards.resize(shard_count);
  out.root_global_ids.resize(shard_count);
  if (shard_count == 1) {
    out.shards[0] = staged;  // identity global-id maps stay empty
    return out;
  }
  TableId root = schema.root();
  for (uint32_t s = 0; s < shard_count; ++s) {
    out.shards[s].reserve(staged.size());
    for (TableId t = 0; t < schema.table_count(); ++t) {
      if (t == root) {
        out.shards[s].emplace_back(&schema, t);
      } else {
        out.shards[s].push_back(staged[t]);  // full replica
      }
    }
  }
  const TableData& root_data = staged[root];
  uint32_t width = root_data.row_width();
  for (RowId r = 0; r < root_data.row_count(); ++r) {
    uint32_t s = static_cast<uint32_t>(SplitMix64(r) % shard_count);
    out.shards[s][root].AppendPackedRow(
        root_data.bytes().data() + static_cast<uint64_t>(r) * width);
    out.root_global_ids[s].push_back(r);
  }
  return out;
}

Result<SecureStore> Loader::Load(const std::vector<TableData>& staged) {
  if (staged.size() != schema_->table_count()) {
    return Status::InvalidArgument("staged data must cover every table");
  }
  // Referential integrity: every fk must hit an existing child row.
  for (TableId t = 0; t < schema_->table_count(); ++t) {
    const auto& cols = schema_->table(t).columns;
    for (ColumnId c = 0; c < cols.size(); ++c) {
      if (!cols[c].is_foreign_key()) continue;
      GHOSTDB_ASSIGN_OR_RETURN(TableId child,
                               schema_->FindTable(cols[c].references));
      uint64_t child_rows = staged[child].row_count();
      for (RowId r = 0; r < staged[t].row_count(); ++r) {
        if (staged[t].GetFk(r, c) >= child_rows) {
          return Status::InvalidArgument(
              "foreign key violation: " + schema_->table(t).name + "." +
              cols[c].name + " row " + std::to_string(r));
        }
      }
    }
  }

  GHOSTDB_RETURN_NOT_OK(BuildAncestorMaps(staged));

  SecureStore store;
  store.tables.resize(schema_->table_count());
  for (TableId t = 0; t < schema_->table_count(); ++t) {
    TableImage* image = &store.tables[t];
    image->row_count = staged[t].row_count();
    GHOSTDB_RETURN_NOT_OK(LoadVisiblePartition(t, staged[t]));
    GHOSTDB_RETURN_NOT_OK(BuildHiddenImage(t, staged[t], image));
    if (!schema_->tree(t).descendants.empty()) {
      GHOSTDB_RETURN_NOT_OK(BuildSkt(t, staged, image));
    }
    // Attribute climbing indexes: configured set, or all hidden non-FK.
    std::vector<ColumnId> to_index;
    if (config_.indexed_attrs.has_value()) {
      auto it = config_.indexed_attrs->find(t);
      if (it != config_.indexed_attrs->end()) to_index = it->second;
    } else {
      for (ColumnId c : schema_->HiddenColumns(t)) {
        if (!schema_->table(t).columns[c].is_foreign_key()) {
          to_index.push_back(c);
        }
      }
    }
    for (ColumnId c : to_index) {
      GHOSTDB_RETURN_NOT_OK(BuildAttrIndex(t, c, staged[t], image));
    }
    if (t != schema_->root()) {
      GHOSTDB_RETURN_NOT_OK(BuildIdIndex(t, staged[t], image));
    }
    GHOSTDB_RETURN_NOT_OK(BuildStats(t, staged[t], image));
  }
  return store;
}

Status Loader::LoadVisiblePartition(TableId t, const TableData& data) {
  auto visible = schema_->VisibleColumns(t);
  uint32_t vis_width = schema_->VisibleRowWidth(t);
  std::vector<uint8_t> packed;
  packed.resize(data.row_count() * vis_width);
  uint8_t* dst = packed.data();
  const auto& cols = schema_->table(t).columns;
  for (RowId r = 0; r < data.row_count(); ++r) {
    for (ColumnId c : visible) {
      std::memcpy(dst, data.CellPtr(r, c), cols[c].width);
      dst += cols[c].width;
    }
  }
  return untrusted_->store().LoadTable(t, std::move(packed),
                                       data.row_count());
}

Status Loader::BuildHiddenImage(TableId t, const TableData& data,
                                TableImage* image) {
  auto hidden = schema_->HiddenColumns(t);
  image->hidden_offsets.assign(schema_->table(t).columns.size(),
                               UINT32_MAX);
  if (hidden.empty()) return Status::OK();
  const auto& cols = schema_->table(t).columns;
  uint32_t width = 0;
  for (ColumnId c : hidden) {
    image->hidden_offsets[c] = width;
    width += cols[c].width;
  }
  std::vector<uint8_t> packed(data.row_count() * width);
  uint8_t* dst = packed.data();
  for (RowId r = 0; r < data.row_count(); ++r) {
    for (ColumnId c : hidden) {
      std::memcpy(dst, data.CellPtr(r, c), cols[c].width);
      dst += cols[c].width;
    }
  }

  if (config_.seal_hidden_download) {
    // The owner seals the Hidden partition; the device verifies and opens
    // it. Tampered downloads fail here.
    auto keys = Keys();
    auto sealed = crypto::Seal(keys, packed, /*nonce_seed=*/t + 1);
    GHOSTDB_ASSIGN_OR_RETURN(packed, crypto::Open(keys, sealed));
  }

  std::vector<uint8_t> scratch(device_->flash().config().page_size);
  storage::FixedTableBuilder builder(
      &device_->flash(), allocator_, scratch.data(), width,
      "hidden:" + schema_->table(t).name);
  for (RowId r = 0; r < data.row_count(); ++r) {
    GHOSTDB_RETURN_NOT_OK(builder.AppendRow(packed.data() +
                                            static_cast<uint64_t>(r) * width));
  }
  GHOSTDB_ASSIGN_OR_RETURN(auto ref, builder.Finish());
  image->hidden_image = std::move(ref);
  return Status::OK();
}

Status Loader::BuildSkt(TableId t, const std::vector<TableData>& staged,
                        TableImage* image) {
  image->skt_columns = schema_->tree(t).descendants;  // pre-order
  uint32_t width = 4 * static_cast<uint32_t>(image->skt_columns.size());
  std::vector<uint8_t> scratch(device_->flash().config().page_size);
  storage::FixedTableBuilder builder(&device_->flash(), allocator_,
                                     scratch.data(), width,
                                     "skt:" + schema_->table(t).name);
  std::vector<uint8_t> row(width);
  // Slot of each descendant within the SKT row.
  std::map<TableId, uint32_t> slot;
  for (uint32_t i = 0; i < image->skt_columns.size(); ++i) {
    slot[image->skt_columns[i]] = i;
  }
  // Recursive fill: parent holds the fk to each child.
  std::function<void(TableId, RowId)> fill = [&](TableId table, RowId r) {
    for (TableId child : schema_->tree(table).children) {
      RowId child_id =
          staged[table].GetFk(r, schema_->tree(child).parent_fk);
      EncodeFixed32(row.data() + slot[child] * 4, child_id);
      fill(child, child_id);
    }
  };
  for (RowId r = 0; r < staged[t].row_count(); ++r) {
    fill(t, r);
    GHOSTDB_RETURN_NOT_OK(builder.AppendRow(row.data()));
  }
  GHOSTDB_ASSIGN_OR_RETURN(auto ref, builder.Finish());
  image->skt = std::move(ref);
  return Status::OK();
}

Status Loader::BuildAncestorMaps(const std::vector<TableData>& staged) {
  anc_ids_.assign(schema_->table_count(), {});
  // BFS from the root so a parent's maps exist before its children's.
  std::vector<TableId> order = {schema_->root()};
  for (size_t i = 0; i < order.size(); ++i) {
    for (TableId c : schema_->tree(order[i]).children) order.push_back(c);
  }
  for (TableId t : order) {
    if (t == schema_->root()) continue;
    TableId parent = schema_->tree(t).parent;
    ColumnId fk = schema_->tree(t).parent_fk;
    size_t levels = schema_->tree(t).ancestors.size();
    anc_ids_[t].resize(levels);
    // Level 0: parent rows referencing each row of t (ascending by
    // construction).
    auto& direct = anc_ids_[t][0];
    direct.assign(staged[t].row_count(), {});
    for (RowId p = 0; p < staged[parent].row_count(); ++p) {
      direct[staged[parent].GetFk(p, fk)].push_back(p);
    }
    // Higher levels: compose with the parent's maps.
    for (size_t level = 1; level < levels; ++level) {
      auto& out = anc_ids_[t][level];
      out.assign(staged[t].row_count(), {});
      const auto& parent_level = anc_ids_[parent][level - 1];
      for (RowId r = 0; r < staged[t].row_count(); ++r) {
        auto& dst = out[r];
        for (RowId p : direct[r]) {
          dst.insert(dst.end(), parent_level[p].begin(),
                     parent_level[p].end());
        }
        std::sort(dst.begin(), dst.end());
        dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
      }
    }
  }
  return Status::OK();
}

Status Loader::BuildAttrIndex(TableId t, ColumnId c, const TableData& data,
                              TableImage* image) {
  const auto& col = schema_->table(t).columns[c];
  size_t anc_levels = schema_->tree(t).ancestors.size();
  storage::BTreeBuilder builder(
      &device_->flash(), allocator_, col.type, col.width,
      static_cast<uint32_t>(1 + anc_levels),
      "ci:" + schema_->table(t).name + "." + col.name);

  // Sort row ids by (encoded key, id).
  std::vector<RowId> order(data.row_count());
  std::iota(order.begin(), order.end(), 0);
  auto cmp_cells = [&](RowId a, RowId b) {
    int cv = catalog::CompareEncoded(col.type, col.width, data.CellPtr(a, c),
                                     data.CellPtr(b, c));
    if (cv != 0) return cv < 0;
    return a < b;
  };
  std::sort(order.begin(), order.end(), cmp_cells);

  std::vector<std::vector<RowId>> levels(1 + anc_levels);
  size_t i = 0;
  while (i < order.size()) {
    const uint8_t* key_cell = data.CellPtr(order[i], c);
    Value key = data.Get(order[i], c);
    for (auto& l : levels) l.clear();
    size_t j = i;
    while (j < order.size() &&
           catalog::CompareEncoded(col.type, col.width, key_cell,
                                   data.CellPtr(order[j], c)) == 0) {
      levels[0].push_back(order[j]);
      ++j;
    }
    for (size_t level = 0; level < anc_levels; ++level) {
      auto& dst = levels[1 + level];
      for (size_t k = i; k < j; ++k) {
        const auto& src = anc_ids_[t][level][order[k]];
        dst.insert(dst.end(), src.begin(), src.end());
      }
      std::sort(dst.begin(), dst.end());
      dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
    }
    GHOSTDB_RETURN_NOT_OK(builder.Add(key, levels));
    i = j;
  }
  GHOSTDB_ASSIGN_OR_RETURN(auto ref, builder.Finish());
  image->attr_indexes.emplace(c, std::move(ref));
  return Status::OK();
}

Status Loader::BuildIdIndex(TableId t, const TableData& data,
                            TableImage* image) {
  size_t anc_levels = schema_->tree(t).ancestors.size();
  storage::BTreeBuilder builder(&device_->flash(), allocator_,
                                catalog::DataType::kInt32, 4,
                                static_cast<uint32_t>(anc_levels),
                                "ci:" + schema_->table(t).name + ".id");
  std::vector<std::vector<RowId>> levels(anc_levels);
  for (RowId r = 0; r < data.row_count(); ++r) {
    for (size_t level = 0; level < anc_levels; ++level) {
      levels[level] = anc_ids_[t][level][r];
    }
    GHOSTDB_RETURN_NOT_OK(
        builder.Add(Value::Int32(static_cast<int32_t>(r)), levels));
  }
  GHOSTDB_ASSIGN_OR_RETURN(auto ref, builder.Finish());
  image->id_index = std::move(ref);
  return Status::OK();
}

Status Loader::BuildStats(TableId t, const TableData& data,
                          TableImage* image) {
  // Sampled statistics keep host memory bounded on large tables.
  constexpr uint64_t kMaxSample = 65536;
  uint64_t step = std::max<uint64_t>(1, data.row_count() / kMaxSample);
  for (ColumnId c : schema_->HiddenColumns(t)) {
    std::vector<Value> sample;
    for (RowId r = 0; r < data.row_count(); r += step) {
      sample.push_back(data.Get(r, c));
    }
    image->hidden_stats.emplace(c,
                                catalog::ColumnStats::Build(std::move(sample)));
  }
  return Status::OK();
}

}  // namespace ghostdb::core

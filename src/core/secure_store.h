// The Secure device's database image: per table, the hidden partition image
// (T_iH), the Subtree Key Table for non-leaf tables, the climbing indexes of
// the fully indexed model (paper section 3.2), and hidden-column statistics
// for the planner.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "core/annotations.h"
#include "storage/btree.h"
#include "storage/fixed_table.h"

namespace ghostdb::core {

/// Secure-side storage of one table.
struct TableImage {
  uint64_t row_count = 0;

  /// Sharded fleets: global id of each local row (empty = identity, the
  /// unsharded store and fully replicated tables). Only the schema root is
  /// hash-partitioned across shards; local ids stay dense and
  /// order-preserving (ascending global order), so projection streams stay
  /// sorted under the global order and the gather merge can reconstruct
  /// the exact single-device row sequence.
  std::vector<catalog::RowId> global_ids;

  /// Hidden columns packed by id (absent when the table has none).
  /// GHOSTDB_HIDDEN: leakcheck's taint rule rejects values derived from
  /// these fields reaching transcript sinks (channel sizes, clock charges,
  /// page counts, padding bounds) or branches guarding one.
  GHOSTDB_HIDDEN std::optional<storage::FixedTableRef> hidden_image;
  /// Byte offset of each hidden column within a hidden row (by ColumnId;
  /// UINT32_MAX for visible columns).
  std::vector<uint32_t> hidden_offsets;

  /// Subtree Key Table: one row per tuple, 4-byte id per descendant table
  /// in pre-order (absent for leaf tables).
  GHOSTDB_HIDDEN std::optional<storage::FixedTableRef> skt;
  /// Which table each SKT column refers to (pre-order descendants).
  std::vector<catalog::TableId> skt_columns;

  /// Climbing indexes on hidden attributes; levels = [self, ancestors...].
  GHOSTDB_HIDDEN std::map<catalog::ColumnId, storage::BTreeRef> attr_indexes;

  /// Climbing index on the table id; levels = [ancestors...] (absent for
  /// the root, which has no ancestors).
  GHOSTDB_HIDDEN std::optional<storage::BTreeRef> id_index;

  /// Planner statistics for hidden columns.
  GHOSTDB_HIDDEN std::map<catalog::ColumnId, catalog::ColumnStats>
      hidden_stats;

  /// SKT column slot of `table`, or nullopt.
  std::optional<uint32_t> SktSlotOf(catalog::TableId table) const {
    for (uint32_t i = 0; i < skt_columns.size(); ++i) {
      if (skt_columns[i] == table) return i;
    }
    return std::nullopt;
  }
};

/// The whole Secure-side database.
struct SecureStore {
  std::vector<TableImage> tables;

  /// Posting level of `index` (an index of `owner`) that yields ids of
  /// `target`: 0 = owner itself, 1 = parent, ... For id indexes (which skip
  /// the self level) pass self_level = false.
  static Result<uint32_t> LevelFor(const catalog::Schema& schema,
                                   catalog::TableId owner,
                                   catalog::TableId target, bool self_level);

  /// Total flash pages used by all structures (storage report).
  uint64_t TotalPages() const;
};

}  // namespace ghostdb::core

#include "core/table_data.h"

#include <cstring>

#include "common/coding.h"

namespace ghostdb::core {

TableData::TableData(const catalog::Schema* schema, catalog::TableId table)
    : schema_(schema), table_(table) {
  const auto& cols = schema->table(table).columns;
  offsets_.reserve(cols.size());
  uint32_t off = 0;
  for (const auto& c : cols) {
    offsets_.push_back(off);
    off += c.width;
  }
  row_width_ = off;
}

Status TableData::AppendRow(const std::vector<catalog::Value>& values) {
  const auto& cols = schema_->table(table_).columns;
  if (values.size() != cols.size()) {
    return Status::InvalidArgument(
        "row for '" + schema_->table(table_).name + "' needs " +
        std::to_string(cols.size()) + " values, got " +
        std::to_string(values.size()));
  }
  size_t base = bytes_.size();
  bytes_.resize(base + row_width_);
  for (size_t c = 0; c < cols.size(); ++c) {
    if (values[c].type() != cols[c].type) {
      // Accept int32 literals for int64/double columns.
      if (cols[c].type == catalog::DataType::kInt64 &&
          values[c].type() == catalog::DataType::kInt32) {
        catalog::Value::Int64(values[c].AsInt32())
            .Encode(bytes_.data() + base + offsets_[c], cols[c].width);
        continue;
      }
      if (cols[c].type == catalog::DataType::kDouble &&
          values[c].type() == catalog::DataType::kInt32) {
        catalog::Value::Double(values[c].AsInt32())
            .Encode(bytes_.data() + base + offsets_[c], cols[c].width);
        continue;
      }
      bytes_.resize(base);
      return Status::InvalidArgument("type mismatch for column '" +
                                     cols[c].name + "'");
    }
    values[c].Encode(bytes_.data() + base + offsets_[c], cols[c].width);
  }
  count_ += 1;
  return Status::OK();
}

void TableData::AppendPackedRow(const uint8_t* row) {
  size_t base = bytes_.size();
  bytes_.resize(base + row_width_);
  std::memcpy(bytes_.data() + base, row, row_width_);
  count_ += 1;
}

catalog::Value TableData::Get(catalog::RowId row, catalog::ColumnId c) const {
  const auto& col = schema_->table(table_).columns[c];
  return catalog::Value::Decode(CellPtr(row, c), col.type, col.width);
}

catalog::RowId TableData::GetFk(catalog::RowId row,
                                catalog::ColumnId c) const {
  return DecodeFixed32(CellPtr(row, c));
}

}  // namespace ghostdb::core

#include "core/database.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "sql/binder.h"

namespace ghostdb::core {

using catalog::TableId;

uint32_t DeclaredShapeWeight(const sql::BoundQuery& query) {
  // Visible information only: the arbiter's fairness unit is the number of
  // FROM tables the statement names. Never derived from hidden data or
  // from execution outcomes.
  return std::max<uint32_t>(1, static_cast<uint32_t>(query.tables.size()));
}

GhostDB::GhostDB(GhostDBConfig config)
    : config_(std::move(config)), plan_cache_(config_.plan_cache_capacity) {
  if (config_.encrypt_external_flash &&
      !config_.device.flash.cipher_key.has_value()) {
    // Derive the at-rest key from the device master secret.
    const char* label = "ghostdb-at-rest-key";
    auto digest = crypto::Sha256::Hash(
        reinterpret_cast<const uint8_t*>(label), 19);
    std::array<uint8_t, 32> key{};
    std::copy(digest.begin(), digest.end(), key.begin());
    config_.device.flash.cipher_key = key;
  }
  device_ = std::make_unique<device::SecureDevice>(config_.device);
  allocator_ = std::make_unique<storage::PageAllocator>(&device_->flash());
}

GhostDB::~GhostDB() = default;

Status GhostDB::Execute(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported("schema changes after Build()");
    }
    return schema_.AddTable(create->def);
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported(
          "updates after Build() are outside this prototype's scope "
          "(the paper treats updates as untime-critical, section 2.3)");
    }
    if (!schema_.finalized()) {
      GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
      staged_.clear();
      for (TableId t = 0; t < schema_.table_count(); ++t) {
        staged_.emplace_back(&schema_, t);
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(insert->table));
    return staged_[t].AppendRow(insert->values);
  }
  return Status::InvalidArgument(
      "Execute() handles CREATE TABLE / INSERT; use Query() for SELECT");
}

Result<TableData*> GhostDB::MutableStaging(const std::string& table) {
  if (built_) {
    return Status::NotSupported("staging after Build()");
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table));
  return &staged_[t];
}

Status GhostDB::Build() {
  if (built_) return Status::OK();
  if (config_.worker_threads == 0) {
    return Status::InvalidArgument(
        "GhostDBConfig.worker_threads must be >= 1 (1 = serial)");
  }
  if (config_.worker_threads > 64) {
    return Status::InvalidArgument(
        "GhostDBConfig.worker_threads > 64 is absurd for a PC-side morsel "
        "pool");
  }
  GHOSTDB_RETURN_NOT_OK(exec::ValidateExecConfig(config_.exec));
  // Effective width: the explicit ExecConfig override if set, else the
  // database-wide knob. Stamp it back into the exec config so the planner
  // and executor see one value.
  if (config_.exec.worker_threads == 0) {
    config_.exec.worker_threads = config_.worker_threads;
  }
  if (config_.exec.worker_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(config_.exec.worker_threads,
                                               config_.pin_worker_threads);
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  untrusted_ = std::make_unique<untrusted::UntrustedEngine>(
      &schema_, &device_->channel());
  untrusted_->set_pool(pool_.get());
  if (config_.indexed_attrs_by_name.has_value()) {
    std::map<TableId, std::vector<catalog::ColumnId>> resolved;
    for (const auto& [table_name, columns] :
         *config_.indexed_attrs_by_name) {
      GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table_name));
      for (const auto& column_name : columns) {
        auto c = schema_.table(t).FindColumn(column_name);
        if (!c.has_value()) {
          return Status::NotFound("indexed column '" + table_name + "." +
                                  column_name + "' not found");
        }
        resolved[t].push_back(*c);
      }
      resolved.try_emplace(t);  // ensure entry exists even if empty
    }
    config_.loader.indexed_attrs = std::move(resolved);
  }
  Loader loader(&schema_, device_.get(), allocator_.get(), untrusted_.get(),
                config_.loader);
  GHOSTDB_ASSIGN_OR_RETURN(store_, loader.Load(staged_));
  executor_ = std::make_unique<exec::SecureExecutor>(
      device_.get(), allocator_.get(), &schema_, &store_, untrusted_.get(),
      config_.exec, pool_.get());
  planner_ =
      std::make_unique<plan::Planner>(&schema_, &store_, config_.planner);
  if (!config_.retain_staged_data) {
    staged_.clear();
    staged_.shrink_to_fit();
  }
  built_ = true;
  return Status::OK();
}

Result<std::unique_ptr<Session>> GhostDB::OpenSession(
    SessionOptions options) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before OpenSession()");
  }
  int32_t id;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    id = next_session_id_++;
  }
  std::string name =
      options.name.empty() ? "s" + std::to_string(id) : options.name;
  auto& ram = device_->ram();
  uint32_t quota = options.ram_quota_buffers;
  if (quota == SessionOptions::kDefaultRamQuota) {
    quota = std::max<uint32_t>(1, ram.total_buffers() / 4);
  }
  device::RamPartitionId partition = device::kSharedRamPartition;
  if (quota > 0) {
    // The partition pledge mutates the RAM manager, so take an admission:
    // device state only ever changes under the arbiter's exclusion.
    device::ChannelArbiter::Admission admission(&device_->arbiter(), -1, 1);
    GHOSTDB_ASSIGN_OR_RETURN(partition, ram.CreatePartition(name, quota));
  }
  device_->arbiter().Register(id, name);
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    open_sessions_ += 1;
  }
  return std::unique_ptr<Session>(
      new Session(this, id, std::move(name), partition));
}

void GhostDB::CloseSession(Session* session) {
  if (session->partition_ != device::kSharedRamPartition) {
    device::ChannelArbiter::Admission admission(&device_->arbiter(),
                                                session->id_, 1);
    // A failure here means the session still holds buffers — impossible
    // once its last query finished (all operator handles are RAII); there
    // is nothing useful to do with it in a destructor path.
    device_->ram().ReleasePartition(session->partition_).ok();
  }
  device_->arbiter().Unregister(session->id_);
  std::lock_guard<std::mutex> lk(sessions_mu_);
  open_sessions_ -= 1;
}

size_t GhostDB::open_sessions() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return open_sessions_;
}

Result<sql::BoundQuery> GhostDB::BindSelect(const std::string& sql,
                                            bool* explain) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  if (explain != nullptr) *explain = select->explain;
  return sql::Bind(*select, schema_, sql);
}

Status GhostDB::ServeVisCounts(const sql::BoundQuery& query,
                               const untrusted::VisPrefetch* prefetch,
                               std::map<TableId, uint64_t>* out) {
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    GHOSTDB_ASSIGN_OR_RETURN(
        uint64_t count, untrusted_->ServeVisibleCount(query, t, prefetch));
    (*out)[t] = count;
  }
  return Status::OK();
}

Result<std::shared_ptr<const PreparedQuery>> GhostDB::PrepareBound(
    const sql::BoundQuery& query, untrusted::VisPrefetch* prefetch,
    PlanCache::Outcome* outcome_out) {
  GHOSTDB_ASSIGN_OR_RETURN(std::string shape, sql::QueryShape(query.sql));
  // On a miss (or a stale stats stamp): visible selectivities, computed by
  // Untrusted from visible data. Cache hits skip these round-trips
  // entirely — the main per-query planning cost under throughput
  // workloads.
  auto plan_fn = [&]() -> Result<plan::PhysicalPlan> {
    std::map<TableId, uint64_t> vis_counts;
    GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, prefetch, &vis_counts));
    return planner_->PlanQuery(query, vis_counts, config_.exec);
  };
  GHOSTDB_ASSIGN_OR_RETURN(
      PlanCache::Outcome outcome,
      plan_cache_.GetOrPlan(shape, stats_version_.load(), plan_fn));
  if (outcome_out != nullptr) *outcome_out = outcome;
  return outcome.entry;
}

Result<std::shared_ptr<const PreparedQuery>> GhostDB::Prepare(
    const std::string& sql) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before Prepare()");
  }
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query, BindSelect(sql, nullptr));
  device::ChannelArbiter::Admission admission(&device_->arbiter(), -1,
                                              DeclaredShapeWeight(query));
  // Planning consults Untrusted's visible counts, so the statement is
  // announced exactly as at execution time.
  untrusted_->ReceiveQuery(query.sql);
  return PrepareBound(query, nullptr, nullptr);
}

Result<exec::QueryResult> GhostDB::RunSelect(
    const sql::BoundQuery& query, const plan::PlanChoice* pinned,
    const exec::SessionBinding* session) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  static const exec::SessionBinding kMainSession;
  if (session == nullptr) session = &kMainSession;
  exec::EncodedRows deferred;
  PlanCache::Outcome outcome;
  bool cached_path = pinned == nullptr;
  // PC-side speculation, before asking for the device: the visible
  // answers this query will request are pure functions of the (already
  // announced-to-be) visible statement, so the PC evaluates them while
  // the key is still serving other sessions. Channel messages are
  // recorded when the key requests them, unchanged in every byte.
  untrusted::VisPrefetch prefetch;
  if (!query.explain) {
    GHOSTDB_ASSIGN_OR_RETURN(prefetch,
                             untrusted_->PrefetchVisible(query));
  }
  Result<exec::QueryResult> result = [&]() -> Result<exec::QueryResult> {
    // Admission = the device. Everything in this scope — baseline
    // snapshot, announcement, planning round-trips, execution — runs with
    // exclusive device access under this session's transcript tag.
    device::ChannelArbiter::Admission admission(&device_->arbiter(),
                                                session->id,
                                                DeclaredShapeWeight(query));
    exec::MetricSnapshot baseline =
        exec::MetricSnapshot::Take(device_.get());
    // The query text is the only information that leaves the key.
    untrusted_->ReceiveQuery(query.sql);

    if (query.explain) {
      // EXPLAIN always plans afresh (never touches the cache): a cached
      // tree would render the literals and selectivities of the statement
      // that populated it, not this one.
      std::map<TableId, uint64_t> vis_counts;
      GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, nullptr, &vis_counts));
      plan::PhysicalPlan plan;
      if (pinned != nullptr) {
        plan = plan::BuildPhysicalPlan(query, *pinned,
                                       config_.exec.topk_fusion);
      } else {
        GHOSTDB_ASSIGN_OR_RETURN(
            plan, planner_->PlanQuery(query, vis_counts, config_.exec));
      }
      exec::QueryResult result;
      result.columns = {"plan"};
      result.rows = {{catalog::Value::String(
          planner_->Explain(query, plan, vis_counts))}};
      result.total_rows = 1;
      return result;
    }

    plan::PhysicalPlan pinned_plan;
    std::shared_ptr<const PreparedQuery> prepared;
    const plan::PhysicalPlan* plan = nullptr;
    if (pinned != nullptr) {
      // Pinned runs serve the Vis counts like a planner run would, so
      // their transcripts and metrics stay comparable across strategies.
      std::map<TableId, uint64_t> vis_counts;
      GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &prefetch, &vis_counts));
      pinned_plan = plan::BuildPhysicalPlan(query, *pinned,
                                            config_.exec.topk_fusion);
      plan = &pinned_plan;
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(prepared,
                               PrepareBound(query, &prefetch, &outcome));
      plan = &prepared->plan;  // the held snapshot keeps the plan alive
    }
    return executor_->Execute(query, *plan, &baseline, session, &deferred,
                              &prefetch);
  }();
  if (!result.ok() || query.explain) return result;
  // The rendering half of the surface: decode the captured cells to
  // Values *after* the admission released, so one session's rendering
  // overlaps the next session's device work. Purely local — the decode
  // can touch nothing observable.
  deferred.DecodeInto(&result.ValueUnsafe());
  if (cached_path) {
    result.ValueUnsafe().metrics.plan_cache_hits = outcome.hit ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_replans =
        outcome.replanned ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_misses =
        outcome.hit || outcome.replanned ? 0 : 1;
  }
  return result;
}

Result<uint64_t> GhostDB::DrainSessions(
    const std::vector<Session*>& sessions, bool stop_on_error) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  auto any_error = [&] {
    for (Session* s : sessions) {
      if (s->saw_error()) return true;
    }
    return false;
  };
  uint64_t ran = 0;
  for (;;) {
    // Who is asking, at what declared weight — the arbiter's only inputs.
    std::vector<std::pair<int32_t, uint32_t>> pending;
    pending.reserve(sessions.size());
    for (Session* s : sessions) {
      uint32_t weight = 1;
      if (s->BindHead(&weight)) pending.emplace_back(s->id(), weight);
    }
    // BindHead records bind failures as results without touching the
    // device; in fail-fast mode they end the drain like any other error.
    if (stop_on_error && any_error()) break;
    if (pending.empty()) break;
    int32_t pick = device_->arbiter().PickNext(pending);
    for (Session* s : sessions) {
      if (s->id() == pick) {
        s->RunHead();
        break;
      }
    }
    ran += 1;
    if (stop_on_error && any_error()) break;
  }
  return ran;
}

Result<BatchResult> GhostDB::QueryBatch(const std::vector<std::string>& sqls) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  // One baseline spans the whole batch: `total` reports the batch-wide
  // costs (statements still carry their own per-query metrics).
  exec::MetricSnapshot baseline = exec::MetricSnapshot::Take(device_.get());
  // The degenerate scheduler case: one ephemeral session holding the whole
  // stream, no dedicated RAM partition (the batch runs from the shared
  // reserve, exactly like the sessionless path did).
  SessionOptions options;
  options.ram_quota_buffers = 0;
  options.name = "batch";
  GHOSTDB_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                           OpenSession(std::move(options)));
  for (const std::string& sql : sqls) session->Enqueue(sql);
  // Fail fast: the first erroring statement ends the batch — later
  // statements never reach the device (matching the pre-session loop).
  GHOSTDB_RETURN_NOT_OK(
      DrainSessions({session.get()}, /*stop_on_error=*/true).status());
  std::vector<Result<exec::QueryResult>> results = session->TakeResults();
  BatchResult batch;
  batch.results.reserve(results.size());
  for (Result<exec::QueryResult>& r : results) {
    GHOSTDB_RETURN_NOT_OK(r.status());
    // Statement counters sum; baseline.Delta overwrites the device-derived
    // fields with the batch-wide deltas below.
    batch.total.Accumulate(r->metrics);
    batch.results.push_back(std::move(*r));
  }
  baseline.Delta(device_.get(), &batch.total);
  return batch;
}

Result<exec::QueryResult> GhostDB::Query(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, nullptr, nullptr);
}

Result<exec::QueryResult> GhostDB::QueryWithPlan(
    const std::string& sql, const plan::PlanChoice& plan) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, &plan, nullptr);
}

Result<std::string> GhostDB::Explain(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  query.explain = true;
  GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           RunSelect(query, nullptr, nullptr));
  return result.rows[0][0].AsString();
}

std::string GhostDB::StorageReport() const {
  std::string out = "flash pages by structure:\n";
  for (const auto& [tag, pages] : allocator_->usage_by_tag()) {
    if (pages == 0) continue;
    out += "  " + tag + ": " + std::to_string(pages) + "\n";
  }
  out += "total used: " + std::to_string(allocator_->used_pages()) +
         " pages (" +
         std::to_string(allocator_->used_pages() * 2048 / 1024 / 1024) +
         " MiB)\n";
  return out;
}

}  // namespace ghostdb::core

#include "core/database.h"

#include "crypto/sha256.h"
#include "sql/binder.h"

namespace ghostdb::core {

using catalog::TableId;

GhostDB::GhostDB(GhostDBConfig config) : config_(std::move(config)) {
  if (config_.encrypt_external_flash &&
      !config_.device.flash.cipher_key.has_value()) {
    // Derive the at-rest key from the device master secret.
    const char* label = "ghostdb-at-rest-key";
    auto digest = crypto::Sha256::Hash(
        reinterpret_cast<const uint8_t*>(label), 19);
    std::array<uint8_t, 32> key{};
    std::copy(digest.begin(), digest.end(), key.begin());
    config_.device.flash.cipher_key = key;
  }
  device_ = std::make_unique<device::SecureDevice>(config_.device);
  allocator_ = std::make_unique<storage::PageAllocator>(&device_->flash());
}

Status GhostDB::Execute(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported("schema changes after Build()");
    }
    return schema_.AddTable(create->def);
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported(
          "updates after Build() are outside this prototype's scope "
          "(the paper treats updates as untime-critical, section 2.3)");
    }
    if (!schema_.finalized()) {
      GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
      staged_.clear();
      for (TableId t = 0; t < schema_.table_count(); ++t) {
        staged_.emplace_back(&schema_, t);
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(insert->table));
    return staged_[t].AppendRow(insert->values);
  }
  return Status::InvalidArgument(
      "Execute() handles CREATE TABLE / INSERT; use Query() for SELECT");
}

Result<TableData*> GhostDB::MutableStaging(const std::string& table) {
  if (built_) {
    return Status::NotSupported("staging after Build()");
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table));
  return &staged_[t];
}

Status GhostDB::Build() {
  if (built_) return Status::OK();
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  untrusted_ = std::make_unique<untrusted::UntrustedEngine>(
      &schema_, &device_->channel());
  if (config_.indexed_attrs_by_name.has_value()) {
    std::map<TableId, std::vector<catalog::ColumnId>> resolved;
    for (const auto& [table_name, columns] :
         *config_.indexed_attrs_by_name) {
      GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table_name));
      for (const auto& column_name : columns) {
        auto c = schema_.table(t).FindColumn(column_name);
        if (!c.has_value()) {
          return Status::NotFound("indexed column '" + table_name + "." +
                                  column_name + "' not found");
        }
        resolved[t].push_back(*c);
      }
      resolved.try_emplace(t);  // ensure entry exists even if empty
    }
    config_.loader.indexed_attrs = std::move(resolved);
  }
  Loader loader(&schema_, device_.get(), allocator_.get(), untrusted_.get(),
                config_.loader);
  GHOSTDB_ASSIGN_OR_RETURN(store_, loader.Load(staged_));
  executor_ = std::make_unique<exec::SecureExecutor>(
      device_.get(), allocator_.get(), &schema_, &store_, untrusted_.get(),
      config_.exec);
  planner_ =
      std::make_unique<plan::Planner>(&schema_, &store_, config_.planner);
  if (!config_.retain_staged_data) {
    staged_.clear();
    staged_.shrink_to_fit();
  }
  built_ = true;
  return Status::OK();
}

Result<sql::BoundQuery> GhostDB::BindSelect(const std::string& sql,
                                            bool* explain) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  if (explain != nullptr) *explain = select->explain;
  return sql::Bind(*select, schema_, sql);
}

Result<exec::QueryResult> GhostDB::RunSelect(const sql::BoundQuery& query,
                                             const plan::PlanChoice* pinned) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  exec::MetricSnapshot baseline = exec::MetricSnapshot::Take(device_.get());
  // The query text is the only information that leaves the key.
  untrusted_->ReceiveQuery(query.sql);
  // Visible selectivities, computed by Untrusted from visible data.
  std::map<TableId, uint64_t> vis_counts;
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    GHOSTDB_ASSIGN_OR_RETURN(uint64_t count,
                             untrusted_->ServeVisibleCount(query, t));
    vis_counts[t] = count;
  }
  plan::PlanChoice plan;
  if (pinned != nullptr) {
    plan = *pinned;
  } else {
    GHOSTDB_ASSIGN_OR_RETURN(plan,
                             planner_->Choose(query, vis_counts,
                                              config_.exec));
  }
  if (query.explain) {
    exec::QueryResult result;
    result.columns = {"plan"};
    result.rows = {{catalog::Value::String(
        planner_->Explain(query, plan, vis_counts))}};
    result.total_rows = 1;
    return result;
  }
  return executor_->Execute(query, plan, &baseline);
}

Result<exec::QueryResult> GhostDB::Query(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, nullptr);
}

Result<exec::QueryResult> GhostDB::QueryWithPlan(
    const std::string& sql, const plan::PlanChoice& plan) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, &plan);
}

Result<std::string> GhostDB::Explain(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  query.explain = true;
  GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           RunSelect(query, nullptr));
  return result.rows[0][0].AsString();
}

std::string GhostDB::StorageReport() const {
  std::string out = "flash pages by structure:\n";
  for (const auto& [tag, pages] : allocator_->usage_by_tag()) {
    if (pages == 0) continue;
    out += "  " + tag + ": " + std::to_string(pages) + "\n";
  }
  out += "total used: " + std::to_string(allocator_->used_pages()) +
         " pages (" +
         std::to_string(allocator_->used_pages() * 2048 / 1024 / 1024) +
         " MiB)\n";
  return out;
}

}  // namespace ghostdb::core

#include "core/database.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "crypto/sha256.h"
#include "device/guards.h"
#include "sql/binder.h"

namespace ghostdb::core {

using catalog::TableId;

namespace {

/// Merges per-shard partial-aggregate groups by canonical key: aggregates
/// fold via Aggregator::MergeFrom, first_seq takes the minimum (the
/// group's first global arrival), and the raw key cells follow the
/// first-arriving shard — the cells a single device would have rendered
/// (canonically equal keys can differ in raw bytes, e.g. -0.0 vs 0.0).
/// The result is ordered by first_seq, reproducing the single-device
/// first-arrival group emission order.
Result<std::vector<exec::PartialAggGroup>> CombineShardPartials(
    std::vector<std::vector<exec::PartialAggGroup>>* shards) {
  std::vector<exec::PartialAggGroup> out;
  std::map<std::string, size_t> index;
  for (auto& shard : *shards) {
    for (exec::PartialAggGroup& pg : shard) {
      auto [it, inserted] = index.try_emplace(pg.key, out.size());
      if (inserted) {
        out.push_back(std::move(pg));
        continue;
      }
      exec::PartialAggGroup& acc = out[it->second];
      for (size_t i = 0; i < acc.aggs.size(); ++i) {
        GHOSTDB_RETURN_NOT_OK(acc.aggs[i].MergeFrom(pg.aggs[i]));
      }
      if (pg.first_seq < acc.first_seq) {
        acc.first_seq = pg.first_seq;
        acc.key_cells = std::move(pg.key_cells);
      }
    }
    shard.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const exec::PartialAggGroup& a,
               const exec::PartialAggGroup& b) {
              return a.first_seq < b.first_seq;
            });
  return out;
}

}  // namespace

uint32_t DeclaredShapeWeight(const sql::BoundQuery& query) {
  // Visible information only: the arbiter's fairness unit is the number of
  // FROM tables the statement names. Never derived from hidden data or
  // from execution outcomes.
  return std::max<uint32_t>(1, static_cast<uint32_t>(query.tables.size()));
}

GhostDB::GhostDB(GhostDBConfig config)
    : config_(std::move(config)), plan_cache_(config_.plan_cache_capacity) {
  if (config_.encrypt_external_flash &&
      !config_.device.flash.cipher_key.has_value()) {
    // Derive the at-rest key from the device master secret.
    const char* label = "ghostdb-at-rest-key";
    auto digest = crypto::Sha256::Hash(
        reinterpret_cast<const uint8_t*>(label), 19);
    std::array<uint8_t, 32> key{};
    std::copy(digest.begin(), digest.end(), key.begin());
    config_.device.flash.cipher_key = key;
  }
  // Every shard device (this one and the ones Build() creates) carries the
  // same fault schedule; Build() reseeds each onto its own lane and arms
  // them once loading is done.
  config_.device.fault = config_.fault_config;
  device_ = std::make_unique<device::SecureDevice>(config_.device);
  allocator_ = std::make_unique<storage::PageAllocator>(&device_->flash());
}

GhostDB::~GhostDB() = default;

Status GhostDB::Execute(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported("schema changes after Build()");
    }
    return schema_.AddTable(create->def);
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported(
          "updates after Build() are outside this prototype's scope "
          "(the paper treats updates as untime-critical, section 2.3)");
    }
    if (!schema_.finalized()) {
      GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
      staged_.clear();
      for (TableId t = 0; t < schema_.table_count(); ++t) {
        staged_.emplace_back(&schema_, t);
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(insert->table));
    return staged_[t].AppendRow(insert->values);
  }
  return Status::InvalidArgument(
      "Execute() handles CREATE TABLE / INSERT; use Query() for SELECT");
}

Result<TableData*> GhostDB::MutableStaging(const std::string& table) {
  if (built_) {
    return Status::NotSupported("staging after Build()");
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table));
  return &staged_[t];
}

Status GhostDB::Build() {
  if (built_) return Status::OK();
  if (config_.worker_threads == 0) {
    return Status::InvalidArgument(
        "GhostDBConfig.worker_threads must be >= 1 (1 = serial)");
  }
  if (config_.worker_threads > 64) {
    return Status::InvalidArgument(
        "GhostDBConfig.worker_threads > 64 is absurd for a PC-side morsel "
        "pool");
  }
  if (config_.shard_count == 0) {
    return Status::InvalidArgument(
        "GhostDBConfig.shard_count must be >= 1 (1 = single device)");
  }
  if (config_.shard_count > 16) {
    return Status::InvalidArgument(
        "GhostDBConfig.shard_count > 16 is absurd for a simulated fleet of "
        "smart USB keys on one host");
  }
  GHOSTDB_RETURN_NOT_OK(exec::ValidateExecConfig(config_.exec));
  GHOSTDB_RETURN_NOT_OK(device::ValidateFaultConfig(config_.fault_config));
  // Effective width: the explicit ExecConfig override if set, else the
  // database-wide knob. Stamp it back into the exec config so the planner
  // and executor see one value.
  if (config_.exec.worker_threads == 0) {
    config_.exec.worker_threads = config_.worker_threads;
  }
  if (config_.exec.worker_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(config_.exec.worker_threads,
                                               config_.pin_worker_threads);
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  untrusted_ = std::make_unique<untrusted::UntrustedEngine>(
      &schema_, &device_->channel());
  untrusted_->set_pool(pool_.get());
  if (config_.indexed_attrs_by_name.has_value()) {
    std::map<TableId, std::vector<catalog::ColumnId>> resolved;
    for (const auto& [table_name, columns] :
         *config_.indexed_attrs_by_name) {
      GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table_name));
      for (const auto& column_name : columns) {
        auto c = schema_.table(t).FindColumn(column_name);
        if (!c.has_value()) {
          return Status::NotFound("indexed column '" + table_name + "." +
                                  column_name + "' not found");
        }
        resolved[t].push_back(*c);
      }
      resolved.try_emplace(t);  // ensure entry exists even if empty
    }
    config_.loader.indexed_attrs = std::move(resolved);
  }
  // Sharded fleets: hash-partition the root's rows across the devices
  // (every other table replicates) and install each shard's local→global
  // id map on both sides of its channel — Secure renders global anchor
  // ids, Untrusted evaluates id predicates against them.
  ShardedStaging parts;
  const std::vector<TableData>* shard0_staged = &staged_;
  if (config_.shard_count > 1) {
    GHOSTDB_ASSIGN_OR_RETURN(
        parts,
        PartitionStagedByRoot(schema_, staged_, config_.shard_count));
    shard0_staged = &parts.shards[0];
    if (schema_.table_count() > 0) {
      fleet_anchor_rows_ = staged_[schema_.root()].row_count();
    }
  }
  {
    Loader loader(&schema_, device_.get(), allocator_.get(),
                  untrusted_.get(), config_.loader);
    GHOSTDB_ASSIGN_OR_RETURN(store_, loader.Load(*shard0_staged));
  }
  if (config_.shard_count > 1 && schema_.table_count() > 0) {
    TableId root = schema_.root();
    store_.tables[root].global_ids = parts.root_global_ids[0];
    GHOSTDB_RETURN_NOT_OK(untrusted_->store().SetGlobalIds(
        root, parts.root_global_ids[0]));
  }
  executor_ = std::make_unique<exec::SecureExecutor>(
      device_.get(), allocator_.get(), &schema_, &store_, untrusted_.get(),
      config_.exec, pool_.get());
  for (uint32_t s = 1; s < config_.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->device = std::make_unique<device::SecureDevice>(config_.device);
    shard->allocator =
        std::make_unique<storage::PageAllocator>(&shard->device->flash());
    shard->untrusted = std::make_unique<untrusted::UntrustedEngine>(
        &schema_, &shard->device->channel());
    shard->untrusted->set_pool(pool_.get());
    Loader loader(&schema_, shard->device.get(), shard->allocator.get(),
                  shard->untrusted.get(), config_.loader);
    GHOSTDB_ASSIGN_OR_RETURN(shard->store, loader.Load(parts.shards[s]));
    if (schema_.table_count() > 0) {
      TableId root = schema_.root();
      shard->store.tables[root].global_ids = parts.root_global_ids[s];
      GHOSTDB_RETURN_NOT_OK(shard->untrusted->store().SetGlobalIds(
          root, parts.root_global_ids[s]));
    }
    shard->executor = std::make_unique<exec::SecureExecutor>(
        shard->device.get(), shard->allocator.get(), &schema_,
        &shard->store, shard->untrusted.get(), config_.exec, pool_.get());
    extra_shards_.push_back(std::move(shard));
  }
  // The planner reads shard 0's store (statistics differ per shard only in
  // their samples; the plan is shared fleet-wide through the plan cache).
  config_.planner.shard_count = config_.shard_count;
  planner_ =
      std::make_unique<plan::Planner>(&schema_, &store_, config_.planner);
  if (!config_.retain_staged_data) {
    staged_.clear();
    staged_.shrink_to_fit();
  }
  // Arm the fault schedule only now: the load phase above must always run
  // fault-free (a half-built store is not a scenario the paper's device
  // would ship). Each shard draws from its own seed lane so a fleet run
  // doesn't replay shard 0's schedule N times.
  for (uint32_t s = 0; s < config_.shard_count; ++s) {
    device::FaultInjector& injector = shard_device(s).fault_injector();
    injector.Reseed(config_.fault_config.seed +
                    0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(s));
    injector.set_armed(true);
  }
  built_ = true;
  return Status::OK();
}

Result<std::unique_ptr<Session>> GhostDB::OpenSession(
    SessionOptions options) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before OpenSession()");
  }
  int32_t id;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    id = next_session_id_++;
  }
  std::string name =
      options.name.empty() ? "s" + std::to_string(id) : options.name;
  uint32_t quota = options.ram_quota_buffers;
  if (quota == SessionOptions::kDefaultRamQuota) {
    quota = std::max<uint32_t>(1, device_->ram().total_buffers() / 4);
  }
  // A session spans the fleet: the same quota is pledged on every shard's
  // RAM manager and the session registers with every shard's arbiter, so
  // its scatter legs are admitted and charged on each device identically.
  std::vector<device::RamPartitionId> partitions;
  partitions.reserve(shard_count());
  for (uint32_t s = 0; s < shard_count(); ++s) {
    device::SecureDevice& dev = shard_device(s);
    device::RamPartitionId partition = device::kSharedRamPartition;
    if (quota > 0) {
      // The partition pledge mutates the RAM manager, so take an
      // admission: device state only ever changes under the arbiter's
      // exclusion.
      device::AdmissionGuard admission(&dev.arbiter(), -1, 1);
      GHOSTDB_ASSIGN_OR_RETURN(partition,
                               dev.ram().CreatePartition(name, quota));
    }
    dev.arbiter().Register(id, name);
    partitions.push_back(partition);
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    open_sessions_ += 1;
  }
  return std::unique_ptr<Session>(
      new Session(this, id, std::move(name), std::move(partitions)));
}

void GhostDB::CloseSession(Session* session) {
  for (uint32_t s = 0; s < shard_count() &&
                       s < static_cast<uint32_t>(session->bindings_.size());
       ++s) {
    device::SecureDevice& dev = shard_device(s);
    device::RamPartitionId partition = session->bindings_[s].ram_partition;
    if (partition != device::kSharedRamPartition) {
      device::AdmissionGuard admission(&dev.arbiter(),
                                                  session->id_, 1);
      // A failure here means the session still holds buffers — impossible
      // once its last query finished (all operator handles are RAII);
      // there is nothing useful to do with it in a destructor path.
      GHOSTDB_IGNORE_STATUS(dev.ram().ReleasePartition(partition),
                            "session teardown is a destructor path");
    }
    dev.arbiter().Unregister(session->id_);
  }
  std::lock_guard<std::mutex> lk(sessions_mu_);
  open_sessions_ -= 1;
}

size_t GhostDB::open_sessions() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return open_sessions_;
}

Result<sql::BoundQuery> GhostDB::BindSelect(const std::string& sql,
                                            bool* explain) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  if (explain != nullptr) *explain = select->explain;
  return sql::Bind(*select, schema_, sql);
}

Status GhostDB::ServeVisCounts(const sql::BoundQuery& query,
                               const untrusted::VisPrefetch* prefetch,
                               std::map<TableId, uint64_t>* out) {
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    GHOSTDB_ASSIGN_OR_RETURN(
        uint64_t count, untrusted_->ServeVisibleCount(query, t, prefetch));
    (*out)[t] = count;
  }
  return Status::OK();
}

Result<std::shared_ptr<const PreparedQuery>> GhostDB::PrepareBound(
    const sql::BoundQuery& query, untrusted::VisPrefetch* prefetch,
    PlanCache::Outcome* outcome_out) {
  GHOSTDB_ASSIGN_OR_RETURN(std::string shape, sql::QueryShape(query.sql));
  // On a miss (or a stale stats stamp): visible selectivities, computed by
  // Untrusted from visible data. Cache hits skip these round-trips
  // entirely — the main per-query planning cost under throughput
  // workloads.
  auto plan_fn = [&]() -> Result<plan::PhysicalPlan> {
    std::map<TableId, uint64_t> vis_counts;
    GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, prefetch, &vis_counts));
    return planner_->PlanQuery(query, vis_counts, config_.exec);
  };
  GHOSTDB_ASSIGN_OR_RETURN(
      PlanCache::Outcome outcome,
      plan_cache_.GetOrPlan(shape, stats_version_.load(), plan_fn));
  if (outcome_out != nullptr) *outcome_out = outcome;
  return outcome.entry;
}

Result<std::shared_ptr<const PreparedQuery>> GhostDB::Prepare(
    const std::string& sql) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before Prepare()");
  }
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query, BindSelect(sql, nullptr));
  device::AdmissionGuard admission(&device_->arbiter(), -1,
                                              DeclaredShapeWeight(query));
  // Planning consults Untrusted's visible counts, so the statement is
  // announced exactly as at execution time.
  untrusted_->ReceiveQuery(query.sql);
  return PrepareBound(query, nullptr, nullptr);
}

bool GhostDB::ShardFanout(const sql::BoundQuery& query) const {
  // Visible inputs only (fleet size, anchor table, EXPLAIN flag): whether
  // a statement scatters is as observable as the statement itself. A
  // non-root anchor reads only fully replicated tables, so shard 0 alone
  // holds the complete answer; EXPLAIN renders the plan without touching
  // data.
  return !extra_shards_.empty() && !query.explain &&
         schema_.table_count() > 0 && query.anchor == schema_.root();
}

Result<exec::QueryResult> GhostDB::RunSelect(const sql::BoundQuery& query,
                                             const plan::PlanChoice* pinned,
                                             const Session* session) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  if (ShardFanout(query)) return RunSelectSharded(query, pinned, session);
  static const exec::SessionBinding kMainSession;
  const exec::SessionBinding* binding =
      session != nullptr ? &session->bindings_[0] : &kMainSession;
  exec::EncodedRows deferred;
  PlanCache::Outcome outcome;
  bool cached_path = pinned == nullptr;
  // PC-side speculation, before asking for the device: the visible
  // answers this query will request are pure functions of the (already
  // announced-to-be) visible statement, so the PC evaluates them while
  // the key is still serving other sessions. Channel messages are
  // recorded when the key requests them, unchanged in every byte.
  untrusted::VisPrefetch prefetch;
  if (!query.explain) {
    GHOSTDB_ASSIGN_OR_RETURN(prefetch,
                             untrusted_->PrefetchVisible(query));
  }
  Result<exec::QueryResult> result = [&]() -> Result<exec::QueryResult> {
    // Admission = the device. Everything in this scope — baseline
    // snapshot, announcement, planning round-trips, execution — runs with
    // exclusive device access under this session's transcript tag.
    device::AdmissionGuard admission(&device_->arbiter(),
                                                binding->id,
                                                DeclaredShapeWeight(query));
    exec::MetricSnapshot baseline =
        exec::MetricSnapshot::Take(device_.get());
    // The query text is the only information that leaves the key.
    untrusted_->ReceiveQuery(query.sql);

    if (query.explain) {
      // EXPLAIN always plans afresh (never touches the cache): a cached
      // tree would render the literals and selectivities of the statement
      // that populated it, not this one.
      std::map<TableId, uint64_t> vis_counts;
      GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, nullptr, &vis_counts));
      plan::PhysicalPlan plan;
      if (pinned != nullptr) {
        plan = plan::BuildPhysicalPlan(query, *pinned,
                                       config_.exec.topk_fusion);
      } else {
        GHOSTDB_ASSIGN_OR_RETURN(
            plan, planner_->PlanQuery(query, vis_counts, config_.exec));
      }
      exec::QueryResult result;
      result.columns = {"plan"};
      result.rows = {{catalog::Value::String(
          planner_->Explain(query, plan, vis_counts))}};
      result.total_rows = 1;
      return result;
    }

    // Messages before this index (the announcement) survive a fault
    // recovery; everything after belongs to the attempt being replayed.
    const size_t transcript0 = device_->channel().transcript_size();

    auto attempt = [&](bool replay) -> Result<exec::QueryResult> {
      plan::PhysicalPlan local_plan;
      std::shared_ptr<const PreparedQuery> prepared;
      const plan::PhysicalPlan* plan = nullptr;
      if (pinned != nullptr) {
        // Pinned runs serve the Vis counts like a planner run would, so
        // their transcripts and metrics stay comparable across strategies.
        std::map<TableId, uint64_t> vis_counts;
        GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &prefetch, &vis_counts));
        local_plan = plan::BuildPhysicalPlan(query, *pinned,
                                             config_.exec.topk_fusion);
        plan = &local_plan;
      } else if (replay && !outcome.hit) {
        // The failed attempt already filled (miss) or re-stamped (replan)
        // the plan cache, so a plain re-Prepare would hit and skip the
        // vis-count exchange the fault-free transcript contains. Serve the
        // counts and plan directly, bypassing the cache, to re-emit the
        // exact wire sequence of the first attempt.
        std::map<TableId, uint64_t> vis_counts;
        GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &prefetch, &vis_counts));
        GHOSTDB_ASSIGN_OR_RETURN(
            local_plan, planner_->PlanQuery(query, vis_counts, config_.exec));
        plan = &local_plan;
      } else {
        GHOSTDB_ASSIGN_OR_RETURN(
            prepared,
            PrepareBound(query, &prefetch, replay ? nullptr : &outcome));
        plan = &prepared->plan;  // the held snapshot keeps the plan alive
      }
      return executor_->Execute(query, *plan, &baseline, binding, &deferred,
                                &prefetch);
    };

    Result<exec::QueryResult> r = attempt(false);
    if (!r.ok() &&
        config_.exec.volume_padding != exec::VolumePadding::kOff &&
        device::FaultInjector::IsInjectedFault(r.status())) {
      // No-leak recovery: under the padded volume modes an injected fault
      // must be invisible on the wire, because whether it fired depends on
      // the flash-op count — hidden data. Erase the failed attempt's
      // recorded span and replay with the injector masked: the replay is a
      // deterministic function of visible inputs, so the surviving
      // transcript and padded volume are exactly the fault-free ones. The
      // metrics baseline predates the fault, so faults_injected /
      // flash_retries still record what really happened.
      device::Channel& channel = device_->channel();
      channel.EraseTranscript(transcript0,
                              channel.transcript_size() - transcript0);
      deferred = exec::EncodedRows{};
      device::FaultInjector::MaskScope mask(&device_->fault_injector());
      r = attempt(true);
    }
    return r;
  }();
  if (!result.ok() || query.explain) return result;
  // The rendering half of the surface: decode the captured cells to
  // Values *after* the admission released, so one session's rendering
  // overlaps the next session's device work. Purely local — the decode
  // can touch nothing observable.
  deferred.DecodeInto(&result.ValueUnsafe());
  if (cached_path) {
    result.ValueUnsafe().metrics.plan_cache_hits = outcome.hit ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_replans =
        outcome.replanned ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_misses =
        outcome.hit || outcome.replanned ? 0 : 1;
  }
  return result;
}

Result<exec::QueryResult> GhostDB::RunSelectSharded(
    const sql::BoundQuery& query, const plan::PlanChoice* pinned,
    const Session* session) {
  static const exec::SessionBinding kMainSession;
  const uint32_t shards = shard_count();
  auto binding_for = [&](uint32_t s) -> const exec::SessionBinding* {
    return session != nullptr ? &session->bindings_[s] : &kMainSession;
  };
  auto executor_for = [&](uint32_t s) -> exec::SecureExecutor* {
    return s == 0 ? executor_.get() : extra_shards_[s - 1]->executor.get();
  };
  const uint32_t weight = DeclaredShapeWeight(query);
  PlanCache::Outcome outcome;
  bool cached_path = pinned == nullptr;

  // PC-side speculation, per shard: each Untrusted holds its own visible
  // slice, so each one pre-evaluates the visible answers its device will
  // request — before any admission, exactly like the single-device path.
  std::vector<untrusted::VisPrefetch> prefetch(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    GHOSTDB_ASSIGN_OR_RETURN(prefetch[s],
                             shard_untrusted(s).PrefetchVisible(query));
  }

  std::vector<std::vector<exec::PartialAggGroup>> shard_partials(shards);
  std::vector<exec::EncodedRows> shard_rows(shards);
  exec::EncodedRows deferred;  // the gather pass's rendering surface
  Result<exec::QueryResult> result = [&]() -> Result<exec::QueryResult> {
    // Shard 0 is the coordinator: one admission covers its announcement,
    // the (shared) planning round-trips, its own scatter leg, and the
    // gather pass, so its transcript is a single deterministic block.
    device::AdmissionGuard admission(&device_->arbiter(),
                                                binding_for(0)->id, weight);
    exec::MetricSnapshot baseline0 =
        exec::MetricSnapshot::Take(device_.get());
    untrusted_->ReceiveQuery(query.sql);

    plan::PhysicalPlan pinned_plan;
    std::shared_ptr<const PreparedQuery> prepared;
    const plan::PhysicalPlan* plan = nullptr;
    if (pinned != nullptr) {
      std::map<TableId, uint64_t> vis_counts;
      GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &prefetch[0],
                                           &vis_counts));
      pinned_plan = plan::BuildPhysicalPlan(
          query, *pinned, config_.exec.topk_fusion,
          config_.exec.volume_padding != exec::VolumePadding::kOff);
      pinned_plan.shard_fanout = true;
      plan = &pinned_plan;
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(prepared,
                               PrepareBound(query, &prefetch[0], &outcome));
      plan = &prepared->plan;
    }
    int boundary = exec::FindFanoutBoundary(*plan);
    if (boundary < 0) {
      return Status::Internal("sharded plan has no fan-out boundary");
    }
    bool agg_boundary =
        plan->nodes[boundary].op == plan::PhysicalOp::kAggregate ||
        plan->nodes[boundary].op == plan::PhysicalOp::kGroupAggregate;

    // Scatter: every shard runs the plan's subtree at/below the boundary
    // over its own slice. Shards 1..N-1 go on their own threads under
    // their own arbiters (independent devices admit independently); the
    // coordinator runs shard 0's leg on this thread under the admission
    // already held.
    std::vector<Result<exec::QueryResult>> legs(
        shards,
        Result<exec::QueryResult>(Status::Internal("scatter leg unset")));
    // Per-leg recovery state: the metrics baseline a masked re-run reuses
    // (so the fault counters and clock still cover the failed attempt) and
    // the [first, end) span of the leg's messages in its shard's
    // transcript (what a recovery erases).
    std::vector<exec::MetricSnapshot> leg_base(shards);
    std::vector<std::pair<size_t, size_t>> leg_span(shards, {0, 0});
    auto run_leg = [&](uint32_t s, bool masked) {
      exec::FanoutParams params;
      params.role = exec::FanoutParams::Role::kScatter;
      if (agg_boundary) params.partials_out = &shard_partials[s];
      exec::EncodedRows* rows_out =
          agg_boundary ? nullptr : &shard_rows[s];
      device::SecureDevice& dev = shard_device(s);
      std::optional<device::AdmissionGuard> leg_admission;
      if (s != 0) {
        leg_admission.emplace(&dev.arbiter(), binding_for(s)->id, weight);
      }
      std::optional<device::FaultInjector::MaskScope> mask;
      if (masked) {
        // Masked recovery re-run (sequential, on the coordinator thread):
        // wipe the failed attempt's wire image first — under the
        // admission, so no other session can be touching the channel —
        // then replay with the schedule suppressed.
        dev.channel().EraseTranscript(
            leg_span[s].first, leg_span[s].second - leg_span[s].first);
        mask.emplace(&dev.fault_injector());
      } else {
        leg_base[s] = s == 0 ? baseline0 : exec::MetricSnapshot::Take(&dev);
      }
      leg_span[s].first = dev.channel().transcript_size();
      // Whole-shard reset: the device drops out before a byte moves — the
      // leg dies with an empty transcript span and a tagged error while
      // its neighbors keep running.
      if (dev.fault_injector().DrawShardReset()) {
        leg_span[s].second = leg_span[s].first;
        legs[s] = Status::IOError(std::string(device::FaultInjector::kTag) +
                                  " shard " + std::to_string(s) +
                                  " reset during scatter");
        return;
      }
      if (s != 0) shard_untrusted(s).ReceiveQuery(query.sql);
      legs[s] = executor_for(s)->Execute(query, *plan, &leg_base[s],
                                         binding_for(s), rows_out,
                                         &prefetch[s], &params);
      leg_span[s].second = dev.channel().transcript_size();
    };
    std::vector<std::thread> threads;
    threads.reserve(shards - 1);
    for (uint32_t s = 1; s < shards; ++s) {
      threads.emplace_back(run_leg, s, /*masked=*/false);
    }
    run_leg(0, /*masked=*/false);
    for (auto& t : threads) t.join();
    for (uint32_t s = 0; s < shards; ++s) {
      if (legs[s].ok()) continue;
      if (config_.exec.volume_padding == exec::VolumePadding::kOff ||
          !device::FaultInjector::IsInjectedFault(legs[s].status())) {
        // Graceful degradation without padding (or on a genuine error):
        // the query fails with the leg's clean per-session Status; every
        // other leg already finished, and nothing below holds resources.
        return legs[s].status();
      }
      // Under padded modes a dead leg must be invisible: only this shard
      // re-runs, masked, re-emitting its deterministic fault-free span.
      if (agg_boundary) {
        shard_partials[s].clear();
      } else {
        shard_rows[s] = exec::EncodedRows{};
      }
      run_leg(s, /*masked=*/true);
      GHOSTDB_RETURN_NOT_OK(legs[s].status());
    }

    // Combine the shard outputs into the gather pass's input.
    exec::FanoutParams gparams;
    gparams.role = exec::FanoutParams::Role::kGather;
    gparams.padding_row_bound_override = fleet_anchor_rows_;
    std::vector<exec::PartialAggGroup> combined;
    exec::GatherInput gather_input;
    if (agg_boundary) {
      GHOSTDB_ASSIGN_OR_RETURN(combined,
                               CombineShardPartials(&shard_partials));
      gparams.gather_partials = &combined;
    } else {
      uint64_t skipped = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        skipped += legs[s]->total_rows - shard_rows[s].row_count;
      }
      gather_input.rows = exec::MergeEncodedRowsBySeq(std::move(shard_rows));
      gather_input.skipped_rows = skipped;
      gparams.gather_rows = &gather_input;
    }

    // Gather on the coordinator: the plan's tail over the combined
    // stream, measured from its own baseline. The baseline is taken once
    // so a masked recovery re-run still reports the failed attempt's
    // fault counters and clock; the gather inputs are const, so the tail
    // is re-runnable after erasing the failed span.
    exec::MetricSnapshot gather_base =
        exec::MetricSnapshot::Take(device_.get());
    const size_t gather0 = device_->channel().transcript_size();
    Result<exec::QueryResult> gathered_r =
        executor_->Execute(query, *plan, &gather_base, binding_for(0),
                           &deferred, nullptr, &gparams);
    if (!gathered_r.ok() &&
        config_.exec.volume_padding != exec::VolumePadding::kOff &&
        device::FaultInjector::IsInjectedFault(gathered_r.status())) {
      device_->channel().EraseTranscript(
          gather0, device_->channel().transcript_size() - gather0);
      deferred = exec::EncodedRows{};
      device::FaultInjector::MaskScope mask(&device_->fault_injector());
      gathered_r =
          executor_->Execute(query, *plan, &gather_base, binding_for(0),
                             &deferred, nullptr, &gparams);
    }
    GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult gathered,
                             std::move(gathered_r));

    // Fleet metrics: channel/flash/QEP counters sum over every leg;
    // wall-clock is the slowest scatter leg plus the gather tail (the
    // legs' device clocks tick concurrently); the answer-volume fields
    // are the gather's alone — scatter outputs are intermediate.
    exec::QueryMetrics total;
    SimNanos slowest_leg = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      total.Accumulate(legs[s]->metrics);
      slowest_leg = std::max(slowest_leg, legs[s]->metrics.total_ns);
    }
    total.Accumulate(gathered.metrics);
    total.total_ns = slowest_leg + gathered.metrics.total_ns;
    total.result_rows = gathered.metrics.result_rows;
    total.observed_volume = gathered.metrics.observed_volume;
    total.padding_rows = gathered.metrics.padding_rows;
    gathered.metrics = std::move(total);
    return gathered;
  }();
  if (!result.ok()) return result;
  deferred.DecodeInto(&result.ValueUnsafe());
  if (cached_path) {
    result.ValueUnsafe().metrics.plan_cache_hits = outcome.hit ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_replans =
        outcome.replanned ? 1 : 0;
    result.ValueUnsafe().metrics.plan_cache_misses =
        outcome.hit || outcome.replanned ? 0 : 1;
  }
  return result;
}

Result<uint64_t> GhostDB::DrainSessions(
    const std::vector<Session*>& sessions, bool stop_on_error) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  auto any_error = [&] {
    for (Session* s : sessions) {
      if (s->saw_error()) return true;
    }
    return false;
  };
  uint64_t ran = 0;
  for (;;) {
    // Who is asking, at what declared weight — the arbiter's only inputs.
    std::vector<std::pair<int32_t, uint32_t>> pending;
    pending.reserve(sessions.size());
    for (Session* s : sessions) {
      uint32_t weight = 1;
      if (s->BindHead(&weight)) pending.emplace_back(s->id(), weight);
    }
    // BindHead records bind failures as results without touching the
    // device; in fail-fast mode they end the drain like any other error.
    if (stop_on_error && any_error()) break;
    if (pending.empty()) break;
    int32_t pick = device_->arbiter().PickNext(pending);
    for (Session* s : sessions) {
      if (s->id() == pick) {
        s->RunHead();
        break;
      }
    }
    ran += 1;
    if (stop_on_error && any_error()) break;
  }
  return ran;
}

Result<BatchResult> GhostDB::QueryBatch(const std::vector<std::string>& sqls) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  // One baseline spans the whole batch: `total` reports the batch-wide
  // costs (statements still carry their own per-query metrics).
  exec::MetricSnapshot baseline = exec::MetricSnapshot::Take(device_.get());
  // The degenerate scheduler case: one ephemeral session holding the whole
  // stream, no dedicated RAM partition (the batch runs from the shared
  // reserve, exactly like the sessionless path did).
  SessionOptions options;
  options.ram_quota_buffers = 0;
  options.name = "batch";
  GHOSTDB_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                           OpenSession(std::move(options)));
  for (const std::string& sql : sqls) session->Enqueue(sql);
  // Fail fast: the first erroring statement ends the batch — later
  // statements never reach the device (matching the pre-session loop).
  GHOSTDB_RETURN_NOT_OK(
      DrainSessions({session.get()}, /*stop_on_error=*/true).status());
  std::vector<Result<exec::QueryResult>> results = session->TakeResults();
  BatchResult batch;
  batch.results.reserve(results.size());
  for (Result<exec::QueryResult>& r : results) {
    GHOSTDB_RETURN_NOT_OK(r.status());
    // Statement counters sum; baseline.Delta overwrites the device-derived
    // fields with the batch-wide deltas below.
    batch.total.Accumulate(r->metrics);
    batch.results.push_back(std::move(*r));
  }
  // Device-derived batch totals come from the baseline delta on a single
  // device. A sharded fleet has N independent clocks and channels, so the
  // per-statement sums (already fleet-wide: every leg's counters fold into
  // its statement's metrics) stand as the batch totals instead.
  if (extra_shards_.empty()) {
    baseline.Delta(device_.get(), &batch.total);
  }
  return batch;
}

Result<exec::QueryResult> GhostDB::Query(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, nullptr, nullptr);
}

Result<exec::QueryResult> GhostDB::QueryWithPlan(
    const std::string& sql, const plan::PlanChoice& plan) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, &plan, nullptr);
}

Result<std::string> GhostDB::Explain(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  query.explain = true;
  GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           RunSelect(query, nullptr, nullptr));
  return result.rows[0][0].AsString();
}

std::string GhostDB::StorageReport() const {
  std::string out = "flash pages by structure:\n";
  for (const auto& [tag, pages] : allocator_->usage_by_tag()) {
    if (pages == 0) continue;
    out += "  " + tag + ": " + std::to_string(pages) + "\n";
  }
  out += "total used: " + std::to_string(allocator_->used_pages()) +
         " pages (" +
         std::to_string(allocator_->used_pages() * 2048 / 1024 / 1024) +
         " MiB)\n";
  return out;
}

}  // namespace ghostdb::core

#include "core/database.h"

#include "crypto/sha256.h"
#include "sql/binder.h"

namespace ghostdb::core {

using catalog::TableId;

GhostDB::GhostDB(GhostDBConfig config) : config_(std::move(config)) {
  if (config_.encrypt_external_flash &&
      !config_.device.flash.cipher_key.has_value()) {
    // Derive the at-rest key from the device master secret.
    const char* label = "ghostdb-at-rest-key";
    auto digest = crypto::Sha256::Hash(
        reinterpret_cast<const uint8_t*>(label), 19);
    std::array<uint8_t, 32> key{};
    std::copy(digest.begin(), digest.end(), key.begin());
    config_.device.flash.cipher_key = key;
  }
  device_ = std::make_unique<device::SecureDevice>(config_.device);
  allocator_ = std::make_unique<storage::PageAllocator>(&device_->flash());
}

Status GhostDB::Execute(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported("schema changes after Build()");
    }
    return schema_.AddTable(create->def);
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    if (built_) {
      return Status::NotSupported(
          "updates after Build() are outside this prototype's scope "
          "(the paper treats updates as untime-critical, section 2.3)");
    }
    if (!schema_.finalized()) {
      GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
      staged_.clear();
      for (TableId t = 0; t < schema_.table_count(); ++t) {
        staged_.emplace_back(&schema_, t);
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(insert->table));
    return staged_[t].AppendRow(insert->values);
  }
  return Status::InvalidArgument(
      "Execute() handles CREATE TABLE / INSERT; use Query() for SELECT");
}

Result<TableData*> GhostDB::MutableStaging(const std::string& table) {
  if (built_) {
    return Status::NotSupported("staging after Build()");
  }
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table));
  return &staged_[t];
}

Status GhostDB::Build() {
  if (built_) return Status::OK();
  if (!schema_.finalized()) {
    GHOSTDB_RETURN_NOT_OK(schema_.Finalize());
    staged_.clear();
    for (TableId t = 0; t < schema_.table_count(); ++t) {
      staged_.emplace_back(&schema_, t);
    }
  }
  untrusted_ = std::make_unique<untrusted::UntrustedEngine>(
      &schema_, &device_->channel());
  if (config_.indexed_attrs_by_name.has_value()) {
    std::map<TableId, std::vector<catalog::ColumnId>> resolved;
    for (const auto& [table_name, columns] :
         *config_.indexed_attrs_by_name) {
      GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema_.FindTable(table_name));
      for (const auto& column_name : columns) {
        auto c = schema_.table(t).FindColumn(column_name);
        if (!c.has_value()) {
          return Status::NotFound("indexed column '" + table_name + "." +
                                  column_name + "' not found");
        }
        resolved[t].push_back(*c);
      }
      resolved.try_emplace(t);  // ensure entry exists even if empty
    }
    config_.loader.indexed_attrs = std::move(resolved);
  }
  Loader loader(&schema_, device_.get(), allocator_.get(), untrusted_.get(),
                config_.loader);
  GHOSTDB_ASSIGN_OR_RETURN(store_, loader.Load(staged_));
  executor_ = std::make_unique<exec::SecureExecutor>(
      device_.get(), allocator_.get(), &schema_, &store_, untrusted_.get(),
      config_.exec);
  planner_ =
      std::make_unique<plan::Planner>(&schema_, &store_, config_.planner);
  if (!config_.retain_staged_data) {
    staged_.clear();
    staged_.shrink_to_fit();
  }
  built_ = true;
  return Status::OK();
}

Result<sql::BoundQuery> GhostDB::BindSelect(const std::string& sql,
                                            bool* explain) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  auto* select = std::get_if<sql::SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Query() expects a SELECT");
  }
  if (explain != nullptr) *explain = select->explain;
  return sql::Bind(*select, schema_, sql);
}

Status GhostDB::ServeVisCounts(const sql::BoundQuery& query,
                               std::map<TableId, uint64_t>* out) {
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    GHOSTDB_ASSIGN_OR_RETURN(uint64_t count,
                             untrusted_->ServeVisibleCount(query, t));
    (*out)[t] = count;
  }
  return Status::OK();
}

Result<const PreparedQuery*> GhostDB::PrepareBound(
    const sql::BoundQuery& query, bool* hit_out) {
  GHOSTDB_ASSIGN_OR_RETURN(std::string shape, sql::QueryShape(query.sql));
  auto it = plan_cache_index_.find(shape);
  if (it != plan_cache_index_.end()) {
    // Refresh recency: move the entry to the front of the LRU list.
    plan_cache_.splice(plan_cache_.begin(), plan_cache_, it->second);
    it->second = plan_cache_.begin();
    it->second->hits += 1;
    if (hit_out != nullptr) *hit_out = true;
    return &*it->second;
  }
  // Visible selectivities, computed by Untrusted from visible data. Cache
  // hits skip these round-trips entirely — the main per-query planning
  // cost under throughput workloads.
  std::map<TableId, uint64_t> vis_counts;
  GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &vis_counts));
  GHOSTDB_ASSIGN_OR_RETURN(
      plan::PhysicalPlan plan,
      planner_->PlanQuery(query, vis_counts, config_.exec));
  PreparedQuery prepared;
  prepared.shape = shape;
  prepared.plan = std::move(plan);
  if (hit_out != nullptr) *hit_out = false;
  plan_cache_.push_front(std::move(prepared));
  plan_cache_index_[std::move(shape)] = plan_cache_.begin();
  if (config_.plan_cache_capacity != 0 &&
      plan_cache_.size() > config_.plan_cache_capacity) {
    plan_cache_index_.erase(plan_cache_.back().shape);
    plan_cache_.pop_back();
    plan_cache_evictions_ += 1;
  }
  return &plan_cache_.front();
}

Result<const PreparedQuery*> GhostDB::Prepare(const std::string& sql) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before Prepare()");
  }
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query, BindSelect(sql, nullptr));
  // Planning consults Untrusted's visible counts, so the statement is
  // announced exactly as at execution time.
  untrusted_->ReceiveQuery(query.sql);
  return PrepareBound(query, nullptr);
}

Result<exec::QueryResult> GhostDB::RunSelect(const sql::BoundQuery& query,
                                             const plan::PlanChoice* pinned) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  exec::MetricSnapshot baseline = exec::MetricSnapshot::Take(device_.get());
  // The query text is the only information that leaves the key.
  untrusted_->ReceiveQuery(query.sql);

  if (query.explain) {
    // EXPLAIN always plans afresh (never touches the cache): a cached
    // tree would render the literals and selectivities of the statement
    // that populated it, not this one.
    std::map<TableId, uint64_t> vis_counts;
    GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &vis_counts));
    plan::PhysicalPlan plan;
    if (pinned != nullptr) {
      plan = plan::BuildPhysicalPlan(query, *pinned);
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(
          plan, planner_->PlanQuery(query, vis_counts, config_.exec));
    }
    exec::QueryResult result;
    result.columns = {"plan"};
    result.rows = {{catalog::Value::String(
        planner_->Explain(query, plan, vis_counts))}};
    result.total_rows = 1;
    return result;
  }

  plan::PhysicalPlan pinned_plan;
  const plan::PhysicalPlan* plan = nullptr;
  bool cache_hit = false;
  bool cached_path = pinned == nullptr;
  if (pinned != nullptr) {
    // Pinned runs serve the Vis counts like a planner run would, so their
    // transcripts and metrics stay comparable across strategies.
    std::map<TableId, uint64_t> vis_counts;
    GHOSTDB_RETURN_NOT_OK(ServeVisCounts(query, &vis_counts));
    pinned_plan = plan::BuildPhysicalPlan(query, *pinned);
    plan = &pinned_plan;
  } else {
    GHOSTDB_ASSIGN_OR_RETURN(const PreparedQuery* prepared,
                             PrepareBound(query, &cache_hit));
    plan = &prepared->plan;  // cache entries are pointer-stable
  }
  GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           executor_->Execute(query, *plan, &baseline));
  if (cached_path) {
    result.metrics.plan_cache_hits = cache_hit ? 1 : 0;
    result.metrics.plan_cache_misses = cache_hit ? 0 : 1;
  }
  return result;
}

Result<BatchResult> GhostDB::QueryBatch(const std::vector<std::string>& sqls) {
  if (!built_) {
    return Status::InvalidArgument("call Build() before querying");
  }
  // One baseline spans the whole batch: `total` reports the batch-wide
  // costs (statements still carry their own per-query metrics).
  exec::MetricSnapshot baseline = exec::MetricSnapshot::Take(device_.get());
  BatchResult batch;
  batch.results.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                             BindSelect(sql, nullptr));
    GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                             RunSelect(query, nullptr));
    batch.total.plan_cache_hits += result.metrics.plan_cache_hits;
    batch.total.plan_cache_misses += result.metrics.plan_cache_misses;
    batch.total.result_rows += result.total_rows;
    batch.results.push_back(std::move(result));
  }
  baseline.Delta(device_.get(), &batch.total);
  return batch;
}

Result<exec::QueryResult> GhostDB::Query(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, nullptr);
}

Result<exec::QueryResult> GhostDB::QueryWithPlan(
    const std::string& sql, const plan::PlanChoice& plan) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  return RunSelect(query, &plan);
}

Result<std::string> GhostDB::Explain(const std::string& sql) {
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           BindSelect(sql, nullptr));
  query.explain = true;
  GHOSTDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           RunSelect(query, nullptr));
  return result.rows[0][0].AsString();
}

std::string GhostDB::StorageReport() const {
  std::string out = "flash pages by structure:\n";
  for (const auto& [tag, pages] : allocator_->usage_by_tag()) {
    if (pages == 0) continue;
    out += "  " + tag + ": " + std::to_string(pages) + "\n";
  }
  out += "total used: " + std::to_string(allocator_->used_pages()) +
         " pages (" +
         std::to_string(allocator_->used_pages() * 2048 / 1024 / 1024) +
         " MiB)\n";
  return out;
}

}  // namespace ghostdb::core

#include "core/secure_store.h"

namespace ghostdb::core {

Result<uint32_t> SecureStore::LevelFor(const catalog::Schema& schema,
                                       catalog::TableId owner,
                                       catalog::TableId target,
                                       bool self_level) {
  if (target == owner) {
    if (!self_level) {
      return Status::Internal("id index has no self level");
    }
    return 0u;
  }
  const auto& ancestors = schema.tree(owner).ancestors;
  for (uint32_t i = 0; i < ancestors.size(); ++i) {
    if (ancestors[i] == target) {
      return (self_level ? 1u : 0u) + i;
    }
  }
  return Status::Internal("table '" + schema.table(target).name +
                          "' is not an ancestor of '" +
                          schema.table(owner).name + "'");
}

uint64_t SecureStore::TotalPages() const {
  uint64_t pages = 0;
  for (const auto& t : tables) {
    if (t.hidden_image) pages += t.hidden_image->run.page_count();
    if (t.skt) pages += t.skt->run.page_count();
    for (const auto& [col, idx] : t.attr_indexes) pages += idx.total_pages();
    if (t.id_index) pages += t.id_index->total_pages();
  }
  return pages;
}

}  // namespace ghostdb::core

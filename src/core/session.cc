#include "core/session.h"

#include <algorithm>

#include "core/database.h"

namespace ghostdb::core {

Session::Session(GhostDB* db, int32_t id, std::string name,
                 std::vector<device::RamPartitionId> partitions)
    : db_(db), id_(id), name_(std::move(name)) {
  bindings_.reserve(partitions.size());
  for (device::RamPartitionId partition : partitions) {
    exec::SessionBinding binding;
    binding.id = id_;
    binding.name = name_;
    binding.ram_partition = partition;
    bindings_.push_back(std::move(binding));
  }
}

Session::~Session() { db_->CloseSession(this); }

Result<exec::QueryResult> Session::Query(const std::string& sql) {
  // Binding is pure CPU over the (const-after-Build) schema, so sessions
  // bind on their own threads; only the arbitrated part inside RunSelect
  // serializes.
  GHOSTDB_ASSIGN_OR_RETURN(sql::BoundQuery query,
                           db_->BindSelect(sql, nullptr));
  Result<exec::QueryResult> result = db_->RunSelect(query, nullptr, this);
  std::lock_guard<std::mutex> lk(mu_);
  executed_ += 1;
  if (result.ok()) totals_.Accumulate(result->metrics);
  return result;
}

void Session::Enqueue(std::string sql) {
  std::lock_guard<std::mutex> lk(mu_);
  Queued q;
  q.sql = std::move(sql);
  queue_.push_back(std::move(q));
}

size_t Session::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::vector<Result<exec::QueryResult>> Session::TakeResults() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Result<exec::QueryResult>> out = std::move(results_);
  results_.clear();
  saw_error_ = false;
  return out;
}

exec::QueryMetrics Session::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return totals_;
}

uint64_t Session::queries_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return executed_;
}

bool Session::saw_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return saw_error_;
}

bool Session::BindHead(uint32_t* weight) {
  std::lock_guard<std::mutex> lk(mu_);
  while (!queue_.empty()) {
    Queued& head = queue_.front();
    if (!head.bound.has_value()) {
      Result<sql::BoundQuery> bound = db_->BindSelect(head.sql, nullptr);
      if (!bound.ok()) {
        // A statement that cannot bind never reaches the device; its error
        // takes the statement's slot on the result surface.
        results_.emplace_back(bound.status());
        saw_error_ = true;
        queue_.pop_front();
        continue;
      }
      head.weight = DeclaredShapeWeight(*bound);
      head.bound = std::move(*bound);
    }
    *weight = head.weight;
    return true;
  }
  return false;
}

void Session::RunHead() {
  Queued head;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty() || !queue_.front().bound.has_value()) return;
    head = std::move(queue_.front());
    queue_.pop_front();
  }
  Result<exec::QueryResult> result =
      db_->RunSelect(*head.bound, nullptr, this);
  std::lock_guard<std::mutex> lk(mu_);
  executed_ += 1;
  if (result.ok()) {
    totals_.Accumulate(result->metrics);
  } else {
    saw_error_ = true;
  }
  results_.push_back(std::move(result));
}

}  // namespace ghostdb::core

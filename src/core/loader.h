// Database loading: vertical partitioning (paper section 2.1) and
// construction of the fully indexed Secure-side model (section 3.2).
//
// The owner splits each staged table into its Visible partition (shipped to
// Untrusted in the clear) and its Hidden partition (sealed with
// AES-CTR + HMAC-SHA-256 and opened only on the Secure device), then builds
// on-device: hidden images, Subtree Key Tables, climbing indexes on hidden
// attributes, id climbing indexes, and hidden-column statistics.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "core/table_data.h"
#include "device/secure_device.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::core {

struct LoaderConfig {
  /// Seal/verify the Hidden partitions through the secure channel (crypto
  /// path exercised; costs no simulated time).
  bool seal_hidden_download = true;
  /// Which hidden attributes get climbing indexes. nullopt = every hidden
  /// non-foreign-key attribute (the paper's fully indexed model). An entry
  /// with an empty vector disables attribute indexes for that table.
  std::optional<std::map<catalog::TableId, std::vector<catalog::ColumnId>>>
      indexed_attrs;
};

/// \brief One shard's slice of a staged database, ready for its Loader.
///
/// Only the schema root's rows are partitioned (hash on the visible global
/// id); every other table is replicated in full, so all parent→child
/// foreign keys stay valid with local ids unchanged. Root rows are
/// assigned in ascending global-id order, so each shard's local ids are
/// dense and order-preserving — the property the scatter-gather merge
/// relies on to reconstruct the single-device row order from per-row
/// global ids.
struct ShardedStaging {
  /// shards[s] is the full TableData vector (indexed by TableId) of shard
  /// s: the root's slice plus replicas of everything else.
  std::vector<std::vector<TableData>> shards;
  /// root_global_ids[s][local] = the global root id of shard s's local row
  /// `local` (strictly ascending).
  std::vector<std::vector<catalog::RowId>> root_global_ids;
};

/// Hash-partitions `staged` across `shard_count` devices (splitmix64 over
/// the global root id — a pure function of visible information, so the
/// assignment is identical across hidden-data variants). shard_count == 1
/// degenerates to one shard holding everything with an empty (identity)
/// global-id map.
Result<ShardedStaging> PartitionStagedByRoot(
    const catalog::Schema& schema, const std::vector<TableData>& staged,
    uint32_t shard_count);

/// \brief Builds the Untrusted and Secure images of a staged database.
class Loader {
 public:
  Loader(const catalog::Schema* schema, device::SecureDevice* device,
         storage::PageAllocator* allocator,
         untrusted::UntrustedEngine* untrusted, LoaderConfig config)
      : schema_(schema),
        device_(device),
        allocator_(allocator),
        untrusted_(untrusted),
        config_(config) {}

  /// Loads everything; `staged` is indexed by TableId.
  Result<SecureStore> Load(const std::vector<TableData>& staged);

 private:
  Status LoadVisiblePartition(catalog::TableId t, const TableData& data);
  Status BuildHiddenImage(catalog::TableId t, const TableData& data,
                          TableImage* image);
  Status BuildSkt(catalog::TableId t, const std::vector<TableData>& staged,
                  TableImage* image);
  Status BuildAncestorMaps(const std::vector<TableData>& staged);
  Status BuildAttrIndex(catalog::TableId t, catalog::ColumnId c,
                        const TableData& data, TableImage* image);
  Status BuildIdIndex(catalog::TableId t, const TableData& data,
                      TableImage* image);
  Status BuildStats(catalog::TableId t, const TableData& data,
                    TableImage* image);

  const catalog::Schema* schema_;
  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  untrusted::UntrustedEngine* untrusted_;
  LoaderConfig config_;

  // anc_ids_[t][level][row] = sorted ids of the level-th ancestor table
  // (nearest first) containing row `row` of table t in their subtree.
  std::vector<std::vector<std::vector<std::vector<catalog::RowId>>>> anc_ids_;
};

}  // namespace ghostdb::core

// Database loading: vertical partitioning (paper section 2.1) and
// construction of the fully indexed Secure-side model (section 3.2).
//
// The owner splits each staged table into its Visible partition (shipped to
// Untrusted in the clear) and its Hidden partition (sealed with
// AES-CTR + HMAC-SHA-256 and opened only on the Secure device), then builds
// on-device: hidden images, Subtree Key Tables, climbing indexes on hidden
// attributes, id climbing indexes, and hidden-column statistics.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "core/table_data.h"
#include "device/secure_device.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::core {

struct LoaderConfig {
  /// Seal/verify the Hidden partitions through the secure channel (crypto
  /// path exercised; costs no simulated time).
  bool seal_hidden_download = true;
  /// Which hidden attributes get climbing indexes. nullopt = every hidden
  /// non-foreign-key attribute (the paper's fully indexed model). An entry
  /// with an empty vector disables attribute indexes for that table.
  std::optional<std::map<catalog::TableId, std::vector<catalog::ColumnId>>>
      indexed_attrs;
};

/// \brief Builds the Untrusted and Secure images of a staged database.
class Loader {
 public:
  Loader(const catalog::Schema* schema, device::SecureDevice* device,
         storage::PageAllocator* allocator,
         untrusted::UntrustedEngine* untrusted, LoaderConfig config)
      : schema_(schema),
        device_(device),
        allocator_(allocator),
        untrusted_(untrusted),
        config_(config) {}

  /// Loads everything; `staged` is indexed by TableId.
  Result<SecureStore> Load(const std::vector<TableData>& staged);

 private:
  Status LoadVisiblePartition(catalog::TableId t, const TableData& data);
  Status BuildHiddenImage(catalog::TableId t, const TableData& data,
                          TableImage* image);
  Status BuildSkt(catalog::TableId t, const std::vector<TableData>& staged,
                  TableImage* image);
  Status BuildAncestorMaps(const std::vector<TableData>& staged);
  Status BuildAttrIndex(catalog::TableId t, catalog::ColumnId c,
                        const TableData& data, TableImage* image);
  Status BuildIdIndex(catalog::TableId t, const TableData& data,
                      TableImage* image);
  Status BuildStats(catalog::TableId t, const TableData& data,
                    TableImage* image);

  const catalog::Schema* schema_;
  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  untrusted::UntrustedEngine* untrusted_;
  LoaderConfig config_;

  // anc_ids_[t][level][row] = sorted ids of the level-th ancestor table
  // (nearest first) containing row `row` of table t in their subtree.
  std::vector<std::vector<std::vector<std::vector<catalog::RowId>>>> anc_ids_;
};

}  // namespace ghostdb::core

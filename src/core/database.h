// GhostDB: the public facade.
//
// Usage:
//   ghostdb::core::GhostDB db;
//   db.Execute("CREATE TABLE Patients (id INT, name CHAR(20) HIDDEN, ...)");
//   db.Execute("INSERT INTO Patients VALUES (...)");   // staged
//   db.Build();                                        // partition + index
//   auto r = db.Query("SELECT ... FROM ... WHERE ..."); // leak-free
//
//   // Multi-session serving (the paper's one-key-many-principals case):
//   auto alice = db.OpenSession({.name = "alice"});
//   auto bob   = db.OpenSession({.name = "bob"});
//   auto r1 = (*alice)->Query("SELECT ...");  // concurrent with bob's,
//   auto r2 = (*bob)->Query("SELECT ...");    // arbitrated on the channel
//
// The object owns both worlds: the Untrusted engine (visible partitions)
// and the Secure device (hidden partitions, SKTs, climbing indexes), wired
// by the audited channel. Only the query text ever crosses to Untrusted.
// Sessions share the store, the plan cache, and the device; the channel
// arbiter serializes device access under a deterministic visible-only
// policy and tags every transcript message with its session.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/loader.h"
#include "core/plan_cache.h"
#include "core/secure_store.h"
#include "core/session.h"
#include "core/table_data.h"
#include "device/secure_device.h"
#include "exec/executor.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::core {

struct GhostDBConfig {
  device::DeviceConfig device;
  /// Seeded fault schedule, applied to every shard's device (each on its
  /// own seed lane). Inert by default; validated and armed by Build() so
  /// the load phase always runs fault-free.
  device::FaultConfig fault_config;
  /// Simulated SecureDevices the logical database shards across. The
  /// loader hash-partitions the schema root's rows over the fleet (every
  /// other table replicates in full, so parent→child foreign keys stay
  /// local); root-anchored queries scatter the plan's per-shard subtree
  /// across all devices concurrently and combine on a gather pass —
  /// merge-by-global-id for row streams, a partial-aggregate combine for
  /// aggregation roots. Answers are byte-identical for every value; each
  /// device keeps its own channel, flash, clock, RAM partition pool, and
  /// arbiter, so the per-device transcript contract is unchanged. 1 = the
  /// classic single device.
  uint32_t shard_count = 1;
  /// Encrypt external NAND pages (the chip sits outside the secure
  /// perimeter, Fig 2). Zero simulated-time cost; real crypto exercised.
  bool encrypt_external_flash = true;
  /// Keep the staged (owner-side) data after Build() — used by tests to
  /// cross-check results against the reference oracle.
  bool retain_staged_data = false;
  /// Name-based alternative to loader.indexed_attrs (resolved at Build()).
  std::optional<std::map<std::string, std::vector<std::string>>>
      indexed_attrs_by_name;
  /// Most query shapes the plan cache keeps (least-recently-used shapes
  /// are evicted and re-planned on next use). 0 = unbounded. Shapes derive
  /// from visible query text only, so eviction cannot depend on Hidden
  /// data.
  size_t plan_cache_capacity = 128;
  /// Width of the PC-side morsel worker pool (calling thread included):
  /// 1 = fully serial (no threads spawned), N = N-way parallel visible
  /// scans / spill sorts / batch key extraction. Thread count never
  /// changes results or the channel transcript — the leak sweep asserts
  /// it. Build() rejects 0 and absurd values with InvalidArgument.
  uint32_t worker_threads = 1;
  /// Pin pool workers round-robin across cores (Linux; best-effort).
  bool pin_worker_threads = true;
  LoaderConfig loader;
  exec::ExecConfig exec;
  plan::PlannerConfig planner;
};

/// \brief Result of QueryBatch(): per-statement answers plus batch-level
/// costs measured from a single MetricSnapshot baseline.
struct BatchResult {
  std::vector<exec::QueryResult> results;
  exec::QueryMetrics total;  ///< deltas over the whole batch
};

/// \brief The GhostDB engine.
class GhostDB {
 public:
  explicit GhostDB(GhostDBConfig config = {});
  ~GhostDB();

  /// Executes a DDL or INSERT statement (before Build()).
  Status Execute(const std::string& sql);

  /// Bulk-stages packed rows for `table` (before Build()).
  Result<TableData*> MutableStaging(const std::string& table);

  /// Finalizes the schema, partitions the data, and builds the Secure-side
  /// fully indexed model. Must be called once, before the first query.
  Status Build();

  /// Opens a serving session: its own RAM partition (per SessionOptions),
  /// metrics baseline, result surface, and transcript identity. Sessions
  /// share the store and the plan cache; the channel arbiter interleaves
  /// their device access. The GhostDB must outlive the session.
  Result<std::unique_ptr<Session>> OpenSession(SessionOptions options = {});

  /// The deterministic multi-session scheduler: executes every statement
  /// queued (Session::Enqueue) on `sessions`, interleaving by the channel
  /// arbiter's deficit-round-robin policy over declared shape weights —
  /// visible inputs only, so the interleaving (and the global transcript)
  /// is reproducible. Per-session results land on each session's result
  /// surface in statement order. Returns the number of statements run.
  /// With `stop_on_error`, draining stops at the first statement that
  /// fails (its error is on the result surface; later statements stay
  /// queued and unpaid-for).
  Result<uint64_t> DrainSessions(const std::vector<Session*>& sessions,
                                 bool stop_on_error = false);

  /// Number of sessions currently open.
  size_t open_sessions() const;

  /// Runs a SELECT (or EXPLAIN SELECT). The planner picks strategies;
  /// repeated query shapes reuse the cached plan and skip the planning
  /// round-trips.
  Result<exec::QueryResult> Query(const std::string& sql);

  /// Binds and plans `sql`, caching the result by query shape. Later
  /// Query()/QueryBatch() calls with the same shape (from any session)
  /// reuse the plan. The returned snapshot stays valid and unchanging for
  /// as long as the caller holds it — concurrent evictions or stats-stale
  /// re-plans install fresh snapshots in the cache without touching this
  /// one.
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::string& sql);

  /// Executes many statements against one MetricSnapshot baseline — the
  /// throughput surface. Per-statement answers come back in order;
  /// `total` carries the batch-wide costs and plan-cache hit counts.
  /// Implemented as the degenerate single-session case of the scheduler:
  /// one ephemeral session, every statement queued to it, drained. Must
  /// not run concurrently with live sessions (its batch-wide baseline
  /// reads device counters outside any admission).
  Result<BatchResult> QueryBatch(const std::vector<std::string>& sqls);

  /// Runs a SELECT under a pinned plan (benches compare strategies);
  /// bypasses the plan cache.
  Result<exec::QueryResult> QueryWithPlan(const std::string& sql,
                                          const plan::PlanChoice& plan);

  /// EXPLAIN text for a query without executing it.
  Result<std::string> Explain(const std::string& sql);

  bool built() const { return built_; }
  /// The PC-side worker pool (null until Build(), or when
  /// worker_threads == 1).
  exec::ThreadPool* worker_pool() { return pool_.get(); }
  const catalog::Schema& schema() const { return schema_; }
  device::SecureDevice& device() { return *device_; }
  storage::PageAllocator& allocator() { return *allocator_; }
  untrusted::UntrustedEngine& untrusted() { return *untrusted_; }
  const SecureStore& store() const { return store_; }

  /// Devices in the fleet (1 until Build() under a sharded config).
  uint32_t shard_count() const {
    return static_cast<uint32_t>(1 + extra_shards_.size());
  }
  /// Shard s's device / store / engine (shard 0 is the primary device the
  /// unsharded accessors above return).
  device::SecureDevice& shard_device(uint32_t s) {
    return s == 0 ? *device_ : *extra_shards_[s - 1]->device;
  }
  const SecureStore& shard_store(uint32_t s) const {
    return s == 0 ? store_ : extra_shards_[s - 1]->store;
  }
  untrusted::UntrustedEngine& shard_untrusted(uint32_t s) {
    return s == 0 ? *untrusted_ : *extra_shards_[s - 1]->untrusted;
  }
  /// Staged data (only if retain_staged_data).
  const std::vector<TableData>& staged() const { return staged_; }

  /// Storage report: live flash pages per structure tag.
  std::string StorageReport() const;

  /// Declares that the catalog statistics changed (e.g. a future update
  /// path refreshed the selectivity sketches): bumps the stats version, so
  /// every cached plan stamped with an older version re-plans on its next
  /// use instead of reusing a strategy chosen under dead selectivities.
  void NotifyStatsChanged() { stats_version_.fetch_add(1); }
  /// Current catalog stats version (starts at 1).
  uint64_t stats_version() const { return stats_version_.load(); }

  /// Number of distinct query shapes currently cached.
  size_t plan_cache_size() const { return plan_cache_.size(); }
  /// Shapes evicted by the LRU bound so far.
  uint64_t plan_cache_evictions() const { return plan_cache_.evictions(); }
  /// Cached plans re-planned because their stats stamp went stale.
  uint64_t plan_cache_replans() const { return plan_cache_.replans(); }

 private:
  friend class Session;

  /// One non-primary device of a sharded fleet: a full vertical stack —
  /// device, allocator, Untrusted engine over its visible slice, Secure
  /// store, executor. (Shard 0 lives in the primary members so the
  /// unsharded accessors and single-device paths are untouched.)
  struct Shard {
    std::unique_ptr<device::SecureDevice> device;
    std::unique_ptr<storage::PageAllocator> allocator;
    std::unique_ptr<untrusted::UntrustedEngine> untrusted;
    SecureStore store;
    std::unique_ptr<exec::SecureExecutor> executor;
  };

  Result<sql::BoundQuery> BindSelect(const std::string& sql, bool* explain);
  /// True when `query` must scatter-gather across the fleet: only
  /// root-anchored statements read the partitioned table (a pure function
  /// of the visible query shape, mirrored by PhysicalPlan::shard_fanout).
  bool ShardFanout(const sql::BoundQuery& query) const;
  /// Full arbitrated execution of a bound SELECT: admission, baseline,
  /// announcement, plan-cache consult (unless `pinned`), execution under
  /// `session`'s identity (nullptr = the "main" pseudo-session).
  Result<exec::QueryResult> RunSelect(const sql::BoundQuery& query,
                                      const plan::PlanChoice* pinned,
                                      const Session* session);
  /// The scatter-gather orchestration of RunSelect for sharded fleets:
  /// shard 0 (the coordinator) announces, plans, and runs its scatter leg
  /// under one admission while shards 1..N-1 run theirs concurrently under
  /// their own arbiters; the combined outputs (seq-merged rows or
  /// key-merged partial aggregates) then drive the plan's tail on the
  /// coordinator as the gather pass.
  Result<exec::QueryResult> RunSelectSharded(const sql::BoundQuery& query,
                                             const plan::PlanChoice* pinned,
                                             const Session* session);
  /// Plan-cache lookup / fill for an already-bound (and announced) query.
  /// Caller holds the channel admission. `outcome` reports hit/replan.
  Result<std::shared_ptr<const PreparedQuery>> PrepareBound(
      const sql::BoundQuery& query, untrusted::VisPrefetch* prefetch,
      PlanCache::Outcome* outcome);
  /// One vis-count exchange per table with visible predicates (the
  /// planner's selectivity inputs; visible information only).
  Status ServeVisCounts(const sql::BoundQuery& query,
                        const untrusted::VisPrefetch* prefetch,
                        std::map<catalog::TableId, uint64_t>* out);
  /// Detaches a closing session (releases its partition under admission
  /// and unregisters it from the arbiter).
  void CloseSession(Session* session);

  GhostDBConfig config_;
  catalog::Schema schema_;
  std::vector<TableData> staged_;
  std::unique_ptr<device::SecureDevice> device_;
  std::unique_ptr<storage::PageAllocator> allocator_;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< outlives untrusted_/executor_
  std::unique_ptr<untrusted::UntrustedEngine> untrusted_;
  SecureStore store_;
  std::unique_ptr<exec::SecureExecutor> executor_;
  std::vector<std::unique_ptr<Shard>> extra_shards_;  ///< shards 1..N-1
  /// Fleet-wide root-table row count: the gather pass's volume-padding
  /// bound (each shard's local store only knows its own slice).
  uint64_t fleet_anchor_rows_ = 0;
  std::unique_ptr<plan::Planner> planner_;
  PlanCache plan_cache_;
  std::atomic<uint64_t> stats_version_{1};
  mutable std::mutex sessions_mu_;  // next_session_id_, open_sessions_
  int32_t next_session_id_ = 0;
  size_t open_sessions_ = 0;
  bool built_ = false;
};

/// Declared weight of a query for the channel arbiter: a pure function of
/// the visible query shape (the number of FROM tables; >= 1).
uint32_t DeclaredShapeWeight(const sql::BoundQuery& query);

}  // namespace ghostdb::core

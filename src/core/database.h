// GhostDB: the public facade.
//
// Usage:
//   ghostdb::core::GhostDB db;
//   db.Execute("CREATE TABLE Patients (id INT, name CHAR(20) HIDDEN, ...)");
//   db.Execute("INSERT INTO Patients VALUES (...)");   // staged
//   db.Build();                                        // partition + index
//   auto r = db.Query("SELECT ... FROM ... WHERE ..."); // leak-free
//
// The object owns both worlds: the Untrusted engine (visible partitions)
// and the Secure device (hidden partitions, SKTs, climbing indexes), wired
// by the audited channel. Only the query text ever crosses to Untrusted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/loader.h"
#include "core/secure_store.h"
#include "core/table_data.h"
#include "device/secure_device.h"
#include "exec/executor.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::core {

struct GhostDBConfig {
  device::DeviceConfig device;
  /// Encrypt external NAND pages (the chip sits outside the secure
  /// perimeter, Fig 2). Zero simulated-time cost; real crypto exercised.
  bool encrypt_external_flash = true;
  /// Keep the staged (owner-side) data after Build() — used by tests to
  /// cross-check results against the reference oracle.
  bool retain_staged_data = false;
  /// Name-based alternative to loader.indexed_attrs (resolved at Build()).
  std::optional<std::map<std::string, std::vector<std::string>>>
      indexed_attrs_by_name;
  LoaderConfig loader;
  exec::ExecConfig exec;
  plan::PlannerConfig planner;
};

/// \brief The GhostDB engine.
class GhostDB {
 public:
  explicit GhostDB(GhostDBConfig config = {});

  /// Executes a DDL or INSERT statement (before Build()).
  Status Execute(const std::string& sql);

  /// Bulk-stages packed rows for `table` (before Build()).
  Result<TableData*> MutableStaging(const std::string& table);

  /// Finalizes the schema, partitions the data, and builds the Secure-side
  /// fully indexed model. Must be called once, before the first query.
  Status Build();

  /// Runs a SELECT (or EXPLAIN SELECT). The planner picks strategies.
  Result<exec::QueryResult> Query(const std::string& sql);

  /// Runs a SELECT under a pinned plan (benches compare strategies).
  Result<exec::QueryResult> QueryWithPlan(const std::string& sql,
                                          const plan::PlanChoice& plan);

  /// EXPLAIN text for a query without executing it.
  Result<std::string> Explain(const std::string& sql);

  bool built() const { return built_; }
  const catalog::Schema& schema() const { return schema_; }
  device::SecureDevice& device() { return *device_; }
  storage::PageAllocator& allocator() { return *allocator_; }
  untrusted::UntrustedEngine& untrusted() { return *untrusted_; }
  const SecureStore& store() const { return store_; }
  /// Staged data (only if retain_staged_data).
  const std::vector<TableData>& staged() const { return staged_; }

  /// Storage report: live flash pages per structure tag.
  std::string StorageReport() const;

 private:
  Result<sql::BoundQuery> BindSelect(const std::string& sql, bool* explain);
  Result<exec::QueryResult> RunSelect(const sql::BoundQuery& query,
                                      const plan::PlanChoice* pinned);

  GhostDBConfig config_;
  catalog::Schema schema_;
  std::vector<TableData> staged_;
  std::unique_ptr<device::SecureDevice> device_;
  std::unique_ptr<storage::PageAllocator> allocator_;
  std::unique_ptr<untrusted::UntrustedEngine> untrusted_;
  SecureStore store_;
  std::unique_ptr<exec::SecureExecutor> executor_;
  std::unique_ptr<plan::Planner> planner_;
  bool built_ = false;
};

}  // namespace ghostdb::core

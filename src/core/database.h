// GhostDB: the public facade.
//
// Usage:
//   ghostdb::core::GhostDB db;
//   db.Execute("CREATE TABLE Patients (id INT, name CHAR(20) HIDDEN, ...)");
//   db.Execute("INSERT INTO Patients VALUES (...)");   // staged
//   db.Build();                                        // partition + index
//   auto r = db.Query("SELECT ... FROM ... WHERE ..."); // leak-free
//
// The object owns both worlds: the Untrusted engine (visible partitions)
// and the Secure device (hidden partitions, SKTs, climbing indexes), wired
// by the audited channel. Only the query text ever crosses to Untrusted.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/loader.h"
#include "core/secure_store.h"
#include "core/table_data.h"
#include "device/secure_device.h"
#include "exec/executor.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::core {

struct GhostDBConfig {
  device::DeviceConfig device;
  /// Encrypt external NAND pages (the chip sits outside the secure
  /// perimeter, Fig 2). Zero simulated-time cost; real crypto exercised.
  bool encrypt_external_flash = true;
  /// Keep the staged (owner-side) data after Build() — used by tests to
  /// cross-check results against the reference oracle.
  bool retain_staged_data = false;
  /// Name-based alternative to loader.indexed_attrs (resolved at Build()).
  std::optional<std::map<std::string, std::vector<std::string>>>
      indexed_attrs_by_name;
  /// Most query shapes the plan cache keeps (least-recently-used shapes
  /// are evicted and re-planned on next use). 0 = unbounded. Shapes derive
  /// from visible query text only, so eviction cannot depend on Hidden
  /// data.
  size_t plan_cache_capacity = 128;
  LoaderConfig loader;
  exec::ExecConfig exec;
  plan::PlannerConfig planner;
};

/// \brief A cached physical plan, keyed on the query shape (statement text
/// with literals normalized to '?'). Shapes derive from the visible query
/// text only, so the cache's behavior can never depend on Hidden data.
/// Literal-dependent pieces (predicate values, the LIMIT count) are always
/// re-bound from the live statement at execution time.
struct PreparedQuery {
  std::string shape;
  plan::PhysicalPlan plan;
  uint64_t hits = 0;       ///< cache hits served by this entry
};

/// \brief Result of QueryBatch(): per-statement answers plus batch-level
/// costs measured from a single MetricSnapshot baseline.
struct BatchResult {
  std::vector<exec::QueryResult> results;
  exec::QueryMetrics total;  ///< deltas over the whole batch
};

/// \brief The GhostDB engine.
class GhostDB {
 public:
  explicit GhostDB(GhostDBConfig config = {});

  /// Executes a DDL or INSERT statement (before Build()).
  Status Execute(const std::string& sql);

  /// Bulk-stages packed rows for `table` (before Build()).
  Result<TableData*> MutableStaging(const std::string& table);

  /// Finalizes the schema, partitions the data, and builds the Secure-side
  /// fully indexed model. Must be called once, before the first query.
  Status Build();

  /// Runs a SELECT (or EXPLAIN SELECT). The planner picks strategies;
  /// repeated query shapes reuse the cached plan and skip the planning
  /// round-trips.
  Result<exec::QueryResult> Query(const std::string& sql);

  /// Binds and plans `sql`, caching the result by query shape. Later
  /// Query()/QueryBatch() calls with the same shape reuse the plan. The
  /// returned pointer stays valid until the entry is evicted (an entry can
  /// only be evicted after `plan_cache_capacity` other shapes have been
  /// prepared more recently).
  Result<const PreparedQuery*> Prepare(const std::string& sql);

  /// Executes many statements against one MetricSnapshot baseline — the
  /// throughput surface. Per-statement answers come back in order;
  /// `total` carries the batch-wide costs and plan-cache hit counts.
  Result<BatchResult> QueryBatch(const std::vector<std::string>& sqls);

  /// Runs a SELECT under a pinned plan (benches compare strategies);
  /// bypasses the plan cache.
  Result<exec::QueryResult> QueryWithPlan(const std::string& sql,
                                          const plan::PlanChoice& plan);

  /// EXPLAIN text for a query without executing it.
  Result<std::string> Explain(const std::string& sql);

  bool built() const { return built_; }
  const catalog::Schema& schema() const { return schema_; }
  device::SecureDevice& device() { return *device_; }
  storage::PageAllocator& allocator() { return *allocator_; }
  untrusted::UntrustedEngine& untrusted() { return *untrusted_; }
  const SecureStore& store() const { return store_; }
  /// Staged data (only if retain_staged_data).
  const std::vector<TableData>& staged() const { return staged_; }

  /// Storage report: live flash pages per structure tag.
  std::string StorageReport() const;

  /// Number of distinct query shapes currently cached.
  size_t plan_cache_size() const { return plan_cache_.size(); }
  /// Shapes evicted by the LRU bound so far.
  uint64_t plan_cache_evictions() const { return plan_cache_evictions_; }

 private:
  Result<sql::BoundQuery> BindSelect(const std::string& sql, bool* explain);
  Result<exec::QueryResult> RunSelect(const sql::BoundQuery& query,
                                      const plan::PlanChoice* pinned);
  /// Plan-cache lookup / fill for an already-bound (and announced) query.
  /// On a miss, serves the Vis counts, plans, and caches; `hit_out`
  /// (optional) reports whether it was a hit.
  Result<const PreparedQuery*> PrepareBound(const sql::BoundQuery& query,
                                            bool* hit_out);
  /// One vis-count exchange per table with visible predicates (the
  /// planner's selectivity inputs; visible information only).
  Status ServeVisCounts(const sql::BoundQuery& query,
                        std::map<catalog::TableId, uint64_t>* out);

  GhostDBConfig config_;
  catalog::Schema schema_;
  std::vector<TableData> staged_;
  std::unique_ptr<device::SecureDevice> device_;
  std::unique_ptr<storage::PageAllocator> allocator_;
  std::unique_ptr<untrusted::UntrustedEngine> untrusted_;
  SecureStore store_;
  std::unique_ptr<exec::SecureExecutor> executor_;
  std::unique_ptr<plan::Planner> planner_;
  /// Plan cache: prepared queries in recency order (front = most recently
  /// used) with a shape index. The list gives pointer-stable entries while
  /// they live and O(1) LRU eviction from the back.
  std::list<PreparedQuery> plan_cache_;
  std::unordered_map<std::string, std::list<PreparedQuery>::iterator>
      plan_cache_index_;
  uint64_t plan_cache_evictions_ = 0;
  bool built_ = false;
};

}  // namespace ghostdb::core

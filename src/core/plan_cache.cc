#include "core/plan_cache.h"

namespace ghostdb::core {

Result<PlanCache::Outcome> PlanCache::GetOrPlan(
    const std::string& shape, uint64_t stats_version,
    const std::function<Result<plan::PhysicalPlan>()>& plan_fn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(shape);
  if (it != index_.end()) {
    // Refresh recency: move the entry to the front of the LRU list.
    entries_.splice(entries_.begin(), entries_, it->second);
    it->second = entries_.begin();
    std::shared_ptr<PreparedQuery>& slot = *it->second;
    if (slot->stats_version == stats_version) {
      slot->hits.fetch_add(1);
      Outcome out;
      out.entry = slot;
      out.hit = true;
      return out;
    }
    // Stale stamp: the strategy was chosen under selectivities that no
    // longer describe the data. Install a fresh snapshot in the same LRU
    // slot (holders of the old snapshot keep it alive and unchanged); the
    // hit counter carries over, and this run pays the planning
    // round-trips like a miss would.
    GHOSTDB_ASSIGN_OR_RETURN(plan::PhysicalPlan plan, plan_fn());
    auto fresh = std::make_shared<PreparedQuery>();
    fresh->shape = slot->shape;
    fresh->plan = std::move(plan);
    fresh->hits.store(slot->hits.load());
    fresh->stats_version = stats_version;
    slot = fresh;
    replans_ += 1;
    Outcome out;
    out.entry = std::move(fresh);
    out.replanned = true;
    return out;
  }
  GHOSTDB_ASSIGN_OR_RETURN(plan::PhysicalPlan plan, plan_fn());
  auto fresh = std::make_shared<PreparedQuery>();
  fresh->shape = shape;
  fresh->plan = std::move(plan);
  fresh->stats_version = stats_version;
  entries_.push_front(fresh);
  index_[fresh->shape] = entries_.begin();
  if (capacity_ != 0 && entries_.size() > capacity_) {
    // Dropping the cache's reference; snapshots still held elsewhere stay
    // alive until released.
    index_.erase(entries_.back()->shape);
    entries_.pop_back();
    evictions_ += 1;
  }
  Outcome out;
  out.entry = std::move(fresh);
  return out;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

uint64_t PlanCache::replans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return replans_;
}

}  // namespace ghostdb::core

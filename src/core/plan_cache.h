// The shared plan cache: prepared physical plans keyed by query shape,
// serving all sessions of one GhostDB.
//
// Shapes derive from the visible query text only (literals normalized to
// '?'), so cache behavior — hits, LRU order, evictions — can never depend
// on Hidden data, and sharing entries across sessions leaks nothing a
// session could not already see: a cross-session hit reveals only that some
// session posed the same visible shape, which the spy already learned from
// the query announcements themselves.
//
// Entries are version-stamped with the catalog stats version current at
// plan time. A hit whose stamp is stale re-plans instead of reusing a
// strategy chosen under dead selectivities; re-plans are counted
// separately from hits and misses.
//
// The cache is synchronized (one mutex) and entries are immutable
// snapshots handed out as shared_ptr: a stale-stats re-plan installs a
// fresh snapshot in the entry's LRU slot and eviction drops the cache's
// reference, so a snapshot a caller still holds — from Prepare() on
// another thread, or mid-execution — remains valid and unchanging for as
// long as they hold it. Planning on a miss happens inside the lock — the
// planner consults the channel, whose arbiter admission the caller
// already holds, so the lock adds no new contention beyond the device's
// own serialization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "plan/physical_plan.h"

namespace ghostdb::core {

/// \brief A cached physical plan, keyed on the query shape (statement text
/// with literals normalized to '?'). Shapes derive from the visible query
/// text only, so the cache's behavior can never depend on Hidden data.
/// Literal-dependent pieces (predicate values, the LIMIT count) are always
/// re-bound from the live statement at execution time. Apart from the
/// atomic hit counter, an entry never changes after construction.
struct PreparedQuery {
  std::string shape;
  plan::PhysicalPlan plan;
  std::atomic<uint64_t> hits{0};  ///< cache hits served by this entry
  uint64_t stats_version = 0;     ///< catalog stats version at plan time
};

/// \brief Shape-keyed, LRU-bounded, synchronized plan cache.
class PlanCache {
 public:
  /// `capacity` = most shapes kept (0 = unbounded).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Outcome of GetOrPlan: exactly one of hit/miss/replanned is set.
  struct Outcome {
    std::shared_ptr<const PreparedQuery> entry;
    bool hit = false;        ///< fresh entry reused as-is
    bool replanned = false;  ///< entry existed but its stats stamp was stale
  };

  /// Looks up `shape`; on a miss (or a stale stats stamp) calls `plan_fn`
  /// to produce a plan — under the cache lock, and under whatever channel
  /// admission the caller holds — and stamps the new snapshot with
  /// `stats_version`. The returned snapshot stays valid and unchanging for
  /// as long as the caller holds it, regardless of concurrent re-plans or
  /// evictions.
  Result<Outcome> GetOrPlan(
      const std::string& shape, uint64_t stats_version,
      const std::function<Result<plan::PhysicalPlan>()>& plan_fn);

  size_t size() const;
  uint64_t evictions() const;
  uint64_t replans() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  /// Recency order (front = most recently used) with a shape index.
  std::list<std::shared_ptr<PreparedQuery>> entries_;
  std::unordered_map<std::string,
                     std::list<std::shared_ptr<PreparedQuery>>::iterator>
      index_;
  uint64_t evictions_ = 0;
  uint64_t replans_ = 0;
};

}  // namespace ghostdb::core

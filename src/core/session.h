// A Session: one principal's query surface over a shared GhostDB.
//
// The paper's deployment is inherently multi-user — one smart USB key
// serving several principals — so the engine serves N sessions over one
// SecureStore. Each session owns:
//
//   * a RAM partition — a fixed buffer quota pledged from the device's
//     32-buffer budget (plus access to the shared reserve), so one
//     session's appetite cannot starve another's guarantee;
//   * a metrics baseline and result surface — per-query answers and
//     accumulated session totals, kept on the Secure side;
//   * a transcript identity — every channel message a session causes is
//     tagged with its id by the arbiter.
//
// Sessions share the plan cache (shape-keyed, visible-only) and the device,
// whose access is serialized by the ChannelArbiter under a deterministic,
// visible-only policy. Two ways to drive a session:
//
//   * Query() — blocking; safe to call from one thread per session while
//     other sessions query concurrently (the arbiter interleaves);
//   * Enqueue() + GhostDB::DrainSessions() — the deterministic scheduler:
//     queued statements across sessions run under an interleaving that is
//     a pure function of visible inputs, which is what the multi-session
//     leak tests replay and compare.
//
// A Session must not outlive its GhostDB. One session serves one caller at
// a time (concurrency comes from multiple sessions, as in the paper's
// one-key-many-principals scenario).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "device/ram_manager.h"
#include "exec/operator.h"
#include "sql/binder.h"

namespace ghostdb::core {

class GhostDB;

/// Options for GhostDB::OpenSession().
struct SessionOptions {
  /// Pledges this many buffers as the session's dedicated RAM partition.
  /// kDefaultRamQuota = a quarter of the device's buffers; 0 = pledge
  /// nothing (the session draws from the shared reserve only).
  static constexpr uint32_t kDefaultRamQuota = UINT32_MAX;
  uint32_t ram_quota_buffers = kDefaultRamQuota;
  /// Display name for diagnostics/transcripts ("s<id>" when empty).
  std::string name;
};

/// \brief One principal's handle on the shared engine.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// The session's RAM partition on shard 0 (sharded fleets pledge a
  /// sibling partition of the same quota on every shard).
  device::RamPartitionId ram_partition() const {
    return bindings_[0].ram_partition;
  }

  /// Runs a SELECT for this session, blocking until the arbiter admits it.
  /// Distinct sessions may call this from distinct threads concurrently.
  Result<exec::QueryResult> Query(const std::string& sql);

  /// Queues a statement for GhostDB::DrainSessions() (the deterministic
  /// scheduler). Results arrive in enqueue order via TakeResults().
  void Enqueue(std::string sql);
  /// Statements queued and not yet executed.
  size_t pending() const;
  /// Drained results in statement order (clears the surface).
  std::vector<Result<exec::QueryResult>> TakeResults();

  /// Session totals: metric sums over every query this session executed
  /// (its own baseline, independent of other sessions' traffic).
  exec::QueryMetrics metrics() const;
  uint64_t queries_executed() const;

 private:
  friend class GhostDB;

  struct Queued {
    std::string sql;
    std::optional<sql::BoundQuery> bound;  ///< filled by BindHead
    uint32_t weight = 1;
  };

  /// `partitions` is the session's RAM partition on each shard (index =
  /// shard; size = the fleet's shard count).
  Session(GhostDB* db, int32_t id, std::string name,
          std::vector<device::RamPartitionId> partitions);

  /// Binds the head of the queue (recording bind errors as results and
  /// popping, until a statement binds). Returns false when the queue is
  /// empty; otherwise fills `weight` with the head's declared shape weight.
  bool BindHead(uint32_t* weight);
  /// Executes the (bound) head statement and records its result.
  void RunHead();
  /// True once any statement on the result surface errored (reset by
  /// TakeResults); the fail-fast drain mode polls this.
  bool saw_error() const;

  GhostDB* db_;
  int32_t id_;
  std::string name_;
  /// One binding per shard (shard 0 first): same identity everywhere,
  /// each carrying that shard's RAM partition.
  std::vector<exec::SessionBinding> bindings_;

  mutable std::mutex mu_;  // queue_, results_, totals_, executed_
  std::deque<Queued> queue_;
  std::vector<Result<exec::QueryResult>> results_;
  bool saw_error_ = false;
  exec::QueryMetrics totals_;
  uint64_t executed_ = 0;
};

}  // namespace ghostdb::core

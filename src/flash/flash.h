// I/O-accurate NAND flash simulator with a Flash Translation Layer.
//
// Reproduces the cost model of the Gemalto smart-USB-key simulator the paper
// used (section 6.1, Table 1):
//   * pages of 2048 bytes, the I/O unit with the flash module;
//   * reading a page = 25 us (page -> data register) + 50 ns per byte
//     actually transferred to RAM, i.e. 25..127 us;
//   * programming a page = 200 us (+ the same 50 ns/byte register fill), so
//     the write/read cost ratio spans roughly 2.5x..12x as in section 2.3;
//   * updates are out-of-place: the FTL remaps logical pages, garbage
//     collects dead pages and wear-levels erases, and all of its own I/O is
//     counted, exactly as the paper's simulator did.
//
// The external NAND chip sits outside the tamper-resistant perimeter
// (Fig 2), so page payloads are transparently encrypted (ChaCha20, keyed per
// physical page + write epoch) when a cipher key is configured. Crypto costs
// no *simulated* time: the paper's model neglects CPU cost (section 3.4).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"

namespace ghostdb::device {
class FaultInjector;
}  // namespace ghostdb::device

namespace ghostdb::flash {

/// Geometry and timing of the simulated NAND device (Table 1 defaults).
struct FlashConfig {
  uint32_t page_size = 2048;        ///< Bytes per page (I/O unit).
  uint32_t pages_per_block = 64;    ///< Pages per erase block.
  uint32_t logical_pages = 256 * 1024;  ///< Logical capacity (512 MiB default).
  uint32_t spare_blocks = 16;       ///< Over-provisioned blocks for the FTL.
  SimNanos read_page_latency = 25 * kMicrosecond;   ///< Page -> data register.
  SimNanos write_page_latency = 200 * kMicrosecond; ///< Program time.
  SimNanos byte_transfer_latency = 50;              ///< Register <-> RAM, per byte.
  SimNanos erase_block_latency = 1500 * kMicrosecond;  ///< Block erase.
  /// At-rest encryption key for page payloads; disabled when nullopt.
  std::optional<std::array<uint8_t, 32>> cipher_key;
};

/// Counters exposed by the simulator; exact, not sampled.
struct FlashStats {
  uint64_t pages_read = 0;        ///< Page-to-register loads (incl. FTL's).
  uint64_t pages_written = 0;     ///< Page programs (incl. GC copies).
  uint64_t bytes_transferred = 0; ///< Register <-> RAM traffic in bytes.
  uint64_t blocks_erased = 0;
  uint64_t gc_page_copies = 0;    ///< Valid pages relocated by GC.
  uint64_t trims = 0;             ///< Logical pages invalidated by callers.

  FlashStats operator-(const FlashStats& rhs) const;
};

/// \brief NAND flash device behind an FTL: a flat logical page space with
/// read/write/trim, exact I/O accounting, and simulated-time charging.
class FlashDevice {
 public:
  FlashDevice(FlashConfig config, SimClock* clock);
  ~FlashDevice();

  FlashDevice(const FlashDevice&) = delete;
  FlashDevice& operator=(const FlashDevice&) = delete;

  /// Reads `len` bytes starting at byte `offset` within logical page `lpn`.
  /// Charges read latency + per-byte transfer for exactly `len` bytes (the
  /// paper's partial-page read cost). Reading a never-written page yields
  /// zero bytes.
  Status ReadPage(uint32_t lpn, uint8_t* dst, uint32_t offset, uint32_t len);

  /// Reads a whole page.
  Status ReadFullPage(uint32_t lpn, uint8_t* dst) {
    return ReadPage(lpn, dst, 0, config_.page_size);
  }

  /// Programs a full logical page (out-of-place; the FTL remaps and may
  /// trigger garbage collection, whose I/O is charged to the caller).
  Status WritePage(uint32_t lpn, const uint8_t* src);

  /// Declares a logical page's content dead (free for GC).
  Status Trim(uint32_t lpn);

  const FlashConfig& config() const { return config_; }
  const FlashStats& stats() const { return stats_; }
  SimClock* clock() const { return clock_; }

  /// Number of physical erases of the most-erased block (wear indicator).
  uint32_t max_block_erases() const;
  /// Number of live (mapped) logical pages.
  uint32_t live_pages() const;

  /// Optional fault source consulted at the top of ReadPage/WritePage
  /// (after argument validation, before any cost is charged). Owned by the
  /// enclosing SecureDevice; may be null (standalone flash tests).
  void set_fault_injector(device::FaultInjector* injector) {
    injector_ = injector;
  }
  device::FaultInjector* fault_injector() const { return injector_; }

 private:
  struct Impl;

  FlashConfig config_;
  SimClock* clock_;
  FlashStats stats_;
  device::FaultInjector* injector_ = nullptr;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ghostdb::flash

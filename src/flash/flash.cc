#include "flash/flash.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "crypto/chacha20.h"
#include "device/fault_injector.h"

namespace ghostdb::flash {

namespace {
constexpr uint32_t kUnmapped = std::numeric_limits<uint32_t>::max();
}

FlashStats FlashStats::operator-(const FlashStats& rhs) const {
  FlashStats d;
  d.pages_read = pages_read - rhs.pages_read;
  d.pages_written = pages_written - rhs.pages_written;
  d.bytes_transferred = bytes_transferred - rhs.bytes_transferred;
  d.blocks_erased = blocks_erased - rhs.blocks_erased;
  d.gc_page_copies = gc_page_copies - rhs.gc_page_copies;
  d.trims = trims - rhs.trims;
  return d;
}

// Physical page state tracked by the FTL.
enum class PageState : uint8_t { kFree, kValid, kDead };

struct FlashDevice::Impl {
  // Physical storage: one contiguous byte array, page-strided.
  std::vector<uint8_t> cells;
  std::vector<PageState> page_state;     // per physical page
  std::vector<uint32_t> l2p;             // logical -> physical (kUnmapped)
  std::vector<uint32_t> p2l;             // physical -> logical (kUnmapped)
  std::vector<uint32_t> page_epoch;      // per physical page write counter
  std::vector<uint32_t> block_erases;    // per block
  std::vector<uint32_t> block_valid;     // valid pages per block
  std::vector<uint32_t> free_blocks;     // fully erased blocks
  uint32_t frontier_block = kUnmapped;   // block currently being filled
  uint32_t frontier_next = 0;            // next page index within frontier
  uint32_t total_blocks = 0;
  std::optional<crypto::ChaCha20> cipher;  // built lazily per page via key
  std::optional<std::array<uint8_t, 32>> cipher_key;

  uint32_t PagesPerBlock(const FlashConfig& c) const {
    return c.pages_per_block;
  }
};

FlashDevice::FlashDevice(FlashConfig config, SimClock* clock)
    : config_(config), clock_(clock), impl_(std::make_unique<Impl>()) {
  uint32_t logical_blocks =
      (config_.logical_pages + config_.pages_per_block - 1) /
      config_.pages_per_block;
  impl_->total_blocks = logical_blocks + config_.spare_blocks;
  uint64_t physical_pages =
      static_cast<uint64_t>(impl_->total_blocks) * config_.pages_per_block;
  impl_->cells.assign(physical_pages * config_.page_size, 0);
  impl_->page_state.assign(physical_pages, PageState::kFree);
  impl_->l2p.assign(config_.logical_pages, kUnmapped);
  impl_->p2l.assign(physical_pages, kUnmapped);
  impl_->page_epoch.assign(physical_pages, 0);
  impl_->block_erases.assign(impl_->total_blocks, 0);
  impl_->block_valid.assign(impl_->total_blocks, 0);
  impl_->free_blocks.reserve(impl_->total_blocks);
  // All blocks start erased; keep block 0 as the first frontier.
  for (uint32_t b = impl_->total_blocks; b > 1; --b) {
    impl_->free_blocks.push_back(b - 1);
  }
  impl_->frontier_block = 0;
  impl_->frontier_next = 0;
  impl_->cipher_key = config_.cipher_key;
}

FlashDevice::~FlashDevice() = default;

uint32_t FlashDevice::max_block_erases() const {
  uint32_t max_erases = 0;
  for (uint32_t e : impl_->block_erases) max_erases = std::max(max_erases, e);
  return max_erases;
}

uint32_t FlashDevice::live_pages() const {
  uint32_t live = 0;
  for (uint32_t p : impl_->l2p) {
    if (p != kUnmapped) ++live;
  }
  return live;
}

namespace {

// Derives a per-(physical page, epoch) nonce so rewrites never reuse
// keystream.
void PageNonce(uint32_t ppn, uint32_t epoch, uint8_t nonce[12]) {
  std::memset(nonce, 0, 12);
  for (int i = 0; i < 4; ++i) {
    nonce[i] = static_cast<uint8_t>(ppn >> (8 * i));
    nonce[4 + i] = static_cast<uint8_t>(epoch >> (8 * i));
  }
  nonce[8] = 0x67;  // domain separation tag "g"
}

}  // namespace

Status FlashDevice::ReadPage(uint32_t lpn, uint8_t* dst, uint32_t offset,
                             uint32_t len) {
  if (lpn >= config_.logical_pages) {
    return Status::OutOfRange("flash read: logical page " +
                              std::to_string(lpn) + " out of range");
  }
  if (offset + len > config_.page_size) {
    return Status::InvalidArgument("flash read crosses page boundary");
  }
  if (injector_ != nullptr) {
    GHOSTDB_RETURN_NOT_OK(injector_->OnFlashOp(device::FaultSite::kFlashRead));
  }
  stats_.pages_read += 1;
  stats_.bytes_transferred += len;
  clock_->Advance(config_.read_page_latency +
                  static_cast<SimNanos>(len) * config_.byte_transfer_latency);

  uint32_t ppn = impl_->l2p[lpn];
  if (ppn == kUnmapped) {
    std::memset(dst, 0, len);
    return Status::OK();
  }
  if (impl_->cipher_key.has_value()) {
    // Decrypt the needed slice only (CTR gives random access).
    uint8_t nonce[12];
    PageNonce(ppn, impl_->page_epoch[ppn], nonce);
    crypto::ChaCha20 cipher(impl_->cipher_key->data(), nonce);
    std::memcpy(dst,
                impl_->cells.data() +
                    static_cast<uint64_t>(ppn) * config_.page_size + offset,
                len);
    // Align to the 64-byte keystream blocks covering [offset, offset+len).
    uint32_t first_block = offset / crypto::ChaCha20::kBlockSize;
    uint32_t pre = offset - first_block * crypto::ChaCha20::kBlockSize;
    if (pre == 0) {
      cipher.Crypt(dst, len, first_block);
    } else {
      // Decrypt a widened window into a scratch buffer.
      std::vector<uint8_t> scratch(pre + len);
      std::memcpy(scratch.data(),
                  impl_->cells.data() +
                      static_cast<uint64_t>(ppn) * config_.page_size +
                      first_block * crypto::ChaCha20::kBlockSize,
                  scratch.size());
      cipher.Crypt(scratch.data(), scratch.size(), first_block);
      std::memcpy(dst, scratch.data() + pre, len);
    }
  } else {
    std::memcpy(dst,
                impl_->cells.data() +
                    static_cast<uint64_t>(ppn) * config_.page_size + offset,
                len);
  }
  return Status::OK();
}

Status FlashDevice::WritePage(uint32_t lpn, const uint8_t* src) {
  if (lpn >= config_.logical_pages) {
    return Status::OutOfRange("flash write: logical page " +
                              std::to_string(lpn) + " out of range");
  }
  if (injector_ != nullptr) {
    GHOSTDB_RETURN_NOT_OK(injector_->OnFlashOp(device::FaultSite::kFlashWrite));
  }

  // Ensure the frontier has a free page; garbage-collect if not.
  if (impl_->frontier_next == config_.pages_per_block) {
    auto advance_frontier = [&]() -> Status {
      // Advance to a fresh block from the free pool; GC when pool is dry.
      while (impl_->free_blocks.empty()) {
        // Pick the victim: fewest valid pages, wear-aware tie-break.
        uint32_t victim = kUnmapped;
        uint32_t best_valid = std::numeric_limits<uint32_t>::max();
        uint32_t best_erases = std::numeric_limits<uint32_t>::max();
        for (uint32_t b = 0; b < impl_->total_blocks; ++b) {
          if (b == impl_->frontier_block) continue;
          bool has_free = false;
          for (uint32_t i = 0; i < config_.pages_per_block && !has_free; ++i) {
            if (impl_->page_state[b * config_.pages_per_block + i] ==
                PageState::kFree)
              has_free = true;
          }
          if (has_free) continue;  // not fully programmed; skip
          uint32_t valid = impl_->block_valid[b];
          uint32_t erases = impl_->block_erases[b];
          if (valid < best_valid ||
              (valid == best_valid && erases < best_erases)) {
            victim = b;
            best_valid = valid;
            best_erases = erases;
          }
        }
        if (victim == kUnmapped) {
          return Status::ResourceExhausted("flash full: no GC victim");
        }
        if (best_valid >= config_.pages_per_block) {
          return Status::ResourceExhausted(
              "flash full: all blocks fully valid");
        }
        // The victim's valid pages must move, but the frontier is full;
        // erase the victim after relocating into... we need a destination.
        // Classic chicken-and-egg is avoided by always keeping >= 1 spare
        // block; relocate into the erased victim itself is impossible, so we
        // first erase victim copies into a scratch list held in the
        // controller's internal SRAM (page-at-a-time), which costs a read
        // and a program per valid page.
        std::vector<std::pair<uint32_t, std::vector<uint8_t>>> relocated;
        for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
          uint32_t ppn = victim * config_.pages_per_block + i;
          if (impl_->page_state[ppn] != PageState::kValid) continue;
          std::vector<uint8_t> data(config_.page_size);
          // Controller-internal copy: page read into the data register.
          stats_.pages_read += 1;
          stats_.gc_page_copies += 1;
          clock_->Advance(config_.read_page_latency);
          std::memcpy(data.data(),
                      impl_->cells.data() +
                          static_cast<uint64_t>(ppn) * config_.page_size,
                      config_.page_size);
          // Keep ciphertext as-is; epoch travels with the data.
          relocated.emplace_back(
              impl_->p2l[ppn],
              std::move(data));
          relocated.back().second.push_back(0);  // placeholder epoch marker
          // Store epoch in the trailing 4 bytes of an extended buffer.
          relocated.back().second.resize(config_.page_size + 4);
          uint32_t epoch = impl_->page_epoch[ppn];
          std::memcpy(relocated.back().second.data() + config_.page_size,
                      &epoch, 4);
        }
        // Erase the victim.
        for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
          uint32_t ppn = victim * config_.pages_per_block + i;
          impl_->page_state[ppn] = PageState::kFree;
          impl_->p2l[ppn] = kUnmapped;
        }
        impl_->block_valid[victim] = 0;
        impl_->block_erases[victim] += 1;
        stats_.blocks_erased += 1;
        clock_->Advance(config_.erase_block_latency);
        // Re-program relocated pages into the victim block itself.
        uint32_t slot = 0;
        for (auto& [logical, data] : relocated) {
          uint32_t ppn = victim * config_.pages_per_block + slot++;
          std::memcpy(impl_->cells.data() +
                          static_cast<uint64_t>(ppn) * config_.page_size,
                      data.data(), config_.page_size);
          uint32_t epoch;
          std::memcpy(&epoch, data.data() + config_.page_size, 4);
          impl_->page_epoch[ppn] = epoch;
          impl_->page_state[ppn] = PageState::kValid;
          impl_->p2l[ppn] = logical;
          impl_->l2p[logical] = ppn;
          impl_->block_valid[victim] += 1;
          stats_.pages_written += 1;
          clock_->Advance(config_.write_page_latency);
        }
        // Remaining slots in the victim are free; if any exist the victim
        // becomes the next frontier candidate.
        if (impl_->block_valid[victim] < config_.pages_per_block) {
          impl_->free_blocks.push_back(victim);
          // Note: partially refilled; frontier logic below handles offset.
        }
      }
      uint32_t next = impl_->free_blocks.back();
      impl_->free_blocks.pop_back();
      impl_->frontier_block = next;
      // Find the first free page within the block (GC may have refilled a
      // prefix of it).
      uint32_t i = 0;
      while (i < config_.pages_per_block &&
             impl_->page_state[next * config_.pages_per_block + i] !=
                 PageState::kFree) {
        ++i;
      }
      impl_->frontier_next = i;
      return Status::OK();
    };
    Status advance_status = advance_frontier();
    if (!advance_status.ok()) return advance_status;
  }

  // Invalidate the previous version of this logical page.
  uint32_t old_ppn = impl_->l2p[lpn];
  if (old_ppn != kUnmapped) {
    impl_->page_state[old_ppn] = PageState::kDead;
    impl_->p2l[old_ppn] = kUnmapped;
    impl_->block_valid[old_ppn / config_.pages_per_block] -= 1;
  }

  uint32_t ppn =
      impl_->frontier_block * config_.pages_per_block + impl_->frontier_next;
  impl_->frontier_next += 1;

  stats_.pages_written += 1;
  stats_.bytes_transferred += config_.page_size;
  clock_->Advance(config_.write_page_latency +
                  static_cast<SimNanos>(config_.page_size) *
                      config_.byte_transfer_latency);

  uint8_t* cell =
      impl_->cells.data() + static_cast<uint64_t>(ppn) * config_.page_size;
  std::memcpy(cell, src, config_.page_size);
  impl_->page_epoch[ppn] += 1;
  if (impl_->cipher_key.has_value()) {
    uint8_t nonce[12];
    PageNonce(ppn, impl_->page_epoch[ppn], nonce);
    crypto::ChaCha20 cipher(impl_->cipher_key->data(), nonce);
    cipher.Crypt(cell, config_.page_size, 0);
  }
  impl_->page_state[ppn] = PageState::kValid;
  impl_->p2l[ppn] = lpn;
  impl_->l2p[lpn] = ppn;
  impl_->block_valid[impl_->frontier_block] += 1;
  return Status::OK();
}

Status FlashDevice::Trim(uint32_t lpn) {
  if (lpn >= config_.logical_pages) {
    return Status::OutOfRange("flash trim: logical page out of range");
  }
  uint32_t ppn = impl_->l2p[lpn];
  if (ppn != kUnmapped) {
    impl_->page_state[ppn] = PageState::kDead;
    impl_->p2l[ppn] = kUnmapped;
    impl_->block_valid[ppn / config_.pages_per_block] -= 1;
    impl_->l2p[lpn] = kUnmapped;
    stats_.trims += 1;
  }
  return Status::OK();
}

}  // namespace ghostdb::flash

#include "crypto/secure_channel.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace ghostdb::crypto {

namespace {
constexpr size_t kNonceSize = 12;
constexpr size_t kTagSize = HmacSha256::kTagSize;
}  // namespace

DeviceKeys DeviceKeys::Derive(const uint8_t* master, size_t master_len) {
  DeviceKeys keys;
  // Expand: HMAC(master, label || counter), two blocks.
  auto block1 = HmacSha256::Mac(
      master, master_len, reinterpret_cast<const uint8_t*>("ghostdb-enc\x01"),
      12);
  auto block2 = HmacSha256::Mac(
      master, master_len, reinterpret_cast<const uint8_t*>("ghostdb-mac\x02"),
      12);
  std::memcpy(keys.encryption_key, block1.data(), sizeof(keys.encryption_key));
  std::memcpy(keys.mac_key, block2.data(), sizeof(keys.mac_key));
  return keys;
}

SealedBlob Seal(const DeviceKeys& keys, const std::vector<uint8_t>& plaintext,
                uint64_t nonce_seed) {
  SealedBlob blob;
  blob.bytes.resize(kNonceSize + plaintext.size() + kTagSize);

  // Nonce: derived deterministically from the seed (unique per blob).
  uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<uint8_t>(nonce_seed >> (8 * i));
  auto nonce_digest =
      HmacSha256::Mac(keys.mac_key, sizeof(keys.mac_key), seed_bytes, 8);
  std::memcpy(blob.bytes.data(), nonce_digest.data(), kNonceSize);

  // Encrypt. (Empty payloads still seal to nonce || tag.)
  if (!plaintext.empty()) {
    std::memcpy(blob.bytes.data() + kNonceSize, plaintext.data(),
                plaintext.size());
  }
  Aes128Ctr ctr(keys.encryption_key, blob.bytes.data());
  ctr.Crypt(blob.bytes.data() + kNonceSize, plaintext.size());

  // Authenticate nonce || ciphertext (encrypt-then-MAC).
  auto tag = HmacSha256::Mac(keys.mac_key, sizeof(keys.mac_key),
                             blob.bytes.data(), kNonceSize + plaintext.size());
  std::memcpy(blob.bytes.data() + kNonceSize + plaintext.size(), tag.data(),
              kTagSize);
  return blob;
}

Result<std::vector<uint8_t>> Open(const DeviceKeys& keys,
                                  const SealedBlob& blob) {
  if (blob.bytes.size() < kNonceSize + kTagSize) {
    return Status::Corruption("sealed blob too short");
  }
  size_t ct_len = blob.bytes.size() - kNonceSize - kTagSize;
  auto tag = HmacSha256::Mac(keys.mac_key, sizeof(keys.mac_key),
                             blob.bytes.data(), kNonceSize + ct_len);
  // Constant-time comparison.
  uint8_t diff = 0;
  for (size_t i = 0; i < kTagSize; ++i)
    diff |= static_cast<uint8_t>(tag[i] ^
                                 blob.bytes[kNonceSize + ct_len + i]);
  if (diff != 0) {
    return Status::Corruption("sealed blob authentication failed");
  }
  std::vector<uint8_t> plaintext(blob.bytes.begin() + kNonceSize,
                                 blob.bytes.begin() + kNonceSize + ct_len);
  Aes128Ctr ctr(keys.encryption_key, blob.bytes.data());
  ctr.Crypt(plaintext.data(), plaintext.size());
  return plaintext;
}

}  // namespace ghostdb::crypto

// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// GhostDB needs it because the multi-gigabyte NAND chip sits *outside* the
// tamper-resistant secure chip (paper Fig 2): everything written to external
// flash must be encrypted, and Hidden data arrives on the key through a
// sealed channel (paper section 2.1).
//
// This is a straightforward table-free software implementation: clarity and
// testability over raw speed (the paper's cost model neglects CPU anyway).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace ghostdb::crypto {

/// \brief AES-128 block cipher. Encrypts/decrypts single 16-byte blocks.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Expands `key` (16 bytes) into the round-key schedule.
  explicit Aes128(const uint8_t key[kKeySize]);

  /// Encrypts one 16-byte block: `out` may alias `in`.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block: `out` may alias `in`.
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

 private:
  // Round keys: (kRounds + 1) x 16 bytes.
  std::array<uint8_t, (kRounds + 1) * kBlockSize> round_keys_{};
};

/// \brief AES-128 in counter (CTR) mode: a stream cipher. Encryption and
/// decryption are the same operation.
///
/// The 16-byte initial counter block is formed from a 12-byte nonce plus a
/// 32-bit big-endian block counter starting at 0.
class Aes128Ctr {
 public:
  Aes128Ctr(const uint8_t key[Aes128::kKeySize], const uint8_t nonce[12]);

  /// XORs `len` bytes of keystream into `data` in place, starting at
  /// keystream offset `offset` (so pages can be (de)ciphered independently).
  void Crypt(uint8_t* data, size_t len, uint64_t offset = 0) const;

 private:
  Aes128 cipher_;
  std::array<uint8_t, 12> nonce_{};
};

}  // namespace ghostdb::crypto

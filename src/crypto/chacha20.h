// ChaCha20 stream cipher (RFC 8439), from scratch. Used for at-rest
// encryption of external NAND pages: pure ARX, so it stays fast in portable
// scalar code, unlike software AES. AES-CTR remains in use for the sealed
// Hidden-data channel.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ghostdb::crypto {

/// \brief ChaCha20 keystream generator / stream cipher.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kBlockSize = 64;

  ChaCha20(const uint8_t key[kKeySize], const uint8_t nonce[kNonceSize]);

  /// XORs keystream into `data` in place. `counter` selects the starting
  /// 64-byte keystream block (RFC 8439 block counter), letting flash pages be
  /// (de)ciphered independently.
  void Crypt(uint8_t* data, size_t len, uint32_t counter = 0) const;

 private:
  void Block(uint32_t counter, uint8_t out[kBlockSize]) const;

  std::array<uint32_t, 8> key_words_;
  std::array<uint32_t, 3> nonce_words_;
};

}  // namespace ghostdb::crypto

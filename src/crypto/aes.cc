#include "crypto/aes.h"

#include <cstring>

namespace ghostdb::crypto {

namespace {

// Forward S-box, computed at startup from the field inverse + affine map so
// the implementation carries no opaque 256-byte constants.
struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];

  SboxTables() {
    // Multiplicative inverse in GF(2^8) via exponentiation (x^254 = x^-1).
    auto gmul = [](uint8_t a, uint8_t b) {
      uint8_t p = 0;
      for (int i = 0; i < 8; ++i) {
        if (b & 1) p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi) a ^= 0x1B;  // AES irreducible polynomial x^8+x^4+x^3+x+1
        b >>= 1;
      }
      return p;
    };
    auto ginv = [&](uint8_t a) {
      if (a == 0) return static_cast<uint8_t>(0);
      uint8_t result = 1;
      uint8_t base = a;
      int e = 254;
      while (e) {
        if (e & 1) result = gmul(result, base);
        base = gmul(base, base);
        e >>= 1;
      }
      return result;
    };
    for (int i = 0; i < 256; ++i) {
      uint8_t x = ginv(static_cast<uint8_t>(i));
      // Affine transformation.
      uint8_t s = 0;
      for (int bit = 0; bit < 8; ++bit) {
        uint8_t b = static_cast<uint8_t>(
            ((x >> bit) & 1) ^ ((x >> ((bit + 4) & 7)) & 1) ^
            ((x >> ((bit + 5) & 7)) & 1) ^ ((x >> ((bit + 6) & 7)) & 1) ^
            ((x >> ((bit + 7) & 7)) & 1) ^ ((0x63 >> bit) & 1));
        s |= static_cast<uint8_t>(b << bit);
      }
      sbox[i] = s;
    }
    for (int i = 0; i < 256; ++i) inv_sbox[sbox[i]] = static_cast<uint8_t>(i);
  }
};

const SboxTables& Tables() {
  static const SboxTables tables;
  return tables;
}

uint8_t XTime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0x00));
}

uint8_t Gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    a = XTime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes128::Aes128(const uint8_t key[kKeySize]) {
  const auto& t = Tables();
  std::memcpy(round_keys_.data(), key, kKeySize);
  uint8_t rcon = 0x01;
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    uint8_t temp[4];
    std::memcpy(temp, &round_keys_[(i - 1) * 4], 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      uint8_t first = temp[0];
      temp[0] = static_cast<uint8_t>(t.sbox[temp[1]] ^ rcon);
      temp[1] = t.sbox[temp[2]];
      temp[2] = t.sbox[temp[3]];
      temp[3] = t.sbox[first];
      rcon = XTime(rcon);
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[i * 4 + b] =
          static_cast<uint8_t>(round_keys_[(i - 4) * 4 + b] ^ temp[b]);
    }
  }
}

void Aes128::EncryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  const auto& t = Tables();
  uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = t.sbox[b];
  };
  auto shift_rows = [&] {
    uint8_t tmp[16];
    // Column-major state layout: s[col*4 + row].
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        tmp[col * 4 + row] = s[((col + row) % 4) * 4 + row];
    std::memcpy(s, tmp, 16);
  };
  auto mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      uint8_t* c = &s[col * 4];
      uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<uint8_t>(XTime(a0) ^ (XTime(a1) ^ a1) ^ a2 ^ a3);
      c[1] = static_cast<uint8_t>(a0 ^ XTime(a1) ^ (XTime(a2) ^ a2) ^ a3);
      c[2] = static_cast<uint8_t>(a0 ^ a1 ^ XTime(a2) ^ (XTime(a3) ^ a3));
      c[3] = static_cast<uint8_t>((XTime(a0) ^ a0) ^ a1 ^ a2 ^ XTime(a3));
    }
  };

  add_round_key(0);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(kRounds);
  std::memcpy(out, s, 16);
}

void Aes128::DecryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  const auto& t = Tables();
  uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& b : s) b = t.inv_sbox[b];
  };
  auto inv_shift_rows = [&] {
    uint8_t tmp[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        tmp[((col + row) % 4) * 4 + row] = s[col * 4 + row];
    std::memcpy(s, tmp, 16);
  };
  auto inv_mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      uint8_t* c = &s[col * 4];
      uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<uint8_t>(Gmul(a0, 14) ^ Gmul(a1, 11) ^ Gmul(a2, 13) ^
                                  Gmul(a3, 9));
      c[1] = static_cast<uint8_t>(Gmul(a0, 9) ^ Gmul(a1, 14) ^ Gmul(a2, 11) ^
                                  Gmul(a3, 13));
      c[2] = static_cast<uint8_t>(Gmul(a0, 13) ^ Gmul(a1, 9) ^ Gmul(a2, 14) ^
                                  Gmul(a3, 11));
      c[3] = static_cast<uint8_t>(Gmul(a0, 11) ^ Gmul(a1, 13) ^ Gmul(a2, 9) ^
                                  Gmul(a3, 14));
    }
  };

  add_round_key(kRounds);
  for (int round = kRounds - 1; round > 0; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
  std::memcpy(out, s, 16);
}

Aes128Ctr::Aes128Ctr(const uint8_t key[Aes128::kKeySize],
                     const uint8_t nonce[12])
    : cipher_(key) {
  std::memcpy(nonce_.data(), nonce, nonce_.size());
}

void Aes128Ctr::Crypt(uint8_t* data, size_t len, uint64_t offset) const {
  uint8_t counter_block[16];
  uint8_t keystream[16];
  uint64_t block_index = offset / 16;
  size_t in_block = offset % 16;
  size_t produced = 0;
  while (produced < len) {
    std::memcpy(counter_block, nonce_.data(), 12);
    // 32-bit big-endian block counter (NIST SP 800-38A convention).
    counter_block[12] = static_cast<uint8_t>(block_index >> 24);
    counter_block[13] = static_cast<uint8_t>(block_index >> 16);
    counter_block[14] = static_cast<uint8_t>(block_index >> 8);
    counter_block[15] = static_cast<uint8_t>(block_index);
    cipher_.EncryptBlock(counter_block, keystream);
    for (; in_block < 16 && produced < len; ++in_block, ++produced) {
      data[produced] ^= keystream[in_block];
    }
    in_block = 0;
    ++block_index;
  }
}

}  // namespace ghostdb::crypto

// Sealing of Hidden-data transfers: AES-128-CTR encryption + HMAC-SHA-256
// authentication. The database owner seals Hidden partitions; only the key
// (which holds the device keys) can open them. Models the paper's "secure
// channel (e.g., using secure socket layer or a USB key burned by the
// database owner)".
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ghostdb::crypto {

/// \brief Key material shared between database owner and the Secure device.
struct DeviceKeys {
  uint8_t encryption_key[16];
  uint8_t mac_key[32];

  /// Deterministically derives device keys from a master secret (HKDF-like
  /// expansion with SHA-256).
  static DeviceKeys Derive(const uint8_t* master, size_t master_len);
};

/// \brief A sealed blob: nonce || ciphertext || tag.
struct SealedBlob {
  std::vector<uint8_t> bytes;
};

/// Encrypts + authenticates `plaintext` under `keys`. `nonce_seed`
/// disambiguates blobs sealed under the same keys (e.g. table id).
SealedBlob Seal(const DeviceKeys& keys, const std::vector<uint8_t>& plaintext,
                uint64_t nonce_seed);

/// Verifies and decrypts a sealed blob. Fails with Corruption if the tag
/// does not match (tampered or truncated data).
Result<std::vector<uint8_t>> Open(const DeviceKeys& keys,
                                  const SealedBlob& blob);

}  // namespace ghostdb::crypto

// Fast non-cryptographic 64-bit hashing (xxhash-style avalanche mix) used by
// Bloom filters. The paper's Bloom filters need k independent hash functions;
// we derive them from one 64-bit hash with distinct odd multipliers
// (Kirsch-Mitzenmacher double hashing preserves the false-positive bound).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ghostdb::crypto {

/// 64-bit mix of a 64-bit value (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Hashes a 32-bit id with a seed; distinct seeds give independent functions.
inline uint64_t HashId(uint32_t id, uint64_t seed) {
  return Mix64((static_cast<uint64_t>(id) << 1 | 1) * 0x9E3779B97F4A7C15ULL +
               seed * 0xC2B2AE3D27D4EB4FULL);
}

/// Hashes an arbitrary byte string (FNV-1a core + avalanche finish).
inline uint64_t HashBytes(const uint8_t* data, size_t len, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace ghostdb::crypto

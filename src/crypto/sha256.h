// SHA-256 (FIPS-180-4) and HMAC-SHA-256 (RFC 2104), from scratch.
// Used to seal Hidden-data downloads onto the key and to derive the
// independent hash functions of the Bloom filters.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ghostdb::crypto {

/// \brief Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);

  /// Finalizes and writes the 32-byte digest. The hasher must not be reused
  /// afterwards without Reset().
  void Finish(uint8_t digest[kDigestSize]);

  /// Returns the hasher to its initial state.
  void Reset();

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const uint8_t* data,
                                               size_t len);

  /// Hex rendering of a digest, for tests and tooling.
  static std::string ToHex(const uint8_t digest[kDigestSize]);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  uint64_t total_len_ = 0;
};

/// \brief HMAC-SHA-256 message authentication code.
class HmacSha256 {
 public:
  static constexpr size_t kTagSize = 32;

  /// Keys of any length are accepted (hashed if > 64 bytes).
  HmacSha256(const uint8_t* key, size_t key_len);

  void Update(const uint8_t* data, size_t len);
  void Finish(uint8_t tag[kTagSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kTagSize> Mac(const uint8_t* key, size_t key_len,
                                           const uint8_t* data, size_t len);

 private:
  Sha256 inner_;
  std::array<uint8_t, 64> opad_key_{};
};

}  // namespace ghostdb::crypto

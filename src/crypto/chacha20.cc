#include "crypto/chacha20.h"

#include <cstring>

namespace ghostdb::crypto {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(const uint8_t key[kKeySize],
                   const uint8_t nonce[kNonceSize]) {
  for (int i = 0; i < 8; ++i) key_words_[i] = Load32(key + 4 * i);
  for (int i = 0; i < 3; ++i) nonce_words_[i] = Load32(nonce + 4 * i);
}

void ChaCha20::Block(uint32_t counter, uint8_t out[kBlockSize]) const {
  // "expand 32-byte k"
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
                        key_words_[0], key_words_[1], key_words_[2],
                        key_words_[3], key_words_[4], key_words_[5],
                        key_words_[6], key_words_[7], counter,
                        nonce_words_[0], nonce_words_[1], nonce_words_[2]};
  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + state[i];
    out[4 * i + 0] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

void ChaCha20::Crypt(uint8_t* data, size_t len, uint32_t counter) const {
  uint8_t keystream[kBlockSize];
  size_t off = 0;
  while (off < len) {
    Block(counter++, keystream);
    size_t take = std::min(len - off, kBlockSize);
    for (size_t i = 0; i < take; ++i) data[off + i] ^= keystream[i];
    off += take;
  }
}

}  // namespace ghostdb::crypto

// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the engine does.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace ghostdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Logger {
 public:
  static LogLevel& Threshold() {
    static LogLevel level = LogLevel::kOff;
    return level;
  }

  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(Threshold());
  }

  static void Emit(LogLevel level, const std::string& msg) {
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::cerr << "[ghostdb " << names[static_cast<int>(level)] << "] " << msg
              << "\n";
  }
};

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (Logger::Enabled(level_)) Logger::Emit(level_, stream_.str());
  }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ghostdb

#define GHOSTDB_LOG(level)                                            \
  ::ghostdb::internal::LogMessage(::ghostdb::LogLevel::level).stream()

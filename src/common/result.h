// Result<T>: Status + value, the return type of fallible value-producing
// operations (Arrow idiom).
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ghostdb {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Usage:
/// \code
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.ValueUnsafe();
/// \endcode
/// or with the GHOSTDB_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Returns the held value. Precondition: ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` if errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace ghostdb

// Status: the error-reporting currency of GhostDB (RocksDB/Arrow idiom).
// Library code never throws; every fallible operation returns a Status or a
// Result<T> (see result.h).
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace ghostdb {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kIOError = 4,
  kResourceExhausted = 5,   // e.g. Secure RAM budget exceeded
  kNotSupported = 6,
  kOutOfRange = 7,
  kAlreadyExists = 8,
  kSecurityViolation = 9,   // an operation would leak Hidden data
  kInternal = 10,
};

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. Cheap to copy when OK (no allocation).
///
/// `[[nodiscard]]` on the type makes every discarded Status-returning call a
/// compiler warning (gcc/clang) and a leakcheck finding; deliberate discards
/// go through GHOSTDB_IGNORE_STATUS below.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status SecurityViolation(std::string msg) {
    return Status(StatusCode::kSecurityViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsSecurityViolation() const {
    return code_ == StatusCode::kSecurityViolation;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders e.g. "IOError: flash page 12 out of range".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

namespace internal {
/// Sink for deliberately discarded statuses; only call through
/// GHOSTDB_IGNORE_STATUS so the discard carries its justification.
inline void ConsumeStatus(const Status& /*status*/) {}
}  // namespace internal

}  // namespace ghostdb

/// Deliberately discards a Status (or a Result's status) with a reason.
/// Satisfies both the [[nodiscard]] warning and the leakcheck
/// status-discipline rule; use only where failure is genuinely benign
/// (best-effort cleanup in destructors, already-failing error paths).
#define GHOSTDB_IGNORE_STATUS(expr, reason) \
  ::ghostdb::internal::ConsumeStatus((expr))

/// Propagates a non-OK Status to the caller.
#define GHOSTDB_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::ghostdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise assigns the value to `lhs`.
#define GHOSTDB_ASSIGN_OR_RETURN(lhs, expr)    \
  auto GHOSTDB_CONCAT_(_res_, __LINE__) = (expr);                  \
  if (!GHOSTDB_CONCAT_(_res_, __LINE__).ok())                      \
    return GHOSTDB_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(GHOSTDB_CONCAT_(_res_, __LINE__)).ValueUnsafe()

#define GHOSTDB_CONCAT_IMPL_(a, b) a##b
#define GHOSTDB_CONCAT_(a, b) GHOSTDB_CONCAT_IMPL_(a, b)

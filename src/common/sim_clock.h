// Simulated clock. The paper's evaluation platform is an I/O-accurate (not
// cycle-accurate) simulator: time advances only through flash I/O and channel
// transfers. Every advance is attributed to a named category so benches can
// regenerate the paper's cost decompositions (Figs 15-16: Merge / SJoin /
// Store / Project).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/units.h"
#include "core/annotations.h"

namespace ghostdb {

/// \brief Accumulates simulated time, split by category.
///
/// Operators enter a category scope; all costs charged while the scope is
/// alive are attributed to that category (plus the running total).
class SimClock {
 public:
  /// Adds `ns` simulated nanoseconds to the running total and the current
  /// category. Transcript sink: simulated time is observable cost, so
  /// leakcheck rejects hidden-derived charges.
  GHOSTDB_TRANSCRIPT_SINK void Advance(SimNanos ns) {
    now_ += ns;
    categories_[current_] += ns;
  }

  /// Total simulated time since construction / Reset().
  SimNanos now() const { return now_; }

  /// Time charged to `category` so far (0 if never charged).
  SimNanos Category(const std::string& category) const {
    auto it = categories_.find(category);
    return it == categories_.end() ? 0 : it->second;
  }

  /// All category totals (for reporting).
  const std::map<std::string, SimNanos>& categories() const {
    return categories_;
  }

  /// Zeroes the clock and all categories.
  void Reset() {
    now_ = 0;
    categories_.clear();
    current_ = "other";
  }

  /// RAII category scope; restores the previous category when destroyed.
  class Scope {
   public:
    Scope(SimClock* clock, std::string category)
        : clock_(clock), previous_(clock->current_) {
      clock_->current_ = std::move(category);
    }
    ~Scope() { clock_->current_ = std::move(previous_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SimClock* clock_;
    std::string previous_;
  };

  /// Enters `category`; costs are attributed to it until the scope dies.
  Scope Enter(std::string category) { return Scope(this, std::move(category)); }

  /// Name of the currently active category.
  const std::string& current_category() const { return current_; }

 private:
  SimNanos now_ = 0;
  std::string current_ = "other";
  std::map<std::string, SimNanos> categories_;
};

}  // namespace ghostdb

// Deterministic pseudo-random generator (splitmix64 + xoshiro256**) used by
// workload generators and property tests. Determinism matters: every bench
// and test must be exactly reproducible across runs and platforms.
#pragma once

#include <cstdint>

namespace ghostdb {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; same seed => same sequence.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace ghostdb

// Simulated-time and size units. The whole cost model is expressed in
// integral nanoseconds of *simulated* time so results are exact and
// platform-independent.
#pragma once

#include <cstdint>

namespace ghostdb {

/// Simulated time in nanoseconds.
using SimNanos = uint64_t;

constexpr SimNanos kNanosecond = 1;
constexpr SimNanos kMicrosecond = 1000;
constexpr SimNanos kMillisecond = 1000 * kMicrosecond;
constexpr SimNanos kSecond = 1000 * kMillisecond;

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

/// Converts simulated nanoseconds to fractional seconds (for reporting).
inline double ToSeconds(SimNanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}

/// Converts simulated nanoseconds to fractional milliseconds.
inline double ToMillis(SimNanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

}  // namespace ghostdb

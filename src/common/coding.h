// Little-endian fixed-width integer encoding, used by every on-flash format.
#pragma once

#include <cstdint>
#include <cstring>

namespace ghostdb {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline uint16_t DecodeFixed16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         (static_cast<uint16_t>(src[1]) << 8);
}

inline void EncodeFixed32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t DecodeFixed32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) |
         (static_cast<uint32_t>(src[1]) << 8) |
         (static_cast<uint32_t>(src[2]) << 16) |
         (static_cast<uint32_t>(src[3]) << 24);
}

inline void EncodeFixed64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

inline void EncodeDouble(uint8_t* dst, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  EncodeFixed64(dst, bits);
}

inline double DecodeDouble(const uint8_t* src) {
  uint64_t bits = DecodeFixed64(src);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace ghostdb

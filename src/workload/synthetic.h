// The paper's synthetic dataset (section 6.2): the Fig 3 tree
//   T0 (10M) -> { T1 (1M) -> { T11 (100K), T12 (100K) }, T2 (1M) }
// with, beside keys, 5 Visible and 5 Hidden attributes of 10 bytes per
// table, uniformly distributed. Attribute values are zero-padded 6-digit
// decimals of uniform [0, 1e6), so a range predicate  attr < Dial(s)
// selects exactly fraction s — the selectivity dial used by every figure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "core/database.h"

namespace ghostdb::workload {

struct SyntheticConfig {
  /// Cardinality scale. 1.0 = the paper's sizes (T0 = 10M rows).
  double scale = 0.05;
  uint64_t seed = 20070611;  // SIGMOD'07 started June 11 2007
  /// Hidden attributes to index with climbing indexes, as
  /// table name -> column names. Empty = the set the figure queries need
  /// (T12.h2, T0.h3, T1.h1, T11.h1, T2.h1). Id indexes are always built.
  std::map<std::string, std::vector<std::string>> indexed;
  bool encrypt_external_flash = true;
};

/// Derived cardinalities.
struct SyntheticShape {
  uint64_t t0, t1, t2, t11, t12;
  explicit SyntheticShape(double scale);
};

/// Creates schema + data + indexes in `db` (which must be freshly
/// constructed with enough flash; see SyntheticDbConfig).
Status BuildSynthetic(core::GhostDB* db, const SyntheticConfig& config);

/// Creates schema + staged data only (no device build) — used by the
/// storage-accounting bench (Fig 7).
Status StageSynthetic(core::GhostDB* db, const SyntheticConfig& config);

/// GhostDBConfig pre-sized for the dataset at `config.scale`.
core::GhostDBConfig SyntheticDbConfig(const SyntheticConfig& config);

/// The literal giving selectivity `s` for `attr < Dial(s)` on the uniform
/// 6-digit attribute encoding.
catalog::Value Dial(double s);

/// The paper's Query Q (section 6.4): visible selection on T1.v1 with
/// selectivity `sv`, hidden selection on T12.h2 with selectivity `sh`,
/// joins to T0. `projected_vis_attrs` adds T1.v2/v3... projections (Fig 14).
std::string QueryQ(double sv, double sh, int projected_vis_attrs = 1,
                   bool project_hidden = false);

}  // namespace ghostdb::workload

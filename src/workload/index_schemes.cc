#include "workload/index_schemes.h"

#include <algorithm>
#include <numeric>

#include "common/sim_clock.h"
#include "storage/btree.h"
#include "storage/fixed_table.h"
#include "storage/page_allocator.h"

namespace ghostdb::workload {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

std::string_view IndexSchemeName(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kFullIndex:
      return "FullIndex";
    case IndexScheme::kBasicIndex:
      return "BasicIndex";
    case IndexScheme::kStarIndex:
      return "StarIndex";
    case IndexScheme::kJoinIndex:
      return "JoinIndex";
  }
  return "?";
}

namespace {

// anc[t][level][row]: sorted ids of the level-th ancestor containing `row`.
using AncestorMaps =
    std::vector<std::vector<std::vector<std::vector<RowId>>>>;

AncestorMaps BuildAncestorMaps(const catalog::Schema& schema,
                               const std::vector<core::TableData>& staged) {
  AncestorMaps anc(schema.table_count());
  std::vector<TableId> order = {schema.root()};
  for (size_t i = 0; i < order.size(); ++i) {
    for (TableId c : schema.tree(order[i]).children) order.push_back(c);
  }
  for (TableId t : order) {
    if (t == schema.root()) continue;
    TableId parent = schema.tree(t).parent;
    ColumnId fk = schema.tree(t).parent_fk;
    size_t levels = schema.tree(t).ancestors.size();
    anc[t].resize(levels);
    auto& direct = anc[t][0];
    direct.assign(staged[t].row_count(), {});
    for (RowId p = 0; p < staged[parent].row_count(); ++p) {
      direct[staged[parent].GetFk(p, fk)].push_back(p);
    }
    for (size_t level = 1; level < levels; ++level) {
      auto& out = anc[t][level];
      out.assign(staged[t].row_count(), {});
      const auto& parent_level = anc[parent][level - 1];
      for (RowId r = 0; r < staged[t].row_count(); ++r) {
        auto& dst = out[r];
        for (RowId p : direct[r]) {
          dst.insert(dst.end(), parent_level[p].begin(),
                     parent_level[p].end());
        }
        std::sort(dst.begin(), dst.end());
        dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
      }
    }
  }
  return anc;
}

// Which posting levels a scheme's attribute index carries: level 0 = self,
// level k = the k-th ancestor (nearest first).
std::vector<int> AttrLevels(IndexScheme scheme, const catalog::Schema& schema,
                            TableId t) {
  size_t anc_count = schema.tree(t).ancestors.size();
  std::vector<int> levels = {0};  // self
  switch (scheme) {
    case IndexScheme::kFullIndex:
      for (size_t i = 0; i < anc_count; ++i) {
        levels.push_back(static_cast<int>(i + 1));
      }
      break;
    case IndexScheme::kBasicIndex:
      if (anc_count > 0) levels.push_back(static_cast<int>(anc_count));
      break;
    case IndexScheme::kStarIndex:
    case IndexScheme::kJoinIndex:
      break;  // self only
  }
  return levels;
}

// Builds one attribute index with the selected posting levels and returns
// its pages.
Result<uint64_t> BuildAttrIndexPages(
    flash::FlashDevice* device, storage::PageAllocator* allocator,
    const catalog::Schema& schema,
    const std::vector<core::TableData>& staged, const AncestorMaps& anc,
    TableId t, ColumnId c, const std::vector<int>& levels) {
  const auto& col = schema.table(t).columns[c];
  const core::TableData& data = staged[t];
  storage::BTreeBuilder builder(device, allocator, col.type, col.width,
                                static_cast<uint32_t>(levels.size()),
                                "scheme");
  std::vector<RowId> order(data.row_count());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
    int cv = catalog::CompareEncoded(col.type, col.width, data.CellPtr(a, c),
                                     data.CellPtr(b, c));
    if (cv != 0) return cv < 0;
    return a < b;
  });
  std::vector<std::vector<RowId>> level_ids(levels.size());
  size_t i = 0;
  while (i < order.size()) {
    const uint8_t* key_cell = data.CellPtr(order[i], c);
    for (auto& l : level_ids) l.clear();
    size_t j = i;
    while (j < order.size() &&
           catalog::CompareEncoded(col.type, col.width, key_cell,
                                   data.CellPtr(order[j], c)) == 0) {
      ++j;
    }
    for (size_t li = 0; li < levels.size(); ++li) {
      auto& dst = level_ids[li];
      if (levels[li] == 0) {
        for (size_t k = i; k < j; ++k) dst.push_back(order[k]);
      } else {
        for (size_t k = i; k < j; ++k) {
          const auto& src = anc[t][levels[li] - 1][order[k]];
          dst.insert(dst.end(), src.begin(), src.end());
        }
        std::sort(dst.begin(), dst.end());
        dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
      }
    }
    GHOSTDB_RETURN_NOT_OK(builder.Add(
        Value::Decode(key_cell, col.type, col.width), level_ids));
    i = j;
  }
  GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeRef ref, builder.Finish());
  return ref.total_pages();
}

}  // namespace

Result<SchemeSizes> MeasureScheme(const catalog::Schema& schema,
                                  const std::vector<core::TableData>& staged,
                                  IndexScheme scheme,
                                  int hidden_attrs_per_table) {
  SchemeSizes sizes;
  for (TableId t = 0; t < schema.table_count(); ++t) {
    sizes.raw_data_bytes +=
        staged[t].row_count() * schema.FullRowWidth(t);
  }

  // Scratch device (no cipher: sizes are what matter here).
  SimClock clock;
  flash::FlashConfig flash_cfg;
  uint64_t need_pages = sizes.raw_data_bytes * 4 / 2048 + 8192;
  flash_cfg.logical_pages = static_cast<uint32_t>(need_pages);
  flash::FlashDevice device(flash_cfg, &clock);
  storage::PageAllocator allocator(&device);
  std::vector<uint8_t> scratch(2048);

  AncestorMaps anc = BuildAncestorMaps(schema, staged);

  // --- SKTs.
  std::vector<TableId> skt_tables;
  if (scheme == IndexScheme::kFullIndex) {
    for (TableId t = 0; t < schema.table_count(); ++t) {
      if (!schema.tree(t).descendants.empty()) skt_tables.push_back(t);
    }
  } else if (scheme == IndexScheme::kBasicIndex ||
             scheme == IndexScheme::kStarIndex) {
    if (!schema.tree(schema.root()).descendants.empty()) {
      skt_tables.push_back(schema.root());
    }
  }
  for (TableId t : skt_tables) {
    const auto& desc = schema.tree(t).descendants;
    uint32_t width = 4 * static_cast<uint32_t>(desc.size());
    storage::FixedTableBuilder builder(&device, &allocator, scratch.data(),
                                       width, "scheme");
    std::vector<uint8_t> row(width, 0);  // ids don't affect page counts
    for (RowId r = 0; r < staged[t].row_count(); ++r) {
      GHOSTDB_RETURN_NOT_OK(builder.AppendRow(row.data()));
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::FixedTableRef ref, builder.Finish());
    sizes.index_pages += ref.run.page_count();
  }

  // --- Attribute indexes (first k hidden non-FK attributes per table).
  for (TableId t = 0; t < schema.table_count(); ++t) {
    int indexed = 0;
    std::vector<int> levels = AttrLevels(scheme, schema, t);
    for (ColumnId c : schema.HiddenColumns(t)) {
      if (schema.table(t).columns[c].is_foreign_key()) continue;
      if (indexed >= hidden_attrs_per_table) break;
      GHOSTDB_ASSIGN_OR_RETURN(
          uint64_t pages,
          BuildAttrIndexPages(&device, &allocator, schema, staged, anc, t, c,
                              levels));
      sizes.index_pages += pages;
      ++indexed;
    }
  }

  // --- Key / foreign-key indexes.
  for (TableId t = 0; t < schema.table_count(); ++t) {
    if (scheme == IndexScheme::kFullIndex ||
        scheme == IndexScheme::kBasicIndex) {
      // Id climbing index on non-root tables (ancestor levels only).
      if (t == schema.root()) continue;
      size_t anc_count = schema.tree(t).ancestors.size();
      uint32_t levels =
          scheme == IndexScheme::kFullIndex
              ? static_cast<uint32_t>(anc_count)
              : 1;  // root only
      storage::BTreeBuilder builder(&device, &allocator,
                                    catalog::DataType::kInt32, 4, levels,
                                    "scheme");
      std::vector<std::vector<RowId>> level_ids(levels);
      for (RowId r = 0; r < staged[t].row_count(); ++r) {
        if (scheme == IndexScheme::kFullIndex) {
          for (uint32_t l = 0; l < levels; ++l) level_ids[l] = anc[t][l][r];
        } else {
          level_ids[0] = anc[t][anc_count - 1][r];  // root level
        }
        GHOSTDB_RETURN_NOT_OK(
            builder.Add(Value::Int32(static_cast<int32_t>(r)), level_ids));
      }
      GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeRef ref, builder.Finish());
      sizes.index_pages += ref.total_pages();
    } else if (scheme == IndexScheme::kJoinIndex) {
      // Binary join indices (Valduriez): one (parent id, child id) pairs
      // table per foreign-key edge, sorted on the parent id (implicit).
      // The key index itself is the clustered table order: free.
      for (ColumnId c = 0; c < schema.table(t).columns.size(); ++c) {
        if (!schema.table(t).columns[c].is_foreign_key()) continue;
        storage::FixedTableBuilder builder(&device, &allocator,
                                           scratch.data(), 8, "scheme");
        uint8_t row[8] = {0};
        for (RowId r = 0; r < staged[t].row_count(); ++r) {
          GHOSTDB_RETURN_NOT_OK(builder.AppendRow(row));
        }
        GHOSTDB_ASSIGN_OR_RETURN(storage::FixedTableRef ref,
                                 builder.Finish());
        sizes.index_pages += ref.run.page_count();
      }
    }
  }
  return sizes;
}

}  // namespace ghostdb::workload

// Storage accounting for the indexing schemes compared in Fig 7:
//  * FullIndex  — every non-leaf table gets an SKT; every indexed attribute
//    gets a climbing index referencing ALL ancestor tables; id climbing
//    indexes on every non-root table (this is GhostDB's model);
//  * BasicIndex — a single SKT (root); climbing indexes reference the root
//    (and self) only;
//  * StarIndex  — root SKT + traditional selection indexes (self level
//    only), as in bitmapped-join-index DW systems [O'Neil & Graefe];
//  * JoinIndex  — no SKT; traditional indexes on all attributes including
//    keys and foreign keys (binary join indices, Valduriez).
//
// Each scheme is actually built (into a scratch flash device) and its page
// consumption measured — no estimation.
#pragma once

#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "core/table_data.h"

namespace ghostdb::workload {

enum class IndexScheme { kFullIndex, kBasicIndex, kStarIndex, kJoinIndex };

std::string_view IndexSchemeName(IndexScheme scheme);

struct SchemeSizes {
  uint64_t index_pages = 0;  ///< SKTs + selection/join indexes
  uint64_t raw_data_bytes = 0;  ///< Visible + Hidden data, no indexes

  double index_mb() const {
    return static_cast<double>(index_pages) * 2048.0 / 1e6;
  }
  double data_mb() const { return static_cast<double>(raw_data_bytes) / 1e6; }
};

/// Builds the scheme's structures over `staged` and measures them.
/// `hidden_attrs_per_table` = number of (non-FK) hidden attributes indexed
/// per table, taken in declaration order (the Fig 7 x-axis).
Result<SchemeSizes> MeasureScheme(const catalog::Schema& schema,
                                  const std::vector<core::TableData>& staged,
                                  IndexScheme scheme,
                                  int hidden_attrs_per_table);

}  // namespace ghostdb::workload

#include "workload/medical.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ghostdb::workload {

using catalog::Value;

MedicalShape::MedicalShape(double scale)
    : doctors(std::max<uint64_t>(static_cast<uint64_t>(4500 * scale), 20)),
      patients(std::max<uint64_t>(static_cast<uint64_t>(14000 * scale), 50)),
      measurements(
          std::max<uint64_t>(static_cast<uint64_t>(1'300'000 * scale), 200)),
      drugs(std::max<uint64_t>(static_cast<uint64_t>(45 * scale), 5)) {}

namespace {

const char* kSpecialties[] = {
    "Endocrinology", "Cardiology",  "Nephrology",  "Ophthalmology",
    "Podiatry",      "Dietetics",   "Psychiatrist", "General",
    "Neurology",     "Geriatrics"};

std::string Pad6(uint64_t v) {
  std::string s = std::to_string(v);
  return std::string(6 - s.size(), '0') + s;
}

std::string RandName(Rng* rng, const char* prefix) {
  return std::string(prefix) + Pad6(rng->Uniform(1'000'000));
}

}  // namespace

core::GhostDBConfig MedicalDbConfig(const MedicalConfig& config) {
  MedicalShape shape(config.scale);
  core::GhostDBConfig cfg;
  cfg.encrypt_external_flash = config.encrypt_external_flash;
  uint64_t bytes = shape.measurements * 140ull * 3 +
                   shape.patients * 200ull * 3 + shape.doctors * 140ull * 3;
  cfg.device.flash.logical_pages =
      static_cast<uint32_t>(std::max<uint64_t>(bytes / 2048, 4096));
  cfg.indexed_attrs_by_name = {{
      {"Doctors", {"name"}},
      {"Patients", {"bodymassindex"}},
  }};
  return cfg;
}

Status BuildMedical(core::GhostDB* db, const MedicalConfig& config) {
  MedicalShape shape(config.scale);
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE Doctors (id INT, specialty CHAR(20), "
      "description CHAR(60), first_name CHAR(20) HIDDEN, "
      "name CHAR(20) HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE Drugs (id INT, property CHAR(60), "
      "comment CHAR(100) HIDDEN)"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE Patients (id INT, doctor_id INT REFERENCES Doctors "
      "HIDDEN, first_name CHAR(20), name CHAR(20) HIDDEN, ssn CHAR(10) "
      "HIDDEN, address CHAR(50) HIDDEN, birthdate CHAR(10) HIDDEN, "
      "bodymassindex DOUBLE HIDDEN, age INT, sexe CHAR(2), city CHAR(20), "
      "zipcode CHAR(6))"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE Measurements (id INT, patient_id INT REFERENCES "
      "Patients HIDDEN, drug_id INT REFERENCES Drugs HIDDEN, "
      "time CHAR(10), measurement CHAR(10), comment CHAR(100))"));

  Rng rng(config.seed);
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("Doctors"));
    for (uint64_t i = 0; i < shape.doctors; ++i) {
      GHOSTDB_RETURN_NOT_OK(data->AppendRow(
          {Value::String(kSpecialties[rng.Uniform(10)]),
           Value::String("Diabetes care provider #" + std::to_string(i)),
           Value::String(RandName(&rng, "F")),
           // Hidden selectivity dial: uniform zero-padded 6-digit name.
           Value::String(Pad6(rng.Uniform(1'000'000)))}));
    }
  }
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("Drugs"));
    for (uint64_t i = 0; i < shape.drugs; ++i) {
      GHOSTDB_RETURN_NOT_OK(data->AppendRow(
          {Value::String("insulin analogue class " + std::to_string(i)),
           Value::String("dosage and contraindication notes " +
                         std::to_string(rng.Uniform(1000)))}));
    }
  }
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("Patients"));
    for (uint64_t i = 0; i < shape.patients; ++i) {
      GHOSTDB_RETURN_NOT_OK(data->AppendRow(
          {Value::Int32(static_cast<int32_t>(rng.Uniform(shape.doctors))),
           Value::String(RandName(&rng, "P")),
           Value::String(RandName(&rng, "N")),
           Value::String(Pad6(rng.Uniform(1'000'000)).substr(0, 6) + "SSN"),
           Value::String(std::to_string(rng.Uniform(999)) + " Rue de la " +
                         std::to_string(rng.Uniform(99))),
           Value::String("19" + std::to_string(40 + rng.Uniform(60))),
           Value::Double(15.0 + rng.NextDouble() * 30.0),
           Value::Int32(static_cast<int32_t>(rng.Uniform(100))),
           Value::String(rng.Chance(0.5) ? "M" : "F"),
           Value::String("City" + std::to_string(rng.Uniform(200))),
           Value::String(Pad6(rng.Uniform(99999)).substr(1))}));
    }
  }
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("Measurements"));
    for (uint64_t i = 0; i < shape.measurements; ++i) {
      GHOSTDB_RETURN_NOT_OK(data->AppendRow(
          {Value::Int32(static_cast<int32_t>(rng.Uniform(shape.patients))),
           Value::Int32(static_cast<int32_t>(rng.Uniform(shape.drugs))),
           Value::String("2006-" + Pad6(rng.Uniform(12) + 1).substr(4)),
           Value::String(Pad6(rng.Uniform(400))),
           Value::String("glycemia reading, fasting=" +
                         std::to_string(rng.Uniform(2)))}));
    }
  }
  return db->Build();
}

std::string MedicalQueryQ(double sv, double sh) {
  int age_cut = static_cast<int>(std::lround(sv * 100.0));
  std::string name_cut = Pad6(static_cast<uint64_t>(sh * 1'000'000));
  return "SELECT Measurements.id, Patients.id, Doctors.id, "
         "Patients.first_name FROM Measurements, Patients, Doctors WHERE "
         "Measurements.patient_id = Patients.id AND "
         "Patients.doctor_id = Doctors.id AND Patients.age < " +
         std::to_string(age_cut) + " AND Doctors.name < '" + name_cut + "'";
}

}  // namespace ghostdb::workload

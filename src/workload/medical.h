// The paper's real dataset (section 6.2): sanitized diabetes medical data.
// The original is not distributable, so this generator synthesizes a
// dataset with the published schema, cardinalities, attribute widths and
// hidden/visible split (see DESIGN.md, substitutions):
//
//   Doctors [4.5K]:  (id^VH, specialty^V(20), description^V(60),
//                     first-name^H(20), name^H(20))
//   Patients [14K]:  (id^VH, doctor_id^H, first-name^V(20), name^H(20),
//                     SSN^H(10), address^H(50), birthdate^H(10),
//                     bodymassindex^H(4), age^V(2), sexe^V(2), city^V(20),
//                     zipcode^V(6))
//   Measurements [1.3M]: (id^VH, patient_id^H, drug_id^H, time^V(10),
//                     measurement^V(10), comment^V(100))
//   Drugs [45]:      (id^VH, property^V(60), comment^H(100))
//
// Dial-able columns: Doctors.name is a zero-padded 6-digit string (hidden
// selectivity dial) and Patients.age is uniform 0..99 (visible dial).
#pragma once

#include <string>

#include "catalog/value.h"
#include "core/database.h"

namespace ghostdb::workload {

struct MedicalConfig {
  double scale = 0.05;  ///< 1.0 = paper sizes (1.3M measurements)
  uint64_t seed = 1977;  ///< the 30-year-old problem (paper section 1)
  bool encrypt_external_flash = true;
};

struct MedicalShape {
  uint64_t doctors, patients, measurements, drugs;
  explicit MedicalShape(double scale);
};

/// GhostDBConfig pre-sized for the dataset.
core::GhostDBConfig MedicalDbConfig(const MedicalConfig& config);

/// Creates schema + data + indexes in `db`.
Status BuildMedical(core::GhostDB* db, const MedicalConfig& config);

/// The Fig 16 query: same structure as Query Q with T0 -> Measurements,
/// T1 -> Patients, T12 -> Doctors. Visible selection on Patients.age with
/// selectivity `sv`, hidden selection on Doctors.name with selectivity
/// `sh`.
std::string MedicalQueryQ(double sv, double sh);

}  // namespace ghostdb::workload

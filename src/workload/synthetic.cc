#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/coding.h"
#include "common/rng.h"

namespace ghostdb::workload {

using catalog::Value;

SyntheticShape::SyntheticShape(double scale)
    : t0(static_cast<uint64_t>(10'000'000 * scale)),
      t1(static_cast<uint64_t>(1'000'000 * scale)),
      t2(static_cast<uint64_t>(1'000'000 * scale)),
      t11(static_cast<uint64_t>(100'000 * scale)),
      t12(static_cast<uint64_t>(100'000 * scale)) {
  t0 = std::max<uint64_t>(t0, 100);
  t1 = std::max<uint64_t>(t1, 50);
  t2 = std::max<uint64_t>(t2, 50);
  t11 = std::max<uint64_t>(t11, 20);
  t12 = std::max<uint64_t>(t12, 20);
}

namespace {

// Zero-padded 6-digit decimal of v in [0, 1e6).
std::string Pad6(uint64_t v) {
  std::string s = std::to_string(v);
  return std::string(6 - s.size(), '0') + s;
}

// Appends a row of [fks..., v1..v5, h1..h5] to the staging of `table`.
void FillAttrRow(std::vector<uint8_t>* row, Rng* rng, uint32_t offset) {
  for (int a = 0; a < 10; ++a) {
    std::string s = Pad6(rng->Uniform(1'000'000));
    // CHAR(10): zero-padded digits + 4 spaces.
    for (int i = 0; i < 10; ++i) {
      (*row)[offset + a * 10 + i] =
          i < 6 ? static_cast<uint8_t>(s[i]) : ' ';
    }
  }
}

std::string AttrColumns() {
  std::string ddl;
  for (int i = 1; i <= 5; ++i) {
    ddl += ", v" + std::to_string(i) + " CHAR(10)";
  }
  for (int i = 1; i <= 5; ++i) {
    ddl += ", h" + std::to_string(i) + " CHAR(10) HIDDEN";
  }
  return ddl;
}

}  // namespace

Value Dial(double s) {
  s = std::clamp(s, 0.0, 1.0);
  uint64_t cut = static_cast<uint64_t>(s * 1'000'000);
  if (cut >= 1'000'000) {
    // ':' sorts after '9', so this literal exceeds every attribute value.
    return Value::String(":");
  }
  return Value::String(Pad6(cut));
}

core::GhostDBConfig SyntheticDbConfig(const SyntheticConfig& config) {
  SyntheticShape shape(config.scale);
  core::GhostDBConfig cfg;
  cfg.encrypt_external_flash = config.encrypt_external_flash;
  // Rough sizing: hidden images (~108 B/row for T0 incl. fks), SKT
  // (16 B/row), indexes; triple it for slack and temporaries.
  uint64_t bytes = (shape.t0 + shape.t1 + shape.t2 + shape.t11 + shape.t12) *
                   160ull * 3;
  cfg.device.flash.logical_pages =
      static_cast<uint32_t>(std::max<uint64_t>(bytes / 2048, 4096));
  // Indexed attribute selection: what the figure queries need by default.
  if (config.indexed.empty()) {
    cfg.indexed_attrs_by_name = {{
        {"T0", {"h3"}},
        {"T1", {"h1"}},
        {"T2", {"h1"}},
        {"T11", {"h1"}},
        {"T12", {"h2"}},
    }};
  } else {
    cfg.indexed_attrs_by_name = config.indexed;
  }
  return cfg;
}

Status BuildSynthetic(core::GhostDB* db, const SyntheticConfig& config) {
  GHOSTDB_RETURN_NOT_OK(StageSynthetic(db, config));
  return db->Build();
}

Status StageSynthetic(core::GhostDB* db, const SyntheticConfig& config) {
  SyntheticShape shape(config.scale);
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T11 (id INT" + AttrColumns() + ")"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T12 (id INT" + AttrColumns() + ")"));
  GHOSTDB_RETURN_NOT_OK(
      db->Execute("CREATE TABLE T2 (id INT" + AttrColumns() + ")"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE T1 (id INT, fk11 INT REFERENCES T11 HIDDEN, fk12 INT "
      "REFERENCES T12 HIDDEN" +
      AttrColumns() + ")"));
  GHOSTDB_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE T0 (id INT, fk1 INT REFERENCES T1 HIDDEN, fk2 INT "
      "REFERENCES T2 HIDDEN" +
      AttrColumns() + ")"));

  Rng rng(config.seed);
  auto stage_leaf = [&](const char* name, uint64_t n) -> Status {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging(name));
    std::vector<uint8_t> row(100);
    for (uint64_t i = 0; i < n; ++i) {
      FillAttrRow(&row, &rng, 0);
      data->AppendPackedRow(row.data());
    }
    return Status::OK();
  };
  GHOSTDB_RETURN_NOT_OK(stage_leaf("T11", shape.t11));
  GHOSTDB_RETURN_NOT_OK(stage_leaf("T12", shape.t12));
  GHOSTDB_RETURN_NOT_OK(stage_leaf("T2", shape.t2));
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("T1"));
    std::vector<uint8_t> row(8 + 100);
    for (uint64_t i = 0; i < shape.t1; ++i) {
      EncodeFixed32(row.data(),
                    static_cast<uint32_t>(rng.Uniform(shape.t11)));
      EncodeFixed32(row.data() + 4,
                    static_cast<uint32_t>(rng.Uniform(shape.t12)));
      FillAttrRow(&row, &rng, 8);
      data->AppendPackedRow(row.data());
    }
  }
  {
    GHOSTDB_ASSIGN_OR_RETURN(core::TableData * data,
                             db->MutableStaging("T0"));
    std::vector<uint8_t> row(8 + 100);
    for (uint64_t i = 0; i < shape.t0; ++i) {
      EncodeFixed32(row.data(),
                    static_cast<uint32_t>(rng.Uniform(shape.t1)));
      EncodeFixed32(row.data() + 4,
                    static_cast<uint32_t>(rng.Uniform(shape.t2)));
      FillAttrRow(&row, &rng, 8);
      data->AppendPackedRow(row.data());
    }
  }
  return Status::OK();
}

std::string QueryQ(double sv, double sh, int projected_vis_attrs,
                   bool project_hidden) {
  std::string select = "SELECT T0.id, T1.id, T12.id";
  for (int i = 1; i <= projected_vis_attrs; ++i) {
    select += ", T1.v" + std::to_string(i);
  }
  if (project_hidden) select += ", T1.h2";
  std::string sql =
      select +
      " FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND "
      "T1.v1 < " +
      Dial(sv).ToString() + " AND T12.h2 < " + Dial(sh).ToString();
  return sql;
}

}  // namespace ghostdb::workload

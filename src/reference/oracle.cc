#include "reference/oracle.h"

#include <algorithm>
#include <map>
#include <set>

namespace ghostdb::reference {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

Result<std::vector<std::vector<Value>>> Evaluate(
    const catalog::Schema& schema,
    const std::vector<core::TableData>& staged,
    const sql::BoundQuery& query) {
  TableId anchor = query.anchor;

  // Path from the anchor to each query table (fk chain).
  // id_of(t, anchor_row): follow parent fks downward.
  auto id_of = [&](TableId t, RowId anchor_row) -> RowId {
    // Build the chain anchor -> ... -> t using tree parents.
    std::vector<TableId> chain;  // from t up to anchor (exclusive)
    TableId walk = t;
    while (walk != anchor) {
      chain.push_back(walk);
      walk = schema.tree(walk).parent;
    }
    RowId row = anchor_row;
    TableId at = anchor;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      ColumnId fk = schema.tree(*it).parent_fk;
      row = staged[at].GetFk(row, fk);
      at = *it;
    }
    return row;
  };

  std::vector<std::vector<Value>> out;
  uint64_t anchor_rows = staged[anchor].row_count();
  for (RowId a = 0; a < anchor_rows; ++a) {
    bool pass = true;
    std::map<TableId, RowId> ids;
    for (TableId t : query.tables) ids[t] = id_of(t, a);
    for (const auto& p : query.predicates) {
      Value v = p.on_id
                    ? Value::Int32(static_cast<int32_t>(ids[p.table]))
                    : staged[p.table].Get(ids[p.table], p.column);
      if (!catalog::EvalCompare(v, p.op, p.value)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<Value> row;
    row.reserve(query.select.size());
    for (const auto& item : query.select) {
      if (item.is_id) {
        row.push_back(Value::Int32(static_cast<int32_t>(ids[item.table])));
      } else {
        row.push_back(staged[item.table].Get(ids[item.table], item.column));
      }
    }
    out.push_back(std::move(row));
  }

  auto make_aggregators = [&] {
    std::vector<exec::Aggregator> aggs;
    for (const auto& item : query.select) {
      catalog::DataType input_type =
          item.is_id ? catalog::DataType::kInt32
                     : schema.table(item.table).columns[item.column].type;
      aggs.emplace_back(item.agg, input_type);
    }
    return aggs;
  };
  auto fold_row = [&](std::vector<exec::Aggregator>* aggs,
                      const std::vector<Value>& row) -> Status {
    for (size_t i = 0; i < query.select.size(); ++i) {
      if (query.select[i].agg == exec::AggFunc::kCountStar) {
        (*aggs)[i].AccumulateRow();
      } else if (query.select[i].agg != exec::AggFunc::kNone) {
        GHOSTDB_RETURN_NOT_OK((*aggs)[i].Accumulate(row[i]));
      }
    }
    return Status::OK();
  };

  if (query.grouped()) {
    // GROUP BY: partition the per-row values by the plain (key) select
    // items, fold aggregates per group, emit one row per group in
    // first-arrival order showing the group's first-row key values —
    // exactly GroupAggregateOp's semantics. Empty input: zero groups.
    std::map<std::vector<Value>, size_t> index;
    std::vector<std::vector<Value>> first_rows;
    std::vector<std::vector<exec::Aggregator>> groups;
    for (const auto& row : out) {
      std::vector<Value> key;
      for (size_t i = 0; i < query.select.size(); ++i) {
        if (query.select[i].agg == exec::AggFunc::kNone) {
          key.push_back(row[i]);
        }
      }
      auto [it, fresh] = index.emplace(std::move(key), groups.size());
      if (fresh) {
        first_rows.push_back(row);
        groups.push_back(make_aggregators());
      }
      GHOSTDB_RETURN_NOT_OK(fold_row(&groups[it->second], row));
    }
    std::vector<std::vector<Value>> grouped;
    for (size_t g = 0; g < groups.size(); ++g) {
      std::vector<Value> row;
      for (size_t i = 0; i < query.select.size(); ++i) {
        if (query.select[i].agg == exec::AggFunc::kNone) {
          row.push_back(first_rows[g][i]);
        } else {
          GHOSTDB_ASSIGN_OR_RETURN(Value v, groups[g][i].Finish());
          row.push_back(std::move(v));
        }
      }
      grouped.push_back(std::move(row));
    }
    out = std::move(grouped);
  } else if (query.HasAggregates()) {
    // Whole-result aggregates: fold the per-row values exactly as the
    // device does. GhostDB has no NULLs: value aggregates (SUM/AVG/MIN/
    // MAX) over an empty input yield an empty result instead of SQL's
    // NULL row; COUNT-only selects keep their zero row (AggregateOp
    // applies the same rule).
    bool needs_input = false;
    for (const auto& item : query.select) {
      needs_input |= exec::AggRequiresInput(item.agg);
    }
    if (out.empty() && needs_input) {
      out.clear();
    } else {
      std::vector<exec::Aggregator> aggs = make_aggregators();
      for (const auto& row : out) {
        GHOSTDB_RETURN_NOT_OK(fold_row(&aggs, row));
      }
      std::vector<Value> agg_row;
      for (auto& a : aggs) {
        GHOSTDB_ASSIGN_OR_RETURN(Value v, a.Finish());
        agg_row.push_back(std::move(v));
      }
      out = {std::move(agg_row)};
    }
  }

  // DISTINCT keeps the first occurrence in anchor-id order; ORDER BY is a
  // stable sort (ties stay in anchor-id order); LIMIT truncates last —
  // exactly the semantics of the Distinct/Sort/Limit operators.
  if (query.distinct) {
    std::set<std::vector<Value>> seen;
    std::vector<std::vector<Value>> unique;
    for (auto& row : out) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    out = std::move(unique);
  }
  if (!query.order_by.empty()) {
    std::stable_sort(out.begin(), out.end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       for (const auto& key : query.order_by) {
                         int cmp = a[key.select_index].Compare(
                             b[key.select_index]);
                         if (cmp != 0) {
                           return key.descending ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
  }
  if (query.limit.has_value() && out.size() > *query.limit) {
    out.resize(*query.limit);
  }
  return out;
}

}  // namespace ghostdb::reference

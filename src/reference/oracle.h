// Reference evaluator ("oracle"): computes the exact answer of a bound
// query over the owner-side staged data with naive nested joins, ignoring
// all privacy and device constraints. Tests compare GhostDB's answers
// against it row for row.
#pragma once

#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "core/table_data.h"
#include "sql/binder.h"

namespace ghostdb::reference {

/// Evaluates `query` over `staged` (indexed by TableId). Rows come back in
/// ascending anchor-id order — the same order GhostDB produces.
Result<std::vector<std::vector<catalog::Value>>> Evaluate(
    const catalog::Schema& schema, const std::vector<core::TableData>& staged,
    const sql::BoundQuery& query);

}  // namespace ghostdb::reference

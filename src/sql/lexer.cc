#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace ghostdb::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "CREATE", "TABLE",  "HIDDEN",  "REFERENCES", "INT",    "INTEGER",
      "BIGINT", "FLOAT",  "DOUBLE",  "CHAR",       "SELECT", "FROM",
      "WHERE",  "AND",    "INSERT",  "INTO",       "VALUES", "BETWEEN",
      "EXPLAIN", "COUNT", "SUM",     "AVG",        "MIN",    "MAX",
      "DISTINCT", "ORDER", "BY",     "LIMIT",      "ASC",    "DESC",
      "GROUP"};
  return kKeywords;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

bool IsKeyword(const std::string& upper) {
  return Keywords().count(upper) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '-')) {
        // '-' appears in the paper's column names (first-name, patient-id).
        // Accept it inside identifiers when followed by a letter.
        if (input[j] == '-' &&
            (j + 1 >= n ||
             !std::isalnum(static_cast<unsigned char>(input[j + 1])))) {
          break;
        }
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
         (tokens.empty() || (tokens.back().type == TokenType::kSymbol &&
                             tokens.back().text != ")")))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          if (is_float) break;
          is_float = true;
        }
        ++j;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kString, text, start});
      i = j;
      continue;
    }
    // Multi-char operators first.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tokens.push_back({TokenType::kSymbol, two, start});
      i += 2;
      continue;
    }
    if (std::string("(),;.*=<>").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at byte " +
                                   std::to_string(start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace ghostdb::sql

#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "sql/lexer.h"

namespace ghostdb::sql {

namespace {

/// Token cursor with typed expectation helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  Token Take() { return tokens_[pos_++]; }

  bool AtKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool AtSymbol(const std::string& sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool TryKeyword(const std::string& kw) {
    if (AtKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool TrySymbol(const std::string& sym) {
    if (AtSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!TryKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near '" +
                                     Peek().text + "' (byte " +
                                     std::to_string(Peek().offset) + ")");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!TrySymbol(sym)) {
      return Status::InvalidArgument("expected '" + sym + "' near '" +
                                     Peek().text + "' (byte " +
                                     std::to_string(Peek().offset) + ")");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near '" + Peek().text + "'");
    }
    return Take().text;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<catalog::Value> ParseLiteral(Cursor& cur) {
  const Token& t = cur.Peek();
  switch (t.type) {
    case TokenType::kInteger: {
      long long v = std::strtoll(t.text.c_str(), nullptr, 10);
      cur.Take();
      if (v >= INT32_MIN && v <= INT32_MAX) {
        return catalog::Value::Int32(static_cast<int32_t>(v));
      }
      return catalog::Value::Int64(v);
    }
    case TokenType::kFloat: {
      double v = std::strtod(t.text.c_str(), nullptr);
      cur.Take();
      return catalog::Value::Double(v);
    }
    case TokenType::kString: {
      std::string s = t.text;
      cur.Take();
      return catalog::Value::String(std::move(s));
    }
    default:
      return Status::InvalidArgument("expected literal near '" + t.text +
                                     "'");
  }
}

Result<ColumnRef> ParseColumnRef(Cursor& cur) {
  GHOSTDB_ASSIGN_OR_RETURN(std::string first,
                           cur.ExpectIdentifier("column reference"));
  ColumnRef ref;
  if (cur.TrySymbol(".")) {
    GHOSTDB_ASSIGN_OR_RETURN(std::string second,
                             cur.ExpectIdentifier("column name"));
    ref.table = first;
    ref.column = second;
  } else {
    ref.column = first;
  }
  return ref;
}

/// An aggregate-or-column item: `AGG(col)`, `COUNT(*)`, or a plain column
/// reference — the grammar shared by the SELECT list and (for grouped
/// queries) ORDER BY keys.
Result<SelectItem> ParseAggregateOrColumn(Cursor& cur) {
  SelectItem item;
  exec::AggFunc agg = exec::AggFunc::kNone;
  if (cur.TryKeyword("COUNT")) agg = exec::AggFunc::kCount;
  else if (cur.TryKeyword("SUM")) agg = exec::AggFunc::kSum;
  else if (cur.TryKeyword("AVG")) agg = exec::AggFunc::kAvg;
  else if (cur.TryKeyword("MIN")) agg = exec::AggFunc::kMin;
  else if (cur.TryKeyword("MAX")) agg = exec::AggFunc::kMax;
  if (agg != exec::AggFunc::kNone) {
    GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol("("));
    if (agg == exec::AggFunc::kCount && cur.TrySymbol("*")) {
      item.agg = exec::AggFunc::kCountStar;
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(item.ref, ParseColumnRef(cur));
      item.agg = agg;
    }
    GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol(")"));
  } else {
    GHOSTDB_ASSIGN_OR_RETURN(item.ref, ParseColumnRef(cur));
  }
  return item;
}

Result<catalog::CompareOp> ParseCompareOp(Cursor& cur) {
  if (cur.Peek().type != TokenType::kSymbol) {
    return Status::InvalidArgument("expected comparison operator near '" +
                                   cur.Peek().text + "'");
  }
  Token token = cur.Take();
  const std::string& sym = token.text;
  if (sym == "=") return catalog::CompareOp::kEq;
  if (sym == "<>" || sym == "!=") return catalog::CompareOp::kNe;
  if (sym == "<") return catalog::CompareOp::kLt;
  if (sym == "<=") return catalog::CompareOp::kLe;
  if (sym == ">") return catalog::CompareOp::kGt;
  if (sym == ">=") return catalog::CompareOp::kGe;
  return Status::InvalidArgument("unknown operator '" + sym + "'");
}

Result<Statement> ParseCreateTable(Cursor& cur) {
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("CREATE"));
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("TABLE"));
  CreateTableStmt stmt;
  GHOSTDB_ASSIGN_OR_RETURN(stmt.def.name, cur.ExpectIdentifier("table name"));
  GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol("("));
  bool first_column = true;
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(std::string col_name,
                             cur.ExpectIdentifier("column name"));
    catalog::ColumnDef col;
    col.name = col_name;
    // Type.
    if (cur.TryKeyword("INT") || cur.TryKeyword("INTEGER")) {
      col.type = catalog::DataType::kInt32;
      col.width = 4;
    } else if (cur.TryKeyword("BIGINT")) {
      col.type = catalog::DataType::kInt64;
      col.width = 8;
    } else if (cur.TryKeyword("FLOAT") || cur.TryKeyword("DOUBLE")) {
      col.type = catalog::DataType::kDouble;
      col.width = 8;
    } else if (cur.TryKeyword("CHAR")) {
      col.type = catalog::DataType::kString;
      GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol("("));
      if (cur.Peek().type != TokenType::kInteger) {
        return Status::InvalidArgument("expected CHAR width");
      }
      col.width = static_cast<uint32_t>(
          std::strtoul(cur.Take().text.c_str(), nullptr, 10));
      GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol(")"));
    } else {
      return Status::InvalidArgument("expected a type for column '" +
                                     col_name + "' near '" + cur.Peek().text +
                                     "'");
    }
    if (cur.TryKeyword("REFERENCES")) {
      GHOSTDB_ASSIGN_OR_RETURN(col.references,
                               cur.ExpectIdentifier("referenced table"));
    }
    if (cur.TryKeyword("HIDDEN")) col.hidden = true;

    // `id INT` as the first column declares the implicit surrogate key and
    // is not stored as a regular column (the paper's CREATE TABLE examples
    // list it explicitly).
    bool is_surrogate = first_column && col.name == "id" &&
                        col.type == catalog::DataType::kInt32 &&
                        col.references.empty() && !col.hidden;
    if (!is_surrogate) stmt.def.columns.push_back(std::move(col));
    first_column = false;

    if (cur.TrySymbol(",")) continue;
    GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol(")"));
    break;
  }
  if (cur.TryKeyword("HIDDEN")) stmt.def.hidden = true;
  cur.TrySymbol(";");
  return Statement{std::move(stmt)};
}

Result<Statement> ParseInsert(Cursor& cur) {
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("INSERT"));
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("INTO"));
  InsertStmt stmt;
  GHOSTDB_ASSIGN_OR_RETURN(stmt.table, cur.ExpectIdentifier("table name"));
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("VALUES"));
  GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol("("));
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(catalog::Value v, ParseLiteral(cur));
    stmt.values.push_back(std::move(v));
    if (cur.TrySymbol(",")) continue;
    GHOSTDB_RETURN_NOT_OK(cur.ExpectSymbol(")"));
    break;
  }
  cur.TrySymbol(";");
  return Statement{std::move(stmt)};
}

Result<Statement> ParseSelect(Cursor& cur) {
  SelectStmt stmt;
  if (cur.TryKeyword("EXPLAIN")) stmt.explain = true;
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("SELECT"));
  if (cur.TryKeyword("DISTINCT")) stmt.distinct = true;
  if (cur.TrySymbol("*")) {
    stmt.star = true;
  } else {
    while (true) {
      // Aggregate functions: COUNT(*|col) / SUM / AVG / MIN / MAX (col).
      GHOSTDB_ASSIGN_OR_RETURN(SelectItem item, ParseAggregateOrColumn(cur));
      stmt.items.push_back(std::move(item));
      if (!cur.TrySymbol(",")) break;
    }
  }
  GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("FROM"));
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(std::string table,
                             cur.ExpectIdentifier("table name"));
    FromTable entry{table, ""};
    // Optional alias: `Measurements M`; qualified references then use the
    // alias.
    if (cur.Peek().type == TokenType::kIdentifier) {
      entry.alias = cur.Take().text;
    }
    stmt.from.push_back(std::move(entry));
    if (!cur.TrySymbol(",")) break;
  }
  if (cur.TryKeyword("WHERE")) {
    while (true) {
      // Either `ref op literal`, `ref = ref` (join), or
      // `ref BETWEEN lit AND lit`.
      GHOSTDB_ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef(cur));
      if (cur.TryKeyword("BETWEEN")) {
        GHOSTDB_ASSIGN_OR_RETURN(catalog::Value lo, ParseLiteral(cur));
        GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("AND"));
        GHOSTDB_ASSIGN_OR_RETURN(catalog::Value hi, ParseLiteral(cur));
        stmt.predicates.push_back(
            {left, catalog::CompareOp::kGe, std::move(lo)});
        stmt.predicates.push_back(
            {left, catalog::CompareOp::kLe, std::move(hi)});
      } else {
        GHOSTDB_ASSIGN_OR_RETURN(catalog::CompareOp op, ParseCompareOp(cur));
        if (cur.Peek().type == TokenType::kIdentifier) {
          if (op != catalog::CompareOp::kEq) {
            return Status::InvalidArgument(
                "joins must be equi-joins (key = foreign key)");
          }
          GHOSTDB_ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef(cur));
          stmt.joins.push_back({std::move(left), std::move(right)});
        } else {
          GHOSTDB_ASSIGN_OR_RETURN(catalog::Value v, ParseLiteral(cur));
          stmt.predicates.push_back({std::move(left), op, std::move(v)});
        }
      }
      if (!cur.TryKeyword("AND")) break;
    }
  }
  if (cur.TryKeyword("GROUP")) {
    GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("BY"));
    while (true) {
      GHOSTDB_ASSIGN_OR_RETURN(ColumnRef key, ParseColumnRef(cur));
      stmt.group_by.push_back(std::move(key));
      if (!cur.TrySymbol(",")) break;
    }
  }
  if (cur.TryKeyword("ORDER")) {
    GHOSTDB_RETURN_NOT_OK(cur.ExpectKeyword("BY"));
    while (true) {
      OrderExpr key;
      GHOSTDB_ASSIGN_OR_RETURN(SelectItem item, ParseAggregateOrColumn(cur));
      key.column = std::move(item.ref);
      key.agg = item.agg;
      if (cur.TryKeyword("DESC")) {
        key.descending = true;
      } else {
        cur.TryKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(key));
      if (!cur.TrySymbol(",")) break;
    }
  }
  if (cur.TryKeyword("LIMIT")) {
    if (cur.Peek().type != TokenType::kInteger) {
      return Status::InvalidArgument("expected integer after LIMIT near '" +
                                     cur.Peek().text + "'");
    }
    std::string text = cur.Take().text;
    errno = 0;
    uint64_t limit = std::strtoull(text.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument("LIMIT value '" + text +
                                     "' is out of range");
    }
    stmt.limit = limit;
  }
  cur.TrySymbol(";");
  return Statement{std::move(stmt)};
}

Result<Statement> ParseOne(Cursor& cur) {
  if (cur.AtKeyword("CREATE")) return ParseCreateTable(cur);
  if (cur.AtKeyword("INSERT")) return ParseInsert(cur);
  if (cur.AtKeyword("SELECT") || cur.AtKeyword("EXPLAIN")) {
    return ParseSelect(cur);
  }
  return Status::InvalidArgument("expected CREATE, INSERT, SELECT or EXPLAIN "
                                 "near '" + cur.Peek().text + "'");
}

}  // namespace

Result<Statement> Parse(const std::string& input) {
  GHOSTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Cursor cur(std::move(tokens));
  GHOSTDB_ASSIGN_OR_RETURN(Statement stmt, ParseOne(cur));
  if (cur.Peek().type != TokenType::kEnd) {
    return Status::InvalidArgument("trailing input near '" + cur.Peek().text +
                                   "'");
  }
  return stmt;
}

Result<std::string> QueryShape(const std::string& input) {
  GHOSTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  std::string shape;
  for (const Token& t : tokens) {
    if (t.type == TokenType::kEnd) break;
    // The optional statement terminator is not part of the shape:
    // "SELECT ..." and "SELECT ...;" must share a cache entry.
    if (t.type == TokenType::kSymbol && t.text == ";") continue;
    if (!shape.empty()) shape.push_back(' ');
    switch (t.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString:
        shape.push_back('?');
        break;
      default:
        shape += t.text;
        break;
    }
  }
  return shape;
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  GHOSTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Cursor cur(std::move(tokens));
  std::vector<Statement> out;
  while (cur.Peek().type != TokenType::kEnd) {
    GHOSTDB_ASSIGN_OR_RETURN(Statement stmt, ParseOne(cur));
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace ghostdb::sql

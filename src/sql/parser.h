// Recursive-descent parser for the GhostDB SQL dialect.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace ghostdb::sql {

/// Parses one statement (a trailing ';' is accepted).
Result<Statement> Parse(const std::string& input);

/// Parses a ';'-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& input);

/// Normalized query shape: the token stream with every literal replaced by
/// '?'. Two statements differing only in constants share one shape — the
/// plan-cache key. Shapes derive from the visible query text alone, so
/// caching on them can never leak hidden information.
Result<std::string> QueryShape(const std::string& input);

}  // namespace ghostdb::sql

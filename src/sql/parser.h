// Recursive-descent parser for the GhostDB SQL dialect.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace ghostdb::sql {

/// Parses one statement (a trailing ';' is accepted).
Result<Statement> Parse(const std::string& input);

/// Parses a ';'-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& input);

}  // namespace ghostdb::sql

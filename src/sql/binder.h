// Binds a parsed SELECT against the schema and validates it against the
// paper's query model: Select-Project-Join over a subtree of the schema
// tree, equi-joins on key/foreign-key only, conjunctive exact-match or
// range selections (section 3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "common/result.h"
#include "sql/ast.h"

namespace ghostdb::sql {

/// A resolved output column (possibly an aggregate over it).
struct BoundColumn {
  catalog::TableId table;
  bool is_id = false;          ///< the surrogate id
  catalog::ColumnId column = 0;  ///< valid when !is_id
  exec::AggFunc agg = exec::AggFunc::kNone;
  std::string display;         ///< "T1.v1" / "SUM(T1.v1)" for headers
};

/// A resolved selection conjunct.
struct BoundPredicate {
  catalog::TableId table;
  bool on_id = false;          ///< predicate on the surrogate id
  catalog::ColumnId column = 0;
  bool hidden = false;         ///< column lives on Secure
  catalog::CompareOp op;
  catalog::Value value;

  std::string ToString(const catalog::Schema& schema) const;
};

/// A resolved join edge: parent's FK column -> child table id.
struct BoundJoin {
  catalog::TableId parent;
  catalog::ColumnId parent_fk;
  catalog::TableId child;
};

/// A resolved ORDER BY key: an index into the SELECT list plus direction.
struct BoundOrderKey {
  size_t select_index = 0;
  bool descending = false;
};

/// \brief A validated Select-Project-Join query.
struct BoundQuery {
  std::vector<catalog::TableId> tables;  ///< FROM tables (deduped, in order)
  catalog::TableId anchor;  ///< FROM table nearest the schema root
  std::vector<BoundColumn> select;
  std::vector<BoundPredicate> predicates;
  std::vector<BoundJoin> joins;
  /// GROUP BY keys as indexes into `select` (deduped, in GROUP BY order).
  /// Every key is a plain select item, and every plain select item is a
  /// key, so grouping by the plain select items is grouping by these.
  std::vector<size_t> group_by;
  bool distinct = false;
  std::vector<BoundOrderKey> order_by;
  std::optional<uint64_t> limit;
  bool explain = false;
  std::string sql;  ///< original text (what the spy sees)

  /// Predicates on `table` evaluable by Untrusted (visible columns + id).
  std::vector<BoundPredicate> VisiblePredicatesOn(catalog::TableId t) const;
  /// Predicates on `table` only evaluable on Secure.
  std::vector<BoundPredicate> HiddenPredicatesOn(catalog::TableId t) const;
  bool HasVisiblePredicateOn(catalog::TableId t) const {
    return !VisiblePredicatesOn(t).empty();
  }
  /// Visible columns of `table` appearing in the SELECT list.
  std::vector<catalog::ColumnId> ProjectedVisibleColumns(
      const catalog::Schema& schema, catalog::TableId t) const;
  /// Hidden columns of `table` appearing in the SELECT list.
  std::vector<catalog::ColumnId> ProjectedHiddenColumns(
      const catalog::Schema& schema, catalog::TableId t) const;
  /// True if the SELECT list references `table` at all.
  bool ProjectsTable(catalog::TableId t) const;
  /// True if the SELECT list contains any aggregate.
  bool HasAggregates() const;
  /// True for a GROUP BY query (one result row per group).
  bool grouped() const { return !group_by.empty(); }
};

/// Binds `stmt` (with original text `sql`) against `schema`.
Result<BoundQuery> Bind(const SelectStmt& stmt, const catalog::Schema& schema,
                        std::string sql);

}  // namespace ghostdb::sql

#include "sql/binder.h"

#include <algorithm>
#include <map>
#include <set>

namespace ghostdb::sql {

using catalog::ColumnId;
using catalog::CompareOp;
using catalog::DataType;
using catalog::Schema;
using catalog::TableId;
using catalog::Value;

namespace {

// Coerces a literal to the column type (int widening, int->double).
Result<Value> Coerce(const Value& v, DataType target) {
  if (v.type() == target) return v;
  if (target == DataType::kInt64 && v.type() == DataType::kInt32) {
    return Value::Int64(v.AsInt32());
  }
  if (target == DataType::kDouble && v.type() == DataType::kInt32) {
    return Value::Double(v.AsInt32());
  }
  if (target == DataType::kDouble && v.type() == DataType::kInt64) {
    return Value::Double(static_cast<double>(v.AsInt64()));
  }
  if (target == DataType::kInt32 && v.type() == DataType::kInt64) {
    int64_t x = v.AsInt64();
    if (x < INT32_MIN || x > INT32_MAX) {
      return Status::InvalidArgument("integer literal out of INT range");
    }
    return Value::Int32(static_cast<int32_t>(x));
  }
  return Status::InvalidArgument("literal " + v.ToString() +
                                 " incompatible with column type " +
                                 std::string(catalog::DataTypeName(target)));
}

struct NameScope {
  // effective FROM name (alias or table name) -> TableId
  std::map<std::string, TableId> by_name;
  std::vector<TableId> order;

  Result<TableId> Resolve(const std::string& name) const {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("unknown table or alias '" + name +
                              "' in this query");
    }
    return it->second;
  }
};

// Resolves a (possibly unqualified) column reference.
struct ResolvedRef {
  TableId table;
  bool is_id;
  ColumnId column;
};

Result<ResolvedRef> ResolveColumn(const ColumnRef& ref, const Schema& schema,
                                  const NameScope& scope) {
  if (!ref.table.empty()) {
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, scope.Resolve(ref.table));
    if (ref.column == "id") return ResolvedRef{t, true, 0};
    auto col = schema.table(t).FindColumn(ref.column);
    if (!col) {
      return Status::NotFound("table '" + schema.table(t).name +
                              "' has no column '" + ref.column + "'");
    }
    return ResolvedRef{t, false, *col};
  }
  // Unqualified: must be unambiguous across FROM tables.
  std::vector<ResolvedRef> hits;
  for (TableId t : scope.order) {
    if (ref.column == "id") {
      hits.push_back({t, true, 0});
      continue;
    }
    auto col = schema.table(t).FindColumn(ref.column);
    if (col) hits.push_back({t, false, *col});
  }
  if (hits.empty()) {
    return Status::NotFound("column '" + ref.column +
                            "' not found in any FROM table");
  }
  if (hits.size() > 1) {
    return Status::InvalidArgument("column '" + ref.column +
                                   "' is ambiguous; qualify it");
  }
  return hits[0];
}

// True when select item `c` names the same column as the resolved
// (table, is_id, column) triple — the identity GROUP BY / ORDER BY keys
// and the plain-item-coverage check all resolve against.
bool SameColumn(const BoundColumn& c, TableId table, bool is_id,
                ColumnId column) {
  return c.table == table && c.is_id == is_id && (is_id || c.column == column);
}

}  // namespace

std::string BoundPredicate::ToString(const Schema& schema) const {
  std::string col =
      on_id ? "id" : schema.table(table).columns[column].name;
  return schema.table(table).name + "." + col + " " +
         std::string(catalog::CompareOpName(op)) + " " + value.ToString();
}

std::vector<BoundPredicate> BoundQuery::VisiblePredicatesOn(
    TableId t) const {
  std::vector<BoundPredicate> out;
  for (const auto& p : predicates) {
    if (p.table == t && (p.on_id || !p.hidden)) out.push_back(p);
  }
  return out;
}

std::vector<BoundPredicate> BoundQuery::HiddenPredicatesOn(TableId t) const {
  std::vector<BoundPredicate> out;
  for (const auto& p : predicates) {
    if (p.table == t && !p.on_id && p.hidden) out.push_back(p);
  }
  return out;
}

std::vector<ColumnId> BoundQuery::ProjectedVisibleColumns(
    const Schema& schema, TableId t) const {
  std::vector<ColumnId> out;
  for (const auto& c : select) {
    if (c.table == t && !c.is_id &&
        !schema.table(t).columns[c.column].hidden) {
      if (std::find(out.begin(), out.end(), c.column) == out.end()) {
        out.push_back(c.column);
      }
    }
  }
  return out;
}

std::vector<ColumnId> BoundQuery::ProjectedHiddenColumns(
    const Schema& schema, TableId t) const {
  std::vector<ColumnId> out;
  for (const auto& c : select) {
    if (c.table == t && !c.is_id &&
        schema.table(t).columns[c.column].hidden) {
      if (std::find(out.begin(), out.end(), c.column) == out.end()) {
        out.push_back(c.column);
      }
    }
  }
  return out;
}

bool BoundQuery::ProjectsTable(TableId t) const {
  for (const auto& c : select) {
    if (c.table == t) return true;
  }
  return false;
}

bool BoundQuery::HasAggregates() const {
  for (const auto& c : select) {
    if (c.agg != exec::AggFunc::kNone) return true;
  }
  return false;
}

Result<BoundQuery> Bind(const SelectStmt& stmt, const Schema& schema,
                        std::string sql) {
  if (!schema.finalized()) {
    return Status::InvalidArgument("schema not finalized");
  }
  BoundQuery q;
  q.explain = stmt.explain;
  q.sql = std::move(sql);

  NameScope scope;
  std::set<TableId> seen;
  for (const auto& entry : stmt.from) {
    GHOSTDB_ASSIGN_OR_RETURN(TableId t, schema.FindTable(entry.table));
    if (!seen.insert(t).second) {
      return Status::NotSupported("table '" + entry.table +
                                  "' appears twice in FROM (self-joins are "
                                  "not supported)");
    }
    if (scope.by_name.count(entry.effective_name())) {
      return Status::InvalidArgument("duplicate FROM name '" +
                                     entry.effective_name() + "'");
    }
    scope.by_name[entry.effective_name()] = t;
    scope.order.push_back(t);
    q.tables.push_back(t);
  }

  // Joins: each must be parent.fk = child.id along a schema edge.
  std::map<TableId, std::set<TableId>> adjacency;
  for (const auto& join : stmt.joins) {
    GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef l,
                             ResolveColumn(join.left, schema, scope));
    GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef r,
                             ResolveColumn(join.right, schema, scope));
    // Normalize: fk side and id side.
    ResolvedRef fk = l, id = r;
    if (l.is_id) std::swap(fk, id);
    if (!id.is_id || fk.is_id) {
      return Status::NotSupported(
          "join '" + join.left.ToString() + " = " + join.right.ToString() +
          "' must equate a foreign key with a table id");
    }
    const auto& fk_col = schema.table(fk.table).columns[fk.column];
    if (!fk_col.is_foreign_key()) {
      return Status::InvalidArgument("column '" + fk_col.name +
                                     "' is not a foreign key");
    }
    auto target = schema.FindTable(fk_col.references);
    if (!target.ok() || *target != id.table) {
      return Status::InvalidArgument(
          "join mismatch: '" + fk_col.name + "' references '" +
          fk_col.references + "', not '" + schema.table(id.table).name + "'");
    }
    q.joins.push_back({fk.table, fk.column, id.table});
    adjacency[fk.table].insert(id.table);
    adjacency[id.table].insert(fk.table);
  }

  // Connectivity check over FROM tables.
  if (q.tables.size() > 1) {
    std::set<TableId> reached;
    std::vector<TableId> stack = {q.tables[0]};
    reached.insert(q.tables[0]);
    while (!stack.empty()) {
      TableId t = stack.back();
      stack.pop_back();
      for (TableId n : adjacency[t]) {
        if (reached.insert(n).second) stack.push_back(n);
      }
    }
    for (TableId t : q.tables) {
      if (!reached.count(t)) {
        return Status::NotSupported(
            "FROM tables are not connected by the join conditions "
            "(cross products are not supported); '" +
            schema.table(t).name + "' is unreachable");
      }
    }
  }

  // Anchor: the FROM table nearest the schema root; it must be an ancestor
  // (or self) of every other FROM table.
  q.anchor = q.tables[0];
  for (TableId t : q.tables) {
    if (schema.tree(t).depth < schema.tree(q.anchor).depth) q.anchor = t;
  }
  for (TableId t : q.tables) {
    if (!schema.IsAncestorOrSelf(t, q.anchor)) {
      return Status::NotSupported(
          "query tables must form a subtree: '" + schema.table(t).name +
          "' is not a descendant of '" + schema.table(q.anchor).name + "'");
    }
  }

  // Predicates.
  for (const auto& pred : stmt.predicates) {
    GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef ref,
                             ResolveColumn(pred.column, schema, scope));
    BoundPredicate bp;
    bp.table = ref.table;
    bp.on_id = ref.is_id;
    if (ref.is_id) {
      GHOSTDB_ASSIGN_OR_RETURN(bp.value,
                               Coerce(pred.value, DataType::kInt32));
      bp.hidden = false;  // ids are replicated on both sides
    } else {
      const auto& col = schema.table(ref.table).columns[ref.column];
      bp.column = ref.column;
      bp.hidden = col.hidden;
      GHOSTDB_ASSIGN_OR_RETURN(bp.value, Coerce(pred.value, col.type));
    }
    bp.op = pred.op;
    q.predicates.push_back(std::move(bp));
  }

  // SELECT list.
  if (stmt.star) {
    for (TableId t : q.tables) {
      BoundColumn id_col;
      id_col.table = t;
      id_col.is_id = true;
      id_col.display = schema.table(t).name + ".id";
      q.select.push_back(std::move(id_col));
      for (ColumnId c = 0; c < schema.table(t).columns.size(); ++c) {
        BoundColumn col;
        col.table = t;
        col.column = c;
        col.display =
            schema.table(t).name + "." + schema.table(t).columns[c].name;
        q.select.push_back(std::move(col));
      }
    }
  } else {
    bool any_agg = false, any_plain = false;
    for (const auto& item : stmt.items) {
      BoundColumn out;
      out.agg = item.agg;
      if (item.agg == exec::AggFunc::kCountStar) {
        // COUNT(*) is anchored to the anchor id (always present).
        out.table = q.anchor;
        out.is_id = true;
        out.display = "COUNT(*)";
      } else {
        GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef ref,
                                 ResolveColumn(item.ref, schema, scope));
        out.table = ref.table;
        out.is_id = ref.is_id;
        out.column = ref.column;
        std::string name = schema.table(ref.table).name + "." +
                           (ref.is_id ? "id"
                                      : schema.table(ref.table)
                                            .columns[ref.column]
                                            .name);
        if (item.agg == exec::AggFunc::kNone) {
          out.display = name;
        } else {
          out.display =
              std::string(exec::AggFuncName(item.agg)) + "(" + name + ")";
          // SUM/AVG need numeric inputs.
          if ((item.agg == exec::AggFunc::kSum ||
               item.agg == exec::AggFunc::kAvg) &&
              !ref.is_id &&
              schema.table(ref.table).columns[ref.column].type ==
                  catalog::DataType::kString) {
            return Status::InvalidArgument(out.display +
                                           ": SUM/AVG over a CHAR column");
          }
        }
      }
      (out.agg == exec::AggFunc::kNone ? any_plain : any_agg) = true;
      q.select.push_back(std::move(out));
    }
    if (any_agg && any_plain && stmt.group_by.empty()) {
      return Status::NotSupported(
          "mixing aggregates and plain columns requires GROUP BY");
    }
  }

  // GROUP BY: keys are resolved against the SELECT list, like ORDER BY —
  // groups are keyed by values the query already materializes, so grouping
  // adds no new data flow (and no new leak surface). Conversely every
  // plain select item must be a group key (its value is only well-defined
  // per group).
  if (!stmt.group_by.empty()) {
    if (stmt.star) {
      return Status::NotSupported("GROUP BY with SELECT *");
    }
    if (stmt.distinct) {
      return Status::NotSupported("SELECT DISTINCT with GROUP BY");
    }
    for (const auto& key : stmt.group_by) {
      GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef ref,
                               ResolveColumn(key, schema, scope));
      bool found = false;
      for (size_t i = 0; i < q.select.size(); ++i) {
        const BoundColumn& c = q.select[i];
        if (c.agg == exec::AggFunc::kNone &&
            SameColumn(c, ref.table, ref.is_id, ref.column)) {
          // Duplicate GROUP BY keys collapse: grouping by (k, k) is
          // grouping by k.
          if (std::find(q.group_by.begin(), q.group_by.end(), i) ==
              q.group_by.end()) {
            q.group_by.push_back(i);
          }
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotSupported(
            "GROUP BY column '" + key.ToString() +
            "' must appear in the SELECT list as a plain column");
      }
    }
    for (size_t i = 0; i < q.select.size(); ++i) {
      const BoundColumn& c = q.select[i];
      if (c.agg != exec::AggFunc::kNone) continue;
      bool is_key = false;
      for (size_t k : q.group_by) {
        is_key |= SameColumn(q.select[k], c.table, c.is_id, c.column);
      }
      if (!is_key) {
        return Status::InvalidArgument(
            "column '" + c.display +
            "' must appear in GROUP BY or be inside an aggregate");
      }
    }
  }

  // DISTINCT / ORDER BY / LIMIT.
  q.distinct = stmt.distinct;
  q.limit = stmt.limit;
  if (q.HasAggregates() && !q.grouped()) {
    if (q.distinct) {
      return Status::NotSupported("SELECT DISTINCT over aggregates");
    }
    if (!stmt.order_by.empty()) {
      return Status::NotSupported(
          "ORDER BY over an aggregate-only SELECT (the result is one row)");
    }
  }
  for (const auto& key : stmt.order_by) {
    // Sort keys are resolved against the SELECT list: rows are ordered by
    // values the query already materializes, so sorting adds no new data
    // flow (and no new leak surface). For grouped queries a key may be an
    // aggregate of the SELECT list (`ORDER BY SUM(v)`).
    if (key.agg != exec::AggFunc::kNone && !q.grouped()) {
      return Status::NotSupported(
          "ORDER BY over an aggregate requires GROUP BY");
    }
    BoundOrderKey bound;
    bound.descending = key.descending;
    bool found = false;
    if (key.agg == exec::AggFunc::kCountStar) {
      for (size_t i = 0; i < q.select.size(); ++i) {
        if (q.select[i].agg == exec::AggFunc::kCountStar) {
          bound.select_index = i;
          found = true;
          break;
        }
      }
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(ResolvedRef ref,
                               ResolveColumn(key.column, schema, scope));
      for (size_t i = 0; i < q.select.size(); ++i) {
        const BoundColumn& c = q.select[i];
        if (c.agg == key.agg &&
            SameColumn(c, ref.table, ref.is_id, ref.column)) {
          bound.select_index = i;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      std::string what;
      if (key.agg == exec::AggFunc::kNone) {
        what = "column '" + key.column.ToString() + "'";
      } else if (key.agg == exec::AggFunc::kCountStar) {
        what = "COUNT(*)";
      } else {
        what = std::string(exec::AggFuncName(key.agg)) + "(" +
               key.column.ToString() + ")";
      }
      return Status::NotSupported("ORDER BY " + what +
                                  " must appear in the SELECT list");
    }
    q.order_by.push_back(bound);
  }
  return q;
}

}  // namespace ghostdb::sql

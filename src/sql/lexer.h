// SQL tokenizer. Users issue completely standard SQL (paper section 7);
// the only extension is the HIDDEN keyword in CREATE TABLE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ghostdb::sql {

enum class TokenType : uint8_t {
  kIdentifier,   ///< table / column names (case-preserved)
  kKeyword,      ///< upper-cased reserved word
  kInteger,      ///< integer literal
  kFloat,        ///< floating literal
  kString,       ///< 'quoted' literal (quotes stripped, '' unescaped)
  kSymbol,       ///< punctuation / operator: ( ) , ; . * = <> != < <= > >=
  kEnd,          ///< end of input
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< normalized: keywords upper-case, symbols verbatim
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Splits `input` into tokens; fails on unterminated strings or stray
/// characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (upper-case) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace ghostdb::sql

// Abstract syntax for the GhostDB SQL dialect:
//   CREATE TABLE t (id INT, col TYPE [REFERENCES t2] [HIDDEN], ...) [HIDDEN];
//   INSERT INTO t VALUES (...);
//   [EXPLAIN] SELECT cols FROM tables WHERE joins AND predicates;
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"
#include "exec/aggregate.h"

namespace ghostdb::sql {

/// A possibly table-qualified column reference; `column` may be "id".
struct ColumnRef {
  std::string table;   ///< empty if unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// One SELECT-list item: a column, or an aggregate over a column / `*`.
struct SelectItem {
  ColumnRef ref;                              ///< unused for COUNT(*)
  exec::AggFunc agg = exec::AggFunc::kNone;
};

/// One selection conjunct: column op literal.
struct PredicateExpr {
  ColumnRef column;
  catalog::CompareOp op;
  catalog::Value value;
};

/// One equi-join conjunct: left = right (one side a foreign key, the other
/// the referenced table's id).
struct JoinExpr {
  ColumnRef left;
  ColumnRef right;
};

/// A FROM-list entry with an optional alias (`Measurements M`).
struct FromTable {
  std::string table;
  std::string alias;  ///< empty when none

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

/// One ORDER BY key: a select-list item and a direction. For grouped
/// queries the key may be an aggregate (`ORDER BY SUM(v) DESC`); it must
/// match an aggregate in the SELECT list.
struct OrderExpr {
  ColumnRef column;                           ///< unused for COUNT(*)
  exec::AggFunc agg = exec::AggFunc::kNone;
  bool descending = false;
};

struct SelectStmt {
  bool star = false;              ///< SELECT *
  bool distinct = false;          ///< SELECT DISTINCT ...
  std::vector<SelectItem> items;  ///< when !star
  std::vector<FromTable> from;
  std::vector<JoinExpr> joins;
  std::vector<PredicateExpr> predicates;
  std::vector<ColumnRef> group_by;  ///< GROUP BY keys (plain columns)
  std::vector<OrderExpr> order_by;
  std::optional<uint64_t> limit;  ///< LIMIT n
  bool explain = false;           ///< EXPLAIN SELECT ...
};

struct CreateTableStmt {
  catalog::TableDef def;
};

struct InsertStmt {
  std::string table;
  std::vector<catalog::Value> values;  ///< full row, id excluded (assigned)
};

using Statement = std::variant<CreateTableStmt, InsertStmt, SelectStmt>;

}  // namespace ghostdb::sql

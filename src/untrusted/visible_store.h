// The Untrusted side: a powerful, insecure PC holding the Visible partition
// of every table (visible columns, plus the replicated surrogate ids, which
// are implicit in row order).
//
// Untrusted computes Visible predicates and projections of Visible columns
// (paper section 3.3: "Because Untrusted is fast, we want Untrusted to do as
// much work as possible") and ships results to Secure over the channel.
// Untrusted CPU time is free in the simulation; only channel transfer is
// charged — matching the paper's cost model.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "common/result.h"
#include "common/status.h"
#include "core/annotations.h"
#include "exec/thread_pool.h"
#include "sql/binder.h"

namespace ghostdb::untrusted {

/// Packed rows shipped for projections: `rows` rows of
/// [id(4) | projected visible column values...].
struct ProjectionPayload {
  std::vector<uint8_t> bytes;
  uint32_t row_width = 4;
  uint64_t rows = 0;
};

/// \brief In-memory store of the Visible partitions.
class VisibleStore {
 public:
  explicit VisibleStore(const catalog::Schema* schema);

  /// Installs the visible partition of `table`: `count` rows of packed
  /// visible columns (declaration order), row i belonging to id i.
  Status LoadTable(catalog::TableId table, std::vector<uint8_t> packed,
                   uint64_t count);

  /// Installs the local→global id map of a sharded table (row i of this
  /// device's partition is global row ids[i]). Id predicates evaluate
  /// against the *global* id so `id < 100` selects the same logical rows
  /// on every shard; an empty map (the default, and every unsharded
  /// table) keeps the identity local == global. Payload id headers stay
  /// local — Secure owns the translation back to global on its side.
  Status SetGlobalIds(catalog::TableId table,
                      std::vector<catalog::RowId> ids);

  uint64_t row_count(catalog::TableId table) const {
    return row_counts_[table];
  }

  /// Ids (ascending) of rows satisfying every predicate. All predicates
  /// must be on visible columns (or the id) of `table`. With `pool`, the
  /// scan shards across workers (contiguous row ranges, results
  /// concatenated in shard order — same ascending id list for every
  /// width); the inner loops run the SIMD kernels over the packed rows
  /// either way.
  Result<std::vector<catalog::RowId>> SelectIds(
      catalog::TableId table,
      const std::vector<sql::BoundPredicate>& predicates,
      exec::ThreadPool* pool = nullptr) const;

  /// Packed [id | columns...] rows (ascending id) for rows satisfying the
  /// predicates, carrying the requested visible columns. `pool` as in
  /// SelectIds: the match scan and the cell gather both shard; the payload
  /// bytes are identical for every width.
  Result<ProjectionPayload> Project(
      catalog::TableId table,
      const std::vector<sql::BoundPredicate>& predicates,
      const std::vector<catalog::ColumnId>& columns,
      exec::ThreadPool* pool = nullptr) const;

  /// Decodes one visible column of one row (used by tests and the oracle).
  Result<catalog::Value> GetValue(catalog::TableId table, catalog::RowId row,
                                  catalog::ColumnId column) const;

  /// Column statistics for the planner (visible side).
  Result<catalog::ColumnStats> BuildStats(catalog::TableId table,
                                          catalog::ColumnId column) const;

 private:
  bool RowMatches(catalog::TableId table, catalog::RowId row,
                  const std::vector<sql::BoundPredicate>& predicates) const;
  /// Appends the ids in [begin, end) matching every predicate to `out`
  /// (the SIMD inner loop of SelectIds/Project; one shard's work).
  /// GHOSTDB_HOST_COMPUTE: runs on pool workers — leakcheck's purity rule
  /// bars it (and everything it calls) from device/clock/RAM state.
  GHOSTDB_HOST_COMPUTE void ScanRange(catalog::TableId table,
                 const std::vector<sql::BoundPredicate>& predicates,
                 catalog::RowId begin, catalog::RowId end,
                 std::vector<catalog::RowId>* out) const;

  /// The id an on_id predicate sees for `row` (global under sharding).
  catalog::RowId GlobalId(catalog::TableId table, catalog::RowId row) const {
    return global_ids_[table].empty() ? row : global_ids_[table][row];
  }

  const catalog::Schema* schema_;
  std::vector<std::vector<uint8_t>> partitions_;  // per table, packed rows
  std::vector<uint64_t> row_counts_;
  // Per table: local→global id map (empty = identity; see SetGlobalIds).
  std::vector<std::vector<catalog::RowId>> global_ids_;
  std::vector<uint32_t> row_widths_;
  // Per table: byte offset of each visible column within a packed row
  // (indexed by ColumnId; hidden columns map to UINT32_MAX).
  std::vector<std::vector<uint32_t>> column_offsets_;
};

}  // namespace ghostdb::untrusted

#include "untrusted/engine.h"

#include "common/coding.h"

namespace ghostdb::untrusted {

using device::Direction;

void UntrustedEngine::ReceiveQuery(const std::string& sql) {
  channel_->Transfer(Direction::kToUntrusted, "query",
                     reinterpret_cast<const uint8_t*>(sql.data()),
                     sql.size());
}

Result<VisPrefetch> UntrustedEngine::PrefetchVisible(
    const sql::BoundQuery& query) const {
  VisPrefetch prefetch;
  for (catalog::TableId t : query.tables) {
    // Vis id lists: requested by VisSelectOp for every table with visible
    // predicates, regardless of strategy.
    if (query.HasVisiblePredicateOn(t)) {
      GHOSTDB_ASSIGN_OR_RETURN(
          std::vector<catalog::RowId> ids,
          store_.SelectIds(t, query.VisiblePredicatesOn(t), pool_));
      prefetch.ids.emplace(t, std::move(ids));
    }
    // Projection payloads: requested by the projection operators for every
    // table whose visible columns appear in the SELECT list. (Payloads
    // that depend on the chosen strategy — exactness recovery with an
    // empty column set — are left to the inline path, so speculation
    // never does work the query might not pay for.)
    std::vector<catalog::ColumnId> cols =
        query.ProjectedVisibleColumns(*schema_, t);
    if (!cols.empty()) {
      GHOSTDB_ASSIGN_OR_RETURN(
          ProjectionPayload payload,
          store_.Project(t, query.VisiblePredicatesOn(t), cols, pool_));
      prefetch.projections.emplace(
          t, std::make_pair(std::move(cols), std::move(payload)));
    }
  }
  return prefetch;
}

Result<std::vector<catalog::RowId>> UntrustedEngine::ServeVisibleIds(
    const sql::BoundQuery& query, catalog::TableId table,
    VisPrefetch* prefetch) {
  std::vector<catalog::RowId> ids;
  bool prefetched = false;
  if (prefetch != nullptr) {
    auto it = prefetch->ids.find(table);
    if (it != prefetch->ids.end()) {
      ids = std::move(it->second);
      prefetch->ids.erase(it);
      prefetched = true;
    }
  }
  if (!prefetched) {
    GHOSTDB_ASSIGN_OR_RETURN(
        ids,
        store_.SelectIds(table, query.VisiblePredicatesOn(table), pool_));
  }
  // Ship the sorted id list: 4 bytes per id. The message is identical
  // whether the answer was speculative or inline.
  std::vector<uint8_t> payload(ids.size() * 4);
  for (size_t i = 0; i < ids.size(); ++i) {
    EncodeFixed32(payload.data() + i * 4, ids[i]);
  }
  channel_->Transfer(Direction::kToSecure,
                     "vis-ids:" + schema_->table(table).name, payload.data(),
                     payload.size());
  return ids;
}

Result<ProjectionPayload> UntrustedEngine::ServeProjection(
    const sql::BoundQuery& query, catalog::TableId table,
    const std::vector<catalog::ColumnId>& columns, VisPrefetch* prefetch) {
  ProjectionPayload payload;
  bool prefetched = false;
  if (prefetch != nullptr) {
    auto it = prefetch->projections.find(table);
    if (it != prefetch->projections.end() && it->second.first == columns) {
      payload = std::move(it->second.second);
      prefetch->projections.erase(it);
      prefetched = true;
    }
  }
  if (!prefetched) {
    GHOSTDB_ASSIGN_OR_RETURN(
        payload,
        store_.Project(table, query.VisiblePredicatesOn(table), columns,
                       pool_));
  }
  channel_->Transfer(Direction::kToSecure,
                     "vis-vals:" + schema_->table(table).name,
                     payload.bytes.data(), payload.bytes.size());
  return payload;
}

Result<uint64_t> UntrustedEngine::ServeVisibleCount(
    const sql::BoundQuery& query, catalog::TableId table,
    const VisPrefetch* prefetch) {
  uint64_t count = 0;
  bool prefetched = false;
  if (prefetch != nullptr) {
    auto it = prefetch->ids.find(table);
    if (it != prefetch->ids.end()) {
      count = it->second.size();
      prefetched = true;
    }
  }
  if (!prefetched) {
    GHOSTDB_ASSIGN_OR_RETURN(
        std::vector<catalog::RowId> ids,
        store_.SelectIds(table, query.VisiblePredicatesOn(table), pool_));
    count = ids.size();
  }
  uint8_t payload[8];
  EncodeFixed64(payload, count);
  channel_->Transfer(Direction::kToSecure,
                     "vis-count:" + schema_->table(table).name, payload, 8);
  return count;
}

}  // namespace ghostdb::untrusted

#include "untrusted/engine.h"

#include "common/coding.h"

namespace ghostdb::untrusted {

using device::Direction;

void UntrustedEngine::ReceiveQuery(const std::string& sql) {
  channel_->Transfer(Direction::kToUntrusted, "query",
                     reinterpret_cast<const uint8_t*>(sql.data()),
                     sql.size());
}

Result<std::vector<catalog::RowId>> UntrustedEngine::ServeVisibleIds(
    const sql::BoundQuery& query, catalog::TableId table) {
  GHOSTDB_ASSIGN_OR_RETURN(
      std::vector<catalog::RowId> ids,
      store_.SelectIds(table, query.VisiblePredicatesOn(table)));
  // Ship the sorted id list: 4 bytes per id.
  std::vector<uint8_t> payload(ids.size() * 4);
  for (size_t i = 0; i < ids.size(); ++i) {
    EncodeFixed32(payload.data() + i * 4, ids[i]);
  }
  channel_->Transfer(Direction::kToSecure,
                     "vis-ids:" + schema_->table(table).name, payload.data(),
                     payload.size());
  return ids;
}

Result<ProjectionPayload> UntrustedEngine::ServeProjection(
    const sql::BoundQuery& query, catalog::TableId table,
    const std::vector<catalog::ColumnId>& columns) {
  GHOSTDB_ASSIGN_OR_RETURN(
      ProjectionPayload payload,
      store_.Project(table, query.VisiblePredicatesOn(table), columns));
  channel_->Transfer(Direction::kToSecure,
                     "vis-vals:" + schema_->table(table).name,
                     payload.bytes.data(), payload.bytes.size());
  return payload;
}

Result<uint64_t> UntrustedEngine::ServeVisibleCount(
    const sql::BoundQuery& query, catalog::TableId table) {
  GHOSTDB_ASSIGN_OR_RETURN(
      std::vector<catalog::RowId> ids,
      store_.SelectIds(table, query.VisiblePredicatesOn(table)));
  uint8_t payload[8];
  EncodeFixed64(payload, ids.size());
  channel_->Transfer(Direction::kToSecure,
                     "vis-count:" + schema_->table(table).name, payload, 8);
  return static_cast<uint64_t>(ids.size());
}

}  // namespace ghostdb::untrusted

// The Untrusted query agent: receives the (visible) query text, evaluates
// Visible predicates/projections locally, and ships results over the
// channel. Every byte it sends or receives goes through the audited channel
// so the leak-freedom property is checkable.
//
// Multi-session serving adds speculative evaluation: the PC is a separate
// processor from the key, so while the channel arbiter has the key serving
// one session, the PC can already evaluate the *next* sessions' visible
// requests — every request is a pure function of the visible statement
// text, announced before execution. A VisPrefetch carries those
// precomputed answers into the Serve*() calls; the channel interaction
// (message order, labels, sizes, digests, simulated cost) is byte-for-byte
// identical whether or not an answer was prefetched, so the transcript
// contract is untouched.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "device/channel.h"
#include "sql/binder.h"
#include "untrusted/visible_store.h"

namespace ghostdb::untrusted {

/// \brief Precomputed visible answers for one query (PC-side speculation).
/// Entries are moved out as the Serve calls consume them.
struct VisPrefetch {
  /// Per table with visible predicates: the sorted Vis id list.
  std::map<catalog::TableId, std::vector<catalog::RowId>> ids;
  /// Per table the query certainly projects visible columns from: the
  /// requested column set and its payload.
  std::map<catalog::TableId,
           std::pair<std::vector<catalog::ColumnId>, ProjectionPayload>>
      projections;
};

/// \brief Untrusted's query-serving facade.
class UntrustedEngine {
 public:
  UntrustedEngine(const catalog::Schema* schema, device::Channel* channel)
      : schema_(schema), channel_(channel), store_(schema) {}

  VisibleStore& store() { return store_; }
  const VisibleStore& store() const { return store_; }

  /// Worker pool for sharding visible scans/projections (null = inline).
  /// The PC is "fast and free" in the paper's cost model; the pool makes
  /// it so in wall-clock too. Workers touch only the visible partitions —
  /// never the channel.
  void set_pool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Secure announces the query (the only information that ever leaves the
  /// key). Charged as a Secure -> Untrusted transfer.
  void ReceiveQuery(const std::string& sql);

  /// Speculatively evaluates every visible request `query` is certain to
  /// make (Vis id lists for tables with visible predicates; projection
  /// payloads for tables whose visible columns are projected) — exactly
  /// the work the Serve calls would do, no more, so running it early never
  /// costs anything the query would not pay anyway. Pure read of the
  /// visible store: safe to run on a session's thread while another
  /// session holds the channel. Touches no channel state.
  Result<VisPrefetch> PrefetchVisible(const sql::BoundQuery& query) const;

  /// Vis(Q, T, {id}): sorted ids of rows of `table` satisfying the query's
  /// visible predicates on that table. Charged as Untrusted -> Secure.
  /// `prefetch` (optional): consume the precomputed answer instead of
  /// scanning now.
  Result<std::vector<catalog::RowId>> ServeVisibleIds(
      const sql::BoundQuery& query, catalog::TableId table,
      VisPrefetch* prefetch = nullptr);

  /// Vis(Q, T, {<id, vlist>}): sorted [id | visible values] rows for
  /// projection. Charged as Untrusted -> Secure.
  Result<ProjectionPayload> ServeProjection(
      const sql::BoundQuery& query, catalog::TableId table,
      const std::vector<catalog::ColumnId>& columns,
      VisPrefetch* prefetch = nullptr);

  /// Count of rows satisfying the visible predicates (a tiny message used
  /// by the planner; derived from visible data + the query only). Reads
  /// the prefetched id list's size when available (without consuming it —
  /// execution still needs the ids).
  Result<uint64_t> ServeVisibleCount(const sql::BoundQuery& query,
                                     catalog::TableId table,
                                     const VisPrefetch* prefetch = nullptr);

 private:
  const catalog::Schema* schema_;
  device::Channel* channel_;
  VisibleStore store_;
  exec::ThreadPool* pool_ = nullptr;
};

}  // namespace ghostdb::untrusted

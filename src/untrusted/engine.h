// The Untrusted query agent: receives the (visible) query text, evaluates
// Visible predicates/projections locally, and ships results over the
// channel. Every byte it sends or receives goes through the audited channel
// so the leak-freedom property is checkable.
#pragma once

#include <string>
#include <vector>

#include "device/channel.h"
#include "sql/binder.h"
#include "untrusted/visible_store.h"

namespace ghostdb::untrusted {

/// \brief Untrusted's query-serving facade.
class UntrustedEngine {
 public:
  UntrustedEngine(const catalog::Schema* schema, device::Channel* channel)
      : schema_(schema), channel_(channel), store_(schema) {}

  VisibleStore& store() { return store_; }
  const VisibleStore& store() const { return store_; }

  /// Secure announces the query (the only information that ever leaves the
  /// key). Charged as a Secure -> Untrusted transfer.
  void ReceiveQuery(const std::string& sql);

  /// Vis(Q, T, {id}): sorted ids of rows of `table` satisfying the query's
  /// visible predicates on that table. Charged as Untrusted -> Secure.
  Result<std::vector<catalog::RowId>> ServeVisibleIds(
      const sql::BoundQuery& query, catalog::TableId table);

  /// Vis(Q, T, {<id, vlist>}): sorted [id | visible values] rows for
  /// projection. Charged as Untrusted -> Secure.
  Result<ProjectionPayload> ServeProjection(
      const sql::BoundQuery& query, catalog::TableId table,
      const std::vector<catalog::ColumnId>& columns);

  /// Count of rows satisfying the visible predicates (a tiny message used
  /// by the planner; derived from visible data + the query only).
  Result<uint64_t> ServeVisibleCount(const sql::BoundQuery& query,
                                     catalog::TableId table);

 private:
  const catalog::Schema* schema_;
  device::Channel* channel_;
  VisibleStore store_;
};

}  // namespace ghostdb::untrusted

#include "untrusted/visible_store.h"

#include <cstring>
#include <limits>

#include "exec/simd.h"

namespace ghostdb::untrusted {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

namespace {
/// Minimum rows per morsel shard: below this the dispatch overhead beats
/// the scan (Untrusted CPU is free in simulated time; this only shapes
/// wall-clock).
constexpr uint64_t kScanGrain = 4096;
}  // namespace

VisibleStore::VisibleStore(const catalog::Schema* schema) : schema_(schema) {
  size_t n = schema->table_count();
  partitions_.resize(n);
  row_counts_.assign(n, 0);
  row_widths_.assign(n, 0);
  global_ids_.resize(n);
  column_offsets_.resize(n);
  for (TableId t = 0; t < n; ++t) {
    const auto& cols = schema->table(t).columns;
    column_offsets_[t].assign(cols.size(),
                              std::numeric_limits<uint32_t>::max());
    uint32_t offset = 0;
    for (ColumnId c = 0; c < cols.size(); ++c) {
      if (!cols[c].hidden) {
        column_offsets_[t][c] = offset;
        offset += cols[c].width;
      }
    }
    row_widths_[t] = offset;
  }
}

Status VisibleStore::LoadTable(TableId table, std::vector<uint8_t> packed,
                               uint64_t count) {
  if (row_widths_[table] == 0 && !packed.empty()) {
    return Status::InvalidArgument("table has no visible columns");
  }
  if (packed.size() != count * row_widths_[table]) {
    return Status::InvalidArgument("packed visible partition size mismatch");
  }
  partitions_[table] = std::move(packed);
  row_counts_[table] = count;
  return Status::OK();
}

Status VisibleStore::SetGlobalIds(TableId table, std::vector<RowId> ids) {
  if (!ids.empty() && ids.size() != row_counts_[table]) {
    return Status::InvalidArgument(
        "global id map does not cover the loaded partition");
  }
  global_ids_[table] = std::move(ids);
  return Status::OK();
}

bool VisibleStore::RowMatches(
    TableId table, RowId row,
    const std::vector<sql::BoundPredicate>& predicates) const {
  const auto& cols = schema_->table(table).columns;
  const uint8_t* base =
      partitions_[table].data() + static_cast<uint64_t>(row) *
                                      row_widths_[table];
  for (const auto& p : predicates) {
    if (p.on_id) {
      RowId gid = GlobalId(table, row);
      if (!catalog::EvalCompare(Value::Int32(static_cast<int32_t>(gid)), p.op,
                                p.value)) {
        return false;
      }
      continue;
    }
    uint32_t off = column_offsets_[table][p.column];
    Value v = Value::Decode(base + off, cols[p.column].type,
                            cols[p.column].width);
    if (!catalog::EvalCompare(v, p.op, p.value)) return false;
  }
  return true;
}

void VisibleStore::ScanRange(
    TableId table, const std::vector<sql::BoundPredicate>& predicates,
    RowId begin, RowId end, std::vector<RowId>* out) const {
  if (end <= begin) return;
  const auto& cols = schema_->table(table).columns;
  const uint8_t* part = partitions_[table].data();
  uint32_t stride = row_widths_[table];
  uint64_t n = end - begin;
  // Encoded-comparable predicates (literal of the column's type; string
  // literals that fit the width) run the SIMD kernels straight over the
  // packed encodings — same total order as decoding (CompareEncoded). The
  // rest (id predicates, cross-type literals, overlong strings) refine
  // through Value decoding.
  auto encoded_ok = [&](const sql::BoundPredicate& p) {
    if (p.on_id) return false;
    const auto& col = cols[p.column];
    return p.value.type() == col.type &&
           (col.type != catalog::DataType::kString ||
            p.value.AsString().size() <= col.width);
  };
  size_t base_out = out->size();
  if (predicates.size() == 1 && encoded_ok(predicates[0])) {
    const auto& p = predicates[0];
    const auto& col = cols[p.column];
    std::vector<uint8_t> lit(col.width);
    p.value.Encode(lit.data(), col.width);
    out->resize(base_out + n);
    size_t count = exec::simd::FilterEncoded(
        col.type, col.width,
        part + static_cast<uint64_t>(begin) * stride +
            column_offsets_[table][p.column],
        stride, n, lit.data(), p.op, begin, out->data() + base_out);
    out->resize(base_out + count);
    return;
  }
  // Conjunction (or no predicates): a 0/1 flag per row, refined predicate
  // by predicate, then compacted to ids.
  std::vector<uint8_t> flags(n, 1);
  for (const auto& p : predicates) {
    if (encoded_ok(p)) {
      const auto& col = cols[p.column];
      std::vector<uint8_t> lit(col.width);
      p.value.Encode(lit.data(), col.width);
      exec::simd::RefineEncoded(col.type, col.width,
                                part + static_cast<uint64_t>(begin) * stride +
                                    column_offsets_[table][p.column],
                                stride, n, lit.data(), p.op, flags.data());
      continue;
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (!flags[i]) continue;
      RowId row = begin + static_cast<RowId>(i);
      bool keep;
      if (p.on_id) {
        RowId gid = GlobalId(table, row);
        keep = catalog::EvalCompare(Value::Int32(static_cast<int32_t>(gid)),
                                    p.op, p.value);
      } else {
        const auto& col = cols[p.column];
        Value v = Value::Decode(part + static_cast<uint64_t>(row) * stride +
                                    column_offsets_[table][p.column],
                                col.type, col.width);
        keep = catalog::EvalCompare(v, p.op, p.value);
      }
      flags[i] = keep ? 1 : 0;
    }
  }
  out->resize(base_out + n);
  size_t count = exec::simd::CompactFlags(flags.data(), n, begin,
                                          out->data() + base_out);
  out->resize(base_out + count);
}

Result<std::vector<RowId>> VisibleStore::SelectIds(
    TableId table, const std::vector<sql::BoundPredicate>& predicates,
    exec::ThreadPool* pool) const {
  for (const auto& p : predicates) {
    if (!p.on_id && (p.hidden || p.table != table)) {
      return Status::SecurityViolation(
          "untrusted asked to evaluate a hidden predicate");
    }
  }
  uint64_t n = row_counts_[table];
  if (pool != nullptr && pool->ShardCount(n, kScanGrain) > 1) {
    // Contiguous shards concatenated in shard order: the id list (and so
    // every downstream channel payload) is identical for every width.
    uint32_t shards = pool->ShardCount(n, kScanGrain);
    std::vector<std::vector<RowId>> parts(shards);
    pool->ParallelShards(n, kScanGrain,
                         [&](uint32_t s, uint64_t begin, uint64_t end) {
                           ScanRange(table, predicates,
                                     static_cast<RowId>(begin),
                                     static_cast<RowId>(end), &parts[s]);
                         });
    std::vector<RowId> out;
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }
  std::vector<RowId> out;
  ScanRange(table, predicates, 0, static_cast<RowId>(n), &out);
  return out;
}

Result<ProjectionPayload> VisibleStore::Project(
    TableId table, const std::vector<sql::BoundPredicate>& predicates,
    const std::vector<ColumnId>& columns, exec::ThreadPool* pool) const {
  const auto& cols = schema_->table(table).columns;
  ProjectionPayload payload;
  payload.row_width = 4;
  for (ColumnId c : columns) {
    if (cols[c].hidden) {
      return Status::SecurityViolation(
          "untrusted asked to project a hidden column");
    }
    payload.row_width += cols[c].width;
  }
  GHOSTDB_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                           SelectIds(table, predicates, pool));
  payload.rows = ids.size();
  payload.bytes.resize(ids.size() * payload.row_width);
  const uint8_t* part = partitions_[table].data();
  uint32_t stride = row_widths_[table];
  // The vector gather computes id*stride in 32-bit lanes; partitions past
  // 2 GiB (never in this simulation, but stay correct) take the scalar
  // moves.
  bool gather_safe = partitions_[table].size() < (1ull << 31);
  auto fill = [&](uint32_t /*shard*/, uint64_t begin, uint64_t end) {
    uint8_t* dst = payload.bytes.data() + begin * payload.row_width;
    for (uint64_t j = begin; j < end; ++j, dst += payload.row_width) {
      Value::Int32(static_cast<int32_t>(ids[j])).Encode(dst, 4);
    }
    uint32_t dst_off = 4;
    for (ColumnId c : columns) {
      uint8_t* col_dst =
          payload.bytes.data() + begin * payload.row_width + dst_off;
      if (gather_safe) {
        exec::simd::GatherCells(part, stride, column_offsets_[table][c],
                                cols[c].width, ids.data() + begin,
                                end - begin, col_dst, payload.row_width);
      } else {
        exec::simd::scalar::GatherCells(part, stride,
                                        column_offsets_[table][c],
                                        cols[c].width, ids.data() + begin,
                                        end - begin, col_dst,
                                        payload.row_width);
      }
      dst_off += cols[c].width;
    }
  };
  if (pool != nullptr && pool->ShardCount(ids.size(), kScanGrain) > 1) {
    // Shards write disjoint byte ranges of the payload; bytes are
    // identical for every width.
    pool->ParallelShards(ids.size(), kScanGrain, fill);
  } else {
    fill(0, 0, ids.size());
  }
  return payload;
}

Result<Value> VisibleStore::GetValue(TableId table, RowId row,
                                     ColumnId column) const {
  const auto& col = schema_->table(table).columns[column];
  if (col.hidden) {
    return Status::SecurityViolation("column is hidden");
  }
  if (row >= row_counts_[table]) {
    return Status::OutOfRange("row out of range");
  }
  const uint8_t* base = partitions_[table].data() +
                        static_cast<uint64_t>(row) * row_widths_[table];
  return Value::Decode(base + column_offsets_[table][column], col.type,
                       col.width);
}

Result<catalog::ColumnStats> VisibleStore::BuildStats(TableId table,
                                                      ColumnId column) const {
  const auto& col = schema_->table(table).columns[column];
  if (col.hidden) {
    return Status::SecurityViolation("column is hidden");
  }
  std::vector<Value> values;
  values.reserve(row_counts_[table]);
  for (RowId row = 0; row < row_counts_[table]; ++row) {
    const uint8_t* base = partitions_[table].data() +
                          static_cast<uint64_t>(row) * row_widths_[table];
    values.push_back(Value::Decode(base + column_offsets_[table][column],
                                   col.type, col.width));
  }
  return catalog::ColumnStats::Build(std::move(values));
}

}  // namespace ghostdb::untrusted

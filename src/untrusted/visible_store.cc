#include "untrusted/visible_store.h"

#include <cstring>
#include <limits>

namespace ghostdb::untrusted {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;

VisibleStore::VisibleStore(const catalog::Schema* schema) : schema_(schema) {
  size_t n = schema->table_count();
  partitions_.resize(n);
  row_counts_.assign(n, 0);
  row_widths_.assign(n, 0);
  column_offsets_.resize(n);
  for (TableId t = 0; t < n; ++t) {
    const auto& cols = schema->table(t).columns;
    column_offsets_[t].assign(cols.size(),
                              std::numeric_limits<uint32_t>::max());
    uint32_t offset = 0;
    for (ColumnId c = 0; c < cols.size(); ++c) {
      if (!cols[c].hidden) {
        column_offsets_[t][c] = offset;
        offset += cols[c].width;
      }
    }
    row_widths_[t] = offset;
  }
}

Status VisibleStore::LoadTable(TableId table, std::vector<uint8_t> packed,
                               uint64_t count) {
  if (row_widths_[table] == 0 && !packed.empty()) {
    return Status::InvalidArgument("table has no visible columns");
  }
  if (packed.size() != count * row_widths_[table]) {
    return Status::InvalidArgument("packed visible partition size mismatch");
  }
  partitions_[table] = std::move(packed);
  row_counts_[table] = count;
  return Status::OK();
}

bool VisibleStore::RowMatches(
    TableId table, RowId row,
    const std::vector<sql::BoundPredicate>& predicates) const {
  const auto& cols = schema_->table(table).columns;
  const uint8_t* base =
      partitions_[table].data() + static_cast<uint64_t>(row) *
                                      row_widths_[table];
  for (const auto& p : predicates) {
    if (p.on_id) {
      if (!catalog::EvalCompare(Value::Int32(static_cast<int32_t>(row)), p.op,
                                p.value)) {
        return false;
      }
      continue;
    }
    uint32_t off = column_offsets_[table][p.column];
    Value v = Value::Decode(base + off, cols[p.column].type,
                            cols[p.column].width);
    if (!catalog::EvalCompare(v, p.op, p.value)) return false;
  }
  return true;
}

Result<std::vector<RowId>> VisibleStore::SelectIds(
    TableId table,
    const std::vector<sql::BoundPredicate>& predicates) const {
  for (const auto& p : predicates) {
    if (!p.on_id && (p.hidden || p.table != table)) {
      return Status::SecurityViolation(
          "untrusted asked to evaluate a hidden predicate");
    }
  }
  std::vector<RowId> out;
  for (RowId row = 0; row < row_counts_[table]; ++row) {
    if (RowMatches(table, row, predicates)) out.push_back(row);
  }
  return out;
}

Result<ProjectionPayload> VisibleStore::Project(
    TableId table, const std::vector<sql::BoundPredicate>& predicates,
    const std::vector<ColumnId>& columns) const {
  const auto& cols = schema_->table(table).columns;
  ProjectionPayload payload;
  payload.row_width = 4;
  for (ColumnId c : columns) {
    if (cols[c].hidden) {
      return Status::SecurityViolation(
          "untrusted asked to project a hidden column");
    }
    payload.row_width += cols[c].width;
  }
  for (RowId row = 0; row < row_counts_[table]; ++row) {
    if (!RowMatches(table, row, predicates)) continue;
    size_t base = payload.bytes.size();
    payload.bytes.resize(base + payload.row_width);
    uint8_t* dst = payload.bytes.data() + base;
    Value::Int32(static_cast<int32_t>(row)).Encode(dst, 4);
    dst += 4;
    const uint8_t* src = partitions_[table].data() +
                         static_cast<uint64_t>(row) * row_widths_[table];
    for (ColumnId c : columns) {
      std::memcpy(dst, src + column_offsets_[table][c], cols[c].width);
      dst += cols[c].width;
    }
    payload.rows += 1;
  }
  return payload;
}

Result<Value> VisibleStore::GetValue(TableId table, RowId row,
                                     ColumnId column) const {
  const auto& col = schema_->table(table).columns[column];
  if (col.hidden) {
    return Status::SecurityViolation("column is hidden");
  }
  if (row >= row_counts_[table]) {
    return Status::OutOfRange("row out of range");
  }
  const uint8_t* base = partitions_[table].data() +
                        static_cast<uint64_t>(row) * row_widths_[table];
  return Value::Decode(base + column_offsets_[table][column], col.type,
                       col.width);
}

Result<catalog::ColumnStats> VisibleStore::BuildStats(TableId table,
                                                      ColumnId column) const {
  const auto& col = schema_->table(table).columns[column];
  if (col.hidden) {
    return Status::SecurityViolation("column is hidden");
  }
  std::vector<Value> values;
  values.reserve(row_counts_[table]);
  for (RowId row = 0; row < row_counts_[table]; ++row) {
    const uint8_t* base = partitions_[table].data() +
                          static_cast<uint64_t>(row) * row_widths_[table];
    values.push_back(Value::Decode(base + column_offsets_[table][column],
                                   col.type, col.width));
  }
  return catalog::ColumnStats::Build(std::move(values));
}

}  // namespace ghostdb::untrusted

#include "plan/strategy.h"

namespace ghostdb::plan {

std::string_view VisStrategyName(VisStrategy s) {
  switch (s) {
    case VisStrategy::kPreFilter:
      return "Pre-Filter";
    case VisStrategy::kCrossPreFilter:
      return "Cross-Pre-Filter";
    case VisStrategy::kPostFilter:
      return "Post-Filter";
    case VisStrategy::kCrossPostFilter:
      return "Cross-Post-Filter";
    case VisStrategy::kPostSelect:
      return "Post-Select";
    case VisStrategy::kCrossPostSelect:
      return "Cross-Post-Select";
    case VisStrategy::kNoFilter:
      return "No-Filter";
  }
  return "?";
}

std::string_view ProjectAlgoName(ProjectAlgo a) {
  switch (a) {
    case ProjectAlgo::kProject:
      return "Project";
    case ProjectAlgo::kProjectNoBF:
      return "Project-NoBF";
    case ProjectAlgo::kBruteForce:
      return "Brute-Force";
  }
  return "?";
}

std::string PlanChoice::ToString(const catalog::Schema& schema) const {
  std::string out;
  for (const auto& [table, strategy] : vis) {
    out += schema.table(table).name + ": " +
           std::string(VisStrategyName(strategy)) + "; ";
  }
  out += "projection: " + std::string(ProjectAlgoName(project));
  return out;
}

}  // namespace ghostdb::plan

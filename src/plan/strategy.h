// Query-execution strategies (paper section 3.3) and the plan choice the
// planner hands to the executor.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "catalog/schema.h"

namespace ghostdb::plan {

/// How a table's Visible selection is combined with Hidden computation.
enum class VisStrategy {
  kPreFilter,       ///< climb each Vis id through the id index before joins
  kCrossPreFilter,  ///< intersect Vis with Hidden selections first, then climb
  kPostFilter,      ///< Bloom filter over Vis ids, probe after SJoin
  kCrossPostFilter, ///< Bloom over (Vis ∩ Hidden-at-Ti), probe after SJoin
  kPostSelect,      ///< exact in-RAM selection over the SJoin result
  kCrossPostSelect, ///< Post-Select over (Vis ∩ Hidden-at-Ti)
  kNoFilter,        ///< postpone the Visible selection to projection time
};

std::string_view VisStrategyName(VisStrategy s);

/// Projection algorithm (paper section 4 / Figs 12-13).
enum class ProjectAlgo {
  kProject,      ///< section 4 algorithm (BF-filtered MJoin)
  kProjectNoBF,  ///< same without the Bloom filtering of Vis values
  kBruteForce,   ///< QEP_SJ rows in RAM, random accesses to vlist/hlist
};

std::string_view ProjectAlgoName(ProjectAlgo a);

/// A fully decided plan: one strategy per table carrying Visible
/// predicates, plus the projection algorithm.
struct PlanChoice {
  std::map<catalog::TableId, VisStrategy> vis;
  ProjectAlgo project = ProjectAlgo::kProject;

  std::string ToString(const catalog::Schema& schema) const;
};

}  // namespace ghostdb::plan

#include "plan/planner.h"

#include <algorithm>
#include <sstream>

namespace ghostdb::plan {

using catalog::TableId;

double Planner::HiddenSubtreeSelectivity(const sql::BoundQuery& query,
                                         TableId subtree_root) const {
  double sel = 1.0;
  for (const auto& p : query.predicates) {
    if (!p.hidden || p.on_id) continue;
    if (!schema_->IsAncestorOrSelf(p.table, subtree_root)) continue;
    const auto& stats = store_->tables[p.table].hidden_stats;
    auto it = stats.find(p.column);
    if (it == stats.end()) {
      sel *= 0.1;  // no statistics: assume a selective predicate
    } else {
      sel *= it->second.EstimateSelectivity(p.op, p.value);
    }
  }
  return sel;
}

Result<PlanChoice> Planner::Choose(
    const sql::BoundQuery& query,
    const std::map<TableId, uint64_t>& vis_counts,
    const exec::ExecConfig& exec_config) const {
  PlanChoice plan;
  plan.project = ProjectAlgo::kProject;

  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    uint64_t table_rows = store_->tables[t].row_count;
    auto cnt = vis_counts.find(t);
    uint64_t vis_count =
        cnt != vis_counts.end() ? cnt->second : table_rows;
    double sv = table_rows == 0
                    ? 0.0
                    : static_cast<double>(vis_count) /
                          static_cast<double>(table_rows);
    double subtree_sel = HiddenSubtreeSelectivity(query, t);
    bool cross = subtree_sel < 1.0;  // hidden predicates exist in subtree

    if (config_.mode == PlannerConfig::Mode::kRule) {
      if (sv <= config_.pre_filter_threshold) {
        plan.vis[t] = cross ? VisStrategy::kCrossPreFilter
                            : VisStrategy::kPreFilter;
      } else {
        // Feasibility of a Bloom filter within the device RAM.
        uint64_t n = static_cast<uint64_t>(
            static_cast<double>(vis_count) * (cross ? subtree_sel : 1.0));
        double ram_bits = static_cast<double>(
                              exec_config.bloom_max_buffers) *
                          2048.0 * 8.0;
        bool feasible =
            n == 0 || ram_bits / static_cast<double>(n) >=
                          exec_config.bloom_min_bpe;
        if (feasible) {
          plan.vis[t] = cross ? VisStrategy::kCrossPostFilter
                              : VisStrategy::kPostFilter;
        } else if (cross) {
          plan.vis[t] = VisStrategy::kCrossPreFilter;
        } else {
          plan.vis[t] = VisStrategy::kNoFilter;
        }
      }
      continue;
    }

    // Cost mode.
    CostParams params;
    SjCostInputs in;
    in.vis_count = vis_count;
    in.table_rows = table_rows;
    in.anchor_rows = store_->tables[query.anchor].row_count;
    in.hidden_subtree_sel = subtree_sel;
    in.hidden_other_sel =
        HiddenSubtreeSelectivity(query, query.anchor) /
        std::max(subtree_sel, 1e-12);
    in.cross_possible = cross;
    const auto& image = store_->tables[t];
    in.id_index_leaves =
        image.id_index.has_value()
            ? image.id_index->leaf_run.page_count()
            : 1;
    const auto& anchor_image = store_->tables[query.anchor];
    in.skt_row_width =
        anchor_image.skt.has_value() ? anchor_image.skt->row_width : 8;
    StrategyCosts costs = EstimateStrategyCosts(params, in);

    VisStrategy best = VisStrategy::kPreFilter;
    SimNanos best_cost = costs.pre;
    if (cross && costs.cross_pre < best_cost) {
      best = VisStrategy::kCrossPreFilter;
      best_cost = costs.cross_pre;
    }
    if (costs.post_feasible && costs.post < best_cost) {
      best = VisStrategy::kPostFilter;
      best_cost = costs.post;
    }
    if (cross && costs.cross_post_feasible && costs.cross_post < best_cost) {
      best = VisStrategy::kCrossPostFilter;
      best_cost = costs.cross_post;
    }
    plan.vis[t] = best;
  }
  return plan;
}

Result<PhysicalPlan> Planner::PlanQuery(
    const sql::BoundQuery& query,
    const std::map<TableId, uint64_t>& vis_counts,
    const exec::ExecConfig& exec_config) const {
  GHOSTDB_ASSIGN_OR_RETURN(PlanChoice choice,
                           Choose(query, vis_counts, exec_config));
  PhysicalPlan plan = BuildPhysicalPlan(
      query, std::move(choice), exec_config.topk_fusion,
      exec_config.volume_padding != exec::VolumePadding::kOff);
  // Batch sizing: a byte budget over the output row width. Widths are
  // schema metadata (visible), so the sized plan (and the layout it was
  // derived from) stays cacheable.
  plan.value_layout = exec::BatchLayout::Projection(*schema_, query);
  plan.batch_rows = exec::SizeBatchRows(plan.value_layout, exec_config);
  // Parallelism degree: visible config only, so it caches with the plan.
  plan.parallelism = exec_config.worker_threads;
  // Fleet fan-out: only root-anchored queries read the partitioned table;
  // every other anchor resolves entirely within one shard's replica.
  plan.shard_fanout =
      config_.shard_count > 1 && query.anchor == schema_->root();
  return plan;
}

std::string Planner::Explain(
    const sql::BoundQuery& query, const PhysicalPlan& plan,
    const std::map<TableId, uint64_t>& vis_counts) const {
  std::string out = Explain(query, plan.choice, vis_counts);
  if (plan.batch_rows != 0) {
    out += "  batch: " + std::to_string(plan.batch_rows) + " rows\n";
  }
  out += "  pipeline:\n";
  std::istringstream tree(plan.ToString(*schema_));
  for (std::string line; std::getline(tree, line);) {
    out += "    " + line + "\n";
  }
  return out;
}

std::string Planner::Explain(
    const sql::BoundQuery& query, const PlanChoice& plan,
    const std::map<TableId, uint64_t>& vis_counts) const {
  std::ostringstream out;
  out << "GhostDB plan (anchor " << schema_->table(query.anchor).name
      << ")\n";
  for (const auto& p : query.predicates) {
    out << "  " << (p.hidden ? "hidden " : "visible") << " predicate: "
        << p.ToString(*schema_) << "\n";
  }
  for (const auto& [t, strategy] : plan.vis) {
    out << "  " << schema_->table(t).name << " visible selection -> "
        << VisStrategyName(strategy);
    auto it = vis_counts.find(t);
    if (it != vis_counts.end() && store_->tables[t].row_count > 0) {
      out << "  (sV=" <<
          static_cast<double>(it->second) /
              static_cast<double>(store_->tables[t].row_count)
          << ")";
    }
    out << "\n";
  }
  for (const auto& p : query.predicates) {
    if (p.hidden && !p.on_id) {
      out << "  hidden selection " << p.ToString(*schema_)
          << " -> climbing index to "
          << schema_->table(query.anchor).name << "\n";
    }
  }
  out << "  projection -> " << ProjectAlgoName(plan.project) << "\n";
  return out.str();
}

}  // namespace ghostdb::plan

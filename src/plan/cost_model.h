// Analytic cost model for the strategy optimizer (the paper lists a
// cost-based optimizer as future work; this is our implementation of it).
//
// Costs are expressed in simulated nanoseconds using the Table 1 device
// parameters, mirroring the operator implementations:
//  * CI probes: one leaf page per probe batch locality + postings transfer;
//  * Merge: streaming when sublists fit in buffers, otherwise external
//    reduction passes (read + write per pass);
//  * SJoin: fraction of SKT pages touched given a uniform hit rate;
//  * Store: pages written for F';
//  * Bloom: RAM-only (free), but feasibility depends on achievable m/n.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace ghostdb::plan {

/// Device constants the model needs.
struct CostParams {
  uint32_t page_size = 2048;
  SimNanos read_latency = 25 * kMicrosecond;
  SimNanos write_latency = 200 * kMicrosecond;
  SimNanos byte_latency = 50;
  uint32_t ram_buffers = 32;
  double channel_bytes_per_sec = 1.5e6;

  SimNanos FullPageRead() const {
    return read_latency + static_cast<SimNanos>(page_size) * byte_latency;
  }
  SimNanos FullPageWrite() const {
    return write_latency + static_cast<SimNanos>(page_size) * byte_latency;
  }
};

/// Estimated QEP_SJ shape for one candidate strategy.
struct SjCostInputs {
  uint64_t vis_count = 0;        ///< |Vis selection| on Ti
  uint64_t table_rows = 0;       ///< |Ti|
  uint64_t anchor_rows = 0;      ///< |anchor|
  double hidden_subtree_sel = 1.0;  ///< product of hidden sels under Ti
  double hidden_other_sel = 1.0;    ///< hidden sels outside Ti's subtree
  uint64_t id_index_leaves = 0;  ///< leaf pages of Ti's id index
  bool cross_possible = false;
  uint32_t skt_row_width = 8;    ///< bytes per anchor SKT row
};

/// Cost of climbing `probes` sorted ids of Ti to the anchor, unioning the
/// resulting sublists (`probes * fanout` ids) with bounded RAM.
SimNanos ClimbAndMergeCost(const CostParams& p, uint64_t probes,
                           uint64_t leaves, double fanout,
                           uint32_t buffers_for_merge);

/// External-merge cost of unioning `sublists` sorted lists totalling
/// `total_ids` ids with `buffers` RAM buffers (0 when it fits streaming).
SimNanos MergeReductionCost(const CostParams& p, uint64_t sublists,
                            uint64_t total_ids, uint32_t buffers);

/// SJoin cost: reading the touched fraction of the anchor SKT.
SimNanos SJoinCost(const CostParams& p, uint64_t input_ids,
                   uint64_t anchor_rows, uint32_t skt_row_width);

/// Store cost: materializing `rows` rows of `row_width` bytes.
SimNanos StoreCost(const CostParams& p, uint64_t rows, uint32_t row_width);

/// Estimated total QEP_SJ cost of each strategy for one visible table.
struct StrategyCosts {
  SimNanos pre = 0;
  SimNanos cross_pre = 0;
  SimNanos post = 0;
  SimNanos cross_post = 0;
  bool post_feasible = false;
  bool cross_post_feasible = false;
};

StrategyCosts EstimateStrategyCosts(const CostParams& p,
                                    const SjCostInputs& in);

}  // namespace ghostdb::plan

#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ghostdb::plan {

namespace {
constexpr uint32_t kIdBytes = 4;
}

SimNanos MergeReductionCost(const CostParams& p, uint64_t sublists,
                            uint64_t total_ids, uint32_t buffers) {
  if (sublists <= buffers || total_ids == 0) return 0;
  // One chunk-sort pass reads + writes all ids; k-way passes follow until
  // the run count fits.
  uint64_t bytes = total_ids * kIdBytes;
  uint64_t pages = (bytes + p.page_size - 1) / p.page_size;
  uint64_t ids_per_chunk =
      std::max<uint64_t>(1, static_cast<uint64_t>(buffers - 2) *
                                (p.page_size / kIdBytes));
  double runs = std::ceil(static_cast<double>(total_ids) /
                          static_cast<double>(ids_per_chunk));
  double fan_in = std::max<double>(2.0, buffers - 1);
  double passes = 1.0;  // the chunk-sort pass
  while (runs > buffers) {
    runs = std::ceil(runs / fan_in);
    passes += 1.0;
  }
  return static_cast<SimNanos>(
      passes * static_cast<double>(pages) *
      static_cast<double>(p.FullPageRead() + p.FullPageWrite()));
}

SimNanos ClimbAndMergeCost(const CostParams& p, uint64_t probes,
                           uint64_t leaves, double fanout,
                           uint32_t buffers_for_merge) {
  if (probes == 0) return 0;
  // Sorted probes share leaf pages: touched leaves = min(probes, leaves).
  uint64_t leaf_reads = std::min(probes, std::max<uint64_t>(leaves, 1));
  uint64_t posting_ids =
      static_cast<uint64_t>(static_cast<double>(probes) * fanout);
  uint64_t posting_pages =
      (posting_ids * kIdBytes + p.page_size - 1) / p.page_size;
  SimNanos cost = (leaf_reads + posting_pages) * p.FullPageRead();
  cost += MergeReductionCost(p, probes, posting_ids, buffers_for_merge);
  return cost;
}

SimNanos SJoinCost(const CostParams& p, uint64_t input_ids,
                   uint64_t anchor_rows, uint32_t skt_row_width) {
  if (input_ids == 0 || anchor_rows == 0) return 0;
  uint64_t rows_per_page = std::max<uint32_t>(1, p.page_size / skt_row_width);
  uint64_t skt_pages = (anchor_rows + rows_per_page - 1) / rows_per_page;
  // Probability a page holds at least one hit (uniform spread).
  double hit_rate = static_cast<double>(input_ids) /
                    static_cast<double>(anchor_rows);
  double page_touch =
      1.0 - std::pow(1.0 - hit_rate, static_cast<double>(rows_per_page));
  return static_cast<SimNanos>(static_cast<double>(skt_pages) * page_touch *
                               static_cast<double>(p.FullPageRead()));
}

SimNanos StoreCost(const CostParams& p, uint64_t rows, uint32_t row_width) {
  uint64_t pages =
      (rows * static_cast<uint64_t>(row_width) + p.page_size - 1) /
      p.page_size;
  return pages * p.FullPageWrite();
}

StrategyCosts EstimateStrategyCosts(const CostParams& p,
                                    const SjCostInputs& in) {
  StrategyCosts out;
  if (in.table_rows == 0) return out;
  double fanout = static_cast<double>(in.anchor_rows) /
                  static_cast<double>(in.table_rows);
  uint32_t merge_buffers = p.ram_buffers > 6 ? p.ram_buffers - 6 : 2;

  // Hidden side work shared by every strategy: the hidden selections climb
  // to the anchor on their own.
  uint64_t hidden_anchor_ids = static_cast<uint64_t>(
      in.hidden_subtree_sel * in.hidden_other_sel *
      static_cast<double>(in.anchor_rows));

  // --- Pre-Filter: one id-index probe per Vis id.
  out.pre = ClimbAndMergeCost(p, in.vis_count, in.id_index_leaves, fanout,
                              merge_buffers);

  // --- Cross-Pre: probes shrink by the subtree hidden selectivity.
  uint64_t cross_probes = static_cast<uint64_t>(
      static_cast<double>(in.vis_count) * in.hidden_subtree_sel);
  out.cross_pre =
      in.cross_possible
          ? ClimbAndMergeCost(p, cross_probes, in.id_index_leaves, fanout,
                              merge_buffers)
          : out.pre;

  // --- Post-Filter: the bloom is RAM-only; the price is SJoin over the
  // un-prefiltered hidden result plus storing the (superset) F'.
  auto post_cost = [&](uint64_t bloom_n) {
    SimNanos sjoin = SJoinCost(p, hidden_anchor_ids, in.anchor_rows,
                               in.skt_row_width);
    SimNanos store = StoreCost(p, hidden_anchor_ids, 8);
    (void)bloom_n;
    return sjoin + store;
  };
  uint64_t post_n = in.vis_count;
  uint64_t cross_post_n = cross_probes;
  double ram_bits = static_cast<double>(p.ram_buffers) * p.page_size * 8.0;
  out.post_feasible =
      post_n == 0 || ram_bits / static_cast<double>(post_n) >= 2.0;
  out.cross_post_feasible =
      cross_post_n == 0 ||
      ram_bits / static_cast<double>(cross_post_n) >= 2.0;
  out.post = post_cost(post_n);
  out.cross_post = post_cost(cross_post_n);
  return out;
}

}  // namespace ghostdb::plan

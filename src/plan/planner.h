// Strategy selection. Two modes:
//  * kRule — the paper's observed decision rules (section 6.4): prefer
//    Cross variants whenever applicable; Pre-filtering for selective
//    Visible selections, Post-filtering otherwise, degrading to NoFilter
//    when the Bloom filter cannot be made effective (Fig 10);
//  * kCost — the cost-based optimizer the paper leaves as future work,
//    built on plan/cost_model.h.
#pragma once

#include <map>
#include <string>

#include "catalog/schema.h"
#include "common/result.h"
#include "core/secure_store.h"
#include "exec/executor.h"
#include "plan/cost_model.h"
#include "plan/physical_plan.h"
#include "plan/strategy.h"
#include "sql/binder.h"

namespace ghostdb::plan {

struct PlannerConfig {
  enum class Mode { kRule, kCost };
  Mode mode = Mode::kRule;
  /// Rule mode: Visible selectivity at or below this prefers Pre-filtering
  /// (the paper's crossover sits near 0.1; Fig 9/10).
  double pre_filter_threshold = 0.1;
  /// Devices in the fleet (GhostDBConfig::shard_count, stamped by
  /// core::GhostDB::Build). > 1 makes the planner annotate root-anchored
  /// plans with a scatter-gather fan-out root (PhysicalPlan::shard_fanout).
  uint32_t shard_count = 1;
};

/// \brief Chooses Visible-selection strategies and the projection
/// algorithm for a bound query.
class Planner {
 public:
  Planner(const catalog::Schema* schema, const core::SecureStore* store,
          PlannerConfig config)
      : schema_(schema), store_(store), config_(config) {}

  /// `vis_counts`: per table with visible predicates, the Vis result count
  /// (supplied by Untrusted; visible information).
  Result<PlanChoice> Choose(const sql::BoundQuery& query,
                            const std::map<catalog::TableId, uint64_t>&
                                vis_counts,
                            const exec::ExecConfig& exec_config) const;

  /// Chooses strategies and lowers them into the physical operator tree —
  /// the unit the execution engine runs and core::GhostDB caches.
  Result<PhysicalPlan> PlanQuery(const sql::BoundQuery& query,
                                 const std::map<catalog::TableId, uint64_t>&
                                     vis_counts,
                                 const exec::ExecConfig& exec_config) const;

  /// Estimated combined selectivity of the hidden predicates on tables in
  /// `subtree_root`'s subtree (1.0 when none).
  double HiddenSubtreeSelectivity(const sql::BoundQuery& query,
                                  catalog::TableId subtree_root) const;

  /// Human-readable plan description (EXPLAIN).
  std::string Explain(const sql::BoundQuery& query, const PlanChoice& plan,
                      const std::map<catalog::TableId, uint64_t>& vis_counts)
      const;

  /// EXPLAIN for a lowered plan: strategy summary plus the operator
  /// pipeline.
  std::string Explain(const sql::BoundQuery& query, const PhysicalPlan& plan,
                      const std::map<catalog::TableId, uint64_t>& vis_counts)
      const;

 private:
  const catalog::Schema* schema_;
  const core::SecureStore* store_;
  PlannerConfig config_;
};

}  // namespace ghostdb::plan

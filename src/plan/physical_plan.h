// The physical operator tree the planner hands to the execution engine.
//
// A PhysicalPlan lowers a decided PlanChoice (per-table Visible strategies +
// projection algorithm) into an explicit pipeline of physical operators:
//
//   VisSelect -> BloomBuild -> Merge -> SJoin [-> PostSelect]
//     -> Project | BruteForceProject
//     [-> Aggregate | GroupAggregate] [-> Distinct] [-> Sort] [-> Limit]
//
// Nodes are stored flat (children by index) so plans are cheap to copy and
// cache: the plan cache in core::GhostDB keys them by query shape.
// Everything in a PhysicalPlan derives from the query text and Visible
// statistics only — never from Hidden data — so a cached or explained plan
// is safe to show Untrusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "exec/column_batch.h"
#include "plan/strategy.h"
#include "sql/binder.h"

namespace ghostdb::plan {

/// Physical operator kinds, one per exec-layer Operator class.
enum class PhysicalOp : uint8_t {
  kVisSelect,          ///< serve Vis ids, apply per-table strategy prep
  kBloomBuild,         ///< BuildBF for (Cross)Post-Filter tables
  kMerge,              ///< anchor-level intersection of unions
  kSJoin,              ///< semi-join against the anchor SKT (ProbeBF fused)
  kPostSelect,         ///< exact Post-Select passes over F'
  kProject,            ///< section 4 Project (BF-filtered MJoin)
  kBruteForceProject,  ///< Figs 12-13 baseline
  kAggregate,          ///< fold rows into aggregate values
  kGroupAggregate,     ///< GROUP BY: per-group aggregate folding
  kDistinct,           ///< drop duplicate rows (first occurrence wins)
  kSort,               ///< ORDER BY over select-list columns
  kLimit,              ///< truncate the stream after N rows
  kTopKSort,           ///< fused Sort -> Limit k: bounded k-row heap
  /// Volume defense root: forwards the stream, then emits dummy rows until
  /// the observed volume hits the padding mode's target (quantized or
  /// visible-worst-case). Dummies are stripped at the QueryResult boundary.
  kVolumePad,
};

std::string_view PhysicalOpName(PhysicalOp op);

/// One node of the flat operator tree.
struct PhysicalNode {
  PhysicalOp op;
  std::vector<int> children;  ///< indices into PhysicalPlan::nodes
  uint64_t limit = 0;         ///< kLimit / kTopKSort: row cap
};

/// \brief A fully lowered plan: strategy decisions plus the operator tree.
struct PhysicalPlan {
  PlanChoice choice;
  std::vector<PhysicalNode> nodes;
  int root = -1;
  /// Rows per ColumnBatch through the value-space operators, sized by the
  /// planner from the output row width (exec::SizeBatchRows). Derived from
  /// schema widths and the visible query shape only, so caching it is as
  /// safe as caching the tree. 0 = let the executor size it.
  uint32_t batch_rows = 0;
  /// The projection-output column layout the sizing was computed from,
  /// kept so cached executions don't rebuild it per statement. Empty when
  /// the plan was lowered without a planner (pinned benches).
  exec::BatchLayout value_layout;
  /// Morsel-parallelism degree for host-side value work, stamped by the
  /// planner from ExecConfig::worker_threads. Derived from visible config
  /// only; the executor clamps it to the live pool's width. 0 = use the
  /// pool's full width.
  uint32_t parallelism = 0;
  /// Scatter-gather root: on a sharded fleet (PlannerConfig::shard_count
  /// > 1) the subtree at/below the fan-out boundary runs once per shard
  /// and the tail runs on the gather device over the combined streams.
  /// Stamped only for queries anchored at the partitioned (root) table —
  /// every other anchor reads fully replicated tables, so a single shard
  /// already holds the complete answer. Pure function of the visible query
  /// shape and config, so it caches with the plan.
  bool shard_fanout = false;

  /// Indented tree rendering (EXPLAIN).
  std::string ToString(const catalog::Schema& schema) const;
};

/// Lowers `choice` into the operator tree for `query`. Pure function of the
/// bound query's visible shape and the choice. With `fuse_topk` (the
/// default; ExecConfig::topk_fusion), a Sort -> Limit k tail becomes one
/// fused TopKSort node — O(k) secure memory instead of a full materialized
/// sort. The fusion keys on the *presence* of ORDER BY and LIMIT (shape
/// information); k itself stays a literal the executor re-binds.
///
/// With `pad_volume` (ExecConfig::volume_padding != kOff) a VolumePad node
/// caps the tree: config is visible information, so padded plans cache
/// like any other.
PhysicalPlan BuildPhysicalPlan(const sql::BoundQuery& query,
                               PlanChoice choice, bool fuse_topk = true,
                               bool pad_volume = false);

}  // namespace ghostdb::plan

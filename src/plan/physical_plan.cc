#include "plan/physical_plan.h"

#include <functional>
#include <sstream>

namespace ghostdb::plan {

std::string_view PhysicalOpName(PhysicalOp op) {
  switch (op) {
    case PhysicalOp::kVisSelect: return "VisSelect";
    case PhysicalOp::kBloomBuild: return "BloomBuild";
    case PhysicalOp::kMerge: return "Merge";
    case PhysicalOp::kSJoin: return "SJoin";
    case PhysicalOp::kPostSelect: return "PostSelect";
    case PhysicalOp::kProject: return "Project";
    case PhysicalOp::kBruteForceProject: return "BruteForceProject";
    case PhysicalOp::kAggregate: return "Aggregate";
    case PhysicalOp::kGroupAggregate: return "GroupAggregate";
    case PhysicalOp::kDistinct: return "Distinct";
    case PhysicalOp::kSort: return "Sort";
    case PhysicalOp::kLimit: return "Limit";
    case PhysicalOp::kTopKSort: return "TopKSort";
    case PhysicalOp::kVolumePad: return "VolumePad";
  }
  return "?";
}

PhysicalPlan BuildPhysicalPlan(const sql::BoundQuery& query,
                               PlanChoice choice, bool fuse_topk,
                               bool pad_volume) {
  PhysicalPlan plan;
  plan.choice = std::move(choice);
  auto add = [&](PhysicalOp op, int child) {
    PhysicalNode node;
    node.op = op;
    if (child >= 0) node.children.push_back(child);
    plan.nodes.push_back(std::move(node));
    return static_cast<int>(plan.nodes.size()) - 1;
  };

  int node = add(PhysicalOp::kVisSelect, -1);
  bool any_bloom = false, any_post_select = false;
  for (const auto& [t, strategy] : plan.choice.vis) {
    (void)t;
    any_bloom |= strategy == VisStrategy::kPostFilter ||
                 strategy == VisStrategy::kCrossPostFilter;
    any_post_select |= strategy == VisStrategy::kPostSelect ||
                       strategy == VisStrategy::kCrossPostSelect;
  }
  if (any_bloom) node = add(PhysicalOp::kBloomBuild, node);
  node = add(PhysicalOp::kMerge, node);
  node = add(PhysicalOp::kSJoin, node);
  if (any_post_select) node = add(PhysicalOp::kPostSelect, node);
  node = add(plan.choice.project == ProjectAlgo::kBruteForce
                 ? PhysicalOp::kBruteForceProject
                 : PhysicalOp::kProject,
             node);
  // GROUP BY subsumes the whole-result Aggregate; which one runs is shape
  // information (the clause is part of the cached query shape), like
  // kTopKSort below.
  if (query.grouped()) {
    node = add(PhysicalOp::kGroupAggregate, node);
  } else if (query.HasAggregates()) {
    node = add(PhysicalOp::kAggregate, node);
  }
  if (query.distinct) node = add(PhysicalOp::kDistinct, node);
  if (fuse_topk && !query.order_by.empty() && query.limit.has_value()) {
    // Sort -> Limit k fuses into a bounded top-K heap. The decision keys
    // on shape only (both clauses present), so fused plans cache like any
    // other; k is re-bound from the live query at build time.
    node = add(PhysicalOp::kTopKSort, node);
    plan.nodes.back().limit = *query.limit;
  } else {
    if (!query.order_by.empty()) node = add(PhysicalOp::kSort, node);
    if (query.limit.has_value()) {
      node = add(PhysicalOp::kLimit, node);
      plan.nodes.back().limit = *query.limit;
    }
  }
  // The volume defense pads *observed* volume, so it must sit above every
  // row-count-changing operator — including LIMIT.
  if (pad_volume) node = add(PhysicalOp::kVolumePad, node);
  plan.root = node;
  return plan;
}

std::string PhysicalPlan::ToString(const catalog::Schema& schema) const {
  std::ostringstream out;
  // Recursive indent-render from the root down.
  std::function<void(int, int)> render = [&](int idx, int depth) {
    const PhysicalNode& node = nodes[idx];
    out << std::string(static_cast<size_t>(depth) * 2, ' ') << "-> "
        << PhysicalOpName(node.op);
    if (node.op == PhysicalOp::kLimit) out << " " << node.limit;
    if (node.op == PhysicalOp::kTopKSort) {
      out << " " << node.limit << " (fused Sort+Limit)";
    }
    if (node.op == PhysicalOp::kVisSelect) {
      for (const auto& [t, strategy] : choice.vis) {
        out << " " << schema.table(t).name << ":"
            << VisStrategyName(strategy);
      }
    }
    if (node.op == PhysicalOp::kProject ||
        node.op == PhysicalOp::kBruteForceProject) {
      out << " (" << ProjectAlgoName(choice.project) << ")";
    }
    out << "\n";
    for (int c : node.children) render(c, depth + 1);
  };
  if (root >= 0) render(root, 0);
  return out.str();
}

}  // namespace ghostdb::plan

// Order-independent exact summation of IEEE-754 doubles.
//
// SUM/AVG over DOUBLE must produce byte-identical results no matter how the
// input is partitioned: the single-device engine folds values in arrival
// order, but under sharding each device folds its local subset and the
// combiner merges per-shard partials — an order the floating-point `+=`
// cannot reproduce. ExactDoubleSum sidesteps the problem by accumulating
// into a wide fixed-point integer (a 2176-bit two's-complement register
// whose LSB is 2^-1074, the smallest subnormal ULP), where addition is
// associative and commutative *exactly*. Finish() rounds the exact total
// to the nearest double once, so any partition of the same multiset of
// inputs yields the same output bits.
//
// Capacity: the largest finite double occupies bits [2045, 2098); 2176 bits
// leave ~2^77 additions of headroom before the register could wrap — far
// beyond any reachable row count. Infinities and NaNs are tracked out of
// band (counters + flag) with the usual IEEE resolution at Finish().
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/coding.h"

namespace ghostdb::exec {

class ExactDoubleSum {
 public:
  static constexpr size_t kLimbs = 34;  ///< 34 x 64 = 2176 bits
  /// Serialized form: limbs, then the two infinity counters, then the NaN
  /// flag — the per-item partial-aggregate state of a spilled group row.
  static constexpr size_t kEncodedSize = kLimbs * 8 + 8 + 8 + 1;

  /// Folds one value into the register (exact for all finite inputs).
  void Add(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    uint64_t frac = bits & ((uint64_t{1} << 52) - 1);
    uint32_t exp = static_cast<uint32_t>(bits >> 52) & 0x7FF;
    bool neg = (bits >> 63) != 0;
    if (exp == 0x7FF) {
      if (frac != 0) {
        nan_ = true;
      } else if (neg) {
        neg_inf_ += 1;
      } else {
        pos_inf_ += 1;
      }
      return;
    }
    // Fixed-point decomposition: value = ±mant * 2^(shift - 1074).
    uint64_t mant = exp == 0 ? frac : frac | (uint64_t{1} << 52);
    uint32_t shift = exp == 0 ? 0 : exp - 1;
    if (mant == 0) return;  // ±0 contributes nothing
    uint32_t limb = shift / 64, off = shift % 64;
    uint64_t lo = mant << off;
    uint64_t hi = off == 0 ? 0 : mant >> (64 - off);
    if (neg) {
      SubAt(limb, lo);
      SubAt(limb + 1, hi);
    } else {
      AddAt(limb, lo);
      AddAt(limb + 1, hi);
    }
  }

  /// Folds another accumulator in — the shard-combine primitive. Exact,
  /// so merge({a} then {b}) == merge({b} then {a}) == Add-ing every value.
  void Merge(const ExactDoubleSum& other) {
    nan_ = nan_ || other.nan_;
    pos_inf_ += other.pos_inf_;
    neg_inf_ += other.neg_inf_;
    uint64_t carry = 0;
    for (size_t i = 0; i < kLimbs; ++i) {
      uint64_t a = limbs_[i];
      uint64_t s = a + other.limbs_[i];
      uint64_t c = s < a ? 1 : 0;
      limbs_[i] = s + carry;
      carry = c | (limbs_[i] < s ? 1 : 0);
    }
  }

  /// The exact total rounded once to the nearest double (ties to even).
  double Finish() const {
    if (nan_ || (pos_inf_ > 0 && neg_inf_ > 0)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (pos_inf_ > 0) return std::numeric_limits<double>::infinity();
    if (neg_inf_ > 0) return -std::numeric_limits<double>::infinity();
    uint64_t mag[kLimbs];
    bool neg = (limbs_[kLimbs - 1] >> 63) != 0;
    if (neg) {  // |x| = ~x + 1
      uint64_t carry = 1;
      for (size_t i = 0; i < kLimbs; ++i) {
        mag[i] = ~limbs_[i] + carry;
        carry = carry != 0 && mag[i] == 0 ? 1 : 0;
      }
    } else {
      std::memcpy(mag, limbs_, sizeof(mag));
    }
    int top = -1;  // highest set bit index
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      if (mag[i] != 0) {
        int b = 63;
        while ((mag[i] >> b) == 0) --b;
        top = i * 64 + b;
        break;
      }
    }
    if (top < 0) return 0.0;
    int shift = top > 52 ? top - 52 : 0;  // keep the top 53 bits
    uint64_t mant = BitsFrom(mag, shift) & ((uint64_t{1} << 53) - 1);
    if (shift > 0) {
      bool guard = Bit(mag, shift - 1);
      if (guard && (AnyBelow(mag, shift - 1) || (mant & 1) != 0)) {
        mant += 1;
        if (mant == (uint64_t{1} << 53)) {
          mant >>= 1;
          shift += 1;
        }
      }
    }
    // ldexp saturates to ±inf past the double range, which is the right
    // answer for a finite exact total that large.
    double result = std::ldexp(static_cast<double>(mant), shift - 1074);
    return neg ? -result : result;
  }

  void Serialize(uint8_t* dst) const {
    for (size_t i = 0; i < kLimbs; ++i) EncodeFixed64(dst + i * 8, limbs_[i]);
    EncodeFixed64(dst + kLimbs * 8, pos_inf_);
    EncodeFixed64(dst + kLimbs * 8 + 8, neg_inf_);
    dst[kLimbs * 8 + 16] = nan_ ? 1 : 0;
  }

  static ExactDoubleSum Deserialize(const uint8_t* src) {
    ExactDoubleSum s;
    for (size_t i = 0; i < kLimbs; ++i) s.limbs_[i] = DecodeFixed64(src + i * 8);
    s.pos_inf_ = DecodeFixed64(src + kLimbs * 8);
    s.neg_inf_ = DecodeFixed64(src + kLimbs * 8 + 8);
    s.nan_ = src[kLimbs * 8 + 16] != 0;
    return s;
  }

 private:
  void AddAt(uint32_t limb, uint64_t v) {
    while (v != 0 && limb < kLimbs) {
      uint64_t old = limbs_[limb];
      limbs_[limb] = old + v;
      v = limbs_[limb] < old ? 1 : 0;
      limb += 1;
    }
  }

  void SubAt(uint32_t limb, uint64_t v) {
    while (v != 0 && limb < kLimbs) {
      uint64_t old = limbs_[limb];
      limbs_[limb] = old - v;
      v = old < v ? 1 : 0;
      limb += 1;
    }
  }

  static uint64_t BitsFrom(const uint64_t* mag, int shift) {
    uint32_t limb = static_cast<uint32_t>(shift) / 64;
    uint32_t off = static_cast<uint32_t>(shift) % 64;
    uint64_t lo = mag[limb] >> off;
    uint64_t hi =
        off != 0 && limb + 1 < kLimbs ? mag[limb + 1] << (64 - off) : 0;
    return lo | hi;
  }

  static bool Bit(const uint64_t* mag, int pos) {
    return ((mag[pos / 64] >> (pos % 64)) & 1) != 0;
  }

  /// Any set bit strictly below `pos` (the rounding sticky bit).
  static bool AnyBelow(const uint64_t* mag, int pos) {
    int limb = pos / 64, off = pos % 64;
    if (off != 0 && (mag[limb] & ((uint64_t{1} << off) - 1)) != 0) return true;
    for (int i = 0; i < limb; ++i) {
      if (mag[i] != 0) return true;
    }
    return false;
  }

  uint64_t limbs_[kLimbs] = {};  ///< two's complement, LSB = 2^-1074
  uint64_t pos_inf_ = 0;
  uint64_t neg_inf_ = 0;
  bool nan_ = false;
};

}  // namespace ghostdb::exec
